// Reproduces Table V: overall performance in the three cold-start scenarios
// on the Douban profile (ID-only attributes + user-user friendship graph).
// Adds the social baseline GraphRec, which the paper evaluates only here.
//
// Expected shape (paper): HIRE leads overall; GraphRec is strong for cold
// users (social evidence) but weak for cold items; pure CF baselines
// collapse because ID embeddings of cold entities are untrained.

#include <iostream>

#include "bench/bench_common.h"
#include "data/synthetic.h"

int main() {
  using namespace hire;
  bench::BenchOptions options = bench::BenchOptions::FromEnv();
  options.train_fraction = 0.7;  // paper: 70/30 split for Douban
  const data::SyntheticConfig profile =
      data::DoubanProfile(options.dataset_scale);

  std::cout << "Table V reproduction — Douban profile\n";
  bench::RunOverallComparison(
      profile,
      {"HIRE", "NeuMF", "Wide&Deep", "DeepFM", "AFN", "GraphRec", "MeLU-FO",
       "ItemKNN", "Popularity"},
      options, std::cout);
  return 0;
}
