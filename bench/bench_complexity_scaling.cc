// Empirically validates the §V-B complexity analysis: one HIM forward pass
// costs O(n m e (n + m + h)). The google-benchmark sweeps below vary n (the
// user axis), m (the item axis) and h (the attribute-slot axis via f)
// independently so the scaling of each term is observable.

#include <benchmark/benchmark.h>

#include "autograd/variable.h"
#include "core/him_block.h"
#include "core/hire_config.h"
#include "tensor/random.h"

namespace {

using namespace hire;

core::HireConfig SmallConfig(int64_t attr_embed_dim) {
  core::HireConfig config;
  config.num_heads = 2;
  config.head_dim = 8;
  config.attr_embed_dim = attr_embed_dim;
  return config;
}

// Scaling in n (users per context); m, h fixed.
void BM_HimForwardUsers(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t m = 16;
  const int64_t h = 4;
  const int64_t f = 8;
  Rng rng(1);
  core::HimBlock him(SmallConfig(f), h * f, h, &rng);
  him.SetTraining(false);
  ag::Variable input(RandomNormal({n, m, h * f}, 0, 1, &rng), false);
  Rng dropout_rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(him.Forward(input, &dropout_rng));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_HimForwardUsers)->RangeMultiplier(2)->Range(4, 64)->Complexity();

// Scaling in m (items per context); n, h fixed.
void BM_HimForwardItems(benchmark::State& state) {
  const int64_t n = 16;
  const int64_t m = state.range(0);
  const int64_t h = 4;
  const int64_t f = 8;
  Rng rng(3);
  core::HimBlock him(SmallConfig(f), h * f, h, &rng);
  him.SetTraining(false);
  ag::Variable input(RandomNormal({n, m, h * f}, 0, 1, &rng), false);
  Rng dropout_rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(him.Forward(input, &dropout_rng));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_HimForwardItems)->RangeMultiplier(2)->Range(4, 64)->Complexity();

// Scaling in h (attribute slots); n, m, f fixed.
void BM_HimForwardAttributes(benchmark::State& state) {
  const int64_t n = 12;
  const int64_t m = 12;
  const int64_t h = state.range(0);
  const int64_t f = 8;
  Rng rng(5);
  core::HimBlock him(SmallConfig(f), h * f, h, &rng);
  him.SetTraining(false);
  ag::Variable input(RandomNormal({n, m, h * f}, 0, 1, &rng), false);
  Rng dropout_rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(him.Forward(input, &dropout_rng));
  }
  state.SetComplexityN(h);
}
BENCHMARK(BM_HimForwardAttributes)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
