// Micro-benchmarks gating the tape-free fused inference path: fused QKV +
// online-softmax attention vs the tape MHSA, the fused GEMM epilogue vs the
// unfused op chain, and the whole serve forward (InferenceModel::Predict)
// vs the autograd reference (HireModel::Predict) at serve batch shapes.
//
// Three modes:
//   * default: the google-benchmark suite below.
//   * --emit_json=PATH [--threads=1,2] [--min_time=0.2]: times every
//     tape/fused pair and writes machine-readable rows (op, shape, impl,
//     threads, ns/iter, speedup of fused over tape) to PATH.
//     tools/run_bench.sh --kernels wraps this and checks BENCH_kernels.json
//     in at the repo root.
//   * --check_regress=BASELINE [--regress_tolerance=0.10]: re-times the
//     fused rows and fails (exit 1) when any is slower than the checked-in
//     baseline beyond the tolerance. Exits 77 (ctest SKIP) with a loud note
//     on single-core machines, where a shared core makes wall-clock
//     comparisons pure noise.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "core/hire_config.h"
#include "core/hire_model.h"
#include "core/inference_forward.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "graph/context_builder.h"
#include "graph/samplers.h"
#include "nn/fused_attention.h"
#include "nn/multi_head_self_attention.h"
#include "tensor/ops.h"
#include "tensor/random.h"
#include "obs/stopwatch.h"
#include "utils/parallel.h"
#include "utils/string_utils.h"

namespace {

using namespace hire;

// ---------------------------------------------------------------------------
// Shared fixtures.
// ---------------------------------------------------------------------------

data::Dataset BenchDataset() {
  data::SyntheticConfig config;
  config.num_users = 256;
  config.num_items = 256;
  config.num_ratings = 6000;
  config.user_schema = {{"age", 6}, {"gender", 2}};
  config.item_schema = {{"genre", 8}};
  return data::GenerateSyntheticDataset(config, /*seed=*/17);
}

graph::PredictionContext BenchContext(const data::Dataset& dataset, int64_t n,
                                      int64_t m, uint64_t seed) {
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  graph::NeighborhoodSampler sampler;
  Rng rng(seed);
  return graph::BuildTrainingContext(graph, sampler, n, m, 0.3, &rng);
}

// ---------------------------------------------------------------------------
// google-benchmark suite (default mode).
// ---------------------------------------------------------------------------

void BM_TapeMhsa(benchmark::State& state) {
  const int64_t tokens = state.range(0);
  Rng rng(1);
  nn::MhsaConfig config;
  config.embed_dim = 64;
  config.num_heads = 8;
  nn::MultiHeadSelfAttention mhsa(config, &rng);
  mhsa.SetTraining(false);
  ag::Variable x(RandomNormal({16, tokens, 64}, 0, 1, &rng), false);
  ag::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mhsa.Forward(x));
  }
}
BENCHMARK(BM_TapeMhsa)->RangeMultiplier(2)->Range(4, 32);

void BM_FusedAttention(benchmark::State& state) {
  const int64_t tokens = state.range(0);
  Rng rng(1);
  nn::MhsaConfig config;
  config.embed_dim = 64;
  config.num_heads = 8;
  nn::MultiHeadSelfAttention mhsa(config, &rng);
  const nn::FusedAttentionWeights packed = nn::PackAttentionWeights(mhsa);
  Tensor x = RandomNormal({16, tokens, 64}, 0, 1, &rng);
  Tensor out(x.shape());
  std::vector<float> scratch(
      static_cast<size_t>(packed.ScratchFloats(16, tokens)));
  for (auto _ : state) {
    nn::FusedAttentionForward(packed, x.data(), 16, tokens, out.data(),
                              scratch.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FusedAttention)->RangeMultiplier(2)->Range(4, 32);

void BM_UnfusedGemmChain(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(2);
  Tensor a = RandomNormal({rows, 64}, 0, 1, &rng);
  Tensor b = RandomNormal({64, 192}, 0, 1, &rng);
  Tensor bias = RandomNormal({192}, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::AddBias(ops::MatMul(a, b), bias));
  }
}
BENCHMARK(BM_UnfusedGemmChain)->RangeMultiplier(2)->Range(64, 512);

void BM_GemmBiasAct(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(2);
  Tensor a = RandomNormal({rows, 64}, 0, 1, &rng);
  Tensor b = RandomNormal({64, 192}, 0, 1, &rng);
  Tensor bias = RandomNormal({192}, 0, 1, &rng);
  Tensor c({rows, 192});
  for (auto _ : state) {
    ops::GemmBiasActInto(a.data(), b.data(), bias.data(), c.data(), rows, 64,
                         192);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmBiasAct)->RangeMultiplier(2)->Range(64, 512);

void BM_SoftmaxMatmulChain(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(3);
  Tensor q = RandomNormal({batch, 16, 16}, 0, 1, &rng);
  Tensor k = RandomNormal({batch, 16, 16}, 0, 1, &rng);
  Tensor v = RandomNormal({batch, 16, 16}, 0, 1, &rng);
  for (auto _ : state) {
    Tensor scores =
        ops::MulScalar(ops::BatchedMatMulTransposedB(q, k), 0.25f);
    benchmark::DoNotOptimize(ops::BatchedMatMul(ops::Softmax(scores), v));
  }
}
BENCHMARK(BM_SoftmaxMatmulChain)->RangeMultiplier(4)->Range(8, 128);

void BM_OnlineSoftmaxWeightedSum(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(3);
  Tensor q = RandomNormal({batch, 16, 16}, 0, 1, &rng);
  Tensor k = RandomNormal({batch, 16, 16}, 0, 1, &rng);
  Tensor v = RandomNormal({batch, 16, 16}, 0, 1, &rng);
  Tensor out(q.shape());
  for (auto _ : state) {
    for (int64_t s = 0; s < batch; ++s) {
      ops::OnlineSoftmaxWeightedSumInto(
          q.data() + s * 256, 16, k.data() + s * 256, 16,
          v.data() + s * 256, 16, out.data() + s * 256, 16, 16, 16, 0.25f);
    }
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_OnlineSoftmaxWeightedSum)->RangeMultiplier(4)->Range(8, 128);

void BM_TapeServeForward(benchmark::State& state) {
  data::Dataset dataset = BenchDataset();
  core::HireConfig config;  // paper defaults: 3 blocks, 8 heads, dk 16
  core::HireModel model(&dataset, config, /*seed=*/5);
  model.SetTraining(false);
  graph::PredictionContext context = BenchContext(dataset, 16, 16, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(context));
  }
}
BENCHMARK(BM_TapeServeForward);

void BM_FusedServeForward(benchmark::State& state) {
  data::Dataset dataset = BenchDataset();
  core::HireConfig config;
  core::HireModel model(&dataset, config, /*seed=*/5);
  model.SetTraining(false);
  const core::InferenceModel fused(model);
  core::InferenceArena arena;
  graph::PredictionContext context = BenchContext(dataset, 16, 16, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fused.Predict(context, &arena).data());
  }
}
BENCHMARK(BM_FusedServeForward);

// ---------------------------------------------------------------------------
// JSON harness (--emit_json) and the regression gate (--check_regress).
// ---------------------------------------------------------------------------

struct BenchRow {
  std::string op;
  std::string shape;
  std::string impl;  // "tape" or "fused"
  int threads = 1;
  double ns_per_iter = 0.0;
  double speedup_vs_tape = 0.0;  // 1.0 on tape rows
};

struct BenchCase {
  std::string op;
  std::string shape;
  std::function<void()> tape_fn;
  std::function<void()> fused_fn;
};

int HardwareCores() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

double TimeNsPerIter(const std::function<void()>& fn, double min_seconds) {
  fn();  // warmup
  Stopwatch stopwatch;
  int iters = 0;
  do {
    fn();
    ++iters;
  } while (stopwatch.ElapsedSeconds() < min_seconds && iters < 200);
  return stopwatch.ElapsedSeconds() * 1e9 / iters;
}

/// The benchmark pairs. Held behind a function so both --emit_json and
/// --check_regress time the identical workloads. The shapes are the ones
/// the serve tier actually runs: the default BatcherConfig context is
/// 16 x 16 and the HIM blocks attend over 16-token user/item sequences and
/// 4-token attribute sequences.
struct BenchFixtures {
  static nn::MhsaConfig MhsaCfg() {
    nn::MhsaConfig config;
    config.embed_dim = 64;
    config.num_heads = 8;
    return config;
  }

  data::Dataset dataset;
  core::HireConfig config;
  core::HireModel model;
  core::InferenceModel fused;
  core::InferenceArena arena;
  graph::PredictionContext context;

  Rng rng;
  nn::MultiHeadSelfAttention mhsa;
  nn::FusedAttentionWeights packed;
  Tensor mhsa_x;
  ag::Variable mhsa_xv;
  Tensor mhsa_out;
  std::vector<float> mhsa_scratch;

  Tensor gemm_a, gemm_b, gemm_bias, gemm_c;
  Tensor attn_q, attn_k, attn_v, attn_out;

  BenchFixtures()
      : dataset(BenchDataset()),
        model(&dataset, config, /*seed=*/5),
        fused(model),
        context(BenchContext(dataset, 16, 16, /*seed=*/7)),
        rng(11),
        mhsa(MhsaCfg(), &rng),
        packed(nn::PackAttentionWeights(mhsa)),
        mhsa_x(RandomNormal({16, 16, 64}, 0, 1, &rng)),
        mhsa_xv(mhsa_x, false),
        mhsa_out({16, 16, 64}),
        mhsa_scratch(static_cast<size_t>(packed.ScratchFloats(16, 16))),
        gemm_a(RandomNormal({256, 64}, 0, 1, &rng)),
        gemm_b(RandomNormal({64, 192}, 0, 1, &rng)),
        gemm_bias(RandomNormal({192}, 0, 1, &rng)),
        gemm_c({256, 192}),
        attn_q(RandomNormal({128, 16, 16}, 0, 1, &rng)),
        attn_k(RandomNormal({128, 16, 16}, 0, 1, &rng)),
        attn_v(RandomNormal({128, 16, 16}, 0, 1, &rng)),
        attn_out({128, 16, 16}) {
    model.SetTraining(false);
    mhsa.SetTraining(false);
  }
};

std::vector<BenchCase> BuildCases(BenchFixtures* fx) {
  std::vector<BenchCase> cases;

  cases.push_back(
      {"mhsa", "16x16x64",
       [fx] {
         ag::NoGradGuard no_grad;
         benchmark::DoNotOptimize(fx->mhsa.Forward(fx->mhsa_xv));
       },
       [fx] {
         nn::FusedAttentionForward(fx->packed, fx->mhsa_x.data(), 16, 16,
                                   fx->mhsa_out.data(),
                                   fx->mhsa_scratch.data());
         benchmark::DoNotOptimize(fx->mhsa_out.data());
       }});

  cases.push_back(
      {"gemm_bias", "256x64x192",
       [fx] {
         benchmark::DoNotOptimize(
             ops::AddBias(ops::MatMul(fx->gemm_a, fx->gemm_b),
                          fx->gemm_bias));
       },
       [fx] {
         ops::GemmBiasActInto(fx->gemm_a.data(), fx->gemm_b.data(),
                              fx->gemm_bias.data(), fx->gemm_c.data(), 256,
                              64, 192);
         benchmark::DoNotOptimize(fx->gemm_c.data());
       }});

  cases.push_back(
      {"attention_core", "128x16x16",
       [fx] {
         Tensor scores = ops::MulScalar(
             ops::BatchedMatMulTransposedB(fx->attn_q, fx->attn_k), 0.25f);
         benchmark::DoNotOptimize(
             ops::BatchedMatMul(ops::Softmax(scores), fx->attn_v));
       },
       [fx] {
         for (int64_t s = 0; s < 128; ++s) {
           ops::OnlineSoftmaxWeightedSumInto(
               fx->attn_q.data() + s * 256, 16, fx->attn_k.data() + s * 256,
               16, fx->attn_v.data() + s * 256, 16,
               fx->attn_out.data() + s * 256, 16, 16, 16, 0.25f);
         }
         benchmark::DoNotOptimize(fx->attn_out.data());
       }});

  // The acceptance case: whole forward at the default serve batch shape.
  cases.push_back(
      {"serve_forward", "16x16",
       [fx] { benchmark::DoNotOptimize(fx->model.Predict(fx->context)); },
       [fx] {
         benchmark::DoNotOptimize(
             fx->fused.Predict(fx->context, &fx->arena).data());
       }});
  return cases;
}

std::vector<BenchRow> RunCases(const std::vector<BenchCase>& cases,
                               const std::vector<int>& thread_counts,
                               double min_seconds) {
  std::vector<BenchRow> rows;
  for (const BenchCase& bench : cases) {
    for (const int threads : thread_counts) {
      SetGlobalThreads(threads);
      const double tape_ns = TimeNsPerIter(bench.tape_fn, min_seconds);
      const double fused_ns = TimeNsPerIter(bench.fused_fn, min_seconds);
      BenchRow tape_row;
      tape_row.op = bench.op;
      tape_row.shape = bench.shape;
      tape_row.impl = "tape";
      tape_row.threads = threads;
      tape_row.ns_per_iter = tape_ns;
      tape_row.speedup_vs_tape = 1.0;
      rows.push_back(tape_row);
      BenchRow fused_row = tape_row;
      fused_row.impl = "fused";
      fused_row.ns_per_iter = fused_ns;
      fused_row.speedup_vs_tape = tape_ns / fused_ns;
      rows.push_back(fused_row);
      std::cerr << bench.op << " " << bench.shape << " t=" << threads
                << ": tape " << tape_ns << " ns/iter, fused " << fused_ns
                << " ns/iter (x" << fused_row.speedup_vs_tape << ")\n";
    }
  }
  SetGlobalThreads(0);
  return rows;
}

int WriteJson(const std::vector<BenchRow>& rows, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"generated_by\": \"bench_kernels --emit_json\",\n"
      << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    out << "    {\"op\": \"" << row.op << "\", \"shape\": \"" << row.shape
        << "\", \"impl\": \"" << row.impl << "\", \"threads\": "
        << row.threads << ", \"ns_per_iter\": "
        << static_cast<int64_t>(row.ns_per_iter) << ", \"speedup_vs_tape\": "
        << row.speedup_vs_tape << "}" << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  std::cerr << "wrote " << rows.size() << " rows to " << path << "\n";
  return 0;
}

/// Minimal parser for the JSON this binary writes: one result object per
/// line, string values without escapes. Good enough for the regression gate
/// reading its own checked-in baseline.
std::vector<BenchRow> ParseBaseline(const std::string& path) {
  std::ifstream in(path);
  std::vector<BenchRow> rows;
  if (!in.is_open()) return rows;
  std::string line;
  auto string_field = [](const std::string& text, const std::string& key) {
    const std::string needle = "\"" + key + "\": \"";
    const size_t at = text.find(needle);
    if (at == std::string::npos) return std::string();
    const size_t begin = at + needle.size();
    return text.substr(begin, text.find('"', begin) - begin);
  };
  auto number_field = [](const std::string& text, const std::string& key) {
    const std::string needle = "\"" + key + "\": ";
    const size_t at = text.find(needle);
    if (at == std::string::npos) return 0.0;
    return std::strtod(text.c_str() + at + needle.size(), nullptr);
  };
  while (std::getline(in, line)) {
    if (line.find("\"op\"") == std::string::npos) continue;
    BenchRow row;
    row.op = string_field(line, "op");
    row.shape = string_field(line, "shape");
    row.impl = string_field(line, "impl");
    row.threads = static_cast<int>(number_field(line, "threads"));
    row.ns_per_iter = number_field(line, "ns_per_iter");
    row.speedup_vs_tape = number_field(line, "speedup_vs_tape");
    rows.push_back(row);
  }
  return rows;
}

int CheckRegress(const std::string& baseline_path, double tolerance,
                 double min_seconds) {
  if (HardwareCores() == 1) {
    std::cerr
        << "\n"
        << "============================================================\n"
        << "kernel_regress: SKIPPED — this machine exposes a single\n"
        << "effective core, so kernel wall-clock times are dominated by\n"
        << "whatever else shares the core and a 10% gate would flap.\n"
        << "Run on a multi-core box to enforce the baseline.\n"
        << "============================================================\n";
    return 77;  // ctest SKIP_RETURN_CODE
  }
  const std::vector<BenchRow> baseline = ParseBaseline(baseline_path);
  if (baseline.empty()) {
    std::cerr << "kernel_regress: cannot read baseline " << baseline_path
              << " (regenerate with tools/run_bench.sh --kernels)\n";
    return 1;
  }
  std::map<std::tuple<std::string, std::string, int>, double> baseline_ns;
  for (const BenchRow& row : baseline) {
    if (row.impl == "fused") {
      baseline_ns[{row.op, row.shape, row.threads}] = row.ns_per_iter;
    }
  }

  BenchFixtures fixtures;
  const std::vector<BenchCase> cases = BuildCases(&fixtures);
  int failures = 0;
  int compared = 0;
  for (const BenchCase& bench : cases) {
    for (const auto& [key, base_ns] : baseline_ns) {
      const auto& [op, shape, threads] = key;
      if (op != bench.op || shape != bench.shape) continue;
      if (threads > HardwareCores()) continue;  // oversubscribed baseline row
      SetGlobalThreads(threads);
      const double ns = TimeNsPerIter(bench.fused_fn, min_seconds);
      ++compared;
      if (ns > base_ns * (1.0 + tolerance)) {
        std::cerr << "kernel_regress FAIL: " << op << " " << shape
                  << " t=" << threads << " fused " << ns << " ns/iter vs "
                  << base_ns << " ns/iter baseline (tolerance "
                  << tolerance * 100 << "%)\n";
        ++failures;
      } else {
        std::cerr << "kernel_regress ok: " << op << " " << shape << " t="
                  << threads << " fused " << ns << " ns/iter (baseline "
                  << base_ns << ")\n";
      }
    }
  }
  SetGlobalThreads(0);
  if (compared == 0) {
    std::cerr << "kernel_regress: no comparable fused rows in "
              << baseline_path << "\n";
    return 1;
  }
  if (failures == 0) {
    std::cerr << "kernel_regress: PASS (" << compared
              << " fused rows within " << tolerance * 100
              << "% of baseline)\n";
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string emit_json;
  std::string check_regress;
  std::vector<int> thread_counts = {1};
  double min_seconds = 0.2;
  double regress_tolerance = 0.10;

  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (hire::StartsWith(arg, "--emit_json=")) {
      emit_json = arg.substr(std::strlen("--emit_json="));
    } else if (hire::StartsWith(arg, "--check_regress=")) {
      check_regress = arg.substr(std::strlen("--check_regress="));
    } else if (hire::StartsWith(arg, "--threads=")) {
      thread_counts.clear();
      for (const std::string& field :
           hire::Split(arg.substr(std::strlen("--threads=")), ',')) {
        thread_counts.push_back(
            static_cast<int>(hire::ParseInt64(hire::Trim(field))));
      }
    } else if (hire::StartsWith(arg, "--min_time=")) {
      min_seconds = hire::ParseDouble(arg.substr(std::strlen("--min_time=")));
    } else if (hire::StartsWith(arg, "--regress_tolerance=")) {
      regress_tolerance =
          hire::ParseDouble(arg.substr(std::strlen("--regress_tolerance=")));
    } else {
      passthrough.push_back(argv[i]);
    }
  }

  if (!check_regress.empty()) {
    return CheckRegress(check_regress, regress_tolerance, min_seconds);
  }
  if (!emit_json.empty()) {
    BenchFixtures fixtures;
    return WriteJson(RunCases(BuildCases(&fixtures), thread_counts,
                              min_seconds),
                     emit_json);
  }

  int passthrough_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&passthrough_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(passthrough_argc,
                                             passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
