// Reproduces Table VI: ablation of the three attention layers (MBU between
// users, MBI between items, MBA between attributes) on the MovieLens-1M
// profile, metrics @5 in all three cold-start scenarios.
//
// Expected shape (paper): the full model is best overall; the user-only
// variant (wo/ Item & Attribute) is the worst; item/attribute attention
// matters more than user attention.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "data/synthetic.h"
#include "graph/samplers.h"
#include "utils/string_utils.h"
#include "utils/table_printer.h"

int main() {
  using namespace hire;
  bench::BenchOptions options = bench::BenchOptions::FromEnv();
  const int64_t steps = options.hire_steps / 2;

  const data::Dataset dataset = data::GenerateSyntheticDataset(
      data::MovieLens1MProfile(options.dataset_scale), 20240601);
  std::cout << "Table VI reproduction — attention-layer ablation on "
               "MovieLens-1M profile (metrics @5, " << steps
            << " steps per variant)\n";

  struct Variant {
    std::string name;
    bool user, item, attr;
  };
  const std::vector<Variant> variants = {
      {"wo/ Item & Attribute", true, false, false},
      {"wo/ User & Attribute", false, true, false},
      {"wo/ User & Item", false, false, true},
      {"wo/ User", false, true, true},
      {"wo/ Item", true, false, true},
      {"wo/ Attribute", true, true, false},
      {"full model", true, true, true},
  };

  graph::NeighborhoodSampler sampler;
  const data::ColdStartScenario scenarios[] = {
      data::ColdStartScenario::kUserCold,
      data::ColdStartScenario::kItemCold,
      data::ColdStartScenario::kUserItemCold,
  };

  TablePrinter table({"Blocks", "UC Pre@5", "UC NDCG@5", "UC MAP@5",
                      "IC Pre@5", "IC NDCG@5", "IC MAP@5", "U&IC Pre@5",
                      "U&IC NDCG@5", "U&IC MAP@5"});
  for (const Variant& variant : variants) {
    std::vector<std::string> row{variant.name};
    for (const auto scenario : scenarios) {
      core::HireConfig config = options.hire_config;
      config.use_user_attention = variant.user;
      config.use_item_attention = variant.item;
      config.use_attr_attention = variant.attr;
      const metrics::RankingMetrics m = bench::RunHireVariant(
          dataset, scenario, config, sampler, steps, options.context_users,
          options.context_items, options, 7700);
      row.push_back(FormatDouble(m.precision, 4));
      row.push_back(FormatDouble(m.ndcg, 4));
      row.push_back(FormatDouble(m.map, 4));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}
