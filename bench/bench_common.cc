#include "bench/bench_common.h"

#include <cstdlib>
#include <memory>

#include "baselines/afn.h"
#include "baselines/deepfm.h"
#include "baselines/graphrec_lite.h"
#include "baselines/matrix_factorization.h"
#include "baselines/melu_fo.h"
#include "baselines/neumf.h"
#include "baselines/tanp_lite.h"
#include "baselines/pointwise_trainer.h"
#include "baselines/simple_baselines.h"
#include "baselines/wide_deep.h"
#include "core/hire_model.h"
#include "graph/bipartite_graph.h"
#include "graph/samplers.h"
#include "utils/check.h"
#include "utils/logging.h"
#include "utils/stopwatch.h"
#include "utils/string_utils.h"
#include "utils/table_printer.h"

namespace hire {
namespace bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  return raw != nullptr ? ParseDouble(raw) : fallback;
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  return raw != nullptr ? ParseInt64(raw) : fallback;
}

}  // namespace

BenchOptions BenchOptions::FromEnv() {
  BenchOptions options;
  // CPU-scale HIRE width; set HIRE_BENCH_PAPER_WIDTH=1 for the paper's
  // 8 heads x 16 with f = 16.
  options.hire_config.num_him_blocks = 3;
  options.hire_config.num_heads = 4;
  options.hire_config.head_dim = 8;
  options.hire_config.attr_embed_dim = 8;

  options.dataset_scale = EnvDouble("HIRE_BENCH_SCALE", options.dataset_scale);
  options.num_seeds = static_cast<int>(
      EnvInt("HIRE_BENCH_SEEDS", options.num_seeds));
  options.hire_steps = EnvInt("HIRE_BENCH_STEPS", options.hire_steps);
  options.baseline_steps =
      EnvInt("HIRE_BENCH_BASELINE_STEPS", options.baseline_steps);
  options.melu_iterations =
      EnvInt("HIRE_BENCH_MELU_ITERS", options.melu_iterations);
  options.max_eval_users =
      EnvInt("HIRE_BENCH_EVAL_USERS", options.max_eval_users);
  if (EnvInt("HIRE_BENCH_PAPER_WIDTH", 0) != 0) {
    options.hire_config.num_heads = 8;
    options.hire_config.head_dim = 16;
    options.hire_config.attr_embed_dim = 16;
    options.context_users = 32;
    options.context_items = 32;
  }
  return options;
}

void RunMethodOnce(const std::string& method, const data::Dataset& dataset,
                   const data::ColdStartSplit& split,
                   const BenchOptions& options, uint64_t seed,
                   MethodResult* result) {
  HIRE_CHECK(result != nullptr);
  result->method = method;

  const graph::BipartiteGraph train_graph(
      dataset.num_users(), dataset.num_items(), split.train_ratings);
  graph::NeighborhoodSampler sampler;

  core::EvalConfig eval_config;
  eval_config.top_ks = options.top_ks;
  eval_config.min_query_items = options.min_query_items;
  eval_config.max_eval_users = options.max_eval_users;
  eval_config.seed = seed ^ 0xE7A1u;

  Stopwatch train_watch;
  std::unique_ptr<core::RatingPredictor> predictor;
  // Keep trained models alive for the predictor's lifetime.
  std::unique_ptr<core::HireModel> hire_model;
  std::unique_ptr<baselines::PointwiseModel> pointwise_model;
  std::unique_ptr<baselines::MeLUFO> melu_model;
  std::unique_ptr<baselines::TaNPLite> tanp_model;

  if (method == "HIRE") {
    hire_model = std::make_unique<core::HireModel>(
        &dataset, options.hire_config, seed);
    core::TrainerConfig trainer;
    trainer.num_steps = options.hire_steps;
    trainer.batch_size = options.hire_batch_size;
    trainer.context_users = options.context_users;
    trainer.context_items = options.context_items;
    trainer.seed = seed + 1;
    core::TrainHire(hire_model.get(), train_graph, sampler, trainer);
    predictor = std::make_unique<core::HirePredictor>(
        hire_model.get(), &sampler, options.context_users,
        options.context_items, seed + 2);
  } else if (method == "MeLU-FO") {
    baselines::MeLUConfig config;
    config.meta_iterations = options.melu_iterations;
    config.seed = seed;
    melu_model = std::make_unique<baselines::MeLUFO>(&dataset, 8, config);
    melu_model->MetaTrain(split.train_ratings);
    // MeLUFO is its own predictor.
  } else if (method == "TaNP-lite") {
    baselines::TaNPConfig config;
    config.meta_iterations = options.melu_iterations * 2;
    config.seed = seed;
    tanp_model = std::make_unique<baselines::TaNPLite>(&dataset, 8, config);
    tanp_model->MetaTrain(split.train_ratings);
    // TaNPLite is its own predictor.
  } else if (method == "MF") {
    baselines::MfConfig config;
    config.seed = seed;
    auto mf = std::make_unique<baselines::MatrixFactorization>(&dataset,
                                                               config);
    mf->Fit(split.train_ratings);
    predictor = std::move(mf);
  } else if (method == "ItemKNN") {
    predictor = std::make_unique<baselines::ItemKnnBaseline>(
        &dataset, split.train_ratings);
  } else if (method == "Popularity") {
    predictor = std::make_unique<baselines::PopularityBaseline>(
        &dataset, split.train_ratings);
  } else {
    if (method == "NeuMF") {
      pointwise_model = std::make_unique<baselines::NeuMF>(&dataset, 8, seed);
    } else if (method == "Wide&Deep") {
      pointwise_model =
          std::make_unique<baselines::WideDeep>(&dataset, 8, seed);
    } else if (method == "DeepFM") {
      pointwise_model = std::make_unique<baselines::DeepFM>(&dataset, 8, seed);
    } else if (method == "AFN") {
      pointwise_model =
          std::make_unique<baselines::AFN>(&dataset, 8, /*log_neurons=*/8,
                                           seed);
    } else if (method == "GraphRec") {
      HIRE_CHECK(dataset.has_social_network())
          << "GraphRec needs a social network (Douban profile)";
      pointwise_model = std::make_unique<baselines::GraphRecLite>(
          &dataset, 8, /*max_neighbors=*/12, seed);
    } else {
      HIRE_CHECK(false) << "unknown method '" << method << "'";
    }
    baselines::PointwiseTrainConfig trainer;
    trainer.num_steps = options.baseline_steps;
    trainer.seed = seed + 1;
    baselines::FitPointwise(pointwise_model.get(), split.train_ratings,
                            &train_graph, trainer);
    predictor = std::make_unique<baselines::PointwisePredictor>(
        pointwise_model.get());
  }
  result->total_train_seconds += train_watch.ElapsedSeconds();

  core::RatingPredictor* active =
      melu_model != nullptr
          ? static_cast<core::RatingPredictor*>(melu_model.get())
      : tanp_model != nullptr
          ? static_cast<core::RatingPredictor*>(tanp_model.get())
          : predictor.get();
  const core::EvalResult eval =
      core::EvaluateColdStart(active, dataset, split, eval_config);

  for (const auto& [k, m] : eval.by_k) {
    result->precision[k].push_back(m.precision);
    result->ndcg[k].push_back(m.ndcg);
    result->map[k].push_back(m.map);
  }
  result->total_test_seconds += eval.predict_seconds;
}

metrics::RankingMetrics RunHireVariant(const data::Dataset& dataset,
                                       data::ColdStartScenario scenario,
                                       const core::HireConfig& hire_config,
                                       const graph::ContextSampler& sampler,
                                       int64_t steps, int64_t context_users,
                                       int64_t context_items,
                                       const BenchOptions& options,
                                       uint64_t seed) {
  Rng split_rng(seed);
  const data::ColdStartSplit split = data::MakeColdStartSplit(
      dataset, scenario, options.train_fraction, &split_rng);
  const graph::BipartiteGraph train_graph(
      dataset.num_users(), dataset.num_items(), split.train_ratings);

  core::HireModel model(&dataset, hire_config, seed + 1);
  core::TrainerConfig trainer;
  trainer.num_steps = steps;
  trainer.batch_size = options.hire_batch_size;
  trainer.context_users = context_users;
  trainer.context_items = context_items;
  trainer.seed = seed + 2;
  core::TrainHire(&model, train_graph, sampler, trainer);

  core::HirePredictor predictor(&model, &sampler, context_users,
                                context_items, seed + 3);
  core::EvalConfig eval_config;
  eval_config.top_ks = {5};
  eval_config.min_query_items = options.min_query_items;
  eval_config.max_eval_users = options.max_eval_users;
  eval_config.seed = seed + 4;
  const core::EvalResult result =
      core::EvaluateColdStart(&predictor, dataset, split, eval_config);
  return result.by_k.at(5);
}

std::string FormatMeanStd(const metrics::MeanStd& stats) {
  std::string std_digits = FormatDouble(stats.stddev, 4);
  // "0.0123" -> "(.0123)" like the paper's subscripts.
  return FormatDouble(stats.mean, 4) + "(" + std_digits.substr(1) + ")";
}

void PrintScenarioTable(const std::string& title,
                        const std::vector<MethodResult>& results,
                        const std::vector<int>& top_ks, std::ostream& out) {
  std::vector<std::string> headers{"Method"};
  for (int k : top_ks) {
    headers.push_back("Pre@" + std::to_string(k));
    headers.push_back("NDCG@" + std::to_string(k));
    headers.push_back("MAP@" + std::to_string(k));
  }
  TablePrinter table(headers);
  for (const MethodResult& result : results) {
    std::vector<std::string> row{result.method};
    for (int k : top_ks) {
      row.push_back(FormatMeanStd(metrics::Aggregate(result.precision.at(k))));
      row.push_back(FormatMeanStd(metrics::Aggregate(result.ndcg.at(k))));
      row.push_back(FormatMeanStd(metrics::Aggregate(result.map.at(k))));
    }
    table.AddRow(std::move(row));
  }
  out << "\n== " << title << " ==\n";
  table.Print(out);
}

void RunOverallComparison(const data::SyntheticConfig& profile,
                          const std::vector<std::string>& methods,
                          const BenchOptions& options, std::ostream& out) {
  const data::Dataset dataset =
      data::GenerateSyntheticDataset(profile, /*seed=*/20240601);
  out << "dataset: " << dataset.Summary() << "\n";
  out << "config: seeds=" << options.num_seeds
      << " hire_steps=" << options.hire_steps
      << " context=" << options.context_users << "x" << options.context_items
      << " eval_users=" << options.max_eval_users << "\n";

  const data::ColdStartScenario scenarios[] = {
      data::ColdStartScenario::kUserCold,
      data::ColdStartScenario::kItemCold,
      data::ColdStartScenario::kUserItemCold,
  };

  for (const data::ColdStartScenario scenario : scenarios) {
    std::vector<MethodResult> results;
    for (const std::string& method : methods) {
      MethodResult result;
      for (int s = 0; s < options.num_seeds; ++s) {
        const uint64_t seed = 1000 + static_cast<uint64_t>(s) * 7919;
        Rng split_rng(seed);
        const data::ColdStartSplit split = data::MakeColdStartSplit(
            dataset, scenario, options.train_fraction, &split_rng);
        HIRE_LOG(Info) << data::ScenarioName(scenario) << " / " << method
                       << " seed " << s;
        RunMethodOnce(method, dataset, split, options, seed + 13, &result);
      }
      results.push_back(std::move(result));
    }
    PrintScenarioTable(data::ScenarioName(scenario), results, options.top_ks,
                       out);
  }
}

}  // namespace bench
}  // namespace hire
