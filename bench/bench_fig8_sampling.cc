// Reproduces Fig. 8: impact of the context-sampling strategy (neighborhood
// vs. random vs. feature-similarity) on the MovieLens-1M profile, metrics
// @5 in all three cold-start scenarios. The strategy drives both training
// and test context construction.
//
// Expected shape (paper): neighborhood sampling beats random everywhere;
// feature-similarity is competitive for cold users but weaker when items
// are cold.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "data/synthetic.h"
#include "graph/samplers.h"
#include "utils/string_utils.h"
#include "utils/table_printer.h"

int main() {
  using namespace hire;
  bench::BenchOptions options = bench::BenchOptions::FromEnv();
  const int64_t steps = options.hire_steps / 2;

  const data::Dataset dataset = data::GenerateSyntheticDataset(
      data::MovieLens1MProfile(options.dataset_scale), 20240601);
  std::cout << "Fig. 8 reproduction — sampling strategies on MovieLens-1M "
               "profile (metrics @5, " << steps << " steps per variant)\n";

  graph::NeighborhoodSampler neighborhood;
  graph::RandomSampler random;
  graph::FeatureSimilaritySampler feature(&dataset);
  const std::vector<const graph::ContextSampler*> samplers = {
      &neighborhood, &random, &feature};

  const data::ColdStartScenario scenarios[] = {
      data::ColdStartScenario::kUserCold,
      data::ColdStartScenario::kItemCold,
      data::ColdStartScenario::kUserItemCold,
  };

  TablePrinter table({"Scenario", "Sampler", "Pre@5", "NDCG@5", "MAP@5"});
  for (const auto scenario : scenarios) {
    for (const graph::ContextSampler* sampler : samplers) {
      const metrics::RankingMetrics m = bench::RunHireVariant(
          dataset, scenario, options.hire_config, *sampler, steps,
          options.context_users, options.context_items, options, 8800);
      table.AddRow({data::ScenarioName(scenario), sampler->name(),
                    FormatDouble(m.precision, 4), FormatDouble(m.ndcg, 4),
                    FormatDouble(m.map, 4)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}
