#ifndef HIRE_BENCH_BENCH_COMMON_H_
#define HIRE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/evaluation.h"
#include "core/hire_config.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "metrics/ranking_metrics.h"

namespace hire {
namespace bench {

/// Shared configuration for the experiment harness. Values are CPU-scale
/// defaults; the environment variables HIRE_BENCH_SCALE, HIRE_BENCH_SEEDS,
/// HIRE_BENCH_STEPS and HIRE_BENCH_EVAL_USERS override them so the full
/// paper-scale run is one shell variable away.
struct BenchOptions {
  /// Multiplier on entity/rating counts of the dataset profiles.
  double dataset_scale = 1.0;
  /// Independent runs (split + init seeds); tables report mean(std).
  int num_seeds = 2;

  /// HIRE training budget (Algorithm 1 steps). ~600 steps is where HIRE
  /// overtakes the CF baselines on the CPU-scale profiles.
  int64_t hire_steps = 600;
  int64_t hire_batch_size = 2;
  int64_t context_users = 16;
  int64_t context_items = 16;

  /// Pointwise baseline training budget.
  int64_t baseline_steps = 500;
  /// MeLU meta-iterations.
  int64_t melu_iterations = 150;

  /// Evaluation protocol.
  int64_t max_eval_users = 40;
  int min_query_items = 5;
  std::vector<int> top_ks = {5, 7, 10};

  /// Warm fraction of entities (paper: 0.8 ML-1M, 0.7 others).
  double train_fraction = 0.8;

  /// CPU-scale HIRE model (paper-scale: 8 heads x 16, f = 16).
  core::HireConfig hire_config;

  /// Builds the defaults and applies environment overrides.
  static BenchOptions FromEnv();
};

/// One method's aggregated results on one scenario.
struct MethodResult {
  std::string method;
  /// Per-seed metric samples keyed by cut-off k.
  std::map<int, std::vector<double>> precision;
  std::map<int, std::vector<double>> ndcg;
  std::map<int, std::vector<double>> map;
  double total_test_seconds = 0.0;
  double total_train_seconds = 0.0;
};

/// Trains the named method on `split` and evaluates it through the shared
/// cold-start protocol. Known methods: "HIRE", "NeuMF", "Wide&Deep",
/// "DeepFM", "AFN", "GraphRec", "MeLU-FO", "ItemKNN", "Popularity".
/// Appends one sample per metric into `result`.
void RunMethodOnce(const std::string& method, const data::Dataset& dataset,
                   const data::ColdStartSplit& split,
                   const BenchOptions& options, uint64_t seed,
                   MethodResult* result);

/// Runs every method over every scenario with `options.num_seeds` seeds and
/// prints a paper-style table per scenario (rows = methods, columns =
/// Precision/NDCG/MAP @ {5,7,10} as mean(std)).
void RunOverallComparison(const data::SyntheticConfig& profile,
                          const std::vector<std::string>& methods,
                          const BenchOptions& options, std::ostream& out);

/// Trains one HIRE variant and evaluates it on one scenario; returns the
/// metrics at k = 5 (the cut-off the paper uses for its sensitivity and
/// ablation plots). `sampler` drives both training-context construction and
/// test-context construction.
metrics::RankingMetrics RunHireVariant(const data::Dataset& dataset,
                                       data::ColdStartScenario scenario,
                                       const core::HireConfig& hire_config,
                                       const graph::ContextSampler& sampler,
                                       int64_t steps, int64_t context_users,
                                       int64_t context_items,
                                       const BenchOptions& options,
                                       uint64_t seed);

/// Formats "0.1234(.0056)" like the paper's cells.
std::string FormatMeanStd(const metrics::MeanStd& stats);

/// Renders one scenario's results as a table.
void PrintScenarioTable(const std::string& title,
                        const std::vector<MethodResult>& results,
                        const std::vector<int>& top_ks, std::ostream& out);

}  // namespace bench
}  // namespace hire

#endif  // HIRE_BENCH_BENCH_COMMON_H_
