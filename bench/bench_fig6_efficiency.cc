// Reproduces Fig. 6: total test (prediction) time per method, user
// cold-start scenario. Each method is trained once per dataset profile and
// its wall-clock prediction time over the evaluation set is reported.
//
// Expected shape (paper): the CF baselines are fastest (a pair in, a score
// out); HIRE pays for multi-layer MHSA but stays mid-pack; the
// meta-learning baseline is slowest because of per-user test-time
// adaptation.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "data/synthetic.h"
#include "utils/string_utils.h"
#include "utils/table_printer.h"

int main() {
  using namespace hire;
  bench::BenchOptions options = bench::BenchOptions::FromEnv();
  options.num_seeds = 1;

  struct Profile {
    std::string name;
    data::SyntheticConfig config;
    double train_fraction;
  };
  const std::vector<Profile> profiles = {
      {"MovieLens-1M", data::MovieLens1MProfile(options.dataset_scale), 0.8},
      {"Bookcrossing", data::BookcrossingProfile(options.dataset_scale), 0.7},
      {"Douban", data::DoubanProfile(options.dataset_scale), 0.7},
  };

  std::cout << "Fig. 6 reproduction — total test time (seconds), user "
               "cold-start\n";
  TablePrinter table({"Method", "MovieLens-1M", "Bookcrossing", "Douban",
                      "Total"});

  const std::vector<std::string> methods = {
      "HIRE", "NeuMF", "Wide&Deep", "DeepFM", "AFN", "GraphRec", "MeLU-FO",
      "ItemKNN", "Popularity"};

  // Collect per-method, per-dataset test seconds.
  std::vector<std::vector<double>> seconds(
      methods.size(), std::vector<double>(profiles.size(), -1.0));

  for (size_t p = 0; p < profiles.size(); ++p) {
    const data::Dataset dataset =
        data::GenerateSyntheticDataset(profiles[p].config, 20240601);
    Rng split_rng(4242);
    const data::ColdStartSplit split = data::MakeColdStartSplit(
        dataset, data::ColdStartScenario::kUserCold,
        profiles[p].train_fraction, &split_rng);
    for (size_t m = 0; m < methods.size(); ++m) {
      if (methods[m] == "GraphRec" && !dataset.has_social_network()) {
        continue;  // paper: GraphRec applies to Douban only
      }
      bench::MethodResult result;
      bench::RunMethodOnce(methods[m], dataset, split, options, 5150,
                           &result);
      seconds[m][p] = result.total_test_seconds;
    }
  }

  for (size_t m = 0; m < methods.size(); ++m) {
    std::vector<std::string> row{methods[m]};
    double total = 0.0;
    for (size_t p = 0; p < profiles.size(); ++p) {
      if (seconds[m][p] < 0) {
        row.push_back("n/a");
      } else {
        row.push_back(FormatDouble(seconds[m][p], 3));
        total += seconds[m][p];
      }
    }
    row.push_back(FormatDouble(total, 3));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}
