// Reproduces Table III: overall performance in the three cold-start
// scenarios on the MovieLens-1M profile. Methods: HIRE vs. the CF baselines
// (NeuMF, Wide&Deep, DeepFM, AFN), the meta-learning baseline (MeLU-FO) and
// the non-parametric references (ItemKNN, Popularity).
//
// Expected shape (paper): HIRE wins nearly every cell; the meta-learner is
// the second tier; the CF baselines trail, especially with cold items.

#include <iostream>

#include "bench/bench_common.h"
#include "data/synthetic.h"

int main() {
  using namespace hire;
  bench::BenchOptions options = bench::BenchOptions::FromEnv();
  const data::SyntheticConfig profile =
      data::MovieLens1MProfile(options.dataset_scale);

  std::cout << "Table III reproduction — MovieLens-1M profile\n";
  bench::RunOverallComparison(
      profile,
      {"HIRE", "NeuMF", "Wide&Deep", "DeepFM", "AFN", "MeLU-FO", "ItemKNN",
       "Popularity"},
      options, std::cout);
  return 0;
}
