// Reproduces Fig. 9 (case study): trains HIRE on the MovieLens-1M profile,
// captures the attention weights of the last HIM block on one prediction
// context, and renders the three attention matrices as ASCII heatmaps:
//   (a) MBU — attention among users, for one item view;
//   (b) MBI — attention among items, for one user view;
//   (c/d) MBA — attention among attribute slots for a high-rated and a
//         low-rated user-item pair.
// It also reports the rating-consistency check the paper performs: the
// strongest user-user attention pairs should have closer ground-truth
// ratings on the shared item than average pairs.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/attention_analysis.h"
#include "core/hire_model.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "graph/context_builder.h"
#include "graph/samplers.h"
#include "tensor/tensor.h"
#include "utils/string_utils.h"

namespace {

using namespace hire;
using core::AverageHeads;

void PrintHeatmap(const std::string& title, const Tensor& attention) {
  float max_value = 0.0f;
  for (int64_t i = 0; i < attention.size(); ++i) {
    max_value = std::max(max_value, attention.flat(i));
  }
  std::cout << "\n" << title << " (max weight " << FormatDouble(max_value, 3)
            << ")\n" << core::RenderHeatmap(attention);
}

}  // namespace

int main() {
  bench::BenchOptions options = bench::BenchOptions::FromEnv();
  const data::Dataset dataset = data::GenerateSyntheticDataset(
      data::MovieLens1MProfile(options.dataset_scale), 20240601);
  std::cout << "Fig. 9 reproduction — attention case study on MovieLens-1M "
               "profile\n";

  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  core::HireModel model(&dataset, options.hire_config, 1234);
  graph::NeighborhoodSampler sampler;
  core::TrainerConfig trainer;
  trainer.num_steps = options.hire_steps / 2;
  trainer.batch_size = options.hire_batch_size;
  trainer.context_users = options.context_users;
  trainer.context_items = options.context_items;
  trainer.seed = 77;
  core::TrainHire(&model, graph, sampler, trainer);

  // Build one context of 16 users x 16 items and capture attention.
  Rng rng(99);
  graph::PredictionContext context =
      graph::BuildTrainingContext(graph, sampler, 16, 16, 0.3, &rng);
  model.EnableAttentionCapture(true);
  const Tensor predicted = model.Predict(context);
  const core::HimBlock& last_him =
      model.him_block(options.hire_config.num_him_blocks - 1);

  // (a) MBU for the first item view.
  const Tensor mbu = AverageHeads(last_him.captured_user_attention(), 0);
  PrintHeatmap("(a) MBU: attention among 16 users, view of item " +
                   std::to_string(context.items[0]),
               mbu);

  // (b) MBI for the first user view.
  const Tensor mbi = AverageHeads(last_him.captured_item_attention(), 0);
  PrintHeatmap("(b) MBI: attention among 16 items, view of user " +
                   std::to_string(context.users[0]),
               mbi);

  // (c)/(d) MBA for a high-rated and a low-rated observed pair.
  int64_t high_cell = -1;
  int64_t low_cell = -1;
  for (int64_t flat = 0; flat < context.observed_mask.size(); ++flat) {
    if (context.observed_mask.flat(flat) == 0.0f) continue;
    const float value = context.observed_ratings.flat(flat);
    if (value >= dataset.RelevanceThreshold() && high_cell < 0) {
      high_cell = flat;
    }
    if (value <= 2.0f && low_cell < 0) low_cell = flat;
  }
  const int64_t h = model.him_block(0).captured_attribute_attention().shape(2);
  if (high_cell >= 0) {
    const Tensor mba =
        AverageHeads(last_him.captured_attribute_attention(), high_cell);
    PrintHeatmap("(c) MBA: attribute attention for a HIGH-rated pair (rating " +
                     FormatDouble(context.observed_ratings.flat(high_cell), 0) +
                     ")",
                 mba);
  }
  if (low_cell >= 0) {
    const Tensor mba =
        AverageHeads(last_him.captured_attribute_attention(), low_cell);
    PrintHeatmap("(d) MBA: attribute attention for a LOW-rated pair (rating " +
                     FormatDouble(context.observed_ratings.flat(low_cell), 0) +
                     ")",
                 mba);
  }

  // Rating-consistency analysis: for the strongest off-diagonal user-user
  // attention entries, compare the two users' ground-truth ratings on the
  // viewed item against the average disagreement.
  const std::vector<core::AttentionEdge> edges =
      core::TopAttentionEdges(mbu, 16 * 15);

  std::cout << "\nRating consistency for item " << context.items[0]
            << " (top user-user attention pairs):\n";
  int shown = 0;
  for (const core::AttentionEdge& edge : edges) {
    const auto r_from =
        graph.GetRating(context.users[static_cast<size_t>(edge.from)],
                        context.items[0]);
    const auto r_to = graph.GetRating(
        context.users[static_cast<size_t>(edge.to)], context.items[0]);
    if (!r_from.has_value() || !r_to.has_value()) continue;
    std::cout << "  user " << context.users[static_cast<size_t>(edge.from)]
              << " attends to user "
              << context.users[static_cast<size_t>(edge.to)] << " (weight "
              << FormatDouble(edge.weight, 3) << "): actual ratings "
              << FormatDouble(*r_from, 0) << " vs " << FormatDouble(*r_to, 0)
              << ", predicted "
              << FormatDouble(predicted.at(edge.from, 0), 2) << " vs "
              << FormatDouble(predicted.at(edge.to, 0), 2) << "\n";
    if (++shown >= 5) break;
  }
  if (shown == 0) {
    std::cout << "  (no attended pair with two observed ratings on this "
                 "item)\n";
  }
  return 0;
}
