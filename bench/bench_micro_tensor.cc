// Micro-benchmarks of the computational substrate: GEMM kernels, softmax,
// a full MHSA layer forward, and the autograd round trip. These bound what
// the training loop can achieve on one core and make substrate regressions
// visible.

#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "nn/multi_head_self_attention.h"
#include "tensor/ops.h"
#include "tensor/random.h"

namespace {

using namespace hire;

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = RandomNormal({n, n}, 0, 1, &rng);
  Tensor b = RandomNormal({n, n}, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->RangeMultiplier(2)->Range(16, 256);

void BM_BatchedMatMul(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(2);
  Tensor a = RandomNormal({batch, 32, 32}, 0, 1, &rng);
  Tensor b = RandomNormal({batch, 32, 32}, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::BatchedMatMul(a, b));
  }
}
BENCHMARK(BM_BatchedMatMul)->RangeMultiplier(2)->Range(1, 64);

void BM_Softmax(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(3);
  Tensor a = RandomNormal({rows, 64}, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Softmax(a));
  }
}
BENCHMARK(BM_Softmax)->RangeMultiplier(4)->Range(16, 1024);

void BM_MhsaForward(benchmark::State& state) {
  const int64_t tokens = state.range(0);
  Rng rng(4);
  nn::MhsaConfig config;
  config.embed_dim = 64;
  config.num_heads = 4;
  nn::MultiHeadSelfAttention mhsa(config, &rng);
  mhsa.SetTraining(false);
  ag::Variable x(RandomNormal({8, tokens, 64}, 0, 1, &rng), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mhsa.Forward(x));
  }
}
BENCHMARK(BM_MhsaForward)->RangeMultiplier(2)->Range(8, 64);

void BM_AutogradForwardBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(5);
  ag::Variable w(RandomNormal({n, n}, 0, 0.1f, &rng), true);
  ag::Variable x(RandomNormal({n, n}, 0, 1, &rng), false);
  for (auto _ : state) {
    w.ZeroGrad();
    ag::Variable loss = ag::MeanAll(ag::Square(ag::MatMul(x, w)));
    loss.Backward();
    benchmark::DoNotOptimize(w.grad());
  }
}
BENCHMARK(BM_AutogradForwardBackward)->RangeMultiplier(2)->Range(16, 128);

void BM_EmbeddingLookup(benchmark::State& state) {
  const int64_t count = state.range(0);
  Rng rng(6);
  ag::Variable table(RandomNormal({1000, 16}, 0, 1, &rng), true);
  std::vector<int64_t> indices(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    indices[static_cast<size_t>(i)] = rng.UniformInt(1000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ag::EmbeddingLookup(table, indices));
  }
}
BENCHMARK(BM_EmbeddingLookup)->RangeMultiplier(4)->Range(64, 4096);

}  // namespace

BENCHMARK_MAIN();
