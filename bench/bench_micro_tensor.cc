// Micro-benchmarks of the computational substrate: GEMM kernels, softmax,
// a full MHSA layer forward, and the autograd round trip. These bound what
// the training loop can achieve and make substrate regressions visible.
//
// Two modes:
//   * default: the google-benchmark suite below.
//   * --emit_json=PATH [--threads=1,2,8] [--min_time=0.2]: a before/after
//     harness that times the seed scalar kernels (re-implemented here
//     verbatim) against the blocked/threaded ops at each requested thread
//     count and writes machine-readable rows (op, shape, impl, threads,
//     ns/iter, GFLOP/s, speedup vs seed) to PATH. tools/run_bench.sh wraps
//     this mode and checks BENCH_tensor.json in at the repo root.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "nn/multi_head_self_attention.h"
#include "tensor/ops.h"
#include "tensor/random.h"
#include "utils/stopwatch.h"
#include "utils/string_utils.h"
#include "utils/parallel.h"

namespace {

using namespace hire;

// ---------------------------------------------------------------------------
// google-benchmark suite (default mode).
// ---------------------------------------------------------------------------

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = RandomNormal({n, n}, 0, 1, &rng);
  Tensor b = RandomNormal({n, n}, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->RangeMultiplier(2)->Range(16, 512);

void BM_BatchedMatMul(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(2);
  Tensor a = RandomNormal({batch, 32, 32}, 0, 1, &rng);
  Tensor b = RandomNormal({batch, 32, 32}, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::BatchedMatMul(a, b));
  }
}
BENCHMARK(BM_BatchedMatMul)->RangeMultiplier(2)->Range(1, 64);

void BM_Softmax(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(3);
  Tensor a = RandomNormal({rows, 64}, 0, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Softmax(a));
  }
}
BENCHMARK(BM_Softmax)->RangeMultiplier(4)->Range(16, 1024);

void BM_MhsaForward(benchmark::State& state) {
  const int64_t tokens = state.range(0);
  Rng rng(4);
  nn::MhsaConfig config;
  config.embed_dim = 64;
  config.num_heads = 4;
  nn::MultiHeadSelfAttention mhsa(config, &rng);
  mhsa.SetTraining(false);
  ag::Variable x(RandomNormal({8, tokens, 64}, 0, 1, &rng), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mhsa.Forward(x));
  }
}
BENCHMARK(BM_MhsaForward)->RangeMultiplier(2)->Range(8, 64);

void BM_AutogradForwardBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(5);
  ag::Variable w(RandomNormal({n, n}, 0, 0.1f, &rng), true);
  ag::Variable x(RandomNormal({n, n}, 0, 1, &rng), false);
  for (auto _ : state) {
    w.ZeroGrad();
    ag::Variable loss = ag::MeanAll(ag::Square(ag::MatMul(x, w)));
    loss.Backward();
    benchmark::DoNotOptimize(w.grad());
  }
}
BENCHMARK(BM_AutogradForwardBackward)->RangeMultiplier(2)->Range(16, 128);

void BM_EmbeddingLookup(benchmark::State& state) {
  const int64_t count = state.range(0);
  Rng rng(6);
  ag::Variable table(RandomNormal({1000, 16}, 0, 1, &rng), true);
  std::vector<int64_t> indices(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    indices[static_cast<size_t>(i)] = rng.UniformInt(1000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ag::EmbeddingLookup(table, indices));
  }
}
BENCHMARK(BM_EmbeddingLookup)->RangeMultiplier(4)->Range(64, 4096);

// ---------------------------------------------------------------------------
// JSON before/after harness.
// ---------------------------------------------------------------------------

// The seed's scalar kernels, reproduced exactly (including the `a_ip == 0`
// skip) as the "before" baseline.
void SeedGemm(const float* a, const float* b, float* c, int64_t n, int64_t k,
              int64_t m) {
  for (int64_t i = 0; i < n; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * m;
    for (int64_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      if (a_ip == 0.0f) continue;
      const float* b_row = b + p * m;
      for (int64_t j = 0; j < m; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

void SeedGemmTransposedB(const float* a, const float* b, float* c, int64_t n,
                         int64_t k, int64_t m) {
  for (int64_t i = 0; i < n; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * m;
    for (int64_t j = 0; j < m; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] += acc;
    }
  }
}

Tensor SeedSoftmax(const Tensor& a) {
  const int64_t d = a.shape(-1);
  const int64_t rows = a.size() / d;
  Tensor out(a.shape());
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = a.data() + r * d;
    float* dst = out.data() + r * d;
    float row_max = src[0];
    for (int64_t j = 1; j < d; ++j) row_max = std::max(row_max, src[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      dst[j] = std::exp(src[j] - row_max);
      denom += dst[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < d; ++j) dst[j] *= inv;
  }
  return out;
}

Tensor SeedAdd(const Tensor& a, const Tensor& b) {
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.size(); ++i) po[i] = pa[i] + pb[i];
  return out;
}

Tensor SeedSumAxis0(const Tensor& a) {
  const int64_t extent = a.shape(0);
  const int64_t inner = a.size() / extent;
  Tensor out({inner});
  for (int64_t e = 0; e < extent; ++e) {
    const float* src = a.data() + e * inner;
    float* dst = out.data();
    for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
  }
  return out;
}

struct BenchRow {
  std::string op;
  std::string shape;
  std::string impl;  // "seed" or "hire"
  int threads = 1;            // requested via SetGlobalThreads
  int effective_threads = 1;  // min(requested, hardware cores)
  bool oversubscribed = false;
  double ns_per_iter = 0.0;
  double gflops = 0.0;
  double speedup_vs_seed = 0.0;
};

int HardwareCores() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Times `fn` with one warmup call, then iterates until `min_seconds` of wall
// time or 200 iterations, whichever first. Returns ns/iter.
double TimeNsPerIter(const std::function<void()>& fn, double min_seconds) {
  fn();  // warmup
  Stopwatch stopwatch;
  int iters = 0;
  do {
    fn();
    ++iters;
  } while (stopwatch.ElapsedSeconds() < min_seconds && iters < 200);
  return stopwatch.ElapsedSeconds() * 1e9 / iters;
}

// One benchmark case: a seed-kernel closure and an ops closure, measured at
// every requested thread count.
struct BenchCase {
  std::string op;
  std::string shape;
  double flops_per_iter;
  std::function<void()> seed_fn;
  std::function<void()> hire_fn;
};

std::vector<BenchRow> RunCases(const std::vector<BenchCase>& cases,
                               const std::vector<int>& thread_counts,
                               double min_seconds) {
  std::vector<BenchRow> rows;
  for (const BenchCase& bench : cases) {
    SetGlobalThreads(1);
    const double seed_ns = TimeNsPerIter(bench.seed_fn, min_seconds);
    BenchRow seed_row;
    seed_row.op = bench.op;
    seed_row.shape = bench.shape;
    seed_row.impl = "seed";
    seed_row.threads = 1;
    seed_row.ns_per_iter = seed_ns;
    seed_row.gflops = bench.flops_per_iter / seed_ns;
    seed_row.speedup_vs_seed = 1.0;
    rows.push_back(seed_row);
    std::cerr << bench.op << " " << bench.shape << " seed: " << seed_ns
              << " ns/iter (" << seed_row.gflops << " GFLOP/s)\n";

    for (const int threads : thread_counts) {
      SetGlobalThreads(threads);
      const double ns = TimeNsPerIter(bench.hire_fn, min_seconds);
      BenchRow row;
      row.op = bench.op;
      row.shape = bench.shape;
      row.impl = "hire";
      row.threads = threads;
      row.effective_threads = std::min(threads, HardwareCores());
      row.oversubscribed = threads > HardwareCores();
      row.ns_per_iter = ns;
      row.gflops = bench.flops_per_iter / ns;
      row.speedup_vs_seed = seed_ns / ns;
      rows.push_back(row);
      std::cerr << bench.op << " " << bench.shape << " hire t=" << threads
                << ": " << ns << " ns/iter (" << row.gflops
                << " GFLOP/s, x" << row.speedup_vs_seed << ")"
                << (row.oversubscribed ? " [OVERSUBSCRIBED]" : "") << "\n";
    }
  }
  SetGlobalThreads(0);
  return rows;
}

// Satellite check: fails (returns nonzero) when any threaded hire row whose
// requested thread count fits within the machine's cores is slower than the
// single-thread hire row for the same (op, shape) beyond `tolerance`
// (fractional, e.g. 0.05 = 5%). Skipped with a message when the machine has
// one effective core: every threaded row is oversubscribed there and only
// dispatch noise would be measured.
int CheckScaling(const std::vector<BenchRow>& rows, double tolerance) {
  if (HardwareCores() == 1) {
    std::cerr << "check_scaling: skipped (effective cores == 1; all threaded "
                 "rows are oversubscribed)\n";
    return 0;
  }
  std::map<std::pair<std::string, std::string>, double> serial_ns;
  for (const BenchRow& row : rows) {
    if (row.impl == "hire" && row.threads == 1) {
      serial_ns[{row.op, row.shape}] = row.ns_per_iter;
    }
  }
  int failures = 0;
  for (const BenchRow& row : rows) {
    if (row.impl != "hire" || row.threads <= 1 || row.oversubscribed) continue;
    auto it = serial_ns.find({row.op, row.shape});
    if (it == serial_ns.end()) continue;
    if (row.ns_per_iter > it->second * (1.0 + tolerance)) {
      std::cerr << "check_scaling FAIL: " << row.op << " " << row.shape
                << " threads=" << row.threads << " took " << row.ns_per_iter
                << " ns/iter vs " << it->second
                << " ns/iter serial (tolerance " << tolerance * 100 << "%)\n";
      ++failures;
    }
  }
  if (failures == 0) {
    std::cerr << "check_scaling: OK (no threaded row slower than serial "
                 "beyond tolerance)\n";
  }
  return failures == 0 ? 0 : 1;
}

int RunJsonHarness(const std::string& out_path,
                   const std::vector<int>& thread_counts, double min_seconds,
                   bool check_scaling, double scaling_tolerance) {
  Rng rng(42);
  std::vector<BenchCase> cases;

  for (const int64_t n : {128, 256, 512}) {
    Tensor a = RandomNormal({n, n}, 0, 1, &rng);
    Tensor b = RandomNormal({n, n}, 0, 1, &rng);
    std::ostringstream shape;
    shape << n << "x" << n << "x" << n;
    cases.push_back(
        {"gemm", shape.str(), 2.0 * n * n * n,
         [a, b, n] {
           Tensor c({n, n});
           SeedGemm(a.data(), b.data(), c.data(), n, n, n);
           benchmark::DoNotOptimize(c.data());
         },
         [a, b] { benchmark::DoNotOptimize(ops::MatMul(a, b)); }});
  }

  {
    const int64_t n = 256;
    Tensor a = RandomNormal({n, n}, 0, 1, &rng);
    Tensor bt = RandomNormal({n, n}, 0, 1, &rng);
    cases.push_back(
        {"gemm_tb", "256x256x256", 2.0 * n * n * n,
         [a, bt, n] {
           Tensor c({n, n});
           SeedGemmTransposedB(a.data(), bt.data(), c.data(), n, n, n);
           benchmark::DoNotOptimize(c.data());
         },
         [a, bt] {
           benchmark::DoNotOptimize(ops::MatMulTransposedB(a, bt));
         }});
  }

  {
    const int64_t batch = 64, t = 64;
    Tensor a = RandomNormal({batch, t, t}, 0, 1, &rng);
    Tensor b = RandomNormal({batch, t, t}, 0, 1, &rng);
    cases.push_back(
        {"batched_gemm", "64x64x64x64", 2.0 * batch * t * t * t,
         [a, b, batch, t] {
           Tensor c({batch, t, t});
           for (int64_t s = 0; s < batch; ++s) {
             SeedGemm(a.data() + s * t * t, b.data() + s * t * t,
                      c.data() + s * t * t, t, t, t);
           }
           benchmark::DoNotOptimize(c.data());
         },
         [a, b] { benchmark::DoNotOptimize(ops::BatchedMatMul(a, b)); }});
  }

  {
    const int64_t rows = 8192, d = 128;
    Tensor a = RandomNormal({rows, d}, 0, 1, &rng);
    // ~4 "flops" per element: max, subtract+exp, accumulate, scale.
    cases.push_back({"softmax", "8192x128", 4.0 * rows * d,
                     [a] { benchmark::DoNotOptimize(SeedSoftmax(a)); },
                     [a] { benchmark::DoNotOptimize(ops::Softmax(a)); }});
  }

  {
    const int64_t n = 1 << 22;
    Tensor a = RandomNormal({n}, 0, 1, &rng);
    Tensor b = RandomNormal({n}, 0, 1, &rng);
    cases.push_back({"add", "4194304", static_cast<double>(n),
                     [a, b] { benchmark::DoNotOptimize(SeedAdd(a, b)); },
                     [a, b] { benchmark::DoNotOptimize(ops::Add(a, b)); }});
  }

  {
    const int64_t rows = 4096, d = 1024;
    Tensor a = RandomNormal({rows, d}, 0, 1, &rng);
    cases.push_back({"sum_axis0", "4096x1024",
                     static_cast<double>(rows) * d,
                     [a] { benchmark::DoNotOptimize(SeedSumAxis0(a)); },
                     [a] { benchmark::DoNotOptimize(ops::Sum(a, 0)); }});
  }

  bool any_oversubscribed = false;
  for (const int threads : thread_counts) {
    if (threads > HardwareCores()) any_oversubscribed = true;
  }
  if (any_oversubscribed) {
    std::cerr << "\n"
              << "============================================================\n"
              << "WARNING: requested thread counts exceed the "
              << HardwareCores() << " hardware core(s) on this machine.\n"
              << "Oversubscribed rows measure scheduling overhead, not\n"
              << "parallel speedup; they are tagged \"oversubscribed\" in the\n"
              << "JSON output and must not be read as scaling results.\n"
              << "============================================================\n"
              << "\n";
  }

  const std::vector<BenchRow> rows =
      RunCases(cases, thread_counts, min_seconds);

  std::ofstream out(out_path);
  if (!out.is_open()) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"generated_by\": \"bench_micro_tensor --emit_json\",\n"
      << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n"
      << "  \"oversubscribed\": " << (any_oversubscribed ? "true" : "false")
      << ",\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    out << "    {\"op\": \"" << row.op << "\", \"shape\": \"" << row.shape
        << "\", \"impl\": \"" << row.impl << "\", \"threads\": "
        << row.threads << ", \"effective_threads\": " << row.effective_threads
        << ", \"oversubscribed\": " << (row.oversubscribed ? "true" : "false")
        << ", \"ns_per_iter\": "
        << static_cast<int64_t>(row.ns_per_iter) << ", \"gflops\": "
        << row.gflops << ", \"speedup_vs_seed\": " << row.speedup_vs_seed
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cerr << "wrote " << rows.size() << " rows to " << out_path << "\n";

  if (check_scaling) {
    return CheckScaling(rows, scaling_tolerance);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string emit_json;
  std::vector<int> thread_counts = {1, 2, 8};
  double min_seconds = 0.2;
  bool check_scaling = false;
  double scaling_tolerance = 0.05;

  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (hire::StartsWith(arg, "--emit_json=")) {
      emit_json = arg.substr(std::strlen("--emit_json="));
    } else if (hire::StartsWith(arg, "--threads=")) {
      thread_counts.clear();
      for (const std::string& field :
           hire::Split(arg.substr(std::strlen("--threads=")), ',')) {
        thread_counts.push_back(
            static_cast<int>(hire::ParseInt64(hire::Trim(field))));
      }
    } else if (hire::StartsWith(arg, "--min_time=")) {
      min_seconds = hire::ParseDouble(arg.substr(std::strlen("--min_time=")));
    } else if (arg == "--check_scaling") {
      check_scaling = true;
    } else if (hire::StartsWith(arg, "--check_scaling=")) {
      check_scaling = true;
      scaling_tolerance =
          hire::ParseDouble(arg.substr(std::strlen("--check_scaling=")));
    } else {
      passthrough.push_back(argv[i]);
    }
  }

  if (!emit_json.empty()) {
    return RunJsonHarness(emit_json, thread_counts, min_seconds, check_scaling,
                          scaling_tolerance);
  }

  int passthrough_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&passthrough_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(passthrough_argc,
                                             passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
