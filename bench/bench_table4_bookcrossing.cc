// Reproduces Table IV: overall performance in the three cold-start
// scenarios on the Bookcrossing profile (1-10 rating scale, one user and
// one item attribute). Same method set as Table III.

#include <iostream>

#include "bench/bench_common.h"
#include "data/synthetic.h"

int main() {
  using namespace hire;
  bench::BenchOptions options = bench::BenchOptions::FromEnv();
  options.train_fraction = 0.7;  // paper: 70/30 split for Bookcrossing
  const data::SyntheticConfig profile =
      data::BookcrossingProfile(options.dataset_scale);

  std::cout << "Table IV reproduction — Bookcrossing profile\n";
  bench::RunOverallComparison(
      profile,
      {"HIRE", "NeuMF", "Wide&Deep", "DeepFM", "AFN", "MeLU-FO", "ItemKNN",
       "Popularity"},
      options, std::cout);
  return 0;
}
