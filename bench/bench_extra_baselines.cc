// Extension experiment (beyond the paper's tables): evaluates the two
// additional baselines this library provides — TaNP-lite, a neural-process
// meta-learner with amortized (gradient-free) test-time adaptation standing
// in for the paper's TaNP, and classic biased matrix factorization with
// test-time folding-in — against the non-parametric references on the
// MovieLens-1M profile, all three cold-start scenarios.
//
// Expected shape: TaNP-lite lands in the meta-learning tier (clearly above
// the non-parametric references, competitive with MeLU-FO); MF holds up
// where the target entity has support ratings to fold in (user-cold) and
// degrades when items are cold (their factors are untrained).

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "data/synthetic.h"

int main() {
  using namespace hire;
  bench::BenchOptions options = bench::BenchOptions::FromEnv();
  options.num_seeds = 1;
  const data::SyntheticConfig profile =
      data::MovieLens1MProfile(options.dataset_scale);

  std::cout << "Extension — additional baselines (TaNP-lite, MF) on "
               "MovieLens-1M profile\n";
  bench::RunOverallComparison(
      profile, {"TaNP-lite", "MF", "MeLU-FO", "ItemKNN", "Popularity"},
      options, std::cout);
  return 0;
}
