// Reproduces Fig. 7: sensitivity of HIRE to (a-c) the number of HIM blocks
// K in {1, 2, 3, 4} and (d-f) the context size n = m, on the MovieLens-1M
// profile, reporting Precision/NDCG/MAP at 5 for all three cold-start
// scenarios.
//
// Expected shape (paper): K = 3 about optimal with degradation at 4
// (overfitting); context-size effects are non-monotonic.
//
// The default context sweep covers {8, 16, 32} so the binary finishes on
// one CPU core; set HIRE_BENCH_FULL_SWEEP=1 to extend it to the paper's
// {16, 32, 48, 64}.

#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "data/synthetic.h"
#include "graph/samplers.h"
#include "utils/string_utils.h"
#include "utils/table_printer.h"

int main() {
  using namespace hire;
  bench::BenchOptions options = bench::BenchOptions::FromEnv();
  const int64_t steps = options.hire_steps / 2;  // sweep budget per variant

  const data::Dataset dataset = data::GenerateSyntheticDataset(
      data::MovieLens1MProfile(options.dataset_scale), 20240601);
  std::cout << "Fig. 7 reproduction — sensitivity analysis on MovieLens-1M "
               "profile (metrics @5, " << steps << " steps per variant)\n";
  std::cout << "dataset: " << dataset.Summary() << "\n";

  graph::NeighborhoodSampler sampler;
  const data::ColdStartScenario scenarios[] = {
      data::ColdStartScenario::kUserCold,
      data::ColdStartScenario::kItemCold,
      data::ColdStartScenario::kUserItemCold,
  };

  // --- Fig. 7(a-c): number of HIM blocks. ---
  {
    TablePrinter table({"Scenario", "K", "Pre@5", "NDCG@5", "MAP@5"});
    for (const auto scenario : scenarios) {
      for (int num_him : {1, 2, 3, 4}) {
        core::HireConfig config = options.hire_config;
        config.num_him_blocks = num_him;
        const metrics::RankingMetrics m = bench::RunHireVariant(
            dataset, scenario, config, sampler, steps, options.context_users,
            options.context_items, options, 9000 + num_him);
        table.AddRow({data::ScenarioName(scenario), std::to_string(num_him),
                      FormatDouble(m.precision, 4), FormatDouble(m.ndcg, 4),
                      FormatDouble(m.map, 4)});
      }
      table.AddSeparator();
    }
    std::cout << "\n== Fig. 7(a-c): number of HIM blocks ==\n";
    table.Print(std::cout);
  }

  // --- Fig. 7(d-f): context size n = m. ---
  {
    std::vector<int64_t> sizes{8, 16, 32};
    if (std::getenv("HIRE_BENCH_FULL_SWEEP") != nullptr) {
      sizes = {16, 32, 48, 64};
    }
    TablePrinter table({"Scenario", "n=m", "Pre@5", "NDCG@5", "MAP@5"});
    for (const auto scenario : scenarios) {
      for (int64_t size : sizes) {
        const metrics::RankingMetrics m = bench::RunHireVariant(
            dataset, scenario, options.hire_config, sampler, steps, size,
            size, options, 9100 + static_cast<uint64_t>(size));
        table.AddRow({data::ScenarioName(scenario), std::to_string(size),
                      FormatDouble(m.precision, 4), FormatDouble(m.ndcg, 4),
                      FormatDouble(m.map, 4)});
      }
      table.AddSeparator();
    }
    std::cout << "\n== Fig. 7(d-f): context size ==\n";
    table.Print(std::cout);
  }
  return 0;
}
