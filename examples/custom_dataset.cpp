// Ingesting your own data: writes a small CSV dataset to a temp directory,
// loads it with the CSV loader (the same path works for the real
// MovieLens-1M / Douban / Bookcrossing dumps converted to CSV), trains HIRE
// and serializes the trained model to disk.
//
// CSV formats:
//   ratings.csv  : user_id,item_id,rating
//   users.csv    : user_id,attr1,attr2,...   (categorical strings)
//   items.csv    : item_id,attr1,...
//
// Build & run:  ./build/examples/custom_dataset

#include <cstdio>
#include <fstream>
#include <string>

#include "core/hire_model.h"
#include "core/trainer.h"
#include "data/csv_loader.h"
#include "graph/bipartite_graph.h"
#include "graph/samplers.h"
#include "nn/serialize.h"
#include "tensor/random.h"

namespace {

void WriteDemoCsvFiles(const std::string& dir) {
  using hire::Rng;
  // A compact but non-trivial world: 40 users x 30 items.
  Rng rng(5);
  const char* ages[] = {"teen", "adult", "senior"};
  const char* jobs[] = {"student", "engineer", "artist", "doctor"};
  const char* genres[] = {"action", "comedy", "drama", "scifi"};

  std::ofstream users(dir + "/users.csv");
  users << "user,age,job\n";
  for (int u = 0; u < 40; ++u) {
    users << "u" << u << "," << ages[u % 3] << "," << jobs[u % 4] << "\n";
  }
  std::ofstream items(dir + "/items.csv");
  items << "item,genre\n";
  for (int i = 0; i < 30; ++i) {
    items << "m" << i << "," << genres[i % 4] << "\n";
  }
  std::ofstream ratings(dir + "/ratings.csv");
  ratings << "user,item,rating\n";
  for (int u = 0; u < 40; ++u) {
    for (int r = 0; r < 8; ++r) {
      const int i = static_cast<int>(rng.UniformInt(30));
      // Users like the genre matching their job index; add noise.
      const int base = (u % 4) == (i % 4) ? 4 : 2;
      const int value = std::min(5, std::max(1, base + static_cast<int>(
                                                          rng.UniformInt(3)) -
                                                    1));
      ratings << "u" << u << ",m" << i << "," << value << "\n";
    }
  }
}

}  // namespace

int main() {
  using namespace hire;
  const std::string dir = "/tmp/hire_custom_dataset_demo";
  std::system(("mkdir -p " + dir).c_str());
  WriteDemoCsvFiles(dir);

  // Load from CSV. Ids are arbitrary strings and attribute values are
  // vocabulary-encoded automatically.
  data::CsvDatasetSpec spec;
  spec.name = "my-csv-dataset";
  spec.ratings_path = dir + "/ratings.csv";
  spec.user_attributes_path = dir + "/users.csv";
  spec.item_attributes_path = dir + "/items.csv";
  const data::Dataset dataset = data::LoadCsvDataset(spec);
  std::printf("loaded: %s\n", dataset.Summary().c_str());

  // Train a small HIRE model.
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  core::HireConfig config;
  config.num_him_blocks = 2;
  config.num_heads = 2;
  config.head_dim = 4;
  config.attr_embed_dim = 4;
  core::HireModel model(&dataset, config, /*seed=*/1);

  graph::NeighborhoodSampler sampler;
  core::TrainerConfig trainer;
  trainer.num_steps = 120;
  trainer.batch_size = 2;
  trainer.context_users = 10;
  trainer.context_items = 10;
  const core::TrainStats stats =
      core::TrainHire(&model, graph, sampler, trainer);
  std::printf("trained: loss %.3f -> %.3f\n", stats.step_losses.front(),
              stats.final_loss);

  // Persist and restore the trained parameters.
  const std::string model_path = dir + "/hire_model.bin";
  nn::SaveParameters(model, model_path);
  core::HireModel restored(&dataset, config, /*seed=*/999);
  nn::LoadParameters(&restored, model_path);
  std::printf("saved and restored %lld parameters from %s\n",
              static_cast<long long>(restored.NumParameters()),
              model_path.c_str());
  return 0;
}
