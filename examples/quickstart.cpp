// Quickstart: the minimal end-to-end HIRE pipeline.
//
//   1. Generate a small synthetic rating dataset.
//   2. Train a HIRE model on prediction contexts sampled from the rating
//      bipartite graph (Algorithm 1 of the paper).
//   3. Predict a user's masked ratings from one prediction context.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/hire_model.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "graph/context_builder.h"
#include "graph/samplers.h"

int main() {
  using namespace hire;

  // 1. A small synthetic world: 150 users x 120 items with categorical
  //    attributes and ~4000 observed ratings on a 1-5 scale.
  data::SyntheticConfig config;
  config.num_users = 150;
  config.num_items = 120;
  config.num_ratings = 4000;
  config.user_schema = {{"age", 5}, {"occupation", 8}};
  config.item_schema = {{"genre", 6}};
  const data::Dataset dataset = data::GenerateSyntheticDataset(config, 7);
  std::printf("dataset: %s\n", dataset.Summary().c_str());

  // 2. Train HIRE. The model owns the attribute encoders, K HIM blocks and
  //    the rating decoder; the trainer implements the paper's masked-MSE
  //    objective with LAMB + Lookahead and a flat-then-cosine schedule.
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  core::HireConfig model_config;
  model_config.num_him_blocks = 2;
  model_config.num_heads = 2;
  model_config.head_dim = 8;
  model_config.attr_embed_dim = 8;
  core::HireModel model(&dataset, model_config, /*seed=*/42);
  std::printf("model: %lld parameters\n",
              static_cast<long long>(model.NumParameters()));

  graph::NeighborhoodSampler sampler;
  core::TrainerConfig trainer;
  trainer.num_steps = 150;
  trainer.batch_size = 2;
  trainer.context_users = 12;
  trainer.context_items = 12;
  trainer.log_every = 50;
  const core::TrainStats stats =
      core::TrainHire(&model, graph, sampler, trainer);
  std::printf("training: first loss %.3f -> final loss %.3f (%.1fs)\n",
              stats.step_losses.front(), stats.final_loss,
              stats.train_seconds);

  // 3. Predict. Build a context around a user, mask some ratings and read
  //    the model's estimates for the masked cells.
  Rng rng(99);
  graph::PredictionContext context =
      graph::BuildTrainingContext(graph, sampler, 12, 12, 0.3, &rng);
  const Tensor predicted = model.Predict(context);

  std::printf("\nmasked-cell predictions for user %lld:\n",
              static_cast<long long>(context.users[0]));
  int shown = 0;
  for (int64_t j = 0; j < context.num_items() && shown < 6; ++j) {
    if (context.target_mask.at(0, j) > 0) {
      std::printf("  item %-5lld actual %.0f  predicted %.2f\n",
                  static_cast<long long>(context.items[(size_t)j]),
                  context.target_ratings.at(0, j), predicted.at(0, j));
      ++shown;
    }
  }
  return 0;
}
