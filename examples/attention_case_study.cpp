// Interpretability walkthrough (cf. paper Fig. 9): trains HIRE, captures
// the attention weights of each HIM block on one prediction context and
// inspects which users/items/attributes the model attends to, together
// with the consistency between strong attention links and ground-truth
// ratings.
//
// Build & run:  ./build/examples/attention_case_study

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/hire_model.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "graph/context_builder.h"
#include "graph/samplers.h"

int main() {
  using namespace hire;

  const data::Dataset dataset = data::GenerateSyntheticDataset(
      data::MovieLens1MProfile(/*scale=*/0.5), /*seed=*/88);
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());

  core::HireConfig config;
  config.num_him_blocks = 2;
  config.num_heads = 2;
  config.head_dim = 8;
  config.attr_embed_dim = 8;
  core::HireModel model(&dataset, config, /*seed=*/3);

  graph::NeighborhoodSampler sampler;
  core::TrainerConfig trainer;
  trainer.num_steps = 200;
  trainer.batch_size = 2;
  trainer.context_users = 12;
  trainer.context_items = 12;
  core::TrainHire(&model, graph, sampler, trainer);

  // One context, with attention capture enabled on every HIM block.
  Rng rng(17);
  graph::PredictionContext context =
      graph::BuildTrainingContext(graph, sampler, 12, 12, 0.3, &rng);
  model.EnableAttentionCapture(true);
  const Tensor predicted = model.Predict(context);

  const core::HimBlock& him = model.him_block(config.num_him_blocks - 1);
  const Tensor& mbu = him.captured_user_attention();  // [m, l, n, n]

  // For the first item view: which user does each user attend to most?
  std::printf("strongest user->user attention (item %lld view):\n",
              static_cast<long long>(context.items[0]));
  const int64_t n = context.num_users();
  const int64_t heads = mbu.shape(1);
  for (int64_t i = 0; i < std::min<int64_t>(n, 6); ++i) {
    float best_weight = -1.0f;
    int64_t best_user = 0;
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      float weight = 0.0f;
      for (int64_t h = 0; h < heads; ++h) {
        weight += mbu.at(0, h, i, j) / static_cast<float>(heads);
      }
      if (weight > best_weight) {
        best_weight = weight;
        best_user = j;
      }
    }
    const auto rating_i =
        graph.GetRating(context.users[(size_t)i], context.items[0]);
    const auto rating_j =
        graph.GetRating(context.users[(size_t)best_user], context.items[0]);
    std::printf(
        "  user %-5lld -> user %-5lld (weight %.3f)  actual: %s vs %s,  "
        "predicted: %.2f vs %.2f\n",
        static_cast<long long>(context.users[(size_t)i]),
        static_cast<long long>(context.users[(size_t)best_user]), best_weight,
        rating_i ? std::to_string((int)*rating_i).c_str() : "-",
        rating_j ? std::to_string((int)*rating_j).c_str() : "-",
        predicted.at(i, 0), predicted.at(best_user, 0));
  }

  // Attribute-level attention for the first observed pair: which attribute
  // slots interact? Slot order: user attrs, item attrs, rating.
  const Tensor& mba = him.captured_attribute_attention();  // [n*m, l, h, h]
  const int64_t slots = mba.shape(2);
  std::printf("\nattribute-slot attention for pair (user %lld, item %lld):\n",
              static_cast<long long>(context.users[0]),
              static_cast<long long>(context.items[0]));
  std::vector<std::string> slot_names;
  for (const auto& attribute : dataset.user_schema()) {
    slot_names.push_back("user:" + attribute.name);
  }
  for (const auto& attribute : dataset.item_schema()) {
    slot_names.push_back("item:" + attribute.name);
  }
  slot_names.push_back("rating");
  for (int64_t i = 0; i < slots; ++i) {
    float best_weight = -1.0f;
    int64_t best_slot = 0;
    for (int64_t j = 0; j < slots; ++j) {
      if (j == i) continue;
      float weight = 0.0f;
      for (int64_t h = 0; h < heads; ++h) {
        weight += mba.at(0, h, i, j) / static_cast<float>(heads);
      }
      if (weight > best_weight) {
        best_weight = weight;
        best_slot = j;
      }
    }
    std::printf("  %-16s attends most to %-16s (weight %.3f)\n",
                slot_names[(size_t)i].c_str(),
                slot_names[(size_t)best_slot].c_str(), best_weight);
  }
  return 0;
}
