// Full cold-start workflow on the MovieLens-1M profile: builds all three
// cold-start splits (user / item / user&item), trains a HIRE model per
// split with the paper's optimiser stack, evaluates it through the shared
// protocol and prints Precision/NDCG/MAP at 5, 7 and 10 — i.e. one row of
// the paper's Table III per scenario.
//
// Build & run:  ./build/examples/movielens_cold_start

#include <iostream>

#include "core/evaluation.h"
#include "core/hire_model.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "graph/samplers.h"
#include "utils/string_utils.h"
#include "utils/table_printer.h"

int main() {
  using namespace hire;

  const data::Dataset dataset = data::GenerateSyntheticDataset(
      data::MovieLens1MProfile(/*scale=*/0.6), /*seed=*/2024);
  std::cout << "dataset: " << dataset.Summary() << "\n";

  core::HireConfig model_config;
  model_config.num_him_blocks = 3;
  model_config.num_heads = 4;
  model_config.head_dim = 8;
  model_config.attr_embed_dim = 8;

  graph::NeighborhoodSampler sampler;
  TablePrinter table({"Scenario", "Pre@5", "NDCG@5", "MAP@5", "Pre@7",
                      "NDCG@7", "MAP@7", "Pre@10", "NDCG@10", "MAP@10"});

  for (const auto scenario : {data::ColdStartScenario::kUserCold,
                              data::ColdStartScenario::kItemCold,
                              data::ColdStartScenario::kUserItemCold}) {
    // Cold entities and all of their ratings are held out of training.
    Rng split_rng(11);
    const data::ColdStartSplit split =
        data::MakeColdStartSplit(dataset, scenario, 0.8, &split_rng);
    const graph::BipartiteGraph train_graph(
        dataset.num_users(), dataset.num_items(), split.train_ratings);

    core::HireModel model(&dataset, model_config, /*seed=*/5);
    core::TrainerConfig trainer;
    trainer.num_steps = 300;
    trainer.batch_size = 2;
    trainer.context_users = 16;
    trainer.context_items = 16;
    trainer.log_every = 100;
    core::TrainHire(&model, train_graph, sampler, trainer);

    core::HirePredictor predictor(&model, &sampler, 16, 16, /*seed=*/6);
    core::EvalConfig eval;
    eval.max_eval_users = 25;
    const core::EvalResult result =
        core::EvaluateColdStart(&predictor, dataset, split, eval);

    std::vector<std::string> row{data::ScenarioName(scenario)};
    for (int k : {5, 7, 10}) {
      const metrics::RankingMetrics& m = result.by_k.at(k);
      row.push_back(FormatDouble(m.precision, 4));
      row.push_back(FormatDouble(m.ndcg, 4));
      row.push_back(FormatDouble(m.map, 4));
    }
    table.AddRow(std::move(row));
  }

  std::cout << "\nHIRE cold-start results (cf. paper Table III):\n";
  table.Print(std::cout);
  return 0;
}
