#include "autograd/ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "autograd/gradcheck.h"
#include "autograd/variable.h"
#include "tensor/ops.h"
#include "tensor/random.h"
#include "utils/check.h"

namespace hire {
namespace ag {
namespace {

Tensor RandomInput(std::vector<int64_t> shape, uint64_t seed,
                   float lo = -1.5f, float hi = 1.5f) {
  Rng rng(seed);
  return RandomUniform(std::move(shape), lo, hi, &rng);
}

Variable Leaf(Tensor value) { return Variable(std::move(value), true); }

void ExpectGradCheck(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable> inputs, double tolerance = 5e-2) {
  const GradCheckResult result =
      CheckGradients(fn, std::move(inputs), 1e-3, tolerance);
  EXPECT_TRUE(result.passed)
      << "max error " << result.max_abs_error << " at "
      << result.worst_coordinate;
}

TEST(VariableTest, NullHandleThrows) {
  Variable v;
  EXPECT_FALSE(v.defined());
  EXPECT_THROW(v.value(), CheckError);
  EXPECT_THROW(v.Backward(), CheckError);
}

TEST(VariableTest, BackwardRequiresScalar) {
  Variable v(Tensor::Ones({2, 2}), true);
  EXPECT_THROW(v.Backward(), CheckError);
}

TEST(VariableTest, GradNotPopulatedBeforeBackward) {
  Variable v(Tensor::Ones({2}), true);
  EXPECT_FALSE(v.has_grad());
  EXPECT_THROW(v.grad(), CheckError);
}

TEST(VariableTest, SimpleChainBackward) {
  Variable x(Tensor::FromVector({2.0f, 3.0f}), true);
  Variable loss = SumAll(Mul(x, x));  // x1^2 + x2^2
  loss.Backward();
  EXPECT_FLOAT_EQ(loss.value().flat(0), 13.0f);
  EXPECT_FLOAT_EQ(x.grad().at(0), 4.0f);
  EXPECT_FLOAT_EQ(x.grad().at(1), 6.0f);
}

TEST(VariableTest, GradientsAccumulateAcrossUses) {
  // y = sum(x + x): dy/dx = 2.
  Variable x(Tensor::FromVector({1.0f}), true);
  Variable loss = SumAll(Add(x, x));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 2.0f);
}

TEST(VariableTest, DiamondGraphBackward) {
  // z = sum(x*x + x): dz/dx = 2x + 1.
  Variable x(Tensor::FromVector({3.0f}), true);
  Variable squared = Mul(x, x);
  Variable loss = SumAll(Add(squared, x));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 7.0f);
}

TEST(VariableTest, NoGradInputsProduceDetachedOutputs) {
  Variable a(Tensor::Ones({2}), false);
  Variable b(Tensor::Ones({2}), false);
  Variable c = Add(a, b);
  EXPECT_FALSE(c.requires_grad());
}

TEST(VariableTest, ZeroGradClears) {
  Variable x(Tensor::FromVector({2.0f}), true);
  SumAll(Mul(x, x)).Backward();
  EXPECT_TRUE(x.has_grad());
  x.ZeroGrad();
  EXPECT_FALSE(x.has_grad());
}

TEST(VariableTest, RepeatedBackwardAccumulates) {
  Variable x(Tensor::FromVector({1.0f}), true);
  SumAll(MulScalar(x, 3.0f)).Backward();
  SumAll(MulScalar(x, 3.0f)).Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 6.0f);
}

// ---------------------------------------------------------------------------
// Gradient checks, one per op.
// ---------------------------------------------------------------------------

TEST(GradCheckTest, Add) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(Add(in[0], in[1]));
      },
      {Leaf(RandomInput({3, 2}, 1)), Leaf(RandomInput({3, 2}, 2))});
}

TEST(GradCheckTest, Sub) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(Sub(in[0], in[1]));
      },
      {Leaf(RandomInput({4}, 3)), Leaf(RandomInput({4}, 4))});
}

TEST(GradCheckTest, Mul) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(Mul(in[0], in[1]));
      },
      {Leaf(RandomInput({2, 3}, 5)), Leaf(RandomInput({2, 3}, 6))});
}

TEST(GradCheckTest, ScalarOps) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(AddScalar(MulScalar(in[0], -1.7f), 0.3f));
      },
      {Leaf(RandomInput({5}, 7))});
}

TEST(GradCheckTest, Sigmoid) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) { return SumAll(Sigmoid(in[0])); },
      {Leaf(RandomInput({3, 3}, 8))});
}

TEST(GradCheckTest, Tanh) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) { return SumAll(Tanh(in[0])); },
      {Leaf(RandomInput({6}, 9))});
}

TEST(GradCheckTest, ReluAwayFromKink) {
  // Keep inputs away from 0 where ReLU is non-differentiable.
  Tensor input = RandomInput({8}, 10, 0.5f, 1.5f);
  for (int64_t i = 0; i < input.size(); ++i) {
    if (i % 2 == 0) input.flat(i) = -input.flat(i);
  }
  ExpectGradCheck(
      [](const std::vector<Variable>& in) { return SumAll(Relu(in[0])); },
      {Leaf(input)});
}

TEST(GradCheckTest, Exp) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) { return SumAll(Exp(in[0])); },
      {Leaf(RandomInput({4}, 11, -1.0f, 1.0f))});
}

TEST(GradCheckTest, LogClamped) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(LogClamped(in[0]));
      },
      {Leaf(RandomInput({5}, 12, 0.5f, 2.0f))});
}

TEST(GradCheckTest, Square) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) { return SumAll(Square(in[0])); },
      {Leaf(RandomInput({3, 2}, 13))});
}

TEST(GradCheckTest, MatMulBothInputs) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(MatMul(in[0], in[1]));
      },
      {Leaf(RandomInput({3, 4}, 14)), Leaf(RandomInput({4, 2}, 15))});
}

TEST(GradCheckTest, MatMulWithNonUniformUpstream) {
  // Weighted sum downstream exercises non-constant upstream gradients.
  Tensor weights = RandomInput({3, 2}, 16);
  ExpectGradCheck(
      [weights](const std::vector<Variable>& in) {
        return SumAll(Mul(MatMul(in[0], in[1]),
                          Variable(weights, false)));
      },
      {Leaf(RandomInput({3, 4}, 17)), Leaf(RandomInput({4, 2}, 18))});
}

TEST(GradCheckTest, BatchedMatMul) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(BatchedMatMul(in[0], in[1]));
      },
      {Leaf(RandomInput({2, 3, 4}, 19)), Leaf(RandomInput({2, 4, 2}, 20))});
}

TEST(GradCheckTest, BatchedMatMulTransposedB) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(BatchedMatMulTransposedB(in[0], in[1]));
      },
      {Leaf(RandomInput({2, 3, 4}, 21)), Leaf(RandomInput({2, 5, 4}, 22))});
}

TEST(GradCheckTest, AddBias) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(Square(AddBias(in[0], in[1])));
      },
      {Leaf(RandomInput({4, 3}, 23)), Leaf(RandomInput({3}, 24))});
}

TEST(GradCheckTest, Reshape) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(Square(Reshape(in[0], {6})));
      },
      {Leaf(RandomInput({2, 3}, 25))});
}

TEST(GradCheckTest, Permute) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(Square(Permute(in[0], {2, 0, 1})));
      },
      {Leaf(RandomInput({2, 3, 4}, 26))});
}

TEST(GradCheckTest, Concat) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(Square(Concat({in[0], in[1]}, 1)));
      },
      {Leaf(RandomInput({2, 3}, 27)), Leaf(RandomInput({2, 2}, 28))});
}

TEST(GradCheckTest, Slice) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(Square(Slice(in[0], 0, 1, 2)));
      },
      {Leaf(RandomInput({4, 3}, 29))});
}

TEST(GradCheckTest, SumAxis) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(Square(SumAxis(in[0], 1)));
      },
      {Leaf(RandomInput({3, 4, 2}, 30))});
}

TEST(GradCheckTest, BroadcastUsers) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(Square(BroadcastUsers(in[0], 3)));
      },
      {Leaf(RandomInput({2, 4}, 31))});
}

TEST(GradCheckTest, BroadcastItems) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        return SumAll(Square(BroadcastItems(in[0], 4)));
      },
      {Leaf(RandomInput({3, 2}, 32))});
}

TEST(GradCheckTest, Softmax) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        // Weighted sum to get asymmetric upstream gradients.
        Tensor weights({2, 4}, {1, -2, 3, -4, 2, 0.5f, -1, 1});
        return SumAll(Mul(Softmax(in[0]), Variable(weights, false)));
      },
      {Leaf(RandomInput({2, 4}, 33))});
}

TEST(GradCheckTest, LayerNorm) {
  ExpectGradCheck(
      [](const std::vector<Variable>& in) {
        Tensor weights({3, 4});
        for (int64_t i = 0; i < weights.size(); ++i) {
          weights.flat(i) = 0.3f * static_cast<float>(i % 5) - 0.6f;
        }
        return SumAll(Mul(LayerNorm(in[0], in[1], in[2]),
                          Variable(weights, false)));
      },
      {Leaf(RandomInput({3, 4}, 34)),
       Leaf(RandomInput({4}, 35, 0.5f, 1.5f)),
       Leaf(RandomInput({4}, 36))},
      /*tolerance=*/8e-2);
}

TEST(GradCheckTest, EmbeddingLookup) {
  std::vector<int64_t> indices{0, 2, 1, 2};
  ExpectGradCheck(
      [indices](const std::vector<Variable>& in) {
        return SumAll(Square(EmbeddingLookup(in[0], indices)));
      },
      {Leaf(RandomInput({3, 4}, 37))});
}

TEST(GradCheckTest, SegmentMean) {
  std::vector<int64_t> segments{0, 1, 0, 2, 1};
  ExpectGradCheck(
      [segments](const std::vector<Variable>& in) {
        return SumAll(Square(SegmentMean(in[0], segments, 3)));
      },
      {Leaf(RandomInput({5, 3}, 38))});
}

TEST(GradCheckTest, MaskedMSE) {
  Tensor target = RandomInput({3, 3}, 39);
  Tensor mask = Tensor::Zeros({3, 3});
  mask.at(0, 1) = 1.0f;
  mask.at(2, 2) = 1.0f;
  mask.at(1, 0) = 1.0f;
  ExpectGradCheck(
      [target, mask](const std::vector<Variable>& in) {
        return MaskedMSE(in[0], target, mask);
      },
      {Leaf(RandomInput({3, 3}, 40))});
}

TEST(GradCheckTest, CompositeExpression) {
  // A small network: sigmoid(X W + b) -> layer-norm-free MSE.
  Tensor target = RandomInput({4, 2}, 41);
  ExpectGradCheck(
      [target](const std::vector<Variable>& in) {
        Variable hidden = Sigmoid(AddBias(MatMul(in[0], in[1]), in[2]));
        return MSE(hidden, target);
      },
      {Leaf(RandomInput({4, 3}, 42)), Leaf(RandomInput({3, 2}, 43)),
       Leaf(RandomInput({2}, 44))});
}

// ---------------------------------------------------------------------------
// Semantics beyond gradients.
// ---------------------------------------------------------------------------

TEST(OpsSemanticsTest, EmbeddingLookupMinusOneIsZeroRow) {
  Variable table(Tensor({2, 3}, {1, 2, 3, 4, 5, 6}), true);
  Variable out = EmbeddingLookup(table, {1, -1, 0});
  EXPECT_FLOAT_EQ(out.value().at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out.value().at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.value().at(1, 2), 0.0f);
  EXPECT_FLOAT_EQ(out.value().at(2, 2), 3.0f);
}

TEST(OpsSemanticsTest, EmbeddingLookupOutOfRangeThrows) {
  Variable table(Tensor::Ones({2, 3}), true);
  EXPECT_THROW(EmbeddingLookup(table, {2}), CheckError);
}

TEST(OpsSemanticsTest, MaskedMSEIgnoresMaskedCells) {
  Tensor target({2, 2}, {1, 2, 3, 4});
  Tensor mask({2, 2}, {1, 0, 0, 1});
  Variable pred(Tensor({2, 2}, {2, 100, -100, 6}), true);
  Variable loss = MaskedMSE(pred, target, mask);
  // ((2-1)^2 + (6-4)^2) / 2 = 2.5; the huge masked errors are ignored.
  EXPECT_FLOAT_EQ(loss.value().flat(0), 2.5f);
}

TEST(OpsSemanticsTest, MaskedMSERequiresNonEmptyMask) {
  Variable pred(Tensor::Ones({2, 2}), true);
  EXPECT_THROW(
      MaskedMSE(pred, Tensor::Ones({2, 2}), Tensor::Zeros({2, 2})),
      CheckError);
}

TEST(OpsSemanticsTest, DropoutIdentityInEval) {
  Rng rng(1);
  Variable x(Tensor::Ones({10}), true);
  Variable y = Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(ops::AllClose(y.value(), x.value()));
}

TEST(OpsSemanticsTest, DropoutScalesSurvivors) {
  Rng rng(2);
  Variable x(Tensor::Ones({1000}), true);
  Variable y = Dropout(x, 0.25f, /*training=*/true, &rng);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.size(); ++i) {
    const float v = y.value().flat(i);
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.75f, 1e-5f);
    }
  }
  EXPECT_GT(zeros, 150);
  EXPECT_LT(zeros, 350);
}

TEST(OpsSemanticsTest, SegmentMeanEmptySegmentIsZero) {
  Variable x(Tensor({2, 2}, {1, 2, 3, 4}), false);
  Variable out = SegmentMean(x, {0, 0}, 3);
  EXPECT_FLOAT_EQ(out.value().at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.value().at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(out.value().at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.value().at(2, 1), 0.0f);
}

TEST(OpsSemanticsTest, SoftmaxGradientSumsToZeroPerRow) {
  Variable x(RandomInput({1, 5}, 50), true);
  Tensor weights({1, 5}, {1, 2, 3, 4, 5});
  Variable loss = SumAll(Mul(Softmax(x), Variable(weights, false)));
  loss.Backward();
  float total = 0.0f;
  for (int64_t i = 0; i < 5; ++i) total += x.grad().flat(i);
  EXPECT_NEAR(total, 0.0f, 1e-5f);
}

}  // namespace
}  // namespace ag
}  // namespace hire
