#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "nn/embedding.h"
#include "nn/init.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "nn/fused_attention.h"
#include "nn/multi_head_self_attention.h"
#include "nn/serialize.h"
#include "tensor/ops.h"
#include "tensor/random.h"
#include "utils/check.h"

namespace hire {
namespace nn {
namespace {

TEST(InitTest, XavierUniformWithinLimit) {
  Rng rng(1);
  Tensor w = XavierUniform(64, 64, &rng);
  const float limit = std::sqrt(6.0f / 128.0f);
  for (int64_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::fabs(w.flat(i)), limit);
  }
}

TEST(InitTest, HeNormalHasRightScale) {
  Rng rng(2);
  Tensor w = HeNormal(200, 50, &rng);
  double sum_sq = 0.0;
  for (int64_t i = 0; i < w.size(); ++i) sum_sq += w.flat(i) * w.flat(i);
  EXPECT_NEAR(sum_sq / static_cast<double>(w.size()), 2.0 / 200.0, 0.002);
}

TEST(LinearTest, ShapeAndDeterminism) {
  Rng rng(3);
  Linear layer(4, 3, &rng);
  ag::Variable x(Tensor::Ones({2, 4}), false);
  ag::Variable y1 = layer.Forward(x);
  ag::Variable y2 = layer.Forward(x);
  EXPECT_EQ(y1.shape(), (std::vector<int64_t>{2, 3}));
  EXPECT_TRUE(ops::AllClose(y1.value(), y2.value()));
}

TEST(LinearTest, SupportsLeadingBatchAxes) {
  Rng rng(4);
  Linear layer(5, 2, &rng);
  ag::Variable x(Tensor::Ones({3, 4, 5}), false);
  EXPECT_EQ(layer.Forward(x).shape(), (std::vector<int64_t>{3, 4, 2}));
}

TEST(LinearTest, RejectsWrongInputWidth) {
  Rng rng(5);
  Linear layer(4, 3, &rng);
  ag::Variable x(Tensor::Ones({2, 5}), false);
  EXPECT_THROW(layer.Forward(x), CheckError);
}

TEST(LinearTest, ParametersAreRegistered) {
  Rng rng(6);
  Linear with_bias(4, 3, &rng);
  EXPECT_EQ(with_bias.Parameters().size(), 2u);
  EXPECT_EQ(with_bias.NumParameters(), 4 * 3 + 3);
  Linear without_bias(4, 3, &rng, /*bias=*/false);
  EXPECT_EQ(without_bias.Parameters().size(), 1u);
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(7);
  Linear layer(3, 2, &rng);
  ag::Variable x(RandomUniform({4, 3}, -1, 1, &rng), false);
  ag::Variable loss = ag::MeanAll(ag::Square(layer.Forward(x)));
  loss.Backward();
  for (const ag::Variable& parameter : layer.Parameters()) {
    EXPECT_TRUE(parameter.has_grad());
  }
}

TEST(EmbeddingTest, LookupReturnsTableRows) {
  Rng rng(8);
  Embedding embedding(5, 3, &rng);
  ag::Variable a = embedding.Forward({2});
  ag::Variable b = embedding.Forward({2, 2, 4});
  EXPECT_TRUE(ops::AllClose(ops::Slice(b.value(), 0, 0, 1),
                            a.value().Reshape({1, 3})));
  EXPECT_TRUE(ops::AllClose(ops::Slice(b.value(), 0, 0, 1),
                            ops::Slice(b.value(), 0, 1, 1)));
}

TEST(EmbeddingTest, MaskedIndexIsZero) {
  Rng rng(9);
  Embedding embedding(5, 3, &rng);
  ag::Variable out = embedding.Forward({-1});
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.value().flat(i), 0.0f);
  }
}

TEST(LayerNormTest, NormalisesLastAxis) {
  LayerNorm norm(6);
  Rng rng(10);
  ag::Variable x(RandomUniform({4, 6}, -5, 5, &rng), false);
  Tensor y = norm.Forward(x).value();
  for (int64_t r = 0; r < 4; ++r) {
    double mean = 0.0;
    double var = 0.0;
    for (int64_t c = 0; c < 6; ++c) mean += y.at(r, c);
    mean /= 6.0;
    for (int64_t c = 0; c < 6; ++c) {
      var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    }
    var /= 6.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, WrongWidthThrows) {
  LayerNorm norm(6);
  ag::Variable x(Tensor::Ones({2, 5}), false);
  EXPECT_THROW(norm.Forward(x), CheckError);
}

TEST(MlpTest, EndToEndShapesAndActivations) {
  Rng rng(11);
  Mlp mlp({4, 8, 1}, Activation::kRelu, &rng, Activation::kSigmoid);
  ag::Variable x(Tensor::Ones({3, 4}), false);
  Tensor y = mlp.Forward(x).value();
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{3, 1}));
  for (int64_t i = 0; i < y.size(); ++i) {
    EXPECT_GT(y.flat(i), 0.0f);
    EXPECT_LT(y.flat(i), 1.0f);
  }
}

TEST(MlpTest, RequiresAtLeastTwoDims) {
  Rng rng(12);
  EXPECT_THROW(Mlp({4}, Activation::kRelu, &rng), CheckError);
}

TEST(ModuleTest, NamedParametersHaveHierarchicalNames) {
  Rng rng(13);
  Mlp mlp({2, 3, 1}, Activation::kRelu, &rng);
  const auto named = mlp.NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "layer0.weight");
  EXPECT_EQ(named[3].first, "layer1.bias");
}

TEST(ModuleTest, SetTrainingPropagates) {
  Rng rng(14);
  Mlp mlp({2, 3, 1}, Activation::kRelu, &rng);
  mlp.SetTraining(false);
  EXPECT_FALSE(mlp.training());
  mlp.SetTraining(true);
  EXPECT_TRUE(mlp.training());
}

// ---------------------------------------------------------------------------
// Multi-head self-attention.
// ---------------------------------------------------------------------------

MhsaConfig SmallMhsa(int64_t dim = 8, int64_t heads = 2) {
  MhsaConfig config;
  config.embed_dim = dim;
  config.num_heads = heads;
  return config;
}

TEST(MhsaTest, OutputShapeMatchesInput) {
  Rng rng(15);
  MultiHeadSelfAttention mhsa(SmallMhsa(), &rng);
  ag::Variable x(RandomUniform({3, 5, 8}, -1, 1, &rng), false);
  EXPECT_EQ(mhsa.Forward(x).shape(), (std::vector<int64_t>{3, 5, 8}));
}

TEST(MhsaTest, ExplicitHeadDimension) {
  Rng rng(16);
  MhsaConfig config;
  config.embed_dim = 6;
  config.num_heads = 4;
  config.head_dim = 3;  // inner = 12 != embed_dim
  MultiHeadSelfAttention mhsa(config, &rng);
  ag::Variable x(RandomUniform({2, 4, 6}, -1, 1, &rng), false);
  EXPECT_EQ(mhsa.Forward(x).shape(), (std::vector<int64_t>{2, 4, 6}));
}

TEST(MhsaTest, IndivisibleDefaultHeadDimThrows) {
  Rng rng(17);
  MhsaConfig config;
  config.embed_dim = 6;
  config.num_heads = 4;
  EXPECT_THROW(MultiHeadSelfAttention(config, &rng), CheckError);
}

TEST(MhsaTest, RejectsNon3DInput) {
  Rng rng(18);
  MultiHeadSelfAttention mhsa(SmallMhsa(), &rng);
  ag::Variable x(Tensor::Ones({5, 8}), false);
  EXPECT_THROW(mhsa.Forward(x), CheckError);
}

TEST(MhsaTest, BatchElementsAreIndependent) {
  // Processing [x; y] as a batch must equal processing x and y separately.
  Rng rng(19);
  MultiHeadSelfAttention mhsa(SmallMhsa(), &rng);
  Tensor x = RandomUniform({1, 4, 8}, -1, 1, &rng);
  Tensor y = RandomUniform({1, 4, 8}, -1, 1, &rng);
  Tensor batched = ops::Concat({x, y}, 0);

  Tensor out_batched = mhsa.Forward(ag::Variable(batched, false)).value();
  Tensor out_x = mhsa.Forward(ag::Variable(x, false)).value();
  Tensor out_y = mhsa.Forward(ag::Variable(y, false)).value();
  EXPECT_TRUE(ops::AllClose(ops::Slice(out_batched, 0, 0, 1), out_x, 1e-4f,
                            1e-3f));
  EXPECT_TRUE(ops::AllClose(ops::Slice(out_batched, 0, 1, 1), out_y, 1e-4f,
                            1e-3f));
}

TEST(MhsaTest, AttentionCaptureShapeAndRowSums) {
  Rng rng(21);
  MultiHeadSelfAttention mhsa(SmallMhsa(8, 2), &rng);
  mhsa.EnableAttentionCapture(true);
  ag::Variable x(RandomUniform({2, 5, 8}, -1, 1, &rng), false);
  mhsa.Forward(x);
  const Tensor& attention = mhsa.captured_attention();
  ASSERT_EQ(attention.shape(), (std::vector<int64_t>{2, 2, 5, 5}));
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t h = 0; h < 2; ++h) {
      for (int64_t i = 0; i < 5; ++i) {
        float row = 0.0f;
        for (int64_t j = 0; j < 5; ++j) row += attention.at(b, h, i, j);
        EXPECT_NEAR(row, 1.0f, 1e-4f);
      }
    }
  }
}

TEST(MhsaTest, GradientsFlowThroughAttention) {
  Rng rng(22);
  MultiHeadSelfAttention mhsa(SmallMhsa(), &rng);
  ag::Variable x(RandomUniform({2, 3, 8}, -1, 1, &rng), true);
  ag::Variable loss = ag::MeanAll(ag::Square(mhsa.Forward(x)));
  loss.Backward();
  EXPECT_TRUE(x.has_grad());
  for (const ag::Variable& parameter : mhsa.Parameters()) {
    EXPECT_TRUE(parameter.has_grad());
  }
}

// Property test (paper Eq. 5): MHSA is permutation equivariant over tokens.
class MhsaPermutationTest : public ::testing::TestWithParam<int> {};

TEST_P(MhsaPermutationTest, PermutationEquivariance) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  MultiHeadSelfAttention mhsa(SmallMhsa(8, 2), &rng);

  const int64_t tokens = 6;
  Tensor x = RandomUniform({1, tokens, 8}, -1, 1, &rng);
  Tensor out = mhsa.Forward(ag::Variable(x, false)).value();

  // Build a random permutation of the token axis.
  std::vector<int64_t> perm(static_cast<size_t>(tokens));
  for (int64_t i = 0; i < tokens; ++i) perm[static_cast<size_t>(i)] = i;
  rng.Shuffle(&perm);

  Tensor x_permuted({1, tokens, 8});
  for (int64_t t = 0; t < tokens; ++t) {
    for (int64_t d = 0; d < 8; ++d) {
      x_permuted.at(0, t, d) = x.at(0, perm[static_cast<size_t>(t)], d);
    }
  }
  Tensor out_permuted =
      mhsa.Forward(ag::Variable(x_permuted, false)).value();

  // MHSA(P(x)) must equal P(MHSA(x)).
  for (int64_t t = 0; t < tokens; ++t) {
    for (int64_t d = 0; d < 8; ++d) {
      ASSERT_NEAR(out_permuted.at(0, t, d),
                  out.at(0, perm[static_cast<size_t>(t)], d), 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MhsaPermutationTest,
                         ::testing::Range(100, 110));

// ---------------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------------

TEST(SerializeTest, RoundTripRestoresParameters) {
  Rng rng(23);
  Mlp original({3, 4, 1}, Activation::kRelu, &rng);
  Mlp restored({3, 4, 1}, Activation::kRelu, &rng);  // different init

  const std::string path = testing::TempDir() + "/hire_params_test.bin";
  SaveParameters(original, path);
  LoadParameters(&restored, path);

  ag::Variable x(Tensor::Ones({2, 3}), false);
  EXPECT_TRUE(ops::AllClose(original.Forward(x).value(),
                            restored.Forward(x).value()));
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchThrows) {
  Rng rng(24);
  Mlp original({3, 4, 1}, Activation::kRelu, &rng);
  Mlp different({3, 5, 1}, Activation::kRelu, &rng);
  const std::string path = testing::TempDir() + "/hire_params_mismatch.bin";
  SaveParameters(original, path);
  EXPECT_THROW(LoadParameters(&different, path), CheckError);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileThrows) {
  Rng rng(25);
  Mlp mlp({2, 2}, Activation::kNone, &rng);
  EXPECT_THROW(LoadParameters(&mlp, "/nonexistent/path/params.bin"),
               CheckError);
}

TEST(SerializeTest, CorruptMagicThrows) {
  Rng rng(26);
  Mlp mlp({2, 2}, Activation::kNone, &rng);
  const std::string path = testing::TempDir() + "/hire_params_corrupt.bin";
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("NOTAHIREFILE", f);
  fclose(f);
  EXPECT_THROW(LoadParameters(&mlp, path), CheckError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fused attention (tape-free serve path).
// ---------------------------------------------------------------------------

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  float max_abs = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(a.flat(i) - b.flat(i)));
  }
  return max_abs;
}

TEST(FusedAttentionTest, MatchesTapeMhsaAcrossHeadConfigs) {
  Rng rng(91);
  // head_dim 16/8/4/2 hit the compile-time-specialised inner loops, 3 and 5
  // the generic strided fallback; inner != embed_dim is also covered.
  const std::vector<std::pair<int64_t, int64_t>> head_configs = {
      {1, 16}, {2, 8}, {4, 4}, {8, 2}, {2, 3}, {1, 5}};
  for (const auto& [heads, head_dim] : head_configs) {
    MhsaConfig config;
    config.embed_dim = 16;
    config.num_heads = heads;
    config.head_dim = head_dim;
    MultiHeadSelfAttention mhsa(config, &rng);
    mhsa.SetTraining(false);
    Tensor x = RandomUniform({3, 6, 16}, -1, 1, &rng);
    const Tensor tape = mhsa.Forward(ag::Variable(x, false)).value();
    const Tensor fused =
        FusedAttentionForward(PackAttentionWeights(mhsa), x);
    EXPECT_LE(MaxAbsDiff(fused, tape), 1e-5f)
        << "heads=" << heads << " head_dim=" << head_dim;
  }
}

TEST(FusedAttentionTest, SpecialisedAndGenericKernelsAreBitwiseEqual) {
  // The fixed-dim template and the generic strided kernel share one
  // operation order; dispatching between them must never change bits. Run
  // the same problem through the packed fast path (head_dim 4 dispatches to
  // the template) and through the raw generic kernel.
  Rng rng(92);
  const int64_t tokens = 9;
  const int64_t dim = 4;
  Tensor q = RandomUniform({1, tokens, dim}, -1, 1, &rng);
  // Self-attention over q with Q = K = V = q, matching what the identity
  // projections below feed the packed fast path.
  const Tensor generic = ops::OnlineSoftmaxWeightedSum(q, q, q, 0.5f);

  MhsaConfig config;
  config.embed_dim = dim;
  config.num_heads = 1;
  config.head_dim = dim;
  MultiHeadSelfAttention mhsa(config, &rng);
  FusedAttentionWeights w = PackAttentionWeights(mhsa);
  // Make the projections and output transform the identity so the fused
  // forward reduces to exactly one attention pass over x with scale
  // 1/sqrt(4) = 0.5.
  w.qkv_weight.Fill(0.0f);
  w.qkv_bias.Fill(0.0f);
  for (int64_t p = 0; p < dim; ++p) {
    w.qkv_weight.at(p, p) = 1.0f;                // Q = x
    w.qkv_weight.at(p, dim + p) = 1.0f;          // K = x
    w.qkv_weight.at(p, 2 * dim + p) = 1.0f;      // V = x
  }
  w.out_weight.Fill(0.0f);
  w.out_bias.Fill(0.0f);
  for (int64_t p = 0; p < dim; ++p) w.out_weight.at(p, p) = 1.0f;

  // With identity projections, Q = K = V = q must reproduce the generic
  // kernel applied to q bitwise.
  const Tensor fused = FusedAttentionForward(w, q);
  ASSERT_TRUE(fused.SameShape(generic));
  for (int64_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused.flat(i), generic.flat(i)) << "flat index " << i;
  }
}

TEST(FusedAttentionTest, QkvProjectionIsBitwiseThreeLinears) {
  // The packed [e, 3*inner] GEMM must reproduce the three tape Linears
  // bit-for-bit: each output column accumulates independently.
  Rng rng(93);
  MhsaConfig config;
  config.embed_dim = 12;
  config.num_heads = 3;
  config.head_dim = 5;
  MultiHeadSelfAttention mhsa(config, &rng);
  const FusedAttentionWeights w = PackAttentionWeights(mhsa);
  const int64_t inner = w.inner();

  Tensor x = RandomUniform({7, 12}, -1, 1, &rng);
  Tensor qkv({7, 3 * inner});
  ops::GemmBiasActInto(x.data(), w.qkv_weight.data(), w.qkv_bias.data(),
                       qkv.data(), 7, 12, 3 * inner);

  const auto params = mhsa.NamedParameters();
  auto linear = [&](const std::string& name) {
    const Tensor* weight = nullptr;
    const Tensor* bias = nullptr;
    for (const auto& [param_name, variable] : params) {
      if (param_name == name + ".weight") weight = &variable.value();
      if (param_name == name + ".bias") bias = &variable.value();
    }
    HIRE_CHECK(weight != nullptr && bias != nullptr);
    return ops::AddBias(ops::MatMul(x, *weight), *bias);
  };
  const Tensor expected[3] = {linear("query"), linear("key"),
                              linear("value")};
  for (int64_t r = 0; r < 7; ++r) {
    for (int part = 0; part < 3; ++part) {
      for (int64_t c = 0; c < inner; ++c) {
        ASSERT_EQ(qkv.at(r, part * inner + c), expected[part].at(r, c))
            << "row " << r << " part " << part << " col " << c;
      }
    }
  }
}

}  // namespace
}  // namespace nn
}  // namespace hire
