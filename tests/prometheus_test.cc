// Tests for the Prometheus text exposition (obs/prometheus.h) and the
// rolling-window percentile helpers (obs/window.h).

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/window.h"

namespace hire {
namespace obs {
namespace {

HistogramSnapshot MakeHistogram(std::vector<double> bounds,
                                std::vector<uint64_t> counts_with_overflow,
                                double sum) {
  HistogramSnapshot snapshot;
  snapshot.upper_bounds = std::move(bounds);
  snapshot.bucket_counts = std::move(counts_with_overflow);
  for (uint64_t c : snapshot.bucket_counts) snapshot.count += c;
  snapshot.sum = sum;
  return snapshot;
}

/// Collects "<line>" strings starting with `prefix`.
std::vector<std::string> LinesWithPrefix(const std::string& text,
                                         const std::string& prefix) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.rfind(prefix, 0) == 0) lines.push_back(line);
  }
  return lines;
}

uint64_t TrailingInt(const std::string& line) {
  const size_t space = line.rfind(' ');
  return static_cast<uint64_t>(std::stoull(line.substr(space + 1)));
}

TEST(PrometheusNameTest, SanitizesDotsAndDashes) {
  EXPECT_EQ(PrometheusMetricName("serve.stage.forward_us.served"),
            "serve_stage_forward_us_served");
  EXPECT_EQ(PrometheusMetricName("cache-hit.rate"), "cache_hit_rate");
  EXPECT_EQ(PrometheusMetricName("already_legal:name"), "already_legal:name");
}

TEST(PrometheusNameTest, LeadingDigitAndEmpty) {
  EXPECT_EQ(PrometheusMetricName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusMetricName(""), "_");
}

TEST(PrometheusNameTest, EscapesLabelValues) {
  EXPECT_EQ(PrometheusEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(PrometheusEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeLabelValue("a\nb"), "a\\nb");
}

TEST(PrometheusTextTest, CountersGaugesAndHelpLines) {
  MetricsRegistry::Snapshot snapshot;
  snapshot.counters["serve.outcome.served"] = 42;
  snapshot.gauges["serve.uptime_seconds"] = 12.5;
  const std::string text = ToPrometheusText(snapshot);

  EXPECT_NE(text.find("# TYPE serve_outcome_served counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_outcome_served 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_uptime_seconds gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_uptime_seconds 12.5\n"), std::string::npos);
  // HELP carries the original dotted name so a scrape can be mapped back to
  // the JSON view.
  EXPECT_NE(text.find("# HELP serve_outcome_served exported from "
                      "serve.outcome.served\n"),
            std::string::npos);
}

TEST(PrometheusTextTest, HistogramBucketsAreCumulativeAndMonotone) {
  MetricsRegistry::Snapshot snapshot;
  snapshot.histograms["lat.us"] =
      MakeHistogram({1.0, 2.0, 4.0, 8.0}, {5, 0, 3, 2, 1}, 37.5);
  const std::string text = ToPrometheusText(snapshot);

  const auto buckets = LinesWithPrefix(text, "lat_us_bucket{le=\"");
  ASSERT_EQ(buckets.size(), 5u);  // 4 finite bounds + +Inf
  uint64_t previous = 0;
  for (const std::string& line : buckets) {
    const uint64_t cumulative = TrailingInt(line);
    EXPECT_GE(cumulative, previous) << line;
    previous = cumulative;
  }
  // +Inf holds the whole population (overflow folded in) and equals _count.
  EXPECT_NE(buckets.back().find("le=\"+Inf\""), std::string::npos);
  EXPECT_EQ(TrailingInt(buckets.back()), 11u);
  const auto count_lines = LinesWithPrefix(text, "lat_us_count ");
  ASSERT_EQ(count_lines.size(), 1u);
  EXPECT_EQ(TrailingInt(count_lines[0]), 11u);
  const auto sum_lines = LinesWithPrefix(text, "lat_us_sum ");
  ASSERT_EQ(sum_lines.size(), 1u);
  EXPECT_NE(sum_lines[0].find("37.5"), std::string::npos);
}

TEST(PrometheusTextTest, MatchesJsonView) {
  // The same snapshot rendered both ways must agree on every population
  // number: count, sum, and total observations.
  MetricsRegistry::Snapshot snapshot;
  snapshot.counters["requests.total"] = 7;
  snapshot.histograms["serve.request_latency_us"] =
      MakeHistogram({10.0, 100.0, 1000.0}, {2, 4, 8, 1}, 3210.0);
  const std::string prom = ToPrometheusText(snapshot);
  const std::string json = snapshot.ToJson();

  double json_count = 0.0;
  double json_sum = 0.0;
  const size_t hist = json.find("\"serve.request_latency_us\"");
  ASSERT_NE(hist, std::string::npos);
  const std::string hist_json = json.substr(hist);
  ASSERT_TRUE(FindJsonNumberField(hist_json, "count", &json_count));
  ASSERT_TRUE(FindJsonNumberField(hist_json, "sum", &json_sum));

  const auto count_lines =
      LinesWithPrefix(prom, "serve_request_latency_us_count ");
  ASSERT_EQ(count_lines.size(), 1u);
  EXPECT_EQ(static_cast<double>(TrailingInt(count_lines[0])), json_count);
  const auto sum_lines = LinesWithPrefix(prom, "serve_request_latency_us_sum ");
  ASSERT_EQ(sum_lines.size(), 1u);
  EXPECT_DOUBLE_EQ(std::stod(sum_lines[0].substr(sum_lines[0].rfind(' '))),
                   json_sum);

  const auto counter_lines = LinesWithPrefix(prom, "requests_total ");
  ASSERT_EQ(counter_lines.size(), 1u);
  double json_counter = 0.0;
  ASSERT_TRUE(FindJsonNumberField(json, "requests.total", &json_counter));
  EXPECT_EQ(static_cast<double>(TrailingInt(counter_lines[0])), json_counter);
}

TEST(PrometheusTextTest, RealRegistryHistogramRoundTrips) {
  // Exposition of a real registry histogram (exponential buckets + overflow)
  // keeps the +Inf bucket equal to _count.
  auto& registry = MetricsRegistry::Global();
  HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 4;
  Histogram* hist =
      registry.GetHistogram("prom_test.roundtrip_us", options);
  hist->Record(0.5);
  hist->Record(3.0);
  hist->Record(1e9);  // overflow
  const std::string text = ToPrometheusText(registry.Take());
  const auto buckets =
      LinesWithPrefix(text, "prom_test_roundtrip_us_bucket{le=\"+Inf\"}");
  ASSERT_EQ(buckets.size(), 1u);
  const auto counts = LinesWithPrefix(text, "prom_test_roundtrip_us_count ");
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(TrailingInt(buckets[0]), TrailingInt(counts[0]));
  EXPECT_GE(TrailingInt(counts[0]), 3u);
}

TEST(HistogramQuantileTest, InterpolatesWithinBuckets) {
  // 100 observations uniformly in bucket (0, 10].
  const HistogramSnapshot snapshot =
      MakeHistogram({10.0, 20.0}, {100, 0, 0}, 500.0);
  EXPECT_NEAR(HistogramQuantile(snapshot, 0.5), 5.0, 0.2);
  EXPECT_NEAR(HistogramQuantile(snapshot, 0.99), 9.9, 0.2);
  EXPECT_EQ(HistogramQuantile(MakeHistogram({1.0}, {0, 0}, 0.0), 0.5), 0.0);
}

TEST(HistogramQuantileTest, OverflowSaturatesAtLastBound) {
  const HistogramSnapshot snapshot =
      MakeHistogram({1.0, 2.0}, {1, 1, 8}, 100.0);
  EXPECT_EQ(HistogramQuantile(snapshot, 0.99), 2.0);
}

TEST(HistogramWindowTest, AdvanceReturnsDeltas) {
  HistogramWindow window;
  const HistogramSnapshot first =
      MakeHistogram({1.0, 2.0}, {3, 1, 0}, 4.0);
  const HistogramSnapshot delta1 = window.Advance(first);
  EXPECT_EQ(delta1.count, 4u);  // first window = everything so far

  HistogramSnapshot second = first;
  second.bucket_counts[1] += 5;
  second.count += 5;
  second.sum += 8.0;
  const HistogramSnapshot delta2 = window.Advance(second);
  EXPECT_EQ(delta2.count, 5u);
  EXPECT_EQ(delta2.bucket_counts[0], 0u);
  EXPECT_EQ(delta2.bucket_counts[1], 5u);
  EXPECT_DOUBLE_EQ(delta2.sum, 8.0);

  // An idle window yields an empty delta.
  const HistogramSnapshot delta3 = window.Advance(second);
  EXPECT_EQ(delta3.count, 0u);
}

}  // namespace
}  // namespace obs
}  // namespace hire
