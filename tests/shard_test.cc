#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "serve/http_client.h"
#include "serve/server.h"
#include "serve/shard_router.h"
#include "utils/fault_injection.h"

namespace hire {
namespace serve {
namespace {

data::Dataset SmallDataset(uint64_t seed = 1) {
  data::SyntheticConfig config;
  config.num_users = 64;
  config.num_items = 64;
  config.num_ratings = 1200;
  config.user_schema = {{"age", 4}, {"gender", 2}};
  config.item_schema = {{"genre", 5}};
  return data::GenerateSyntheticDataset(config, seed);
}

core::HireConfig SmallConfig() {
  core::HireConfig config;
  config.num_him_blocks = 2;
  config.num_heads = 2;
  config.head_dim = 4;
  config.attr_embed_dim = 4;
  return config;
}

std::string WriteModelSnapshot(const data::Dataset& dataset, uint64_t seed,
                               const std::string& name) {
  core::HireModel model(&dataset, SmallConfig(), seed);
  const std::string path = testing::TempDir() + "/" + name;
  nn::SaveParameters(model, path);
  return path;
}

graph::BipartiteGraph GraphOf(const data::Dataset& dataset) {
  return graph::BipartiteGraph(dataset.num_users(), dataset.num_items(),
                               dataset.ratings());
}

ShardRouterConfig SmallRouterConfig(int num_shards,
                                    int64_t batch_window_us = 500) {
  ShardRouterConfig config;
  config.num_shards = num_shards;
  config.cache_capacity = 64;
  config.batcher.batch_window_us = batch_window_us;
  config.batcher.max_batch_users = 4;
  config.batcher.context_users = 8;
  config.batcher.context_items = 8;
  config.batcher.seed = 11;
  config.batcher.queue_capacity = 128;
  return config;
}

ServeConfig SmallServeConfig(const std::string& model_path, int num_shards) {
  ServeConfig config;
  config.port = 0;  // ephemeral
  config.http_threads = 2;
  config.cache_capacity = 64;
  config.model_path = model_path;
  config.num_shards = num_shards;
  config.batcher.batch_window_us = 500;
  config.batcher.max_batch_users = 4;
  config.batcher.context_users = 8;
  config.batcher.context_items = 8;
  config.batcher.seed = 11;
  config.batcher.queue_capacity = 128;
  return config;
}

uint64_t CounterDelta(const obs::MetricsRegistry::Snapshot& delta,
                      const std::string& name) {
  auto it = delta.counters.find(name);
  return it == delta.counters.end() ? 0 : it->second;
}

/// Sum of one shard's outcome partition in a snapshot delta.
uint64_t ShardOutcomeSum(const obs::MetricsRegistry::Snapshot& delta,
                         int shard) {
  const std::string prefix =
      "serve.shard." + std::to_string(shard) + ".outcome.";
  uint64_t sum = 0;
  for (const char* name : {"served", "degraded", "shed", "expired", "failed"}) {
    sum += CounterDelta(delta, prefix + name);
  }
  return sum;
}

uint64_t GlobalOutcomeSum(const obs::MetricsRegistry::Snapshot& delta) {
  uint64_t sum = 0;
  for (const char* name : {"served", "degraded", "shed", "expired", "failed"}) {
    sum += CounterDelta(delta, std::string("serve.outcome.") + name);
  }
  return sum;
}

// ---------------------------------------------------------------------------
// ConsistentHashRing
// ---------------------------------------------------------------------------

TEST(ConsistentHashRingTest, StableAcrossRingInstances) {
  const ConsistentHashRing a(4);
  const ConsistentHashRing b(4);
  for (uint64_t key = 0; key < 10000; ++key) {
    ASSERT_EQ(a.ShardForKey(key), b.ShardForKey(key))
        << "two rings with the same shard count must agree on key " << key;
  }
}

TEST(ConsistentHashRingTest, EveryShardOwnsAReasonableKeyShare) {
  constexpr int kShards = 8;
  constexpr uint64_t kKeys = 20000;
  const ConsistentHashRing ring(kShards);
  std::vector<uint64_t> counts(kShards, 0);
  for (uint64_t key = 0; key < kKeys; ++key) {
    const int shard = ring.ShardForKey(key);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, kShards);
    ++counts[static_cast<size_t>(shard)];
  }
  const double uniform = static_cast<double>(kKeys) / kShards;
  for (int shard = 0; shard < kShards; ++shard) {
    EXPECT_GT(counts[static_cast<size_t>(shard)], 0u)
        << "shard " << shard << " owns no keys";
    EXPECT_LT(static_cast<double>(counts[static_cast<size_t>(shard)]),
              2.0 * uniform)
        << "shard " << shard << " is more than 2x hotter than uniform";
  }
}

TEST(ConsistentHashRingTest, GrowingTheRingMovesKeysOnlyOntoTheNewShard) {
  constexpr int kShards = 4;
  constexpr uint64_t kKeys = 20000;
  const ConsistentHashRing before(kShards);
  const ConsistentHashRing after(kShards + 1);
  uint64_t moved = 0;
  for (uint64_t key = 0; key < kKeys; ++key) {
    const int old_shard = before.ShardForKey(key);
    const int new_shard = after.ShardForKey(key);
    if (new_shard != old_shard) {
      ASSERT_EQ(new_shard, kShards)
          << "key " << key << " moved between surviving shards ("
          << old_shard << " -> " << new_shard
          << ") instead of onto the new shard";
      ++moved;
    }
  }
  // The new shard should take roughly 1/(N+1) of the keyspace; allow a wide
  // band since vnode placement is hash-random.
  const double fraction = static_cast<double>(moved) / kKeys;
  EXPECT_GT(fraction, 0.05) << "growing the ring moved almost nothing";
  EXPECT_LT(fraction, 0.45) << "growing the ring reshuffled too many keys";
}

// ---------------------------------------------------------------------------
// ShardRouter: routing + accounting invariants
// ---------------------------------------------------------------------------

TEST(ShardRouterTest, SameUserAlwaysLandsOnTheSameShard) {
  const data::Dataset dataset = SmallDataset(80);
  const std::string model = WriteModelSnapshot(dataset, 81, "shard_a.snap");
  ShardRouter router(&dataset, SmallConfig(), GraphOf(dataset),
                     SmallRouterConfig(4));
  ASSERT_TRUE(router.RollingReload(model).ok);
  router.Start();

  std::set<int> shards_seen;
  for (int64_t user = 0; user < dataset.num_users(); ++user) {
    const int expected = router.ShardForUser(user);
    for (int repeat = 0; repeat < 2; ++repeat) {
      const RatingResponse response = router.Submit(user, {1, 2}).get();
      ASSERT_TRUE(response.ok) << response.error;
      EXPECT_EQ(response.shard, expected)
          << "user " << user << " answered by a shard it does not hash to";
    }
    shards_seen.insert(expected);
  }
  EXPECT_GT(shards_seen.size(), 1u)
      << "64 users should spread over more than one of 4 shards";
  router.Stop();
}

TEST(ShardRouterTest, PerShardOutcomesExactlyPartitionRoutedTraffic) {
  const data::Dataset dataset = SmallDataset(82);
  const std::string model = WriteModelSnapshot(dataset, 83, "shard_b.snap");
  ShardRouter router(&dataset, SmallConfig(), GraphOf(dataset),
                     SmallRouterConfig(4));
  ASSERT_TRUE(router.RollingReload(model).ok);
  router.Start();

  const auto before = obs::MetricsRegistry::Global().Take();
  uint64_t total = 0;
  // A mix of served requests and early rejections (out-of-range item) so
  // more than one outcome class moves.
  for (int64_t user = 0; user < 32; ++user) {
    EXPECT_TRUE(router.Submit(user, {1, 2}).get().ok);
    ++total;
    if (user % 4 == 0) {
      EXPECT_FALSE(router.Submit(user, {dataset.num_items()}).get().ok);
      ++total;
    }
  }
  const auto delta = obs::MetricsRegistry::Global().Take().Delta(before);

  uint64_t routed_total = 0;
  for (int shard = 0; shard < 4; ++shard) {
    const std::string prefix = "serve.shard." + std::to_string(shard) + ".";
    const uint64_t routed = CounterDelta(delta, prefix + "routed");
    EXPECT_EQ(routed, ShardOutcomeSum(delta, shard))
        << "shard " << shard
        << ": routed must equal the sum of its outcome partition";
    routed_total += routed;
  }
  EXPECT_EQ(routed_total, total) << "every request routes to exactly one shard";
  EXPECT_EQ(GlobalOutcomeSum(delta), total)
      << "the global outcome partition must cover all traffic exactly once";
  router.Stop();
}

TEST(ShardRouterTest, CachesAreIsolatedPerShardAndPerGraphGeneration) {
  const data::Dataset dataset = SmallDataset(84);
  const std::string model = WriteModelSnapshot(dataset, 85, "shard_c.snap");
  ShardRouter router(&dataset, SmallConfig(), GraphOf(dataset),
                     SmallRouterConfig(4));
  ASSERT_TRUE(router.RollingReload(model).ok);
  router.Start();

  // Pick one user; only its owning shard's cache may ever hold its plan.
  const int64_t user = 5;
  const int home = router.ShardForUser(user);

  const RatingResponse first = router.Submit(user, {1, 2}).get();
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.graph_version, 1);

  const RatingResponse second = router.Submit(user, {1, 2}).get();
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.cache_hit) << "repeat request must hit the shard cache";
  EXPECT_GT(router.cache(home).size(), 0u);
  for (int shard = 0; shard < 4; ++shard) {
    if (shard == home) continue;
    EXPECT_EQ(router.cache(shard).size(), 0u)
        << "shard " << shard << " cached a plan for a user it does not own";
  }

  // Publishing a new graph generation must invalidate every shard's cache;
  // the next request is a miss answered against the new version, so a plan
  // from the old generation can never be served.
  router.UpdateGraph(GraphOf(dataset));
  EXPECT_EQ(router.graph_version(), 2);
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(router.cache(shard).size(), 0u)
        << "graph update must drop shard " << shard << "'s cache";
  }
  const RatingResponse third = router.Submit(user, {1, 2}).get();
  ASSERT_TRUE(third.ok) << third.error;
  EXPECT_FALSE(third.cache_hit)
      << "a plan built against the old graph generation was served";
  EXPECT_EQ(third.graph_version, 2);
  router.Stop();
}

TEST(ShardRouterTest, RollingReloadUnderSustainedLoadNeverFailsARequest) {
  const data::Dataset dataset = SmallDataset(86);
  const std::string model_a = WriteModelSnapshot(dataset, 87, "shard_d1.snap");
  const std::string model_b = WriteModelSnapshot(dataset, 88, "shard_d2.snap");
  ShardRouter router(&dataset, SmallConfig(), GraphOf(dataset),
                     SmallRouterConfig(4));
  ASSERT_TRUE(router.RollingReload(model_a).ok);
  router.Start();

  const auto before = obs::MetricsRegistry::Global().Take();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> failed{0};
  // Closed-loop senders: each waits for its answer, so the offered load is
  // bounded and nothing is shed — any non-ok answer is a real roll failure.
  std::vector<std::thread> senders;
  for (int t = 0; t < 3; ++t) {
    senders.emplace_back([&, t] {
      uint64_t i = 0;
      while (!stop.load()) {
        const int64_t user = (t * 19 + static_cast<int64_t>(i++) * 7) %
                             dataset.num_users();
        const RatingResponse response = router.Submit(user, {1, 2}).get();
        sent.fetch_add(1);
        if (!response.ok || response.degraded) failed.fetch_add(1);
      }
    });
  }

  int rolls = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  while (std::chrono::steady_clock::now() < deadline) {
    const RollingReloadResult result =
        router.RollingReload(rolls % 2 == 0 ? model_b : model_a);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.failed_shards, 0);
    ++rolls;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (auto& thread : senders) thread.join();

  EXPECT_GE(rolls, 4) << "the roll loop barely ran";
  EXPECT_EQ(failed.load(), 0u)
      << "rolling reloads must never fail or degrade a request";
  EXPECT_EQ(router.min_model_version(), 1 + rolls);
  for (int64_t version : router.ShardModelVersions()) {
    EXPECT_EQ(version, 1 + rolls);
  }

  const auto delta = obs::MetricsRegistry::Global().Take().Delta(before);
  EXPECT_EQ(CounterDelta(delta, "serve.outcome.served"), sent.load());
  EXPECT_EQ(GlobalOutcomeSum(delta), sent.load())
      << "outcome counters must exactly partition the load";
  EXPECT_EQ(CounterDelta(delta, "serve.reload.rolls"),
            static_cast<uint64_t>(rolls));
  uint64_t routed_total = 0;
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(CounterDelta(delta,
                           "serve.shard." + std::to_string(shard) + ".routed"),
              ShardOutcomeSum(delta, shard));
    routed_total += CounterDelta(
        delta, "serve.shard." + std::to_string(shard) + ".routed");
  }
  EXPECT_EQ(routed_total, sent.load());
  router.Stop();
}

TEST(ShardRouterTest, CorruptReloadScopedToOneShardLeavesTheRestServing) {
  FaultInjector::Global().Reset();
  const data::Dataset dataset = SmallDataset(90);
  const std::string model = WriteModelSnapshot(dataset, 91, "shard_e.snap");
  // Boot unloaded so the sick shard has no previous snapshot to fall back
  // on — it must answer degraded, the strongest isolation claim.
  ShardRouter router(&dataset, SmallConfig(), GraphOf(dataset),
                     SmallRouterConfig(4));
  router.Start();

  FaultInjector::Global().ArmServeCorruptReloadShard(1);
  const RollingReloadResult sick = router.RollingReload(model);
  EXPECT_FALSE(sick.ok);
  EXPECT_EQ(sick.failed_shards, 1);
  ASSERT_EQ(sick.shard_versions.size(), 4u);
  EXPECT_EQ(sick.shard_versions[1], 0) << "the sick shard must not publish";
  EXPECT_FALSE(sick.errors[1].empty());
  for (int shard : {0, 2, 3}) {
    EXPECT_EQ(sick.shard_versions[static_cast<size_t>(shard)], 1)
        << "healthy shard " << shard << " must still swap";
    EXPECT_TRUE(sick.errors[static_cast<size_t>(shard)].empty());
  }
  EXPECT_FALSE(router.all_loaded());
  EXPECT_EQ(sick.version, 0) << "fleet version is the conservative minimum";

  // Users owned by the sick shard degrade to the bias-table fallback; users
  // on every other shard get real model answers.
  int sick_users = 0;
  int healthy_users = 0;
  for (int64_t user = 0; user < dataset.num_users(); ++user) {
    const RatingResponse response = router.Submit(user, {1, 2}).get();
    ASSERT_TRUE(response.ok) << response.error;
    if (router.ShardForUser(user) == 1) {
      EXPECT_TRUE(response.degraded)
          << "user " << user << " on the unloaded shard must degrade";
      ++sick_users;
    } else {
      EXPECT_FALSE(response.degraded)
          << "user " << user << " is on a healthy shard";
      ++healthy_users;
    }
  }
  EXPECT_GT(sick_users, 0);
  EXPECT_GT(healthy_users, 0);

  // The fault is one-shot: the next roll heals the sick shard.
  const RollingReloadResult healed = router.RollingReload(model);
  EXPECT_TRUE(healed.ok);
  EXPECT_EQ(healed.shard_versions, (std::vector<int64_t>{2, 1, 2, 2}));
  EXPECT_TRUE(router.all_loaded());
  for (int64_t user = 0; user < dataset.num_users(); ++user) {
    if (router.ShardForUser(user) != 1) continue;
    const RatingResponse response = router.Submit(user, {1, 2}).get();
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_FALSE(response.degraded) << "healed shard must serve normally";
    break;
  }
  router.Stop();
  FaultInjector::Global().Reset();
}

// ---------------------------------------------------------------------------
// Sharded RatingServer over HTTP (event-loop front-end)
// ---------------------------------------------------------------------------

int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(ShardedServerTest, MaxConnectionsRejectsExcessAcceptsWith503) {
  const data::Dataset dataset = SmallDataset(92);
  const std::string model = WriteModelSnapshot(dataset, 93, "shard_f.snap");
  ServeConfig config = SmallServeConfig(model, 2);
  config.max_connections = 2;
  RatingServer server(&dataset, SmallConfig(), GraphOf(dataset), config);
  server.Start();

  // Fill the connection budget with idle raw sockets (accepted, never
  // written to), then prove the next connection is turned away at accept
  // time with a retryable 503 instead of growing the fd table.
  const int idle_a = RawConnect(server.port());
  const int idle_b = RawConnect(server.port());
  ASSERT_GE(idle_a, 0);
  ASSERT_GE(idle_b, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  {
    HttpClient client(server.port());
    const HttpClient::Result result = client.Get("/healthz");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.status, 503);
    const auto retry_after = result.headers.find("retry-after");
    ASSERT_NE(retry_after, result.headers.end());
    EXPECT_EQ(retry_after->second, "1");
  }

  ::close(idle_a);
  ::close(idle_b);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    HttpClient client(server.port());
    const HttpClient::Result result = client.Get("/healthz");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.status, 200)
        << "freed connection slots must be usable again";
  }
  server.Stop();
}

TEST(ShardedServerTest, PollBackendServesShardTaggedPredictions) {
  ::setenv("HIRE_SERVE_EVENT_BACKEND", "poll", 1);
  const data::Dataset dataset = SmallDataset(94);
  const std::string model = WriteModelSnapshot(dataset, 95, "shard_g.snap");
  RatingServer server(&dataset, SmallConfig(), GraphOf(dataset),
                      SmallServeConfig(model, 4));
  server.Start();

  HttpClient client(server.port());
  const HttpClient::Result health = client.Get("/healthz");
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"shards\":4"), std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"shard_versions\":[1,1,1,1]"),
            std::string::npos)
      << health.body;

  const HttpClient::Result predict =
      client.Post("/predict", "{\"user\":5,\"items\":[1,2]}");
  ASSERT_TRUE(predict.ok) << predict.error;
  EXPECT_EQ(predict.status, 200) << predict.body;
  const std::string expected_shard =
      "\"shard\":" + std::to_string(server.router().ShardForUser(5));
  EXPECT_NE(predict.body.find(expected_shard), std::string::npos)
      << predict.body;

  const HttpClient::Result metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  for (int shard = 0; shard < 4; ++shard) {
    const std::string series =
        "serve.shard." + std::to_string(shard) + ".routed";
    EXPECT_NE(metrics.body.find(series), std::string::npos)
        << "/metrics must expose " << series << " from boot";
  }
  server.Stop();
  ::unsetenv("HIRE_SERVE_EVENT_BACKEND");
}

TEST(ShardedServerTest, HttpReloadRollsAllShardsUnderConcurrentTraffic) {
  const data::Dataset dataset = SmallDataset(96);
  const std::string model_a = WriteModelSnapshot(dataset, 97, "shard_h1.snap");
  const std::string model_b = WriteModelSnapshot(dataset, 98, "shard_h2.snap");
  RatingServer server(&dataset, SmallConfig(), GraphOf(dataset),
                      SmallServeConfig(model_a, 4));
  server.Start();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> bad{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&, t] {
      HttpClient client(server.port());
      uint64_t i = 0;
      while (!stop.load()) {
        const int64_t user =
            (t * 31 + static_cast<int64_t>(i++) * 7) % dataset.num_users();
        const HttpClient::Result result = client.Post(
            "/predict",
            "{\"user\":" + std::to_string(user) + ",\"items\":[1,2]}");
        sent.fetch_add(1);
        if (!result.ok || result.status != 200) bad.fetch_add(1);
      }
    });
  }

  HttpClient admin(server.port());
  int rolls = 0;
  for (; rolls < 3; ++rolls) {
    const std::string body =
        "{\"model\":\"" + (rolls % 2 == 0 ? model_b : model_a) + "\"}";
    const HttpClient::Result result = admin.Post("/reload", body);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.status, 200) << result.body;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  stop.store(true);
  for (auto& thread : clients) thread.join();

  EXPECT_GT(sent.load(), 0u);
  EXPECT_EQ(bad.load(), 0u)
      << "rolling /reload must not fail a single in-flight request";
  HttpClient check(server.port());
  const HttpClient::Result health = check.Get("/healthz");
  ASSERT_TRUE(health.ok) << health.error;
  const std::string version = "\"model_version\":" + std::to_string(1 + rolls);
  EXPECT_NE(health.body.find(version), std::string::npos) << health.body;
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace hire
