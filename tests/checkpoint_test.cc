#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/hire_config.h"
#include "core/hire_model.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "graph/samplers.h"
#include "optim/adam.h"
#include "optim/lamb.h"
#include "optim/lookahead.h"
#include "optim/sgd.h"
#include "tensor/random.h"
#include "utils/check.h"
#include "utils/fault_injection.h"

namespace hire {
namespace core {
namespace {

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

data::Dataset SmallDataset(uint64_t seed = 1) {
  data::SyntheticConfig config;
  config.num_users = 48;
  config.num_items = 48;
  config.num_ratings = 900;
  config.user_schema = {{"age", 4}, {"gender", 2}};
  config.item_schema = {{"genre", 5}};
  return data::GenerateSyntheticDataset(config, seed);
}

HireConfig SmallConfig() {
  HireConfig config;
  config.num_him_blocks = 2;
  config.num_heads = 2;
  config.head_dim = 4;
  config.attr_embed_dim = 4;
  return config;
}

TrainerConfig SmallTrainer(int64_t steps) {
  TrainerConfig config;
  config.num_steps = steps;
  config.batch_size = 2;
  config.context_users = 6;
  config.context_items = 6;
  config.log_every = 0;
  config.num_threads = 1;
  config.seed = 17;
  return config;
}

/// Bitwise comparison of two models' parameters.
void ExpectBitwiseEqual(const nn::Module& a, const nn::Module& b) {
  const auto pa = a.NamedParameters();
  const auto pb = b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t p = 0; p < pa.size(); ++p) {
    const Tensor& ta = pa[p].second.value();
    const Tensor& tb = pb[p].second.value();
    ASSERT_TRUE(ta.SameShape(tb)) << pa[p].first;
    for (int64_t i = 0; i < ta.size(); ++i) {
      ASSERT_EQ(ta.flat(i), tb.flat(i))
          << pa[p].first << " diverges at flat index " << i;
    }
  }
}

void ExpectAllFinite(const nn::Module& module) {
  for (const auto& [name, variable] : module.NamedParameters()) {
    const Tensor& value = variable.value();
    for (int64_t i = 0; i < value.size(); ++i) {
      ASSERT_TRUE(std::isfinite(value.flat(i)))
          << name << " has a non-finite entry";
    }
  }
}

/// Scratch directory unique to the running test.
std::string ScratchDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/hire_ckpt_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Optimizer StateDict round trips: a restored optimizer must continue the
// update stream bitwise.
// ---------------------------------------------------------------------------

std::vector<ag::Variable> MakeParams(uint64_t seed) {
  Rng rng(seed);
  std::vector<ag::Variable> params;
  params.emplace_back(RandomNormal({4, 3}, 0.0f, 1.0f, &rng), true);
  params.emplace_back(RandomNormal({3}, 0.0f, 1.0f, &rng), true);
  return params;
}

void ApplyGrad(std::vector<ag::Variable>* params, uint64_t seed) {
  Rng rng(seed);
  for (ag::Variable& param : *params) {
    param.ZeroGrad();
    param.impl()->AccumulateGrad(
        RandomNormal(param.shape(), 0.0f, 0.5f, &rng));
  }
}

void ExpectParamsBitwiseEqual(const std::vector<ag::Variable>& a,
                              const std::vector<ag::Variable>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t p = 0; p < a.size(); ++p) {
    const Tensor& ta = a[p].value();
    const Tensor& tb = b[p].value();
    ASSERT_TRUE(ta.SameShape(tb));
    for (int64_t i = 0; i < ta.size(); ++i) {
      ASSERT_EQ(ta.flat(i), tb.flat(i)) << "param " << p << " index " << i;
    }
  }
}

template <typename MakeOptimizer>
void CheckOptimizerResume(MakeOptimizer make) {
  // Reference: 6 uninterrupted steps.
  auto params_a = MakeParams(7);
  auto opt_a = make(params_a);
  for (uint64_t s = 0; s < 6; ++s) {
    ApplyGrad(&params_a, 100 + s);
    opt_a->Step();
  }

  // Interrupted: 3 steps, capture, restore into a fresh optimizer over
  // parameters holding the captured values, then 3 more steps.
  auto params_b = MakeParams(7);
  auto opt_b = make(params_b);
  for (uint64_t s = 0; s < 3; ++s) {
    ApplyGrad(&params_b, 100 + s);
    opt_b->Step();
  }
  const StateDict state = opt_b->StateDict();

  auto params_c = MakeParams(7);
  for (size_t p = 0; p < params_c.size(); ++p) {
    params_c[p].mutable_value() = params_b[p].value();
  }
  auto opt_c = make(params_c);
  opt_c->LoadStateDict(state);
  for (uint64_t s = 3; s < 6; ++s) {
    ApplyGrad(&params_c, 100 + s);
    opt_c->Step();
  }

  ExpectParamsBitwiseEqual(params_a, params_c);
}

TEST(OptimizerStateDictTest, SgdMomentumResumesBitwise) {
  CheckOptimizerResume([](std::vector<ag::Variable> params) {
    return std::make_unique<optim::Sgd>(std::move(params), 0.05f, 0.9f);
  });
}

TEST(OptimizerStateDictTest, AdamResumesBitwise) {
  CheckOptimizerResume([](std::vector<ag::Variable> params) {
    return std::make_unique<optim::Adam>(std::move(params),
                                         optim::AdamConfig{});
  });
}

TEST(OptimizerStateDictTest, LambResumesBitwise) {
  CheckOptimizerResume([](std::vector<ag::Variable> params) {
    return std::make_unique<optim::Lamb>(std::move(params),
                                         optim::LambConfig{});
  });
}

TEST(OptimizerStateDictTest, LookaheadLambResumesBitwise) {
  // sync_period 2 so slow-weight syncs happen inside both segments.
  CheckOptimizerResume([](std::vector<ag::Variable> params) {
    auto lamb = std::make_unique<optim::Lamb>(std::move(params),
                                              optim::LambConfig{});
    return std::make_unique<optim::Lookahead>(std::move(lamb), 0.5f, 2);
  });
}

TEST(OptimizerStateDictTest, ShapeMismatchOnLoadThrows) {
  auto params = MakeParams(9);
  optim::Adam adam(params, optim::AdamConfig{});
  StateDict bad = adam.StateDict();
  bad.tensors["adam.m.0"] = Tensor::Zeros({2, 2});
  EXPECT_THROW(adam.LoadStateDict(bad), CheckError);
}

// ---------------------------------------------------------------------------
// Trainer kill/resume equivalence.
// ---------------------------------------------------------------------------

class TrainerCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    dataset_ = std::make_unique<data::Dataset>(SmallDataset());
    graph_ = std::make_unique<graph::BipartiteGraph>(
        dataset_->num_users(), dataset_->num_items(), dataset_->ratings());
  }

  void TearDown() override {
    FaultInjector::Global().Reset();
    if (!scratch_.empty()) std::filesystem::remove_all(scratch_);
  }

  HireModel MakeModel() { return HireModel(dataset_.get(), SmallConfig(), 5); }

  TrainStats Train(HireModel* model, const TrainerConfig& config) {
    graph::NeighborhoodSampler sampler;
    return TrainHire(model, *graph_, sampler, config);
  }

  std::unique_ptr<data::Dataset> dataset_;
  std::unique_ptr<graph::BipartiteGraph> graph_;
  std::string scratch_;
};

TEST_F(TrainerCheckpointTest, InterruptedRunResumesBitwiseIdentical) {
  scratch_ = ScratchDir("resume");

  // Reference: 24 uninterrupted steps, no checkpointing.
  HireModel reference = MakeModel();
  Train(&reference, SmallTrainer(24));

  // Same run with checkpointing on (snapshots at 5, 10, 15, 20).
  // Checkpointing must not perturb training.
  {
    HireModel writer = MakeModel();
    TrainerConfig config = SmallTrainer(24);
    config.checkpoint_every = 5;
    config.checkpoint_keep = 10;
    config.checkpoint_dir = scratch_;
    const TrainStats stats = Train(&writer, config);
    EXPECT_EQ(stats.checkpoints_written, 4);
    ExpectBitwiseEqual(reference, writer);
  }

  // Simulate a crash between steps 15 and 20: the ckpt-20 snapshot was
  // never written. Resume in a fresh process-equivalent (new model object,
  // same seed/flags) must redo 15..23 and land bitwise on the reference —
  // including steps past the cosine-anneal boundary (0.7 * 24 ≈ 17).
  std::filesystem::remove(scratch_ + "/" + CheckpointFileName(20));

  HireModel resumed = MakeModel();
  TrainerConfig config = SmallTrainer(24);
  config.checkpoint_every = 5;
  config.checkpoint_keep = 10;
  config.checkpoint_dir = scratch_;
  config.resume = true;
  const TrainStats stats = Train(&resumed, config);
  EXPECT_EQ(stats.start_step, 15);

  ExpectBitwiseEqual(reference, resumed);
}

TEST_F(TrainerCheckpointTest, CorruptNewestCheckpointFallsBackToOlderValid) {
  scratch_ = ScratchDir("fallback");

  HireModel reference = MakeModel();
  Train(&reference, SmallTrainer(24));

  {
    HireModel writer = MakeModel();
    TrainerConfig config = SmallTrainer(24);
    config.checkpoint_every = 5;
    config.checkpoint_keep = 10;
    config.checkpoint_dir = scratch_;
    Train(&writer, config);
  }

  // Flip one bit in the newest snapshot: the checksum must reject it and
  // resume must fall back to the previous one — and still match the
  // uninterrupted run bitwise.
  const std::string newest = scratch_ + "/" + CheckpointFileName(20);
  FlipFileBit(newest, FileSize(newest) / 2, 5);

  HireModel resumed = MakeModel();
  TrainerConfig config = SmallTrainer(24);
  config.checkpoint_every = 5;
  config.checkpoint_keep = 10;
  config.checkpoint_dir = scratch_;
  config.resume = true;
  const TrainStats stats = Train(&resumed, config);
  EXPECT_EQ(stats.start_step, 15);

  ExpectBitwiseEqual(reference, resumed);
}

TEST_F(TrainerCheckpointTest, TruncatedCheckpointIsRejected) {
  scratch_ = ScratchDir("truncated");

  {
    HireModel model = MakeModel();
    TrainerConfig config = SmallTrainer(12);
    config.checkpoint_every = 5;
    config.checkpoint_dir = scratch_;
    Train(&model, config);
  }
  const std::string newest = scratch_ + "/" + CheckpointFileName(10);
  TruncateFile(newest, FileSize(newest) / 3);

  const auto loaded = LoadLatestCheckpoint(scratch_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->path, scratch_ + "/" + CheckpointFileName(5));
}

TEST_F(TrainerCheckpointTest, CorruptHeaderSizeFieldFallsBackToOlderValid) {
  scratch_ = ScratchDir("badsize");

  {
    HireModel model = MakeModel();
    TrainerConfig config = SmallTrainer(12);
    config.checkpoint_every = 5;
    config.checkpoint_dir = scratch_;
    Train(&model, config);
  }
  // The payload-size field (bytes 12..19) is outside the CRC. Blowing its
  // high byte up must still be detected and skipped — not abort resume with
  // a bad_alloc — so recovery lands on the older valid snapshot.
  const std::string newest = scratch_ + "/" + CheckpointFileName(10);
  FlipFileBit(newest, 19, 7);

  const auto loaded = LoadLatestCheckpoint(scratch_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->path, scratch_ + "/" + CheckpointFileName(5));
}

TEST_F(TrainerCheckpointTest, HarnessCorruptedCheckpointsForceFreshStart) {
  scratch_ = ScratchDir("allcorrupt");

  // The harness bit-flips every checkpoint as it is written.
  FaultInjector::Global().ArmBitflipCheckpoint(true);
  {
    HireModel model = MakeModel();
    TrainerConfig config = SmallTrainer(12);
    config.checkpoint_every = 4;
    config.checkpoint_dir = scratch_;
    Train(&model, config);
  }
  FaultInjector::Global().Reset();
  EXPECT_FALSE(LoadLatestCheckpoint(scratch_).has_value());

  // Resume finds nothing usable and starts from scratch instead of dying.
  HireModel resumed = MakeModel();
  TrainerConfig config = SmallTrainer(6);
  config.checkpoint_dir = scratch_;
  config.resume = true;
  const TrainStats stats = Train(&resumed, config);
  EXPECT_EQ(stats.start_step, 0);
}

TEST_F(TrainerCheckpointTest, RetentionKeepsOnlyNewestK) {
  scratch_ = ScratchDir("retention");

  HireModel model = MakeModel();
  TrainerConfig config = SmallTrainer(20);
  config.checkpoint_every = 4;  // checkpoints at 4, 8, 12, 16, 20
  config.checkpoint_keep = 2;
  config.checkpoint_dir = scratch_;
  Train(&model, config);

  const std::vector<int64_t> steps = ListCheckpointSteps(scratch_);
  EXPECT_EQ(steps, (std::vector<int64_t>{16, 20}));
}

// ---------------------------------------------------------------------------
// Divergence guards.
// ---------------------------------------------------------------------------

TEST_F(TrainerCheckpointTest, NanLossStepIsSkippedWithoutAborting) {
  FaultInjector::Global().ArmNanLossAtSteps({3});

  HireModel model = MakeModel();
  TrainerConfig config = SmallTrainer(8);
  config.max_bad_steps = 3;
  const TrainStats stats = Train(&model, config);

  EXPECT_EQ(stats.skipped_steps, 1);
  EXPECT_EQ(stats.rollbacks, 0);
  // 8 scheduled steps minus the skipped one produced updates.
  EXPECT_EQ(stats.step_losses.size(), 7u);
  EXPECT_TRUE(std::isfinite(stats.final_loss));
  ExpectAllFinite(model);
}

TEST_F(TrainerCheckpointTest, ConsecutiveNanStepsTriggerRollbackAndBackoff) {
  scratch_ = ScratchDir("rollback");
  FaultInjector::Global().ArmNanLossAtSteps({5, 6, 7});

  HireModel model = MakeModel();
  TrainerConfig config = SmallTrainer(12);
  config.checkpoint_every = 2;
  config.checkpoint_dir = scratch_;
  config.max_bad_steps = 3;
  const TrainStats stats = Train(&model, config);

  EXPECT_EQ(stats.skipped_steps, 3);
  EXPECT_EQ(stats.rollbacks, 1);
  EXPECT_FLOAT_EQ(stats.final_lr_scale, 0.5f);
  EXPECT_TRUE(std::isfinite(stats.final_loss));
  ExpectAllFinite(model);
}

TEST_F(TrainerCheckpointTest, RepeatedDivergenceCompoundsBackoff) {
  scratch_ = ScratchDir("compound");
  // Each step is armed twice: the replayed trajectory after the first
  // rollback diverges again at the same steps. The backoff must compound
  // (0.5 then 0.25) rather than re-deriving 0.5 from the static anchor —
  // the latter replays an identical trajectory and livelocks.
  FaultInjector::Global().ArmNanLossAtSteps({5, 5, 6, 6});

  HireModel model = MakeModel();
  TrainerConfig config = SmallTrainer(12);
  config.checkpoint_every = 2;
  config.checkpoint_dir = scratch_;
  config.max_bad_steps = 2;
  const TrainStats stats = Train(&model, config);

  EXPECT_EQ(stats.skipped_steps, 4);
  EXPECT_EQ(stats.rollbacks, 2);
  EXPECT_FLOAT_EQ(stats.final_lr_scale, 0.25f);
  // Rolled-back trajectories are truncated from the loss log, so the 12
  // surviving steps report exactly 12 losses (no double counting).
  EXPECT_EQ(stats.step_losses.size(), 12u);
  EXPECT_TRUE(std::isfinite(stats.final_loss));
  ExpectAllFinite(model);
}

TEST_F(TrainerCheckpointTest, RollbackCapAbortsUnrecoverableRun) {
  // Step 3 diverges on every visit (armed three times); with no
  // checkpointing the anchor is the starting state, so every rollback
  // replays from step 0. The cap must abort with CheckError instead of
  // retrying forever.
  FaultInjector::Global().ArmNanLossAtSteps({3, 3, 3});

  HireModel model = MakeModel();
  TrainerConfig config = SmallTrainer(8);
  config.max_bad_steps = 1;
  config.max_rollbacks = 2;
  EXPECT_THROW(Train(&model, config), CheckError);
}

TEST_F(TrainerCheckpointTest, GuardDisabledStillRunsToCompletion) {
  FaultInjector::Global().ArmNanLossAtSteps({2});

  HireModel model = MakeModel();
  TrainerConfig config = SmallTrainer(4);
  config.max_bad_steps = 0;  // guard off: NaN reaches the parameters
  const TrainStats stats = Train(&model, config);
  EXPECT_EQ(stats.skipped_steps, 0);
  EXPECT_EQ(stats.step_losses.size(), 4u);
}

// ---------------------------------------------------------------------------
// CaptureTrainingState / RestoreTrainingState round trip.
// ---------------------------------------------------------------------------

TEST_F(TrainerCheckpointTest, CaptureRestoreRoundTripsRngAndLoopState) {
  HireModel model = MakeModel();
  auto lamb = std::make_unique<optim::Lamb>(model.Parameters(),
                                            optim::LambConfig{});
  optim::Lookahead optimizer(std::move(lamb), 0.5f, 6);
  Rng rng(99);
  rng.Normal();  // populate the Box–Muller cache

  const StateDict state =
      CaptureTrainingState(model, optimizer, rng, ResumeInfo{42, 0.25f});

  HireModel other = MakeModel();
  auto lamb2 = std::make_unique<optim::Lamb>(other.Parameters(),
                                             optim::LambConfig{});
  optim::Lookahead optimizer2(std::move(lamb2), 0.5f, 6);
  Rng rng2(1);
  const ResumeInfo info =
      RestoreTrainingState(state, &other, &optimizer2, &rng2);

  EXPECT_EQ(info.next_step, 42);
  EXPECT_EQ(info.lr_scale, 0.25f);
  ExpectBitwiseEqual(model, other);
  // The restored stream continues exactly.
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(rng.Next(), rng2.Next());
  }
  ASSERT_EQ(rng.Normal(), rng2.Normal());
}

}  // namespace
}  // namespace core
}  // namespace hire
