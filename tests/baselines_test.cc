#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/afn.h"
#include "baselines/deepfm.h"
#include "baselines/feature_embedder.h"
#include "baselines/graphrec_lite.h"
#include "baselines/melu_fo.h"
#include "baselines/neumf.h"
#include "baselines/pointwise_trainer.h"
#include "baselines/matrix_factorization.h"
#include "baselines/simple_baselines.h"
#include "baselines/tanp_lite.h"
#include "baselines/wide_deep.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "tensor/ops.h"
#include "utils/check.h"

namespace hire {
namespace baselines {
namespace {

data::Dataset SmallDataset(uint64_t seed = 1, bool social = false) {
  data::SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 50;
  config.num_ratings = 1200;
  config.user_schema = {{"age", 4}, {"gender", 2}};
  config.item_schema = {{"genre", 5}};
  config.generate_social = social;
  return data::GenerateSyntheticDataset(config, seed);
}

TEST(FeatureEmbedderTest, DimensionsMatchSchema) {
  data::Dataset dataset = SmallDataset();
  Rng rng(2);
  FeatureEmbedder embedder(&dataset, 4, &rng);
  EXPECT_EQ(embedder.num_user_fields(), 2);
  EXPECT_EQ(embedder.num_item_fields(), 1);
  EXPECT_EQ(embedder.user_dim(), 8);
  EXPECT_EQ(embedder.item_dim(), 4);
  EXPECT_EQ(embedder.pair_dim(), 12);
}

TEST(FeatureEmbedderTest, PairEmbeddingShapes) {
  data::Dataset dataset = SmallDataset();
  Rng rng(3);
  FeatureEmbedder embedder(&dataset, 4, &rng);
  std::vector<std::pair<int64_t, int64_t>> pairs{{0, 1}, {2, 3}, {4, 5}};
  EXPECT_EQ(embedder.EmbedPairsFlat(pairs).shape(),
            (std::vector<int64_t>{3, 12}));
  EXPECT_EQ(embedder.EmbedPairsFields(pairs).shape(),
            (std::vector<int64_t>{3, 3, 4}));
}

TEST(FeatureEmbedderTest, SameAttributesSameEmbedding) {
  data::Dataset dataset("d", {{"a", 2}}, {{"b", 2}}, 4, 4, 1.0f, 5.0f);
  dataset.SetUserAttributes(0, {1});
  dataset.SetUserAttributes(1, {1});
  dataset.SetUserAttributes(2, {0});
  Rng rng(4);
  FeatureEmbedder embedder(&dataset, 4, &rng);
  Tensor both = embedder.EmbedUsers({0, 1, 2}).value();
  EXPECT_TRUE(ops::AllClose(ops::Slice(both, 0, 0, 1),
                            ops::Slice(both, 0, 1, 1)));
  EXPECT_FALSE(ops::AllClose(ops::Slice(both, 0, 0, 1),
                             ops::Slice(both, 0, 2, 1)));
}

// Shared harness: a pointwise model should produce in-range scores and
// reduce its training loss.
void ExpectTrainsAndPredicts(PointwiseModel* model,
                             const data::Dataset& dataset, bool needs_graph) {
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());

  std::vector<std::pair<int64_t, int64_t>> pairs{{0, 1}, {2, 3}};
  ag::Variable scores =
      model->ScoreBatch(pairs, needs_graph ? &graph : nullptr);
  ASSERT_EQ(scores.shape(), (std::vector<int64_t>{2}));
  for (int64_t i = 0; i < 2; ++i) {
    EXPECT_GE(scores.value().flat(i), 0.0f);
    EXPECT_LE(scores.value().flat(i), dataset.max_rating());
  }

  PointwiseTrainConfig config;
  config.num_steps = 60;
  config.batch_size = 32;
  config.seed = 5;

  // Measure MSE over a fixed probe set before and after training.
  auto probe_mse = [&]() {
    std::vector<std::pair<int64_t, int64_t>> probe_pairs;
    std::vector<float> probe_targets;
    for (size_t r = 0; r < 200 && r < dataset.ratings().size(); ++r) {
      const data::Rating& rating = dataset.ratings()[r];
      probe_pairs.emplace_back(rating.user, rating.item);
      probe_targets.push_back(rating.value);
    }
    const ag::Variable predicted = model->ScoreBatch(probe_pairs, &graph);
    double mse = 0.0;
    for (size_t i = 0; i < probe_targets.size(); ++i) {
      const double diff =
          predicted.value().flat(static_cast<int64_t>(i)) - probe_targets[i];
      mse += diff * diff;
    }
    return mse / static_cast<double>(probe_targets.size());
  };

  const double before = probe_mse();
  FitPointwise(model, dataset.ratings(), &graph, config);
  const double after = probe_mse();
  EXPECT_LT(after, before) << model->name() << " did not learn";

  // Predictor adapter returns one value per item.
  PointwisePredictor predictor(model);
  const std::vector<float> predictions =
      predictor.PredictForUser(0, {0, 1, 2, 3}, graph);
  EXPECT_EQ(predictions.size(), 4u);
}

TEST(NeuMFTest, TrainsAndPredicts) {
  data::Dataset dataset = SmallDataset(11);
  NeuMF model(&dataset, 4, 12);
  ExpectTrainsAndPredicts(&model, dataset, false);
}

TEST(WideDeepTest, TrainsAndPredicts) {
  data::Dataset dataset = SmallDataset(13);
  WideDeep model(&dataset, 4, 14);
  ExpectTrainsAndPredicts(&model, dataset, false);
}

TEST(DeepFMTest, TrainsAndPredicts) {
  data::Dataset dataset = SmallDataset(15);
  DeepFM model(&dataset, 4, 16);
  ExpectTrainsAndPredicts(&model, dataset, false);
}

TEST(AFNTest, TrainsAndPredicts) {
  data::Dataset dataset = SmallDataset(17);
  AFN model(&dataset, 4, /*num_log_neurons=*/6, 18);
  ExpectTrainsAndPredicts(&model, dataset, false);
}

TEST(GraphRecLiteTest, TrainsAndPredicts) {
  data::Dataset dataset = SmallDataset(19, /*social=*/true);
  GraphRecLite model(&dataset, 4, /*max_neighbors=*/8, 20);
  ExpectTrainsAndPredicts(&model, dataset, true);
}

TEST(GraphRecLiteTest, RequiresGraph) {
  data::Dataset dataset = SmallDataset(21, true);
  GraphRecLite model(&dataset, 4, 8, 22);
  std::vector<std::pair<int64_t, int64_t>> pairs{{0, 0}};
  EXPECT_THROW(model.ScoreBatch(pairs, nullptr), CheckError);
}

TEST(MeLUTest, MetaTrainImprovesAdaptedQueryLoss) {
  data::Dataset dataset = SmallDataset(23);
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  MeLUConfig config;
  config.meta_iterations = 120;
  config.tasks_per_batch = 4;
  config.inner_steps = 2;
  config.seed = 24;
  MeLUFO model(&dataset, 4, config);

  // Probe: predictions for a handful of users before/after meta-training.
  auto probe_mse = [&]() {
    double mse = 0.0;
    int64_t count = 0;
    for (int64_t u = 0; u < 10; ++u) {
      const auto& items = graph.ItemsOfUser(u);
      if (items.size() < 3) continue;
      std::vector<int64_t> query(items.begin(), items.end());
      const std::vector<float> predicted =
          model.PredictForUser(u, query, graph);
      for (size_t j = 0; j < query.size(); ++j) {
        const double diff = predicted[j] - *graph.GetRating(u, query[j]);
        mse += diff * diff;
        ++count;
      }
    }
    return mse / static_cast<double>(count);
  };

  const double before = probe_mse();
  model.MetaTrain(dataset.ratings());
  const double after = probe_mse();
  EXPECT_LT(after, before) << "meta-training did not help adaptation";
}

TEST(MeLUTest, PredictRestoresParameters) {
  data::Dataset dataset = SmallDataset(25);
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  MeLUConfig config;
  config.seed = 26;
  MeLUFO model(&dataset, 4, config);

  // Two identical calls must give identical results (adaptation must not
  // mutate the meta-parameters).
  const std::vector<float> a = model.PredictForUser(0, {0, 1, 2}, graph);
  const std::vector<float> b = model.PredictForUser(0, {0, 1, 2}, graph);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i], b[i]);
  }
}

TEST(PopularityTest, PredictsItemMeans) {
  data::Dataset dataset("d", {{"a", 2}}, {{"b", 2}}, 3, 3, 1.0f, 5.0f);
  dataset.AddRating(0, 0, 4.0f);
  dataset.AddRating(1, 0, 2.0f);
  dataset.AddRating(0, 1, 5.0f);
  PopularityBaseline popularity(&dataset, dataset.ratings());
  graph::BipartiteGraph graph(3, 3, dataset.ratings());
  const std::vector<float> predictions =
      popularity.PredictForUser(2, {0, 1, 2}, graph);
  EXPECT_FLOAT_EQ(predictions[0], 3.0f);        // (4+2)/2
  EXPECT_FLOAT_EQ(predictions[1], 5.0f);        // single rating
  EXPECT_NEAR(predictions[2], 11.0f / 3.0f, 1e-5f);  // global mean fallback
}

TEST(ItemKnnTest, PrefersSimilarItems) {
  // Items 0 and 1 are co-rated identically by users 0..3 => high cosine.
  data::Dataset dataset("d", {{"a", 2}}, {{"b", 2}}, 6, 4, 1.0f, 5.0f);
  for (int64_t u = 0; u < 4; ++u) {
    dataset.AddRating(u, 0, 5.0f);
    dataset.AddRating(u, 1, 5.0f);
    dataset.AddRating(u, 2, 1.0f);
  }
  ItemKnnBaseline knn(&dataset, dataset.ratings());

  // User 5 rated item 1 high; predicting item 0 should be pulled high.
  std::vector<data::Rating> visible = dataset.ratings();
  visible.push_back({5, 1, 5.0f});
  graph::BipartiteGraph graph(6, 4, visible);
  const std::vector<float> predictions = knn.PredictForUser(5, {0}, graph);
  EXPECT_GT(predictions[0], 4.0f);
}

TEST(ItemKnnTest, FallsBackForUserWithoutEvidence) {
  data::Dataset dataset("d", {{"a", 2}}, {{"b", 2}}, 3, 2, 1.0f, 5.0f);
  dataset.AddRating(0, 0, 4.0f);
  ItemKnnBaseline knn(&dataset, dataset.ratings());
  graph::BipartiteGraph graph(3, 2, dataset.ratings());
  // User 2 has no visible ratings: prediction falls back to item mean.
  const std::vector<float> predictions = knn.PredictForUser(2, {0}, graph);
  EXPECT_FLOAT_EQ(predictions[0], 4.0f);
}

TEST(TaNPLiteTest, MetaTrainReducesQueryError) {
  data::Dataset dataset = SmallDataset(31);
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  TaNPConfig config;
  config.meta_iterations = 150;
  config.seed = 32;
  TaNPLite model(&dataset, 4, config);

  auto probe_mse = [&]() {
    double mse = 0.0;
    int64_t count = 0;
    for (int64_t u = 0; u < 10; ++u) {
      const auto& items = graph.ItemsOfUser(u);
      if (items.size() < 3) continue;
      std::vector<int64_t> query(items.begin(), items.end());
      const std::vector<float> predicted =
          model.PredictForUser(u, query, graph);
      for (size_t j = 0; j < query.size(); ++j) {
        const double diff = predicted[j] - *graph.GetRating(u, query[j]);
        mse += diff * diff;
        ++count;
      }
    }
    return mse / static_cast<double>(count);
  };

  const double before = probe_mse();
  model.MetaTrain(dataset.ratings());
  const double after = probe_mse();
  EXPECT_LT(after, before) << "TaNP-lite did not learn";
}

TEST(TaNPLiteTest, AdaptationIsAmortizedAndSideEffectFree) {
  data::Dataset dataset = SmallDataset(33);
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  TaNPConfig config;
  config.seed = 34;
  TaNPLite model(&dataset, 4, config);
  // Repeated predictions are identical: no parameters change at test time.
  const std::vector<float> a = model.PredictForUser(0, {0, 1, 2}, graph);
  const std::vector<float> b = model.PredictForUser(0, {0, 1, 2}, graph);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i], b[i]);
  }
}

TEST(TaNPLiteTest, SupportSetChangesPrediction) {
  // The task embedding must condition the decoder: the same query under
  // different visible support sets should generally differ.
  data::Dataset dataset = SmallDataset(35);
  TaNPConfig config;
  config.seed = 36;
  TaNPLite model(&dataset, 4, config);
  model.MetaTrain(dataset.ratings());

  // Two visibility graphs for the same user: none vs. some support.
  graph::BipartiteGraph empty(dataset.num_users(), dataset.num_items(), {});
  graph::BipartiteGraph full(dataset.num_users(), dataset.num_items(),
                             dataset.ratings());
  const std::vector<float> without = model.PredictForUser(0, {0, 1}, empty);
  const std::vector<float> with = model.PredictForUser(0, {0, 1}, full);
  EXPECT_TRUE(without[0] != with[0] || without[1] != with[1])
      << "support set has no effect on TaNP-lite predictions";
}

TEST(MatrixFactorizationTest, FitsObservedRatings) {
  data::Dataset dataset = SmallDataset(37);
  MfConfig config;
  config.seed = 38;
  MatrixFactorization mf(&dataset, config);
  mf.Fit(dataset.ratings());

  double mse = 0.0;
  for (size_t r = 0; r < 300 && r < dataset.ratings().size(); ++r) {
    const data::Rating& rating = dataset.ratings()[r];
    const double diff = mf.Predict(rating.user, rating.item) - rating.value;
    mse += diff * diff;
  }
  mse /= 300.0;
  EXPECT_LT(mse, 1.2) << "MF failed to fit the training ratings";
}

TEST(MatrixFactorizationTest, PredictionsAreClampedToScale) {
  data::Dataset dataset = SmallDataset(39);
  MfConfig config;
  MatrixFactorization mf(&dataset, config);
  mf.Fit(dataset.ratings());
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  const std::vector<float> predictions =
      mf.PredictForUser(0, {0, 1, 2, 3, 4}, graph);
  for (float p : predictions) {
    EXPECT_GE(p, dataset.min_rating());
    EXPECT_LE(p, dataset.max_rating());
  }
}

TEST(MatrixFactorizationTest, FoldInUsesSupportRatings) {
  // A cold user (no training ratings) with strongly positive support should
  // get higher predictions than with strongly negative support.
  data::Dataset dataset("d", {{"a", 2}}, {{"b", 2}}, 10, 8, 1.0f, 5.0f);
  Rng rng(40);
  for (int64_t u = 0; u < 9; ++u) {
    for (int64_t i = 0; i < 6; ++i) {
      dataset.AddRating(u, i, 1.0f + static_cast<float>(rng.UniformInt(5)));
    }
  }
  MfConfig config;
  MatrixFactorization mf(&dataset, config);
  mf.Fit(dataset.ratings());

  std::vector<data::Rating> high_support{{9, 0, 5.0f}, {9, 1, 5.0f}};
  std::vector<data::Rating> low_support{{9, 0, 1.0f}, {9, 1, 1.0f}};
  graph::BipartiteGraph high(10, 8, high_support);
  graph::BipartiteGraph low(10, 8, low_support);
  const float with_high = mf.PredictForUser(9, {6}, high)[0];
  const float with_low = mf.PredictForUser(9, {6}, low)[0];
  EXPECT_GT(with_high, with_low);
}

TEST(PointwiseTrainerTest, ValidatesInputs) {
  data::Dataset dataset = SmallDataset(27);
  NeuMF model(&dataset, 4, 28);
  PointwiseTrainConfig config;
  EXPECT_THROW(FitPointwise(&model, {}, nullptr, config), CheckError);
  EXPECT_THROW(FitPointwise(nullptr, dataset.ratings(), nullptr, config),
               CheckError);
}

}  // namespace
}  // namespace baselines
}  // namespace hire
