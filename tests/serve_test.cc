#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/inference_forward.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "graph/context_builder.h"
#include "nn/serialize.h"
#include "tensor/random.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "graph/samplers.h"
#include "utils/logging.h"
#include "serve/batcher.h"
#include "serve/bounded_queue.h"
#include "serve/context_cache.h"
#include "serve/http_client.h"
#include "serve/inference_engine.h"
#include "serve/server.h"
#include "utils/check.h"
#include "utils/fault_injection.h"

namespace hire {
namespace serve {
namespace {

data::Dataset SmallDataset(uint64_t seed = 1) {
  data::SyntheticConfig config;
  config.num_users = 64;
  config.num_items = 64;
  config.num_ratings = 1200;
  config.user_schema = {{"age", 4}, {"gender", 2}};
  config.item_schema = {{"genre", 5}};
  return data::GenerateSyntheticDataset(config, seed);
}

core::HireConfig SmallConfig() {
  core::HireConfig config;
  config.num_him_blocks = 2;
  config.num_heads = 2;
  config.head_dim = 4;
  config.attr_embed_dim = 4;
  return config;
}

/// Writes an (untrained) model snapshot for the given seed and returns its
/// path. Serving correctness does not depend on training quality.
std::string WriteModelSnapshot(const data::Dataset& dataset, uint64_t seed,
                               const std::string& name) {
  core::HireModel model(&dataset, SmallConfig(), seed);
  const std::string path = testing::TempDir() + "/" + name;
  nn::SaveParameters(model, path);
  return path;
}

ServeConfig SmallServeConfig(const std::string& model_path,
                             int64_t batch_window_us = 2000) {
  ServeConfig config;
  config.port = 0;  // ephemeral
  config.http_threads = 2;
  config.cache_capacity = 64;
  config.model_path = model_path;
  config.batcher.batch_window_us = batch_window_us;
  config.batcher.max_batch_users = 4;
  config.batcher.context_users = 8;
  config.batcher.context_items = 8;
  config.batcher.seed = 11;
  config.batcher.queue_capacity = 128;
  return config;
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, FifoOrderAndCapacityBound) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3)) << "push beyond capacity must fail";
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_FALSE(queue.TryPop().has_value());
}

TEST(BoundedQueueTest, FailedPushLeavesTheItemIntact) {
  BoundedQueue<std::unique_ptr<int>> queue(1);
  ASSERT_TRUE(queue.TryPush(std::make_unique<int>(1)));
  auto rejected = std::make_unique<int>(2);
  EXPECT_FALSE(queue.TryPush(std::move(rejected)));
  ASSERT_NE(rejected, nullptr)
      << "a push rejected for capacity must not move from the item";
  EXPECT_EQ(*rejected, 2);
  queue.Close();
  EXPECT_FALSE(queue.TryPush(std::move(rejected)));
  EXPECT_NE(rejected, nullptr)
      << "a push rejected after Close must not move from the item";
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsShutdown) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(7));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(8)) << "pushes after Close must fail";
  EXPECT_EQ(queue.Pop().value(), 7) << "queued items drain after Close";
  EXPECT_FALSE(queue.Pop().has_value()) << "drained+closed pops nullopt";
}

TEST(BoundedQueueTest, PopUntilTimesOutAndCloseWakesBlockedPop) {
  BoundedQueue<int> queue(4);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(
      queue.PopUntil(start + std::chrono::milliseconds(20)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(20));

  std::thread closer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.Close();
  });
  EXPECT_FALSE(queue.Pop().has_value()) << "Close must wake a blocked Pop";
  closer.join();
}

// ---------------------------------------------------------------------------
// ContextCache
// ---------------------------------------------------------------------------

std::shared_ptr<const core::UserContextPlan> FakePlan(int64_t user) {
  auto plan = std::make_shared<core::UserContextPlan>();
  plan->user = user;
  plan->context_users = {user};
  return plan;
}

TEST(ContextCacheTest, HitMissAndLruEviction) {
  ContextCache cache(2);
  EXPECT_EQ(cache.Get(1, 1), nullptr);
  cache.Put(1, 1, FakePlan(1));
  cache.Put(2, 1, FakePlan(2));
  EXPECT_NE(cache.Get(1, 1), nullptr);  // 1 is now most recently used
  cache.Put(3, 1, FakePlan(3));         // evicts 2, the LRU entry
  EXPECT_EQ(cache.Get(2, 1), nullptr);
  EXPECT_NE(cache.Get(1, 1), nullptr);
  EXPECT_NE(cache.Get(3, 1), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ContextCacheTest, GraphVersionIsPartOfTheKey) {
  ContextCache cache(4);
  cache.Put(1, 1, FakePlan(1));
  EXPECT_EQ(cache.Get(1, 2), nullptr)
      << "a plan for graph v1 must not serve graph v2";
  EXPECT_NE(cache.Get(1, 1), nullptr);
}

TEST(ContextCacheTest, InvalidationDropsEntries) {
  ContextCache cache(8);
  cache.Put(1, 1, FakePlan(1));
  cache.Put(1, 2, FakePlan(1));
  cache.Put(2, 1, FakePlan(2));
  cache.InvalidateUser(1);
  EXPECT_EQ(cache.Get(1, 1), nullptr);
  EXPECT_EQ(cache.Get(1, 2), nullptr);
  EXPECT_NE(cache.Get(2, 1), nullptr);
  cache.InvalidateAll();
  EXPECT_EQ(cache.Get(2, 1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ContextCacheTest, CountersTrackHitsAndMisses) {
  auto& registry = obs::MetricsRegistry::Global();
  const auto before = registry.Take();
  ContextCache cache(4);
  cache.Get(5, 1);            // miss
  cache.Put(5, 1, FakePlan(5));
  cache.Get(5, 1);            // hit
  cache.Get(6, 1);            // miss
  const auto delta = registry.Take().Delta(before);
  EXPECT_EQ(delta.counters.at("serve.context_cache.hits"), 1u);
  EXPECT_EQ(delta.counters.at("serve.context_cache.misses"), 2u);
}

// ---------------------------------------------------------------------------
// InferenceEngine
// ---------------------------------------------------------------------------

TEST(InferenceEngineTest, LoadPublishesAndVersionsSnapshots) {
  const data::Dataset dataset = SmallDataset(40);
  const std::string path_a = WriteModelSnapshot(dataset, 41, "engine_a.snap");
  const std::string path_b = WriteModelSnapshot(dataset, 42, "engine_b.snap");

  InferenceEngine engine(&dataset, SmallConfig());
  EXPECT_FALSE(engine.loaded());
  EXPECT_EQ(engine.Acquire(), nullptr);

  EXPECT_EQ(engine.Load(path_a), 1);
  auto held = engine.Acquire();
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->version, 1);
  EXPECT_EQ(held->source_path, path_a);

  // Hot-swap: the old snapshot stays valid for holders of the old pointer.
  EXPECT_EQ(engine.Load(path_b), 2);
  EXPECT_EQ(held->version, 1) << "an acquired snapshot must stay immutable";
  EXPECT_EQ(engine.Acquire()->version, 2);
  EXPECT_EQ(engine.version(), 2);
}

TEST(InferenceEngineTest, FailedLoadKeepsPublishedSnapshot) {
  const data::Dataset dataset = SmallDataset(43);
  const std::string path = WriteModelSnapshot(dataset, 44, "engine_c.snap");
  InferenceEngine engine(&dataset, SmallConfig());
  ASSERT_EQ(engine.Load(path), 1);
  EXPECT_THROW(engine.Load(testing::TempDir() + "/does_not_exist.snap"),
               CheckError);
  ASSERT_TRUE(engine.loaded());
  EXPECT_EQ(engine.Acquire()->version, 1);
}

// ---------------------------------------------------------------------------
// MicroBatcher
// ---------------------------------------------------------------------------

TEST(MicroBatcherTest, OverloadResolvesTheFutureWithAnOverloadedError) {
  const data::Dataset dataset = SmallDataset(70);
  InferenceEngine engine(&dataset, SmallConfig());  // overload fires first,
                                                    // so no model is needed
  ContextCache cache(4);
  graph::NeighborhoodSampler sampler;
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  auto versioned =
      std::make_shared<const VersionedGraph>(std::move(graph), /*version=*/1);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();

  BatcherConfig config;
  config.batch_window_us = 0;
  config.queue_capacity = 1;
  MicroBatcher batcher(config, &engine, &cache, &sampler,
                       [versioned, released] {
                         released.wait();  // park the worker so the queue
                                           // fills up behind it
                         return versioned;
                       });
  batcher.Start();

  // The worker pops this request, then parks in the graph provider. Once
  // the queue is empty the worker cannot pop again until released.
  std::future<RatingResponse> parked = batcher.Submit(3, {1});
  while (batcher.queue_depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Fills the capacity-1 queue.
  std::future<RatingResponse> queued = batcher.Submit(4, {1});
  // Overflows: the future must come back already resolved as overloaded —
  // not broken, and not an internal error.
  std::future<RatingResponse> rejected = batcher.Submit(5, {1});
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const RatingResponse response = rejected.get();
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error.rfind("overloaded", 0), 0u) << response.error;

  release.set_value();
  // The surviving requests resolve as degraded fallback predictions: with
  // no model published the batcher answers from the graph's bias tables
  // instead of erroring.
  const RatingResponse parked_response = parked.get();
  EXPECT_TRUE(parked_response.ok) << parked_response.error;
  EXPECT_TRUE(parked_response.degraded);
  const RatingResponse queued_response = queued.get();
  EXPECT_TRUE(queued_response.ok) << queued_response.error;
  EXPECT_TRUE(queued_response.degraded);
  batcher.Stop();
}

TEST(MicroBatcherTest, RequestsBornExpiredResolveWithDeadlineExceeded) {
  const data::Dataset dataset = SmallDataset(73);
  InferenceEngine engine(&dataset, SmallConfig());
  ContextCache cache(4);
  graph::NeighborhoodSampler sampler;
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  auto versioned =
      std::make_shared<const VersionedGraph>(std::move(graph), /*version=*/1);
  BatcherConfig config;
  config.batch_window_us = 0;
  MicroBatcher batcher(config, &engine, &cache, &sampler,
                       [versioned] { return versioned; });
  batcher.Start();

  const auto past = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(5);
  std::future<RatingResponse> expired = batcher.Submit(3, {1}, past);
  ASSERT_EQ(expired.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "an already-expired request must resolve at admission";
  const RatingResponse response = expired.get();
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error.rfind("deadline exceeded", 0), 0u)
      << response.error;
  batcher.Stop();
}

TEST(MicroBatcherTest, DeadlinesExpireWhileQueuedBehindASlowBatch) {
  const data::Dataset dataset = SmallDataset(74);
  InferenceEngine engine(&dataset, SmallConfig());
  ContextCache cache(4);
  graph::NeighborhoodSampler sampler;
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  auto versioned =
      std::make_shared<const VersionedGraph>(std::move(graph), /*version=*/1);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::atomic<bool> parked_once{false};
  BatcherConfig config;
  config.batch_window_us = 0;
  MicroBatcher batcher(config, &engine, &cache, &sampler,
                       [versioned, released, &parked_once] {
                         if (!parked_once.exchange(true)) released.wait();
                         return versioned;
                       });
  batcher.Start();

  // The first request parks the worker; the second waits in the queue until
  // its deadline has passed, so the dequeue-time check must expire it.
  std::future<RatingResponse> parked = batcher.Submit(3, {1});
  while (batcher.queue_depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::future<RatingResponse> queued = batcher.Submit(
      4, {1},
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  release.set_value();

  EXPECT_TRUE(parked.get().ok);
  const RatingResponse expired = queued.get();
  EXPECT_FALSE(expired.ok);
  EXPECT_EQ(expired.error.rfind("deadline exceeded", 0), 0u)
      << expired.error;
  batcher.Stop();
}

TEST(MicroBatcherTest, InflightCapShedsBeforeQueueing) {
  const data::Dataset dataset = SmallDataset(75);
  InferenceEngine engine(&dataset, SmallConfig());
  ContextCache cache(4);
  graph::NeighborhoodSampler sampler;
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  auto versioned =
      std::make_shared<const VersionedGraph>(std::move(graph), /*version=*/1);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  BatcherConfig config;
  config.batch_window_us = 0;
  config.max_inflight = 1;
  MicroBatcher batcher(config, &engine, &cache, &sampler,
                       [versioned, released] {
                         released.wait();
                         return versioned;
                       });
  batcher.Start();

  std::future<RatingResponse> admitted = batcher.Submit(3, {1});
  EXPECT_EQ(batcher.inflight(), 1);
  std::future<RatingResponse> shed = batcher.Submit(4, {1});
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const RatingResponse response = shed.get();
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error.rfind("overloaded", 0), 0u) << response.error;

  release.set_value();
  EXPECT_TRUE(admitted.get().ok);
  EXPECT_EQ(batcher.inflight(), 0);
  batcher.Stop();
}

TEST(MicroBatcherTest, NoModelServesUserMeanFallbackAndRecoversOnLoad) {
  const data::Dataset dataset = SmallDataset(76);
  const std::string model = WriteModelSnapshot(dataset, 77, "degrade.snap");
  InferenceEngine engine(&dataset, SmallConfig());  // nothing loaded yet
  ContextCache cache(4);
  graph::NeighborhoodSampler sampler;
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  auto versioned =
      std::make_shared<const VersionedGraph>(std::move(graph), /*version=*/1);

  BatcherConfig config;
  config.batch_window_us = 0;
  MicroBatcher batcher(config, &engine, &cache, &sampler,
                       [versioned] { return versioned; });
  batcher.Start();

  const RatingResponse degraded = batcher.Submit(3, {1, 2}).get();
  ASSERT_TRUE(degraded.ok) << degraded.error;
  EXPECT_TRUE(degraded.degraded);
  ASSERT_EQ(degraded.predictions.size(), 2u);
  // The fallback is the user's mean observed rating (or the global mean for
  // unrated users), repeated for every queried item.
  const float expected = versioned->user_mean_rating[3];
  EXPECT_EQ(degraded.predictions[0], expected);
  EXPECT_EQ(degraded.predictions[1], expected);
  EXPECT_GT(versioned->global_mean_rating, 0.0f);

  // Recovery is automatic: publishing a snapshot routes the next batch back
  // through the model.
  engine.Load(model);
  const RatingResponse recovered = batcher.Submit(3, {1, 2}).get();
  ASSERT_TRUE(recovered.ok) << recovered.error;
  EXPECT_FALSE(recovered.degraded);
  EXPECT_EQ(recovered.model_version, 1);
  batcher.Stop();
}

TEST(MicroBatcherTest, CircuitBreakerOpensOnRepeatedFailuresAndRecovers) {
  const data::Dataset dataset = SmallDataset(78);
  const std::string model_a = WriteModelSnapshot(dataset, 79, "brk_a.snap");
  const std::string model_b = WriteModelSnapshot(dataset, 80, "brk_b.snap");
  InferenceEngine engine(&dataset, SmallConfig());
  engine.Load(model_a);
  ContextCache cache(4);
  graph::NeighborhoodSampler sampler;
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  auto versioned =
      std::make_shared<const VersionedGraph>(std::move(graph), /*version=*/1);

  BatcherConfig config;
  config.batch_window_us = 0;
  config.breaker_threshold = 2;
  config.breaker_cooldown_ms = 60000;  // no half-open trial during the test
  MicroBatcher batcher(config, &engine, &cache, &sampler,
                       [versioned] { return versioned; });
  batcher.Start();

  FaultInjector::Global().ArmServeFailForward(2);
  // First failure: below the threshold, surfaces as an internal error.
  const RatingResponse first = batcher.Submit(3, {1}).get();
  EXPECT_FALSE(first.ok);
  EXPECT_FALSE(batcher.circuit_open());
  // Second consecutive failure trips the breaker; the failing request is
  // already answered with the fallback instead of a second error.
  const RatingResponse second = batcher.Submit(4, {1}).get();
  EXPECT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.degraded);
  EXPECT_TRUE(batcher.circuit_open());
  // While open, requests never reach the (now healthy) model.
  const RatingResponse third = batcher.Submit(5, {1}).get();
  EXPECT_TRUE(third.ok) << third.error;
  EXPECT_TRUE(third.degraded);

  // A newly published snapshot closes the breaker immediately.
  engine.Load(model_b);
  const RatingResponse recovered = batcher.Submit(6, {1}).get();
  EXPECT_TRUE(recovered.ok) << recovered.error;
  EXPECT_FALSE(recovered.degraded);
  EXPECT_EQ(recovered.model_version, 2);
  EXPECT_FALSE(batcher.circuit_open());

  FaultInjector::Global().Reset();
  batcher.Stop();
}

TEST(MicroBatcherTest, OutcomeCountersPartitionAllTraffic) {
  const data::Dataset dataset = SmallDataset(81);
  const std::string model = WriteModelSnapshot(dataset, 82, "acct.snap");
  InferenceEngine engine(&dataset, SmallConfig());
  engine.Load(model);
  ContextCache cache(4);
  graph::NeighborhoodSampler sampler;
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  auto versioned =
      std::make_shared<const VersionedGraph>(std::move(graph), /*version=*/1);
  BatcherConfig config;
  config.batch_window_us = 0;
  MicroBatcher batcher(config, &engine, &cache, &sampler,
                       [versioned] { return versioned; });
  batcher.Start();

  const auto before = obs::MetricsRegistry::Global().Take();
  batcher.Submit(3, {1, 2}).get();                       // served
  batcher.Submit(4, {}).get();                           // failed (bad req)
  batcher.Submit(5, {1},                                 // expired
                 std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1)).get();
  const auto delta = obs::MetricsRegistry::Global().Take().Delta(before);
  auto counter = [&delta](const std::string& name) -> uint64_t {
    const auto it = delta.counters.find(name);
    return it == delta.counters.end() ? 0 : it->second;
  };
  EXPECT_EQ(counter("serve.outcome.served"), 1u);
  EXPECT_EQ(counter("serve.outcome.failed"), 1u);
  EXPECT_EQ(counter("serve.outcome.expired"), 1u);
  EXPECT_EQ(counter("serve.outcome.shed"), 0u);
  EXPECT_EQ(counter("serve.outcome.degraded"), 0u);
  EXPECT_EQ(counter("serve.deadline_exceeded"), 1u)
      << "the 504 alias counter must track expired requests";
  batcher.Stop();
}

TEST(InferenceEngineTest, FusedSnapshotMatchesTapeModelOnBatchShapes) {
  const data::Dataset dataset = SmallDataset(31);
  InferenceEngine engine(&dataset, SmallConfig());
  engine.Load(WriteModelSnapshot(dataset, 33, "fused_eq.snap"));
  const auto snapshot = engine.Acquire();
  ASSERT_NE(snapshot->inference, nullptr)
      << "Load must pack the fused inference weights";

  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  graph::NeighborhoodSampler sampler;
  core::InferenceArena arena;
  // Shapes the micro-batcher actually runs, including the default
  // BatcherConfig context (16 x 16) used by /predict.
  for (const auto& [n, m] : std::vector<std::pair<int64_t, int64_t>>{
           {1, 8}, {4, 8}, {16, 16}, {16, 32}}) {
    Rng rng(200 + n + m);
    graph::PredictionContext context =
        graph::BuildTrainingContext(graph, sampler, n, m, 0.3, &rng);
    const Tensor tape = snapshot->model->Predict(context);
    const Tensor& fused = snapshot->inference->Predict(context, &arena);
    ASSERT_TRUE(fused.SameShape(tape));
    for (int64_t i = 0; i < fused.size(); ++i) {
      ASSERT_NEAR(fused.flat(i), tape.flat(i), 1e-5f)
          << "n=" << n << " m=" << m << " flat index " << i;
    }
  }
}

TEST(InferenceEngineTest, PacksOncePerLoadNeverPerRequest) {
  const data::Dataset dataset = SmallDataset(35);
  const std::string model_a = WriteModelSnapshot(dataset, 36, "pack_a.snap");
  const std::string model_b = WriteModelSnapshot(dataset, 37, "pack_b.snap");
  InferenceEngine engine(&dataset, SmallConfig());
  ContextCache cache(8);
  graph::NeighborhoodSampler sampler;
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  auto versioned =
      std::make_shared<const VersionedGraph>(std::move(graph), /*version=*/1);

  const auto before = obs::MetricsRegistry::Global().Take();
  engine.Load(model_a);
  engine.Load(model_b);  // hot-swap: second pack

  BatcherConfig config;
  config.batch_window_us = 0;
  config.context_users = 8;
  config.context_items = 8;
  MicroBatcher batcher(config, &engine, &cache, &sampler,
                       [versioned] { return versioned; });
  batcher.Start();
  constexpr int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    const RatingResponse response =
        batcher.Submit(1 + i % 5, {1, 2, 3}).get();
    ASSERT_TRUE(response.ok) << response.error;
  }
  batcher.Stop();

  const auto delta = obs::MetricsRegistry::Global().Take().Delta(before);
  auto histogram_count = [&delta](const std::string& name) -> uint64_t {
    const auto it = delta.histograms.find(name);
    return it == delta.histograms.end() ? 0 : it->second.count;
  };
  // Packing happened exactly once per Load while the forward-stage
  // histogram shows every request ran a model forward — i.e. no request
  // ever paid for weight packing.
  EXPECT_EQ(histogram_count("serve.snapshot.pack_us"), 2u);
  EXPECT_EQ(histogram_count("serve.stage.forward_us.served"),
            static_cast<uint64_t>(kRequests));
}

TEST(MicroBatcherTest, BatchRevalidatesIdsAgainstTheGraphItRunsOn) {
  const data::Dataset dataset = SmallDataset(71);
  const std::string model = WriteModelSnapshot(dataset, 72, "batcher_a.snap");
  InferenceEngine engine(&dataset, SmallConfig());
  engine.Load(model);
  ContextCache cache(4);
  graph::NeighborhoodSampler sampler;
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  auto versioned =
      std::make_shared<const VersionedGraph>(std::move(graph), /*version=*/1);

  BatcherConfig config;
  config.batch_window_us = 0;
  config.context_users = 8;
  config.context_items = 8;
  MicroBatcher batcher(config, &engine, &cache, &sampler,
                       [versioned] { return versioned; });
  batcher.Start();

  // The transport validates against the graph current at submit time; the
  // batcher must re-check against the generation the batch actually runs
  // on (it may have shrunk in between) and fail the request as a bad
  // request, not crash the group.
  const RatingResponse bad_user =
      batcher.Submit(dataset.num_users(), {1}).get();
  EXPECT_FALSE(bad_user.ok);
  EXPECT_EQ(bad_user.error.rfind("bad request", 0), 0u) << bad_user.error;
  const RatingResponse bad_item =
      batcher.Submit(3, {dataset.num_items()}).get();
  EXPECT_FALSE(bad_item.ok);
  EXPECT_EQ(bad_item.error.rfind("bad request", 0), 0u) << bad_item.error;
  // An in-range request on the same batcher still succeeds.
  const RatingResponse good = batcher.Submit(3, {1, 2}).get();
  EXPECT_TRUE(good.ok) << good.error;
  batcher.Stop();
}

// ---------------------------------------------------------------------------
// RatingServer: in-process path
// ---------------------------------------------------------------------------

TEST(RatingServerTest, PredictReturnsOnePredictionPerItemInRange) {
  const data::Dataset dataset = SmallDataset(50);
  const std::string model = WriteModelSnapshot(dataset, 51, "server_a.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  RatingServer server(&dataset, SmallConfig(), std::move(graph),
                      SmallServeConfig(model));
  server.Start();

  const std::vector<int64_t> items{3, 9, 27};
  const RatingResponse response = server.Predict(5, items);
  ASSERT_TRUE(response.ok) << response.error;
  ASSERT_EQ(response.predictions.size(), items.size());
  for (float p : response.predictions) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, dataset.max_rating());
  }
  EXPECT_EQ(response.model_version, 1);
  EXPECT_EQ(response.graph_version, 1);
  server.Stop();
}

TEST(RatingServerTest, RejectsMalformedAndOutOfRangeRequests) {
  const data::Dataset dataset = SmallDataset(52);
  const std::string model = WriteModelSnapshot(dataset, 53, "server_b.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  RatingServer server(&dataset, SmallConfig(), std::move(graph),
                      SmallServeConfig(model));
  server.Start();

  EXPECT_FALSE(server.Predict(5, {}).ok) << "empty item list must fail";
  EXPECT_FALSE(server.Predict(-1, {1}).ok);
  EXPECT_FALSE(server.Predict(dataset.num_users(), {1}).ok);
  EXPECT_FALSE(server.Predict(5, {dataset.num_items()}).ok);
  EXPECT_FALSE(server.Predict(5, std::vector<int64_t>(64, 1)).ok)
      << "more items than the context budget must fail";
  // And a valid request still succeeds afterwards.
  EXPECT_TRUE(server.Predict(5, {1, 2}).ok);
  server.Stop();
}

TEST(RatingServerTest, ConcurrentRequestsCoalesceIntoSharedForwards) {
  const data::Dataset dataset = SmallDataset(54);
  const std::string model = WriteModelSnapshot(dataset, 55, "server_c.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  // Long window so every concurrently submitted request lands in one batch.
  RatingServer server(&dataset, SmallConfig(), std::move(graph),
                      SmallServeConfig(model, /*batch_window_us=*/200000));
  server.Start();

  const auto before = obs::MetricsRegistry::Global().Take();
  std::vector<std::future<RatingResponse>> futures;
  for (int64_t user = 0; user < 4; ++user) {
    futures.push_back(server.PredictAsync(user, {1, 2}));
  }
  int64_t max_batch_users = 0;
  for (auto& future : futures) {
    const RatingResponse response = future.get();
    ASSERT_TRUE(response.ok) << response.error;
    max_batch_users = std::max(max_batch_users, response.batch_users);
  }
  EXPECT_GT(max_batch_users, 1)
      << "concurrent requests inside the window must share a forward";
  const auto delta = obs::MetricsRegistry::Global().Take().Delta(before);
  EXPECT_EQ(delta.counters.at("serve.requests"), 4u);
  EXPECT_LT(delta.counters.at("serve.batches"), 4u);
  server.Stop();
}

TEST(RatingServerTest, CacheHitOnRepeatAndInvalidationOnGraphUpdate) {
  const data::Dataset dataset = SmallDataset(56);
  const std::string model = WriteModelSnapshot(dataset, 57, "server_d.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  RatingServer server(&dataset, SmallConfig(), std::move(graph),
                      SmallServeConfig(model));
  server.Start();

  const RatingResponse cold = server.Predict(7, {1, 2});
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  const RatingResponse warm = server.Predict(7, {3, 4});
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.cache_hit) << "second request for a user must hit the "
                                 "context cache";
  // Deterministic serving: an identical request replays bit-identically.
  const RatingResponse replay = server.Predict(7, {1, 2});
  ASSERT_TRUE(replay.ok);
  ASSERT_EQ(replay.predictions.size(), cold.predictions.size());
  for (size_t i = 0; i < cold.predictions.size(); ++i) {
    EXPECT_EQ(replay.predictions[i], cold.predictions[i]);
  }

  // Publishing a new graph generation invalidates every cached plan.
  graph::BipartiteGraph updated(dataset.num_users(), dataset.num_items(),
                                dataset.ratings());
  server.UpdateGraph(std::move(updated));
  EXPECT_EQ(server.graph_version(), 2);
  const RatingResponse after = server.Predict(7, {1, 2});
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.graph_version, 2);
  server.Stop();
}

TEST(RatingServerTest, ContextCacheInvalidatesAcrossReloadWithNewGraph) {
  const data::Dataset dataset = SmallDataset(66);
  const std::string model_a = WriteModelSnapshot(dataset, 67, "inv_a.snap");
  const std::string model_b = WriteModelSnapshot(dataset, 68, "inv_b.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  RatingServer server(&dataset, SmallConfig(), std::move(graph),
                      SmallServeConfig(model_a));
  server.Start();

  const auto before = obs::MetricsRegistry::Global().Take();
  // Warm the cache for one user: one miss, then one hit.
  ASSERT_TRUE(server.Predict(9, {1, 2}).ok);
  const RatingResponse warm = server.Predict(9, {3});
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cache_hit);

  // Hot-swap the model AND publish a new graph generation, as a production
  // refresh would. No cached plan from generation 1 may answer.
  server.Reload(model_b);
  graph::BipartiteGraph updated(dataset.num_users(), dataset.num_items(),
                                dataset.ratings());
  server.UpdateGraph(std::move(updated));

  const RatingResponse after = server.Predict(9, {1, 2});
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_FALSE(after.cache_hit)
      << "a plan cached for graph v1 must not serve graph v2";
  EXPECT_EQ(after.graph_version, 2);
  EXPECT_EQ(after.model_version, 2);

  // Hit/miss accounting stays consistent: 2 misses (cold, post-update) and
  // 1 hit, and the invalidation counter moved.
  const auto delta = obs::MetricsRegistry::Global().Take().Delta(before);
  EXPECT_EQ(delta.counters.at("serve.context_cache.misses"), 2u);
  EXPECT_EQ(delta.counters.at("serve.context_cache.hits"), 1u);
  EXPECT_GE(delta.counters.at("serve.context_cache.invalidations"), 1u);
  server.Stop();
}

TEST(RatingServerTest, HotSwapUnderLoadNeverFailsARequest) {
  const data::Dataset dataset = SmallDataset(58);
  const std::string model_a = WriteModelSnapshot(dataset, 59, "swap_a.snap");
  const std::string model_b = WriteModelSnapshot(dataset, 60, "swap_b.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  RatingServer server(&dataset, SmallConfig(), std::move(graph),
                      SmallServeConfig(model_a));
  server.Start();

  std::atomic<bool> stop{false};
  std::atomic<int64_t> failures{0};
  std::atomic<int64_t> served{0};
  int64_t max_version_seen = 0;
  std::thread driver([&] {
    int64_t user = 0;
    while (!stop.load()) {
      const RatingResponse response =
          server.Predict(user % dataset.num_users(), {1, 2, 3});
      if (!response.ok) {
        failures.fetch_add(1);
      } else {
        served.fetch_add(1);
        if (response.model_version > max_version_seen) {
          max_version_seen = response.model_version;
        }
      }
      ++user;
    }
  });
  for (int swap = 0; swap < 4; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server.Reload(swap % 2 == 0 ? model_b : model_a);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true);
  driver.join();

  EXPECT_EQ(failures.load(), 0)
      << "hot-swap must never fail an in-flight request";
  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(max_version_seen, 5) << "requests must observe the new model";
  server.Stop();
}

// ---------------------------------------------------------------------------
// Transport hygiene: server read deadlines, client timeouts
// ---------------------------------------------------------------------------

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  timeval timeout{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  return fd;
}

TEST(HttpServerTest, StalledRequestGets408AndIdleConnectionIsClosed) {
  HttpServer http(0, 2, HttpServerOptions{/*idle_timeout_ms=*/300,
                                          /*header_timeout_ms=*/200});
  http.AddRoute("GET", "/ping", [](const HttpRequest&) {
    return HttpResponse{200, "application/json", "{}"};
  });
  http.Start();

  const auto before = obs::MetricsRegistry::Global().Take();
  {
    // Slow-loris: send half a request head and stall. The header-read
    // deadline must answer 408 and close instead of pinning the thread.
    const int fd = ConnectLoopback(http.port());
    const std::string partial = "GET /ping HTTP/1.1\r\n";
    ASSERT_EQ(::send(fd, partial.data(), partial.size(), 0),
              static_cast<ssize_t>(partial.size()));
    std::string response;
    char chunk[1024];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
      response.append(chunk, static_cast<size_t>(n));
    }
    EXPECT_NE(response.find("408 Request Timeout"), std::string::npos)
        << response;
    ::close(fd);
  }
  {
    // A connection that never sends anything is closed after the idle
    // budget (EOF on our side), with no response bytes.
    const int fd = ConnectLoopback(http.port());
    char chunk[64];
    EXPECT_EQ(::recv(fd, chunk, sizeof(chunk), 0), 0)
        << "the server must close an idle connection";
    ::close(fd);
  }
  // Healthy clients are unaffected while the stalled ones are cut off.
  HttpClient client(http.port());
  EXPECT_EQ(client.Get("/ping").status, 200);

  const auto delta = obs::MetricsRegistry::Global().Take().Delta(before);
  EXPECT_EQ(delta.counters.at("serve.http.request_read_timeouts"), 1u);
  EXPECT_EQ(delta.counters.at("serve.http.idle_closed"), 1u);
  http.Stop();
}

TEST(HttpClientTest, TimeoutIsDistinctFromConnectionRefused) {
  HttpServer http(0, 1);
  http.AddRoute("GET", "/slow", [](const HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    return HttpResponse{200, "application/json", "{}"};
  });
  http.Start();

  // Nobody listens on the discard port: a hard connection-refused error,
  // not a timeout.
  HttpClient refused(9, "127.0.0.1", /*timeout_ms=*/200);
  const HttpClient::Result no_listener = refused.Get("/x");
  EXPECT_FALSE(no_listener.ok);
  EXPECT_FALSE(no_listener.timed_out);
  EXPECT_NE(no_listener.error.find("connect("), std::string::npos)
      << no_listener.error;

  // A live but slow server surfaces as a distinct timeout.
  HttpClient impatient(http.port(), "127.0.0.1", /*timeout_ms=*/100);
  const HttpClient::Result slow = impatient.Get("/slow");
  EXPECT_FALSE(slow.ok);
  EXPECT_TRUE(slow.timed_out) << slow.error;
  EXPECT_EQ(slow.error.rfind("timeout:", 0), 0u) << slow.error;
  http.Stop();
}

// ---------------------------------------------------------------------------
// HTTP end-to-end
// ---------------------------------------------------------------------------

TEST(HttpEndToEndTest, PredictHealthzMetricsAndErrors) {
  const data::Dataset dataset = SmallDataset(62);
  const std::string model = WriteModelSnapshot(dataset, 63, "http_a.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  RatingServer server(&dataset, SmallConfig(), std::move(graph),
                      SmallServeConfig(model));
  server.Start();
  ASSERT_GT(server.port(), 0) << "ephemeral port must be bound";

  HttpClient client(server.port());

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_EQ(health.status, 200);
  double version = 0.0;
  EXPECT_TRUE(obs::FindJsonNumberField(health.body, "model_version", &version));
  EXPECT_EQ(version, 1.0);

  auto predict = client.Post("/predict", "{\"user\":3,\"items\":[1,2,5]}");
  ASSERT_TRUE(predict.ok) << predict.error;
  EXPECT_EQ(predict.status, 200) << predict.body;
  std::string json_error;
  EXPECT_TRUE(obs::JsonValidate(predict.body, &json_error)) << json_error;
  EXPECT_NE(predict.body.find("\"predictions\":["), std::string::npos);

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  EXPECT_EQ(metrics.status, 200);
  EXPECT_TRUE(obs::JsonValidate(metrics.body, &json_error)) << json_error;
  EXPECT_NE(metrics.body.find("serve.requests"), std::string::npos);

  EXPECT_EQ(client.Post("/predict", "{not json").status, 400);
  EXPECT_EQ(client.Post("/predict", "{\"user\":3}").status, 400);
  EXPECT_EQ(client.Post("/predict", "{\"user\":-5,\"items\":[1]}").status,
            400);
  EXPECT_EQ(client.Get("/nope").status, 404);
  EXPECT_EQ(client.Get("/predict").status, 405);

  auto reload = client.Post("/reload", "");
  ASSERT_TRUE(reload.ok) << reload.error;
  EXPECT_EQ(reload.status, 200) << reload.body;
  EXPECT_TRUE(obs::FindJsonNumberField(reload.body, "model_version",
                                       &version));
  EXPECT_EQ(version, 2.0);

  auto missing = client.Post("/reload",
                             "{\"model\":\"/does/not/exist.snap\"}");
  EXPECT_EQ(missing.status, 500);
  double after = 0.0;
  auto health2 = client.Get("/healthz");
  EXPECT_TRUE(obs::FindJsonNumberField(health2.body, "model_version",
                                       &after));
  EXPECT_EQ(after, 2.0) << "failed reload must keep the published model";

  server.Stop();
}

TEST(HttpEndToEndTest, DeadlineHeaderYields504OnASlowBatch) {
  const data::Dataset dataset = SmallDataset(83);
  const std::string model = WriteModelSnapshot(dataset, 84, "http_c.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  RatingServer server(&dataset, SmallConfig(), std::move(graph),
                      SmallServeConfig(model));
  server.Start();
  HttpClient client(server.port());
  const std::string body = "{\"user\":3,\"items\":[1,2]}";

  FaultInjector::Global().ArmServeSlowHandler(150);
  const HttpClient::Result late =
      client.Request("POST", "/predict", body, {{"X-Deadline-Ms", "30"}});
  FaultInjector::Global().Reset();
  ASSERT_TRUE(late.ok) << late.error;
  EXPECT_EQ(late.status, 504) << late.body;
  EXPECT_NE(late.body.find("deadline exceeded"), std::string::npos)
      << late.body;

  const HttpClient::Result bad =
      client.Request("POST", "/predict", body, {{"X-Deadline-Ms", "nope"}});
  EXPECT_EQ(bad.status, 400) << bad.body;
  const HttpClient::Result roomy =
      client.Request("POST", "/predict", body, {{"X-Deadline-Ms", "30000"}});
  EXPECT_EQ(roomy.status, 200) << roomy.body;
  server.Stop();
}

TEST(HttpEndToEndTest, ShedRequestsGet503WithRetryAfter) {
  const data::Dataset dataset = SmallDataset(85);
  const std::string model = WriteModelSnapshot(dataset, 86, "http_d.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  ServeConfig config = SmallServeConfig(model, /*batch_window_us=*/0);
  config.batcher.max_inflight = 1;
  RatingServer server(&dataset, SmallConfig(), std::move(graph), config);
  server.Start();

  // Occupy the single in-flight slot with a slow batch, then hit the
  // admission cap with a second request.
  FaultInjector::Global().ArmServeSlowHandler(300);
  std::thread occupier([&] {
    HttpClient slow_client(server.port());
    const HttpClient::Result r =
        slow_client.Post("/predict", "{\"user\":3,\"items\":[1]}");
    EXPECT_EQ(r.status, 200) << r.body;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  HttpClient client(server.port());
  const HttpClient::Result shed =
      client.Post("/predict", "{\"user\":4,\"items\":[1]}");
  occupier.join();
  FaultInjector::Global().Reset();

  ASSERT_TRUE(shed.ok) << shed.error;
  EXPECT_EQ(shed.status, 503) << shed.body;
  ASSERT_NE(shed.headers.find("retry-after"), shed.headers.end())
      << "a shed response must tell the client when to retry";
  EXPECT_EQ(shed.headers.at("retry-after"), "1");
  server.Stop();
}

TEST(HttpEndToEndTest, BootsWithoutModelServesDegradedAndRecoversOnReload) {
  const data::Dataset dataset = SmallDataset(87);
  const std::string model = WriteModelSnapshot(dataset, 88, "http_e.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  RatingServer server(&dataset, SmallConfig(), std::move(graph),
                      SmallServeConfig(/*model_path=*/""));
  server.Start();
  HttpClient client(server.port());

  // Liveness stays 200 while degraded — the server is answering, just not
  // from the model.
  const HttpClient::Result health = client.Get("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"degraded\""), std::string::npos)
      << health.body;

  const HttpClient::Result degraded =
      client.Post("/predict", "{\"user\":3,\"items\":[1,2]}");
  ASSERT_TRUE(degraded.ok) << degraded.error;
  EXPECT_EQ(degraded.status, 200) << degraded.body;
  EXPECT_NE(degraded.body.find("\"degraded\":true"), std::string::npos)
      << degraded.body;

  const HttpClient::Result reload =
      client.Post("/reload", "{\"model\":\"" + model + "\"}");
  ASSERT_EQ(reload.status, 200) << reload.body;
  const HttpClient::Result recovered =
      client.Post("/predict", "{\"user\":3,\"items\":[1,2]}");
  EXPECT_EQ(recovered.status, 200) << recovered.body;
  EXPECT_NE(recovered.body.find("\"degraded\":false"), std::string::npos)
      << recovered.body;
  const HttpClient::Result health2 = client.Get("/healthz");
  EXPECT_NE(health2.body.find("\"status\":\"ok\""), std::string::npos)
      << health2.body;
  server.Stop();
}

TEST(HttpEndToEndTest, ShutdownEndpointSignalsTheServeLoop) {
  const data::Dataset dataset = SmallDataset(64);
  const std::string model = WriteModelSnapshot(dataset, 65, "http_b.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  RatingServer server(&dataset, SmallConfig(), std::move(graph),
                      SmallServeConfig(model));
  server.Start();

  EXPECT_FALSE(server.WaitForShutdown(/*timeout_ms=*/1));
  HttpClient client(server.port());
  EXPECT_EQ(client.Post("/shutdown", "").status, 200);
  EXPECT_TRUE(server.WaitForShutdown(/*timeout_ms=*/2000));
  server.Stop();
}

// ---------------------------------------------------------------------------
// Serving observability: stage latency attribution, request ids, exposition
// ---------------------------------------------------------------------------

TEST(ObservabilityTest, StageHistogramsCoverEveryOutcomeFromBoot) {
  const data::Dataset dataset = SmallDataset(90);
  const std::string model = WriteModelSnapshot(dataset, 91, "obs_a.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  RatingServer server(&dataset, SmallConfig(), std::move(graph),
                      SmallServeConfig(model));

  // Constructing the server eagerly registers the full 5x6 partition, so a
  // scrape taken before any traffic already shows every outcome class.
  const obs::MetricsRegistry::Snapshot boot =
      obs::MetricsRegistry::Global().Take();
  const char* outcomes[] = {"served", "degraded", "shed", "expired", "failed"};
  const char* stages[] = {"admission", "queue",     "batch_form",
                          "forward",   "serialize", "write"};
  for (const char* outcome : outcomes) {
    for (const char* stage : stages) {
      const std::string name = std::string("serve.stage.") + stage + "_us." +
                               outcome;
      EXPECT_TRUE(boot.histograms.count(name)) << name << " not registered";
    }
  }

  server.Start();
  const RatingResponse response = server.Predict(5, {1, 2});
  ASSERT_TRUE(response.ok) << response.error;
  const obs::MetricsRegistry::Snapshot after =
      obs::MetricsRegistry::Global().Take();
  const obs::MetricsRegistry::Snapshot delta = after.Delta(boot);
  // A served request reaches admission, queue, batch formation, and the
  // forward (serialize/write are transport stages, absent on the in-process
  // path).
  for (const char* stage :
       {"admission", "queue", "batch_form", "forward"}) {
    const std::string name =
        std::string("serve.stage.") + stage + "_us.served";
    const auto it = delta.histograms.find(name);
    ASSERT_NE(it, delta.histograms.end()) << name;
    EXPECT_GE(it->second.count, 1u) << name << " recorded nothing";
  }
  server.Stop();
}

TEST(ObservabilityTest, RequestIdsAreMonotonicAndStagesAttributed) {
  const data::Dataset dataset = SmallDataset(92);
  const std::string model = WriteModelSnapshot(dataset, 93, "obs_b.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  RatingServer server(&dataset, SmallConfig(), std::move(graph),
                      SmallServeConfig(model));
  server.Start();

  uint64_t previous_id = 0;
  for (int i = 0; i < 4; ++i) {
    const RatingResponse response = server.Predict(i, {1, 2});
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_GT(response.request_id, previous_id)
        << "request ids must be assigned in monotonically increasing order";
    previous_id = response.request_id;
    // Batcher-path stages are all attributed, and none can exceed the total.
    for (const RequestStage stage :
         {RequestStage::kAdmission, RequestStage::kQueue,
          RequestStage::kBatchForm, RequestStage::kForward}) {
      EXPECT_GE(response.stages.at(stage), 0.0)
          << RequestStageName(stage) << " not attributed";
      EXPECT_LE(response.stages.at(stage), response.latency_us + 1.0)
          << RequestStageName(stage) << " exceeds the total latency";
    }
  }
  server.Stop();
}

TEST(ObservabilityTest, SlowRequestsAreCountedAndLogged) {
  const data::Dataset dataset = SmallDataset(94);
  const std::string model = WriteModelSnapshot(dataset, 95, "obs_c.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  ServeConfig config = SmallServeConfig(model);
  config.batcher.slow_request_ms = 50;
  RatingServer server(&dataset, SmallConfig(), std::move(graph), config);
  server.Start();

  const obs::MetricsRegistry::Snapshot before =
      obs::MetricsRegistry::Global().Take();
  FaultInjector::Global().ArmServeSlowHandler(120);
  const RatingResponse slow = server.Predict(3, {1});
  FaultInjector::Global().Reset();
  ASSERT_TRUE(slow.ok) << slow.error;
  EXPECT_GT(slow.latency_us, 50.0 * 1000.0);
  const obs::MetricsRegistry::Snapshot delta =
      obs::MetricsRegistry::Global().Take().Delta(before);
  const auto counter = delta.counters.find("serve.slow_requests");
  ASSERT_NE(counter, delta.counters.end());
  EXPECT_GE(counter->second, 1u);
  server.Stop();
}

TEST(ObservabilityTest, MetricsEndpointsExposeJsonAndPrometheus) {
  const data::Dataset dataset = SmallDataset(96);
  const std::string model = WriteModelSnapshot(dataset, 97, "obs_d.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  RatingServer server(&dataset, SmallConfig(), std::move(graph),
                      SmallServeConfig(model));
  server.Start();
  HttpClient client(server.port());
  ASSERT_EQ(client.Post("/predict", "{\"user\":3,\"items\":[1,2]}").status,
            200);

  // JSON view: still a valid single object, with the snapshot timestamp and
  // uptime spliced in ahead of the registry content.
  const HttpClient::Result json = client.Get("/metrics");
  ASSERT_TRUE(json.ok) << json.error;
  EXPECT_EQ(json.status, 200);
  std::string json_error;
  EXPECT_TRUE(obs::JsonValidate(json.body, &json_error)) << json_error;
  double ts_ms = 0.0;
  double uptime = 0.0;
  EXPECT_TRUE(obs::FindJsonNumberField(json.body, "ts_unix_ms", &ts_ms));
  EXPECT_GT(ts_ms, 1e12) << "ts_unix_ms must be a unix epoch in ms";
  EXPECT_TRUE(obs::FindJsonNumberField(json.body, "uptime_seconds", &uptime));
  EXPECT_GE(uptime, 0.0);

  // Prometheus view, via both the query string and the path alias.
  for (const char* path : {"/metrics?format=prometheus",
                           "/metrics/prometheus"}) {
    const HttpClient::Result prom = client.Get(path);
    ASSERT_TRUE(prom.ok) << prom.error;
    EXPECT_EQ(prom.status, 200) << path;
    const auto content_type = prom.headers.find("content-type");
    ASSERT_NE(content_type, prom.headers.end());
    EXPECT_NE(content_type->second.find("version=0.0.4"), std::string::npos);
    EXPECT_NE(
        prom.body.find("# TYPE serve_request_latency_us histogram"),
        std::string::npos)
        << path;
    EXPECT_NE(prom.body.find(
                  "serve_stage_forward_us_served_bucket{le=\"+Inf\"}"),
              std::string::npos)
        << path;
    EXPECT_NE(prom.body.find("serve_uptime_seconds "), std::string::npos)
        << path;
    EXPECT_NE(prom.body.find("serve_model_version "), std::string::npos)
        << path;
  }
  server.Stop();
}

TEST(ObservabilityTest, DebugLogEmitsOneLinePerResolvedRequest) {
  const data::Dataset dataset = SmallDataset(98);
  const std::string model = WriteModelSnapshot(dataset, 99, "obs_e.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  RatingServer server(&dataset, SmallConfig(), std::move(graph),
                      SmallServeConfig(model));
  server.Start();

  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  const RatingResponse response = server.Predict(7, {1, 2});
  // Resolve runs on the batcher worker; the future resolving
  // happens-after the log write, so the capture below is race-free.
  const std::string log = ::testing::internal::GetCapturedStderr();
  SetLogLevel(saved);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_NE(log.find("request id=" + std::to_string(response.request_id)),
            std::string::npos)
      << log;
  EXPECT_NE(log.find("outcome=served"), std::string::npos) << log;
  EXPECT_NE(log.find("forward_us="), std::string::npos) << log;
  server.Stop();
}

TEST(ObservabilityTest, DisabledPathBookkeepingStaysCheap) {
  // The per-request accounting that runs with tracing disabled — the stage
  // clock stamps plus the histogram records — must stay far below the 2%
  // budget of a ~1ms request. 10µs/request would already be visible in
  // serve_bench; assert an order of magnitude under that.
  EnsureServeStageMetrics();
  StageBreakdown stages;
  for (int s = 0; s < kNumRequestStages; ++s) {
    stages.micros[static_cast<size_t>(s)] = 12.5;
  }
  constexpr int kIterations = 20000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIterations; ++i) {
    // One request's worth of bookkeeping: the stamps CollectBatch /
    // ProcessBatch / ProcessGroup take, plus Resolve's records.
    const auto t0 = std::chrono::steady_clock::now();
    const auto t1 = std::chrono::steady_clock::now();
    const auto t2 = std::chrono::steady_clock::now();
    const auto t3 = std::chrono::steady_clock::now();
    stages.at(RequestStage::kQueue) =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    stages.at(RequestStage::kForward) =
        std::chrono::duration<double, std::micro>(t3 - t2).count();
    RecordStageBreakdown(RequestOutcome::kServed, stages);
    RecordStageLatency(RequestOutcome::kServed, RequestStage::kAdmission,
                       1.0);
  }
  const double micros_per_request =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count() /
      kIterations;
  EXPECT_LT(micros_per_request, 5.0)
      << "per-request observability bookkeeping became heavyweight";
}

TEST(ObservabilityTest, SampledRequestsEmitCorrelatedSpans) {
  const data::Dataset dataset = SmallDataset(100);
  const std::string model = WriteModelSnapshot(dataset, 101, "obs_f.snap");
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  ServeConfig config = SmallServeConfig(model);
  config.batcher.trace_sample_every = 1;  // sample every request
  RatingServer server(&dataset, SmallConfig(), std::move(graph), config);
  server.Start();

  obs::Tracer::Start();
  const RatingResponse response = server.Predict(2, {1, 2});
  ASSERT_TRUE(response.ok) << response.error;
  server.Stop();  // joins the worker, so all spans are emitted
  obs::Tracer::Stop();

  const std::string trace = obs::Tracer::ToChromeTraceJson();
  obs::Tracer::Clear();
  const std::string id = "req#" + std::to_string(response.request_id);
  for (const char* stage : {"/total", "/queue", "/forward"}) {
    EXPECT_NE(trace.find(id + stage), std::string::npos)
        << "missing span " << id << stage;
  }
}

}  // namespace
}  // namespace serve
}  // namespace hire
