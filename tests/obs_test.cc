// Tests for the observability subsystem (src/obs/): metrics registry,
// scoped-span tracer, kernel timers, JSON helpers, telemetry sink, and their
// integration with the trainer — including the overhead guard asserting that
// disabled instrumentation stays out of the step loop.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/hire_config.h"
#include "core/hire_model.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "graph/samplers.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "utils/check.h"
#include "utils/stopwatch.h"  // compat shim: must still provide KernelTimers
#include "utils/thread_pool.h"

namespace hire {
namespace {

using obs::MetricsRegistry;

// ---------------------------------------------------------------------------
// JSON helpers.
// ---------------------------------------------------------------------------

TEST(JsonTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(obs::JsonString("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
}

TEST(JsonTest, NumberFormatsRoundTripAndNonFiniteBecomesNull) {
  EXPECT_EQ(obs::JsonNumber(2.0), "2");
  EXPECT_EQ(obs::JsonNumber(std::nan("")), "null");
  EXPECT_EQ(obs::JsonNumber(HUGE_VAL), "null");
}

TEST(JsonTest, ValidateAcceptsDocumentsAndRejectsGarbage) {
  std::string error;
  EXPECT_TRUE(obs::JsonValidate("{\"a\":[1,2.5,\"x\",null,true]}", &error));
  EXPECT_TRUE(obs::JsonValidate("  [1, {\"k\": -3e2}] ", &error));
  EXPECT_FALSE(obs::JsonValidate("{\"a\":}", &error));
  EXPECT_FALSE(obs::JsonValidate("{\"a\":1} trailing", &error));
  EXPECT_FALSE(obs::JsonValidate("{\"a\":1", &error));
}

TEST(JsonTest, FieldScannersFindNumbersAndStrings) {
  const std::string line = "{\"type\":\"step\",\"loss\":0.25,\"step\":7}";
  double value = 0.0;
  ASSERT_TRUE(obs::FindJsonNumberField(line, "loss", &value));
  EXPECT_DOUBLE_EQ(value, 0.25);
  ASSERT_TRUE(obs::FindJsonNumberField(line, "step", &value));
  EXPECT_DOUBLE_EQ(value, 7.0);
  EXPECT_FALSE(obs::FindJsonNumberField(line, "missing", &value));
  std::string text;
  ASSERT_TRUE(obs::FindJsonStringField(line, "type", &text));
  EXPECT_EQ(text, "step");
}

// ---------------------------------------------------------------------------
// Counters, gauges, registry.
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterIncrementsAndRegistryReturnsStableHandle) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  obs::Counter* counter = registry.GetCounter("test.counter_basic");
  counter->Reset();
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->Value(), 42u);
  EXPECT_EQ(registry.GetCounter("test.counter_basic"), counter);
}

TEST(MetricsTest, ConcurrentCounterIncrementsFromThreadPoolAllLand) {
  obs::Counter* counter =
      MetricsRegistry::Global().GetCounter("test.counter_concurrent");
  counter->Reset();
  constexpr int kTasks = 16;
  constexpr int kIncrementsPerTask = 5000;
  ThreadPool pool(4);
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([counter] {
      for (int i = 0; i < kIncrementsPerTask; ++i) counter->Increment();
    });
  }
  pool.Wait();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kTasks) * kIncrementsPerTask);
}

TEST(MetricsTest, GaugeKeepsLastWrite) {
  obs::Gauge* gauge = MetricsRegistry::Global().GetGauge("test.gauge");
  gauge->Set(1.5);
  gauge->Set(-2.25);
  EXPECT_DOUBLE_EQ(gauge->Value(), -2.25);
}

TEST(MetricsTest, KindMismatchThrows) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.kind_mismatch");
  EXPECT_THROW(registry.GetGauge("test.kind_mismatch"), CheckError);
  EXPECT_THROW(registry.GetHistogram("test.kind_mismatch"), CheckError);
}

TEST(MetricsTest, SnapshotToJsonIsValid) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.json_counter")->Increment(3);
  registry.GetGauge("test.json_gauge")->Set(0.5);
  registry.GetHistogram("test.json_hist")->Record(1e-3);
  const std::string json = registry.Take().ToJson();
  std::string error;
  EXPECT_TRUE(obs::JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find("\"test.json_counter\":3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histograms.
// ---------------------------------------------------------------------------

obs::Histogram* TestHistogram(const std::string& name) {
  obs::HistogramOptions options;
  options.first_bound = 1.0;
  options.growth = 2.0;
  options.num_buckets = 4;  // bounds 1, 2, 4, 8 + overflow
  return MetricsRegistry::Global().GetHistogram(name, options);
}

TEST(HistogramTest, BucketBoundariesAreUpperInclusive) {
  obs::Histogram* histogram = TestHistogram("test.hist_bounds");
  histogram->Reset();
  EXPECT_EQ(histogram->BucketIndex(0.5), 0);
  EXPECT_EQ(histogram->BucketIndex(1.0), 0);  // value == bound stays below
  EXPECT_EQ(histogram->BucketIndex(1.001), 1);
  EXPECT_EQ(histogram->BucketIndex(2.0), 1);
  EXPECT_EQ(histogram->BucketIndex(8.0), 3);
  EXPECT_EQ(histogram->BucketIndex(8.001), 4);  // overflow

  for (double value : {0.5, 1.0, 1.5, 3.0, 100.0}) histogram->Record(value);
  const obs::HistogramSnapshot snapshot = histogram->Take();
  ASSERT_EQ(snapshot.upper_bounds.size(), 4u);
  ASSERT_EQ(snapshot.bucket_counts.size(), 5u);
  EXPECT_EQ(snapshot.bucket_counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(snapshot.bucket_counts[1], 1u);  // 1.5
  EXPECT_EQ(snapshot.bucket_counts[2], 1u);  // 3.0
  EXPECT_EQ(snapshot.bucket_counts[3], 0u);
  EXPECT_EQ(snapshot.bucket_counts[4], 1u);  // 100.0 overflow
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.5 + 1.0 + 1.5 + 3.0 + 100.0);
}

TEST(HistogramTest, MergeAndDeltaCombinePopulations) {
  obs::Histogram* histogram = TestHistogram("test.hist_merge");
  histogram->Reset();
  histogram->Record(0.5);
  const obs::HistogramSnapshot earlier = histogram->Take();
  histogram->Record(3.0);
  histogram->Record(100.0);
  const obs::HistogramSnapshot later = histogram->Take();

  const obs::HistogramSnapshot delta = later.Delta(earlier);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.bucket_counts[0], 0u);
  EXPECT_EQ(delta.bucket_counts[2], 1u);
  EXPECT_EQ(delta.bucket_counts[4], 1u);

  obs::HistogramSnapshot merged = earlier;
  merged.Merge(delta);
  EXPECT_EQ(merged.count, later.count);
  EXPECT_EQ(merged.bucket_counts, later.bucket_counts);
  EXPECT_DOUBLE_EQ(merged.sum, later.sum);

  std::string error;
  EXPECT_TRUE(obs::JsonValidate(merged.ToJson(), &error)) << error;
}

// ---------------------------------------------------------------------------
// Kernel timers (including the utils/stopwatch.h compat include above).
// ---------------------------------------------------------------------------

TEST(KernelTimersTest, AllEightCategoriesAccumulateAndPrint) {
  KernelTimers::Reset();
  for (int c = 0; c < KernelTimers::kNumCategories; ++c) {
    KernelTimers::Add(static_cast<KernelCategory>(c),
                      static_cast<uint64_t>(c + 1) * 1000000000ull);
  }
  const KernelTimers::Snapshot snapshot = KernelTimers::Take();
  EXPECT_DOUBLE_EQ(snapshot.Seconds(KernelCategory::kMatMul), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.Seconds(KernelCategory::kCheckpointIo), 8.0);
  const std::string text = snapshot.ToString();
  for (const char* name : {"matmul", "softmax", "attention", "optim",
                           "layernorm", "embedding", "sampling", "ckpt-io"}) {
    EXPECT_NE(text.find(name), std::string::npos) << text;
  }
  KernelTimers::Reset();
  const KernelTimers::Snapshot zero = KernelTimers::Take();
  EXPECT_EQ(zero.nanos[0], 0u);
}

TEST(KernelTimersTest, BackedByRegistryCounters) {
  KernelTimers::Reset();
  KernelTimers::Add(KernelCategory::kSampling, 123);
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("kernel.sampling_nanos")->Value(),
      123u);
  KernelTimers::Reset();
}

TEST(KernelTimersTest, StopwatchCompatHeaderStillWorks) {
  Stopwatch stopwatch;  // via utils/stopwatch.h shim
  EXPECT_GE(stopwatch.ElapsedSeconds(), 0.0);
}

// ---------------------------------------------------------------------------
// Tracer.
// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledScopesRecordNothing) {
  obs::Tracer::Stop();
  obs::Tracer::Clear();
  {
    HIRE_TRACE_SCOPE("should_not_appear");
  }
  EXPECT_EQ(obs::Tracer::TotalSpans(), 0u);
}

TEST(TracerTest, RecordsSpansAcrossThreadsAndExportsValidChromeTrace) {
  obs::Tracer::Start();
  {
    HIRE_TRACE_SCOPE("main_thread_span");
  }
  obs::EmitSpan("explicit_span", obs::TraceNowNanos(),
                obs::TraceNowNanos() + 1000);
  {
    ThreadPool pool(2);
    for (int t = 0; t < 4; ++t) {
      pool.Submit([] { HIRE_TRACE_SCOPE("worker_span"); });
    }
    pool.Wait();
  }
  obs::Tracer::Stop();
  // main + explicit + 4 worker spans + 4 pool_task spans (thread pool
  // instrumentation wraps every task).
  EXPECT_GE(obs::Tracer::TotalSpans(), 10u);
  EXPECT_EQ(obs::Tracer::DroppedSpans(), 0u);

  const std::string json = obs::Tracer::ToChromeTraceJson();
  std::string error;
  EXPECT_TRUE(obs::JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (const char* name :
       {"main_thread_span", "explicit_span", "worker_span", "pool_task"}) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(name) + "\""),
              std::string::npos)
        << "missing span " << name;
  }
  obs::Tracer::Clear();
}

TEST(TracerTest, StartClearsPreviousSpans) {
  obs::Tracer::Start();
  { HIRE_TRACE_SCOPE("first_session"); }
  EXPECT_EQ(obs::Tracer::TotalSpans(), 1u);
  obs::Tracer::Start();
  EXPECT_EQ(obs::Tracer::TotalSpans(), 0u);
  obs::Tracer::Stop();
  obs::Tracer::Clear();
}

TEST(TracerTest, LongSpanNamesAreTruncatedNotCorrupted) {
  obs::Tracer::Start();
  const std::string long_name(200, 'x');
  { obs::TraceScope scope(long_name); }
  obs::Tracer::Stop();
  const std::string json = obs::Tracer::ToChromeTraceJson();
  std::string error;
  EXPECT_TRUE(obs::JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find(std::string(obs::internal::kMaxSpanName - 1, 'x')),
            std::string::npos);
  obs::Tracer::Clear();
}

// Overhead guard, part 1: with tracing disabled, a TraceScope must cost on
// the order of an atomic load — give it a generous ceiling so the test stays
// robust on loaded CI machines while still catching an accidental lock or
// allocation on the disabled path.
TEST(TracerTest, DisabledScopeOverheadIsNegligible) {
  obs::Tracer::Stop();
  constexpr int kIterations = 1000000;
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < kIterations; ++i) {
    HIRE_TRACE_SCOPE("disabled");
  }
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  const double nanos_per_scope =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      kIterations;
  EXPECT_LT(nanos_per_scope, 250.0)
      << "disabled TraceScope costs " << nanos_per_scope << "ns";
}

// ---------------------------------------------------------------------------
// Telemetry sink.
// ---------------------------------------------------------------------------

std::string ScratchDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/hire_obs_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(TelemetryTest, WritesOneValidJsonObjectPerRecord) {
  const std::string path = ScratchDir("sink") + "/telemetry.jsonl";
  obs::TelemetrySink& sink = obs::TelemetrySink::Global();
  sink.Open(path);
  ASSERT_TRUE(sink.enabled());

  obs::StepTelemetry step;
  step.step = 1;
  step.total_steps = 2;
  step.loss = 0.5;
  step.grad_norm = 1.25;
  step.lr = 1e-3;
  step.wall_seconds = 0.01;
  step.kernel_delta.nanos[0] = 1000000;
  step.has_kernel_delta = true;
  sink.WriteStep(step);
  step.step = 2;
  sink.WriteStep(step);
  sink.WriteEvent("checkpoint_write", 2, {{"path", obs::JsonString("x")}});
  sink.WriteMetricsSnapshot(MetricsRegistry::Global().Take());
  sink.Close();
  EXPECT_FALSE(sink.enabled());

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 4u);
  for (const std::string& line : lines) {
    std::string error;
    EXPECT_TRUE(obs::JsonValidate(line, &error)) << line << ": " << error;
  }
  double value = 0.0;
  ASSERT_TRUE(obs::FindJsonNumberField(lines[0], "loss", &value));
  EXPECT_DOUBLE_EQ(value, 0.5);
  ASSERT_TRUE(obs::FindJsonNumberField(lines[0], "grad_norm", &value));
  EXPECT_DOUBLE_EQ(value, 1.25);
  std::string text;
  ASSERT_TRUE(obs::FindJsonStringField(lines[2], "name", &text));
  EXPECT_EQ(text, "checkpoint_write");
  ASSERT_TRUE(obs::FindJsonStringField(lines[3], "type", &text));
  EXPECT_EQ(text, "metrics_snapshot");
}

// ---------------------------------------------------------------------------
// Trainer integration.
// ---------------------------------------------------------------------------

data::Dataset SmallDataset(uint64_t seed = 1) {
  data::SyntheticConfig config;
  config.num_users = 48;
  config.num_items = 48;
  config.num_ratings = 900;
  config.user_schema = {{"age", 4}, {"gender", 2}};
  config.item_schema = {{"genre", 5}};
  return data::GenerateSyntheticDataset(config, seed);
}

core::HireConfig SmallConfig() {
  core::HireConfig config;
  config.num_him_blocks = 2;
  config.num_heads = 2;
  config.head_dim = 4;
  config.attr_embed_dim = 4;
  return config;
}

core::TrainerConfig SmallTrainer(int64_t steps) {
  core::TrainerConfig config;
  config.num_steps = steps;
  config.batch_size = 2;
  config.context_users = 6;
  config.context_items = 6;
  config.log_every = 0;
  config.num_threads = 1;
  config.seed = 17;
  return config;
}

struct StepRecord {
  int64_t step = 0;
  double loss = 0.0;
  double grad_norm = 0.0;
  double lr = 0.0;
  double lr_scale = 0.0;
};

std::vector<StepRecord> StepRecords(const std::string& path) {
  std::vector<StepRecord> records;
  for (const std::string& line : ReadLines(path)) {
    std::string type;
    if (!obs::FindJsonStringField(line, "type", &type) || type != "step") {
      continue;
    }
    std::string error;
    EXPECT_TRUE(obs::JsonValidate(line, &error)) << line << ": " << error;
    StepRecord record;
    double step = 0.0;
    EXPECT_TRUE(obs::FindJsonNumberField(line, "step", &step));
    record.step = static_cast<int64_t>(step);
    EXPECT_TRUE(obs::FindJsonNumberField(line, "loss", &record.loss));
    EXPECT_TRUE(obs::FindJsonNumberField(line, "grad_norm",
                                         &record.grad_norm));
    EXPECT_TRUE(obs::FindJsonNumberField(line, "lr", &record.lr));
    EXPECT_TRUE(obs::FindJsonNumberField(line, "lr_scale", &record.lr_scale));
    records.push_back(record);
  }
  return records;
}

TEST(TrainerTelemetryTest, OneStepRecordPerStep) {
  const data::Dataset dataset = SmallDataset();
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  graph::NeighborhoodSampler sampler;
  core::HireModel model(&dataset, SmallConfig(), 3);

  const std::string path = ScratchDir("trainer") + "/telemetry.jsonl";
  obs::TelemetrySink::Global().Open(path);
  constexpr int64_t kSteps = 6;
  core::TrainHire(&model, graph, sampler, SmallTrainer(kSteps));
  obs::TelemetrySink::Global().Close();

  const std::vector<StepRecord> records = StepRecords(path);
  ASSERT_EQ(records.size(), static_cast<size_t>(kSteps));
  for (int64_t s = 0; s < kSteps; ++s) {
    EXPECT_EQ(records[static_cast<size_t>(s)].step, s + 1);
    EXPECT_TRUE(std::isfinite(records[static_cast<size_t>(s)].loss));
    EXPECT_GT(records[static_cast<size_t>(s)].grad_norm, 0.0);
    EXPECT_GT(records[static_cast<size_t>(s)].lr, 0.0);
    EXPECT_DOUBLE_EQ(records[static_cast<size_t>(s)].lr_scale, 1.0);
  }
}

TEST(TrainerTelemetryTest, ResumedRunReplaysDeterministicFieldsIdentically) {
  const std::string dir = ScratchDir("resume");
  const data::Dataset dataset = SmallDataset();
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  graph::NeighborhoodSampler sampler;
  constexpr int64_t kSteps = 8;

  // Reference: one uninterrupted run, no checkpointing.
  const std::string ref_path = dir + "/reference.jsonl";
  {
    core::HireModel model(&dataset, SmallConfig(), 3);
    obs::TelemetrySink::Global().Open(ref_path);
    core::TrainHire(&model, graph, sampler, SmallTrainer(kSteps));
    obs::TelemetrySink::Global().Close();
  }

  // Writer: same full-length config (the LR schedule depends on num_steps,
  // so the interrupted run must be configured for all kSteps) with snapshots
  // at 4 and 8.
  const std::string writer_path = dir + "/writer.jsonl";
  {
    core::HireModel model(&dataset, SmallConfig(), 3);
    core::TrainerConfig config = SmallTrainer(kSteps);
    config.checkpoint_dir = dir + "/ckpt";
    config.checkpoint_every = kSteps / 2;
    obs::TelemetrySink::Global().Open(writer_path);
    core::TrainHire(&model, graph, sampler, config);
    obs::TelemetrySink::Global().Close();
  }

  // Simulate a crash after step 4: the ckpt-8 snapshot was never written and
  // only the first half of the telemetry stream survives on disk.
  std::filesystem::remove(dir + "/ckpt/" + core::CheckpointFileName(kSteps));
  const std::string resumed_path = dir + "/resumed.jsonl";
  {
    std::ofstream out(resumed_path);
    for (const std::string& line : ReadLines(writer_path)) {
      std::string type;
      double step = 0.0;
      if (obs::FindJsonStringField(line, "type", &type) && type == "step" &&
          obs::FindJsonNumberField(line, "step", &step) &&
          static_cast<int64_t>(step) > kSteps / 2) {
        break;
      }
      out << line << "\n";
    }
  }

  // Resume in a fresh process-equivalent; the sink reopens the surviving
  // stream in append mode, so replayed steps 5..8 extend it.
  {
    core::HireModel model(&dataset, SmallConfig(), 3);
    core::TrainerConfig config = SmallTrainer(kSteps);
    config.checkpoint_dir = dir + "/ckpt";
    config.checkpoint_every = kSteps / 2;
    config.resume = true;
    obs::TelemetrySink::Global().Open(resumed_path, /*append=*/true);
    const core::TrainStats stats =
        core::TrainHire(&model, graph, sampler, config);
    obs::TelemetrySink::Global().Close();
    EXPECT_EQ(stats.start_step, kSteps / 2);
  }

  const std::vector<StepRecord> reference = StepRecords(ref_path);
  const std::vector<StepRecord> resumed = StepRecords(resumed_path);
  ASSERT_EQ(reference.size(), static_cast<size_t>(kSteps));
  ASSERT_EQ(resumed.size(), static_cast<size_t>(kSteps));
  for (size_t s = 0; s < reference.size(); ++s) {
    EXPECT_EQ(reference[s].step, resumed[s].step);
    EXPECT_EQ(reference[s].loss, resumed[s].loss) << "step " << s + 1;
    EXPECT_EQ(reference[s].grad_norm, resumed[s].grad_norm)
        << "step " << s + 1;
    EXPECT_EQ(reference[s].lr, resumed[s].lr) << "step " << s + 1;
    EXPECT_EQ(reference[s].lr_scale, resumed[s].lr_scale)
        << "step " << s + 1;
  }
}

// Overhead guard, part 2: with the tracer disabled and the sink closed, a
// full training run must register zero spans — proving the instrumentation
// (including backward hooks) stays completely out of the step loop.
TEST(TrainerTelemetryTest, FlagsOffTrainingRegistersZeroSpans) {
  obs::Tracer::Stop();
  obs::Tracer::Clear();
  ASSERT_FALSE(obs::TelemetrySink::Global().enabled());

  const data::Dataset dataset = SmallDataset();
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  graph::NeighborhoodSampler sampler;
  core::HireModel model(&dataset, SmallConfig(), 3);
  core::TrainHire(&model, graph, sampler, SmallTrainer(4));

  EXPECT_EQ(obs::Tracer::TotalSpans(), 0u);
}

TEST(TrainerTelemetryTest, TracedTrainingEmitsExpectedSpans) {
  const data::Dataset dataset = SmallDataset();
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  graph::NeighborhoodSampler sampler;
  core::HireModel model(&dataset, SmallConfig(), 3);

  obs::Tracer::Start();
  core::TrainHire(&model, graph, sampler, SmallTrainer(3));
  obs::Tracer::Stop();

  const std::string json = obs::Tracer::ToChromeTraceJson();
  obs::Tracer::Clear();
  std::string error;
  EXPECT_TRUE(obs::JsonValidate(json, &error)) << error;
  for (const char* name :
       {"train_step", "forward", "backward", "model_forward", "mhsa_forward",
        "mhsa_backward", "him_block_0_forward", "him_block_0_backward",
        "him_block_1_forward", "grad_clip", "optimizer_step",
        "context_sampling"}) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(name) + "\""),
              std::string::npos)
        << "missing span " << name;
  }
}

}  // namespace
}  // namespace hire
