// Cross-module property tests: randomized sweeps over seeds and shapes that
// assert structural invariants rather than specific values.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "graph/context_builder.h"
#include "graph/samplers.h"
#include "optim/adam.h"
#include "optim/lamb.h"
#include "optim/lookahead.h"
#include "optim/sgd.h"
#include "tensor/ops.h"
#include "tensor/random.h"
#include "utils/check.h"
#include "utils/flags.h"

namespace hire {
namespace {

// ---------------------------------------------------------------------------
// Autograd: random op-chain gradients match finite differences.
// ---------------------------------------------------------------------------

class RandomChainGradTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomChainGradTest, RandomOpChainsHaveCorrectGradients) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  const int64_t rows = 2 + rng.UniformInt(3);
  const int64_t cols = 2 + rng.UniformInt(3);

  // Chain spec drawn up front so the function is pure.
  std::vector<int> chain;
  const int length = 2 + static_cast<int>(rng.UniformInt(3));
  for (int i = 0; i < length; ++i) {
    chain.push_back(static_cast<int>(rng.UniformInt(5)));
  }

  auto fn = [chain](const std::vector<ag::Variable>& inputs) {
    ag::Variable x = inputs[0];
    for (int op : chain) {
      switch (op) {
        case 0:
          x = ag::Sigmoid(x);
          break;
        case 1:
          x = ag::Tanh(x);
          break;
        case 2:
          x = ag::MulScalar(x, 1.3f);
          break;
        case 3:
          x = ag::Square(x);
          break;
        case 4:
          x = ag::AddScalar(x, -0.2f);
          break;
      }
    }
    return ag::MeanAll(x);
  };

  Rng init(seed + 100);
  ag::Variable input(RandomUniform({rows, cols}, -0.9f, 0.9f, &init), true);
  const ag::GradCheckResult result = ag::CheckGradients(fn, {input});
  EXPECT_TRUE(result.passed) << result.worst_coordinate;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChainGradTest,
                         ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Optimizers: every optimizer reduces a random convex quadratic.
// ---------------------------------------------------------------------------

enum class OptimizerKind { kSgd, kMomentum, kAdam, kLamb, kLookaheadSgd };

class OptimizerSweepTest
    : public ::testing::TestWithParam<std::tuple<OptimizerKind, int>> {};

TEST_P(OptimizerSweepTest, ReducesRandomQuadratic) {
  const auto [kind, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const int64_t dim = 4 + rng.UniformInt(5);
  Tensor target = RandomUniform({dim}, -2, 2, &rng);
  ag::Variable x(RandomUniform({dim}, -3, 3, &rng), true);

  std::unique_ptr<optim::Optimizer> optimizer;
  switch (kind) {
    case OptimizerKind::kSgd:
      optimizer = std::make_unique<optim::Sgd>(
          std::vector<ag::Variable>{x}, 0.1f);
      break;
    case OptimizerKind::kMomentum:
      optimizer = std::make_unique<optim::Sgd>(
          std::vector<ag::Variable>{x}, 0.05f, 0.9f);
      break;
    case OptimizerKind::kAdam: {
      optim::AdamConfig config;
      config.learning_rate = 0.1f;
      optimizer = std::make_unique<optim::Adam>(
          std::vector<ag::Variable>{x}, config);
      break;
    }
    case OptimizerKind::kLamb: {
      optim::LambConfig config;
      config.learning_rate = 0.05f;
      optimizer = std::make_unique<optim::Lamb>(
          std::vector<ag::Variable>{x}, config);
      break;
    }
    case OptimizerKind::kLookaheadSgd:
      optimizer = std::make_unique<optim::Lookahead>(
          std::make_unique<optim::Sgd>(std::vector<ag::Variable>{x}, 0.2f));
      break;
  }

  auto loss_value = [&]() {
    ag::Variable loss = ag::MSE(x, target);
    return loss.value().flat(0);
  };
  const float before = loss_value();
  for (int step = 0; step < 150; ++step) {
    optimizer->ZeroGrad();
    ag::Variable loss = ag::MSE(x, target);
    loss.Backward();
    optimizer->Step();
  }
  EXPECT_LT(loss_value(), 0.05f * before + 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizerSweepTest,
    ::testing::Combine(::testing::Values(OptimizerKind::kSgd,
                                         OptimizerKind::kMomentum,
                                         OptimizerKind::kAdam,
                                         OptimizerKind::kLamb,
                                         OptimizerKind::kLookaheadSgd),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// Cold-start splits: leakage-freedom across scenarios and seeds.
// ---------------------------------------------------------------------------

class SplitSweepTest
    : public ::testing::TestWithParam<std::tuple<data::ColdStartScenario,
                                                 int>> {};

TEST_P(SplitSweepTest, ColdEntitiesNeverLeakIntoTraining) {
  const auto [scenario, seed] = GetParam();
  data::SyntheticConfig config;
  config.num_users = 70;
  config.num_items = 60;
  config.num_ratings = 1200;
  config.user_schema = {{"a", 3}};
  config.item_schema = {{"b", 3}};
  const data::Dataset dataset =
      data::GenerateSyntheticDataset(config, static_cast<uint64_t>(seed));
  Rng rng(static_cast<uint64_t>(seed) + 5);
  const data::ColdStartSplit split =
      data::MakeColdStartSplit(dataset, scenario, 0.75, &rng);

  std::unordered_set<int64_t> cold_users(split.test_users.begin(),
                                         split.test_users.end());
  std::unordered_set<int64_t> cold_items(split.test_items.begin(),
                                         split.test_items.end());
  for (const data::Rating& rating : split.train_ratings) {
    ASSERT_EQ(cold_users.count(rating.user), 0u);
    ASSERT_EQ(cold_items.count(rating.item), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitSweepTest,
    ::testing::Combine(
        ::testing::Values(data::ColdStartScenario::kUserCold,
                          data::ColdStartScenario::kItemCold,
                          data::ColdStartScenario::kUserItemCold),
        ::testing::Values(11, 22, 33, 44)));

// ---------------------------------------------------------------------------
// Context masking: observed and target cells partition the observations.
// ---------------------------------------------------------------------------

class MaskSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(MaskSweepTest, MaskingPartitionsObservations) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  data::SyntheticConfig config;
  config.num_users = 50;
  config.num_items = 40;
  config.num_ratings = 900;
  config.user_schema = {{"a", 3}};
  config.item_schema = {{"b", 3}};
  const data::Dataset dataset = data::GenerateSyntheticDataset(config, seed);
  const graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                                    dataset.ratings());
  graph::NeighborhoodSampler sampler;
  Rng rng(seed + 1);

  const graph::PredictionContext reference = [&] {
    Rng ref_rng(seed + 1);
    graph::ContextSelection selection =
        sampler.Sample(graph, {0}, {0}, 10, 10, &ref_rng);
    return graph::AssembleContext(graph, std::move(selection));
  }();
  graph::ContextSelection selection =
      sampler.Sample(graph, {0}, {0}, 10, 10, &rng);
  graph::PredictionContext masked =
      graph::AssembleContext(graph, std::move(selection));
  graph::PredictionContext unmasked = masked;
  Rng mask_rng(seed + 2);
  graph::MaskForTraining(&masked, 0.1, &mask_rng);

  for (int64_t flat = 0; flat < masked.observed_mask.size(); ++flat) {
    const bool was_observed = unmasked.observed_mask.flat(flat) > 0;
    const bool now_observed = masked.observed_mask.flat(flat) > 0;
    const bool now_target = masked.target_mask.flat(flat) > 0;
    ASSERT_EQ(was_observed, now_observed || now_target);
    ASSERT_FALSE(now_observed && now_target);
    if (now_target) {
      ASSERT_EQ(masked.target_ratings.flat(flat),
                unmasked.observed_ratings.flat(flat));
    }
  }
  (void)reference;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskSweepTest, ::testing::Range(50, 58));

// ---------------------------------------------------------------------------
// Flags parser.
// ---------------------------------------------------------------------------

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=0.5", "--steps=300", "--verbose",
                        "positional"};
  const Flags flags = Flags::Parse(5, argv);
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 0.5);
  EXPECT_EQ(flags.GetInt("steps", 0), 300);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("missing", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, TypedGetterValidation) {
  const char* argv[] = {"prog", "--count=abc"};
  const Flags flags = Flags::Parse(2, argv);
  EXPECT_THROW(flags.GetInt("count", 0), CheckError);
  EXPECT_EQ(flags.GetString("count", ""), "abc");
}

TEST(FlagsTest, BooleanValues) {
  const char* argv[] = {"prog", "--a=true", "--b=false", "--c=1", "--d=0"};
  const Flags flags = Flags::Parse(5, argv);
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  const char* bad[] = {"prog", "--e=maybe"};
  const Flags bad_flags = Flags::Parse(2, bad);
  EXPECT_THROW(bad_flags.GetBool("e", false), CheckError);
}

TEST(FlagsTest, FlagNamesAndHas) {
  const char* argv[] = {"prog", "--one=1", "--two"};
  const Flags flags = Flags::Parse(3, argv);
  EXPECT_TRUE(flags.Has("one"));
  EXPECT_TRUE(flags.Has("two"));
  EXPECT_FALSE(flags.Has("three"));
  EXPECT_EQ(flags.FlagNames().size(), 2u);
}

}  // namespace
}  // namespace hire
