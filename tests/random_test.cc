#include "tensor/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "utils/check.h"

namespace hire {
namespace {

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  double total = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) total += rng.Uniform();
  EXPECT_NEAR(total / kSamples, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsAreStandard) {
  Rng rng(10);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double z = rng.Normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.05);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(11);
  double total = 0.0;
  const int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) total += rng.Normal(4.0, 0.5);
  EXPECT_NEAR(total / kSamples, 4.0, 0.05);
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  Rng rng(12);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.UniformInt(0), CheckError);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(14);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(15);
  const auto sample = rng.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, SampleWithoutReplacementFullAndEmpty) {
  Rng rng(16);
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 5).size(), 5u);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
  EXPECT_THROW(rng.SampleWithoutReplacement(3, 4), CheckError);
}

TEST(RngTest, ForkedStreamsAreIndependentAndReproducible) {
  Rng parent1(77);
  Rng parent2(77);
  Rng child1 = parent1.Fork(5);
  Rng child2 = parent2.Fork(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child1.Next(), child2.Next());
  }
}

TEST(RandomTensorTest, UniformTensorInRange) {
  Rng rng(17);
  Tensor t = RandomUniform({10, 10}, -2.0f, 3.0f, &rng);
  EXPECT_EQ(t.size(), 100);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.flat(i), -2.0f);
    EXPECT_LT(t.flat(i), 3.0f);
  }
}

TEST(RandomTensorTest, NormalTensorMoments) {
  Rng rng(18);
  Tensor t = RandomNormal({100, 100}, 1.0f, 2.0f, &rng);
  double sum = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) sum += t.flat(i);
  EXPECT_NEAR(sum / static_cast<double>(t.size()), 1.0, 0.1);
}

}  // namespace
}  // namespace hire
