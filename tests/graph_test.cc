#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "graph/context_builder.h"
#include "graph/samplers.h"
#include "tensor/random.h"
#include "utils/check.h"

namespace hire {
namespace graph {
namespace {

using data::Rating;

std::vector<Rating> ChainRatings() {
  // u0-i0, u0-i1, u1-i1, u2-i2 : a path plus an isolated-ish edge.
  return {{0, 0, 3.0f}, {0, 1, 4.0f}, {1, 1, 5.0f}, {2, 2, 1.0f}};
}

TEST(BipartiteGraphTest, AdjacencyAndLookup) {
  BipartiteGraph graph(4, 3, ChainRatings());
  EXPECT_EQ(graph.num_edges(), 4);
  EXPECT_EQ(graph.ItemsOfUser(0).size(), 2u);
  EXPECT_EQ(graph.UsersOfItem(1).size(), 2u);
  EXPECT_EQ(graph.UserDegree(3), 0);
  ASSERT_TRUE(graph.GetRating(1, 1).has_value());
  EXPECT_FLOAT_EQ(*graph.GetRating(1, 1), 5.0f);
  EXPECT_FALSE(graph.GetRating(1, 0).has_value());
}

TEST(BipartiteGraphTest, DuplicateEdgesKeepFirst) {
  std::vector<Rating> ratings{{0, 0, 3.0f}, {0, 0, 5.0f}};
  BipartiteGraph graph(1, 1, ratings);
  EXPECT_EQ(graph.num_edges(), 1);
  EXPECT_FLOAT_EQ(*graph.GetRating(0, 0), 3.0f);
}

TEST(BipartiteGraphTest, OutOfRangeThrows) {
  BipartiteGraph graph(2, 2, {});
  EXPECT_THROW(graph.ItemsOfUser(2), CheckError);
  EXPECT_THROW(graph.UsersOfItem(-1), CheckError);
  EXPECT_THROW(BipartiteGraph(1, 1, {{1, 0, 3.0f}}), CheckError);
}

// ---------------------------------------------------------------------------
// Samplers.
// ---------------------------------------------------------------------------

data::Dataset SamplerDataset(uint64_t seed = 41) {
  data::SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 50;
  config.num_ratings = 900;
  config.user_schema = {{"age", 4}};
  config.item_schema = {{"genre", 5}};
  return data::GenerateSyntheticDataset(config, seed);
}

void ExpectValidSelection(const ContextSelection& selection, int64_t n,
                          int64_t m, const std::vector<int64_t>& seed_users,
                          const std::vector<int64_t>& seed_items) {
  EXPECT_EQ(static_cast<int64_t>(selection.users.size()), n);
  EXPECT_EQ(static_cast<int64_t>(selection.items.size()), m);
  // Distinct entities.
  std::set<int64_t> users(selection.users.begin(), selection.users.end());
  std::set<int64_t> items(selection.items.begin(), selection.items.end());
  EXPECT_EQ(users.size(), selection.users.size());
  EXPECT_EQ(items.size(), selection.items.size());
  // Seeds included, in order, at the front.
  for (size_t s = 0; s < seed_users.size(); ++s) {
    EXPECT_EQ(selection.users[s], seed_users[s]);
  }
  for (size_t s = 0; s < seed_items.size(); ++s) {
    EXPECT_EQ(selection.items[s], seed_items[s]);
  }
}

class SamplerContractTest : public ::testing::TestWithParam<int> {};

TEST_P(SamplerContractTest, AllSamplersHonourBudgetsAndSeeds) {
  const data::Dataset dataset = SamplerDataset();
  const BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                             dataset.ratings());
  NeighborhoodSampler neighborhood;
  RandomSampler random;
  FeatureSimilaritySampler feature(&dataset);
  std::vector<const ContextSampler*> samplers{&neighborhood, &random,
                                              &feature};
  const int which = GetParam() % 3;
  const uint64_t seed = static_cast<uint64_t>(GetParam());

  Rng rng(seed);
  const std::vector<int64_t> seed_users{5, 9};
  const std::vector<int64_t> seed_items{3};
  const ContextSelection selection =
      samplers[static_cast<size_t>(which)]->Sample(graph, seed_users,
                                                   seed_items, 16, 12, &rng);
  ExpectValidSelection(selection, 16, 12, seed_users, seed_items);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SamplerContractTest,
                         ::testing::Range(0, 12));

TEST(NeighborhoodSamplerTest, PrefersGraphNeighbors) {
  // Star graph: user 0 rated items 0..9; everything else disconnected.
  std::vector<Rating> ratings;
  for (int64_t i = 0; i < 10; ++i) ratings.push_back({0, i, 3.0f});
  BipartiteGraph graph(50, 40, ratings);

  NeighborhoodSampler sampler;
  Rng rng(7);
  const ContextSelection selection =
      sampler.Sample(graph, {0}, {}, 4, 8, &rng);
  // All 8 items must be drawn from user 0's neighborhood (items 0..9).
  for (int64_t item : selection.items) {
    EXPECT_LT(item, 10);
  }
}

TEST(NeighborhoodSamplerTest, SubsamplesOversizedFrontier) {
  std::vector<Rating> ratings;
  for (int64_t i = 0; i < 30; ++i) ratings.push_back({0, i, 3.0f});
  BipartiteGraph graph(5, 30, ratings);
  NeighborhoodSampler sampler;
  Rng rng(8);
  const ContextSelection selection = sampler.Sample(graph, {0}, {}, 2, 6, &rng);
  EXPECT_EQ(selection.items.size(), 6u);
}

TEST(NeighborhoodSamplerTest, FallsBackToRandomWhenDisconnected) {
  // User 9 has no edges at all.
  BipartiteGraph graph(10, 10, {{0, 0, 3.0f}});
  NeighborhoodSampler sampler;
  Rng rng(9);
  const ContextSelection selection =
      sampler.Sample(graph, {9}, {}, 4, 4, &rng);
  EXPECT_EQ(selection.users.size(), 4u);
  EXPECT_EQ(selection.items.size(), 4u);
  EXPECT_EQ(selection.users[0], 9);
}

TEST(NeighborhoodSamplerTest, BudgetsClampToUniverse) {
  BipartiteGraph graph(3, 2, {{0, 0, 3.0f}});
  NeighborhoodSampler sampler;
  Rng rng(10);
  const ContextSelection selection =
      sampler.Sample(graph, {0}, {0}, 10, 10, &rng);
  EXPECT_EQ(selection.users.size(), 3u);
  EXPECT_EQ(selection.items.size(), 2u);
}

TEST(SamplerTest, DeterministicUnderSeed) {
  const data::Dataset dataset = SamplerDataset();
  const BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                             dataset.ratings());
  NeighborhoodSampler sampler;
  Rng rng_a(33);
  Rng rng_b(33);
  const ContextSelection a = sampler.Sample(graph, {1}, {2}, 8, 8, &rng_a);
  const ContextSelection b = sampler.Sample(graph, {1}, {2}, 8, 8, &rng_b);
  EXPECT_EQ(a.users, b.users);
  EXPECT_EQ(a.items, b.items);
}

TEST(FeatureSimilaritySamplerTest, PicksAttributeMatchedUsers) {
  // Users 0..4 share attributes with user 0; the rest differ.
  data::Dataset dataset("sim", {{"age", 2}}, {{"genre", 2}}, 20, 10, 1.0f,
                        5.0f);
  for (int64_t u = 0; u < 20; ++u) {
    dataset.SetUserAttributes(u, {u < 5 ? int64_t{0} : int64_t{1}});
  }
  dataset.AddRating(0, 0, 3.0f);
  const BipartiteGraph graph(20, 10, dataset.ratings());
  FeatureSimilaritySampler sampler(&dataset);
  Rng rng(11);
  const ContextSelection selection =
      sampler.Sample(graph, {0}, {0}, 5, 2, &rng);
  // All 5 users should come from the attribute-equal block {0..4}.
  for (int64_t user : selection.users) {
    EXPECT_LT(user, 5) << "feature-similarity picked a dissimilar user";
  }
}

// ---------------------------------------------------------------------------
// Context assembly and masking.
// ---------------------------------------------------------------------------

TEST(ContextBuilderTest, AssembleMarksObservedCells) {
  BipartiteGraph graph(4, 3, ChainRatings());
  ContextSelection selection;
  selection.users = {0, 1, 2};
  selection.items = {0, 1, 2};
  const PredictionContext context = AssembleContext(graph, selection);
  EXPECT_EQ(context.num_users(), 3);
  EXPECT_EQ(context.num_items(), 3);
  EXPECT_FLOAT_EQ(context.observed_mask.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(context.observed_ratings.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(context.observed_mask.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(context.observed_ratings.at(1, 0), 0.0f);
  // No targets yet.
  EXPECT_FLOAT_EQ(context.target_mask.at(0, 0), 0.0f);
}

TEST(ContextBuilderTest, MaskMovesCellsToTargets) {
  BipartiteGraph graph(4, 3, ChainRatings());
  ContextSelection selection;
  selection.users = {0, 1, 2};
  selection.items = {0, 1, 2};
  PredictionContext context = AssembleContext(graph, selection);
  Rng rng(12);
  MaskForTraining(&context, /*visible_fraction=*/0.5, &rng);

  int64_t observed = 0;
  int64_t targets = 0;
  for (int64_t flat = 0; flat < context.observed_mask.size(); ++flat) {
    const bool is_observed = context.observed_mask.flat(flat) > 0;
    const bool is_target = context.target_mask.flat(flat) > 0;
    EXPECT_FALSE(is_observed && is_target) << "cell both visible and target";
    if (is_observed) ++observed;
    if (is_target) {
      ++targets;
      // Target values preserved, observed copy zeroed.
      EXPECT_GT(context.target_ratings.flat(flat), 0.0f);
      EXPECT_FLOAT_EQ(context.observed_ratings.flat(flat), 0.0f);
    }
  }
  EXPECT_EQ(observed + targets, 4);  // all four ratings accounted for
  EXPECT_GE(targets, 1);
  EXPECT_GE(observed, 1);
}

TEST(ContextBuilderTest, MaskZeroVisibleFractionKeepsOneVisible) {
  BipartiteGraph graph(4, 3, ChainRatings());
  ContextSelection selection;
  selection.users = {0, 1, 2};
  selection.items = {0, 1, 2};
  PredictionContext context = AssembleContext(graph, selection);
  Rng rng(13);
  MaskForTraining(&context, 0.0, &rng);
  // With >= 2 observations, at least one stays visible by design.
  int64_t observed = 0;
  for (int64_t flat = 0; flat < context.observed_mask.size(); ++flat) {
    if (context.observed_mask.flat(flat) > 0) ++observed;
  }
  EXPECT_GE(observed, 1);
}

TEST(ContextBuilderTest, MaskRequiresObservedRatings) {
  BipartiteGraph graph(2, 2, {});
  ContextSelection selection;
  selection.users = {0, 1};
  selection.items = {0, 1};
  PredictionContext context = AssembleContext(graph, selection);
  Rng rng(14);
  EXPECT_THROW(MaskForTraining(&context, 0.1, &rng), CheckError);
}

TEST(ContextBuilderTest, BuildTrainingContextEndToEnd) {
  const data::Dataset dataset = SamplerDataset(55);
  const BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                             dataset.ratings());
  NeighborhoodSampler sampler;
  Rng rng(15);
  const PredictionContext context =
      BuildTrainingContext(graph, sampler, 12, 10, 0.1, &rng);
  EXPECT_EQ(context.num_users(), 12);
  EXPECT_EQ(context.num_items(), 10);
  // Roughly 90% of observations became targets.
  int64_t observed = 0;
  int64_t targets = 0;
  for (int64_t flat = 0; flat < context.observed_mask.size(); ++flat) {
    if (context.observed_mask.flat(flat) > 0) ++observed;
    if (context.target_mask.flat(flat) > 0) ++targets;
  }
  EXPECT_GE(targets, 1);
  EXPECT_GT(targets, observed);
}

TEST(ContextBuilderTest, BuildTrainingContextNeedsEdges) {
  BipartiteGraph graph(4, 4, {});
  NeighborhoodSampler sampler;
  Rng rng(16);
  EXPECT_THROW(BuildTrainingContext(graph, sampler, 4, 4, 0.1, &rng),
               CheckError);
}

}  // namespace
}  // namespace graph
}  // namespace hire
