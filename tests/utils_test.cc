#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "utils/check.h"
#include "utils/logging.h"
#include "utils/stopwatch.h"
#include "utils/string_utils.h"
#include "utils/table_printer.h"
#include "utils/parallel.h"
#include "utils/thread_pool.h"

namespace hire {
namespace {

TEST(CheckTest, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(HIRE_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingConditionThrowsWithLocation) {
  try {
    HIRE_CHECK(false) << "extra context " << 42;
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("utils_test.cc"), std::string::npos);
    EXPECT_NE(what.find("extra context 42"), std::string::npos);
  }
}

TEST(CheckTest, ComparisonMacrosIncludeOperands) {
  try {
    const int x = 3;
    HIRE_CHECK_EQ(x, 5);
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("lhs=3"), std::string::npos);
    EXPECT_NE(what.find("rhs=5"), std::string::npos);
  }
}

TEST(CheckTest, AllComparisonVariants) {
  EXPECT_NO_THROW(HIRE_CHECK_NE(1, 2));
  EXPECT_NO_THROW(HIRE_CHECK_LT(1, 2));
  EXPECT_NO_THROW(HIRE_CHECK_LE(2, 2));
  EXPECT_NO_THROW(HIRE_CHECK_GT(3, 2));
  EXPECT_NO_THROW(HIRE_CHECK_GE(2, 2));
  EXPECT_THROW(HIRE_CHECK_NE(2, 2), CheckError);
  EXPECT_THROW(HIRE_CHECK_LT(2, 2), CheckError);
  EXPECT_THROW(HIRE_CHECK_GT(2, 2), CheckError);
}

TEST(StringTest, SplitKeepsEmptyFields) {
  const std::vector<std::string> fields = Split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringTest, SplitSingleField) {
  const std::vector<std::string> fields = Split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(StringTest, TrimRemovesWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StringTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(StringTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-7"), -7);
  EXPECT_THROW(ParseInt64("4x"), CheckError);
  EXPECT_THROW(ParseInt64(""), CheckError);
}

TEST(StringTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e-3"), -1e-3);
  EXPECT_THROW(ParseDouble("abc"), CheckError);
  EXPECT_THROW(ParseDouble("1.2.3"), CheckError);
}

TEST(StringTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.123456, 4), "0.1235");
  EXPECT_EQ(FormatDouble(2.0, 2), "2.00");
}

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table({"Method", "P@5"});
  table.AddRow({"HIRE", "0.6999"});
  table.AddSeparator();
  table.AddRow({"NeuMF", "0.47"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("| Method |"), std::string::npos);
  EXPECT_NE(rendered.find("| HIRE   |"), std::string::npos);
  EXPECT_NE(rendered.find("0.6999"), std::string::npos);
}

TEST(TablePrinterTest, RejectsRaggedRows) {
  TablePrinter table({"A", "B"});
  EXPECT_THROW(table.AddRow({"only one"}), CheckError);
}

TEST(TablePrinterTest, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), CheckError);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(1);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(0, 100, [&hits](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool ran = false;
  ParallelFor(5, 5, [&ran](int64_t) { ran = true; });
  EXPECT_FALSE(ran);
  ParallelFor(7, 5, [&ran](int64_t) { ran = true; });  // inverted range
  EXPECT_FALSE(ran);
  ParallelForRange(3, 3, 8, [&ran](int64_t, int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, RangeSmallerThanGrainRunsInlineAsOneChunk) {
  SetGlobalThreads(4);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  ParallelForRange(10, 15, 100, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(lo, 10);
    EXPECT_EQ(hi, 15);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  SetGlobalThreads(0);
}

TEST(ParallelForTest, RangeChunksCoverExactlyOnce) {
  SetGlobalThreads(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelForRange(0, 1000, 64, [&hits](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
  SetGlobalThreads(0);
}

TEST(ParallelForTest, WorkerExceptionPropagatesToCaller) {
  SetGlobalThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 1000, 1,
                  [](int64_t i) {
                    if (i == 493) throw std::runtime_error("worker failure");
                  }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> count{0};
  ParallelFor(0, 100, 1, [&count](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
  SetGlobalThreads(0);
}

TEST(ParallelForTest, NestedCallsRunInline) {
  SetGlobalThreads(4);
  std::atomic<int> total{0};
  ParallelFor(0, 8, 1, [&total](int64_t) {
    EXPECT_TRUE(InParallelRegion());
    ParallelFor(0, 8, 1, [&total](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
  EXPECT_FALSE(InParallelRegion());
  SetGlobalThreads(0);
}

TEST(ParallelForTest, ManySmallChunksAreStolenAndCovered) {
  // 512 one-element chunks through the work-stealing deques: every index
  // must be executed exactly once no matter which lane ran it.
  SetGlobalThreads(7);
  std::vector<std::atomic<int>> hits(512);
  ParallelForRange(0, 512, 1, [&hits](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
  SetGlobalThreads(0);
}

TEST(ParallelForTest, ConcurrentTopLevelLoopsFromManyThreads) {
  // Several external threads race to publish top-level loops (the serve
  // request-handler pattern). CAS losers run inline; totals must be exact.
  SetGlobalThreads(4);
  constexpr int kCallers = 6;
  constexpr int kIters = 20;
  std::atomic<int64_t> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&total] {
      for (int rep = 0; rep < kIters; ++rep) {
        ParallelForRange(0, 256, 16, [&total](int64_t lo, int64_t hi) {
          total.fetch_add(hi - lo, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), int64_t{kCallers} * kIters * 256);
  SetGlobalThreads(0);
}

TEST(ParallelForTest, NestedStressKeepsExactTotals) {
  // Outer loop wide enough to occupy every worker, each chunk spawning a
  // nested loop (which must run inline) over a shared accumulator.
  SetGlobalThreads(4);
  std::atomic<int64_t> total{0};
  for (int rep = 0; rep < 10; ++rep) {
    ParallelForRange(0, 64, 1, [&total](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        EXPECT_TRUE(InParallelRegion());
        ParallelForRange(0, 32, 4, [&total](int64_t nlo, int64_t nhi) {
          total.fetch_add(nhi - nlo, std::memory_order_relaxed);
        });
      }
    });
  }
  EXPECT_EQ(total.load(), int64_t{10} * 64 * 32);
  EXPECT_FALSE(InParallelRegion());
  SetGlobalThreads(0);
}

TEST(ParallelForTest, DispatchOverheadWithinBudget) {
  // Guard against per-chunk heap allocation or lock contention creeping back
  // into the dispatch path: an empty-body fan-out must stay cheap. The
  // budget is deliberately loose (CI boxes are noisy and often 1-core); a
  // std::function-per-chunk + mutex queue implementation blows through it.
  SetGlobalThreads(4);
  constexpr int64_t kChunks = 256;
  constexpr int kRuns = 9;
  double best_ns = 1e18;
  for (int run = 0; run < kRuns; ++run) {
    Stopwatch stopwatch;
    ParallelForRange(0, kChunks, 1, [](int64_t, int64_t) {});
    best_ns = std::min(best_ns, stopwatch.ElapsedSeconds() * 1e9);
  }
  const double ns_per_chunk = best_ns / kChunks;
  constexpr double kBudgetNsPerChunk = 4000.0;
  EXPECT_LE(ns_per_chunk, kBudgetNsPerChunk)
      << "empty-body dispatch cost " << ns_per_chunk
      << " ns/chunk exceeds budget";
  SetGlobalThreads(0);
}

TEST(GlobalThreadsTest, SetAndResolve) {
  SetGlobalThreads(3);
  EXPECT_EQ(GlobalThreads(), 3);
  SetGlobalThreads(1);
  EXPECT_EQ(GlobalThreads(), 1);
  SetGlobalThreads(0);  // back to automatic
  EXPECT_GE(GlobalThreads(), 1);
}

TEST(GlobalThreadsTest, EffectiveThreadsClampedToHardware) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int cores = hw == 0 ? 1 : static_cast<int>(hw);
  SetGlobalThreads(1);
  EXPECT_EQ(GlobalEffectiveThreads(), 1);
  SetGlobalThreads(cores + 5);
  EXPECT_EQ(GlobalThreads(), cores + 5);
  EXPECT_EQ(GlobalEffectiveThreads(), cores);
  SetGlobalThreads(0);
  EXPECT_LE(GlobalEffectiveThreads(), GlobalThreads());
}

TEST(GlobalThreadsDeathTest, AbortsWhenRegionsInFlight) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        SetGlobalThreads(2);
        ParallelForRange(0, 4, 1, [](int64_t, int64_t) {
          SetGlobalThreads(3);  // resize mid-region: must abort
        });
      },
      "in flight");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch stopwatch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(stopwatch.ElapsedSeconds(), 0.0);
  EXPECT_GE(stopwatch.ElapsedMillis(), stopwatch.ElapsedSeconds());
}

TEST(LoggingTest, LevelFiltering) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  HIRE_LOG(Info) << "should be suppressed";
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

}  // namespace
}  // namespace hire
