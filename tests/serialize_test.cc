#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "nn/mlp.h"
#include "tensor/random.h"
#include "tensor/state_dict.h"
#include "utils/check.h"
#include "utils/fault_injection.h"

namespace hire {
namespace nn {
namespace {

// ---------------------------------------------------------------------------
// StateDict container.
// ---------------------------------------------------------------------------

TEST(StateDictTest, RoundTripsTensorsScalarsAndFloatBits) {
  Rng rng(11);
  StateDict state;
  state.PutTensor("a.weight", RandomNormal({3, 4}, 0.0f, 1.0f, &rng));
  state.PutTensor("b.bias", RandomUniform({5}, -2.0f, 2.0f, &rng));
  state.PutScalar("step", 42);
  state.PutFloat("lr_scale", 1.0f / 3.0f);  // not exactly representable text

  const std::string path = testing::TempDir() + "/hire_statedict.snap";
  SaveStateDict(state, path);
  const StateDict loaded = LoadStateDict(path);

  EXPECT_EQ(loaded.GetScalar("step"), 42u);
  // Float scalars must survive with their exact bit pattern.
  EXPECT_EQ(loaded.GetFloat("lr_scale"), 1.0f / 3.0f);
  ASSERT_TRUE(loaded.HasTensor("a.weight"));
  const Tensor& a = state.GetTensor("a.weight");
  const Tensor& a_loaded = loaded.GetTensor("a.weight");
  ASSERT_TRUE(a_loaded.SameShape(a));
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a_loaded.flat(i), a.flat(i));
  }
  std::remove(path.c_str());
}

TEST(StateDictTest, DuplicateAndMissingKeysThrow) {
  StateDict state;
  state.PutScalar("x", 1);
  EXPECT_THROW(state.PutScalar("x", 2), CheckError);
  EXPECT_THROW(state.GetScalar("y"), CheckError);
  EXPECT_THROW(state.GetTensor("z"), CheckError);
}

TEST(StateDictTest, MergeWithPrefixAndExtract) {
  StateDict inner;
  inner.PutScalar("step_count", 7);
  inner.PutTensor("m.0", Tensor::Zeros({2}));
  StateDict outer;
  outer.Merge(inner, "optim.");
  EXPECT_EQ(outer.GetScalar("optim.step_count"), 7u);
  const StateDict extracted = outer.Extract("optim.");
  EXPECT_EQ(extracted.GetScalar("step_count"), 7u);
  EXPECT_TRUE(extracted.HasTensor("m.0"));
}

// ---------------------------------------------------------------------------
// Snapshot failure modes: truncation, corruption, wrong magic/version.
// ---------------------------------------------------------------------------

class SnapshotFile : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(5);
    StateDict state;
    state.PutTensor("w", RandomNormal({8, 8}, 0.0f, 1.0f, &rng));
    state.PutScalar("step", 9);
    path_ = testing::TempDir() + "/hire_snapshot_failures.snap";
    SaveStateDict(state, path_);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(SnapshotFile, LoadsWhenIntact) {
  const StateDict loaded = LoadStateDict(path_);
  EXPECT_EQ(loaded.GetScalar("step"), 9u);
}

TEST_F(SnapshotFile, AtomicSaveLeavesNoTempFile) {
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(SnapshotFile, TruncatedFileThrows) {
  TruncateFile(path_, FileSize(path_) / 2);
  EXPECT_THROW(LoadStateDict(path_), CheckError);
}

TEST_F(SnapshotFile, TruncatedToHeaderOnlyThrows) {
  TruncateFile(path_, 12);
  EXPECT_THROW(LoadStateDict(path_), CheckError);
}

TEST_F(SnapshotFile, BitFlipInPayloadFailsChecksum) {
  FlipFileBit(path_, FileSize(path_) / 2, 0);
  try {
    LoadStateDict(path_);
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("checksum"), std::string::npos)
        << error.what();
  }
}

TEST_F(SnapshotFile, WrongMagicThrows) {
  FlipFileBit(path_, 0, 1);
  EXPECT_THROW(LoadStateDict(path_), CheckError);
}

TEST_F(SnapshotFile, CorruptedPayloadSizeFieldThrowsCheckError) {
  // Bytes 12..19 hold the little-endian payload size, which the CRC does
  // not cover. Flipping its high byte claims an absurd payload; the loader
  // must reject it as CheckError (which recovery paths skip past), not die
  // in std::length_error/bad_alloc allocating the buffer.
  FlipFileBit(path_, 19, 6);
  try {
    LoadStateDict(path_);
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("payload"), std::string::npos)
        << error.what();
  }
}

TEST_F(SnapshotFile, TrailingGarbageAfterChecksumThrows) {
  // The on-disk size must match the header exactly; appended bytes mean the
  // file is not the one that was written.
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  out.write("junk", 4);
  out.close();
  EXPECT_THROW(LoadStateDict(path_), CheckError);
}

TEST_F(SnapshotFile, UnsupportedVersionThrows) {
  // Bytes 8..11 hold the little-endian version field.
  FlipFileBit(path_, 8, 6);
  try {
    LoadStateDict(path_);
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos)
        << error.what();
  }
}

// ---------------------------------------------------------------------------
// Parameter save/load on top of the snapshot container.
// ---------------------------------------------------------------------------

TEST(SerializeV2Test, ParameterNameMismatchThrows) {
  Rng rng(31);
  Mlp mlp({3, 4, 1}, Activation::kRelu, &rng);
  StateDict state;
  state.PutTensor("not.a.real.parameter", Tensor::Zeros({3, 4}));
  EXPECT_THROW(ImportParameters(&mlp, "", state), CheckError);
}

TEST(SerializeV2Test, FileShorterThanAnyMagicThrowsCheckError) {
  // A file too short to hold either magic must fail cleanly: the format
  // sniffer may not compare uninitialized bytes or take an arbitrary path.
  Rng rng(33);
  Mlp mlp({3, 4, 1}, Activation::kRelu, &rng);
  const std::string path = testing::TempDir() + "/hire_params_tiny.snap";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("HIRE", 4);
  }
  EXPECT_THROW(LoadParameters(&mlp, path), CheckError);
  std::remove(path.c_str());
}

TEST(SerializeV2Test, CorruptedParameterFileThrows) {
  Rng rng(32);
  Mlp original({3, 4, 1}, Activation::kRelu, &rng);
  Mlp restored({3, 4, 1}, Activation::kRelu, &rng);
  const std::string path = testing::TempDir() + "/hire_params_bitflip.snap";
  SaveParameters(original, path);
  FlipFileBit(path, FileSize(path) - 16, 2);
  EXPECT_THROW(LoadParameters(&restored, path), CheckError);
  std::remove(path.c_str());
}

// Pre-version ("HIREPARAMS1") files written by older builds must keep
// loading. This writes the legacy byte stream by hand.
TEST(SerializeV2Test, LegacyParameterFileStillLoads) {
  Rng rng(33);
  Mlp original({2, 3, 1}, Activation::kRelu, &rng);
  Mlp restored({2, 3, 1}, Activation::kRelu, &rng);

  const std::string path = testing::TempDir() + "/hire_params_legacy.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    auto write_u64 = [&out](uint64_t value) {
      out.write(reinterpret_cast<const char*>(&value), sizeof(value));
    };
    const auto named = original.NamedParameters();
    out.write("HIREPARAMS1", 11);
    write_u64(named.size());
    for (const auto& [name, variable] : named) {
      write_u64(name.size());
      out.write(name.data(), static_cast<std::streamsize>(name.size()));
      const Tensor& value = variable.value();
      write_u64(static_cast<uint64_t>(value.dim()));
      for (int64_t extent : value.shape()) {
        write_u64(static_cast<uint64_t>(extent));
      }
      out.write(reinterpret_cast<const char*>(value.data()),
                static_cast<std::streamsize>(value.size() * sizeof(float)));
    }
    ASSERT_TRUE(out.good());
  }

  LoadParameters(&restored, path);
  const auto original_params = original.NamedParameters();
  const auto restored_params = restored.NamedParameters();
  ASSERT_EQ(original_params.size(), restored_params.size());
  for (size_t p = 0; p < original_params.size(); ++p) {
    const Tensor& a = original_params[p].second.value();
    const Tensor& b = restored_params[p].second.value();
    ASSERT_TRUE(a.SameShape(b));
    for (int64_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a.flat(i), b.flat(i)) << original_params[p].first;
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nn
}  // namespace hire
