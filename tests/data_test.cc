#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "data/csv_loader.h"
#include "data/dataset.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "tensor/random.h"
#include "utils/check.h"

namespace hire {
namespace data {
namespace {

Dataset TinyDataset() {
  Dataset dataset("tiny", {{"age", 3}}, {{"genre", 2}}, 4, 5, 1.0f, 5.0f);
  dataset.SetUserAttributes(0, {1});
  dataset.SetUserAttributes(1, {2});
  dataset.AddRating(0, 0, 3.0f);
  dataset.AddRating(0, 1, 5.0f);
  dataset.AddRating(1, 2, 1.0f);
  return dataset;
}

TEST(DatasetTest, ConstructionAndAccessors) {
  Dataset dataset = TinyDataset();
  EXPECT_EQ(dataset.num_users(), 4);
  EXPECT_EQ(dataset.num_items(), 5);
  EXPECT_EQ(dataset.ratings().size(), 3u);
  EXPECT_EQ(dataset.user_attributes(0)[0], 1);
  EXPECT_EQ(dataset.user_attributes(3)[0], 0);  // default
  EXPECT_FALSE(dataset.has_social_network());
}

TEST(DatasetTest, ValidatesAttributeRanges) {
  Dataset dataset = TinyDataset();
  EXPECT_THROW(dataset.SetUserAttributes(0, {3}), CheckError);   // >= 3
  EXPECT_THROW(dataset.SetUserAttributes(0, {1, 2}), CheckError);  // arity
  EXPECT_THROW(dataset.SetUserAttributes(9, {1}), CheckError);   // bad user
  EXPECT_THROW(dataset.SetItemAttributes(0, {2}), CheckError);   // >= 2
}

TEST(DatasetTest, ValidatesRatings) {
  Dataset dataset = TinyDataset();
  EXPECT_THROW(dataset.AddRating(0, 0, 0.5f), CheckError);
  EXPECT_THROW(dataset.AddRating(0, 0, 5.5f), CheckError);
  EXPECT_THROW(dataset.AddRating(4, 0, 3.0f), CheckError);
  EXPECT_THROW(dataset.AddRating(0, 5, 3.0f), CheckError);
}

TEST(DatasetTest, RatingLevelRoundTrip) {
  Dataset dataset = TinyDataset();
  EXPECT_EQ(dataset.NumRatingLevels(), 5);
  EXPECT_EQ(dataset.RatingToLevel(1.0f), 0);
  EXPECT_EQ(dataset.RatingToLevel(5.0f), 4);
  EXPECT_FLOAT_EQ(dataset.LevelToRating(2), 3.0f);
  EXPECT_THROW(dataset.LevelToRating(5), CheckError);
}

TEST(DatasetTest, ContinuousRatingScale) {
  Dataset dataset("c", {{"a", 2}}, {{"b", 2}}, 2, 2, 0.0f, 1.0f,
                  /*continuous_ratings=*/true);
  EXPECT_TRUE(dataset.continuous_ratings());
  dataset.AddRating(0, 0, 0.37f);  // any value in range is legal
  EXPECT_FLOAT_EQ(dataset.NormalizeRating(0.5f), 0.5f);
  EXPECT_THROW(dataset.NumRatingLevels(), CheckError);

  Dataset discrete("d", {{"a", 2}}, {{"b", 2}}, 2, 2, 1.0f, 5.0f);
  EXPECT_FALSE(discrete.continuous_ratings());
  EXPECT_FLOAT_EQ(discrete.NormalizeRating(3.0f), 0.5f);
}

TEST(DatasetTest, RelevanceThresholdIs80Percent) {
  Dataset dataset = TinyDataset();
  EXPECT_FLOAT_EQ(dataset.RelevanceThreshold(), 4.0f);
  Dataset ten("t", {{"a", 2}}, {{"b", 2}}, 2, 2, 1.0f, 10.0f);
  EXPECT_FLOAT_EQ(ten.RelevanceThreshold(), 8.0f);
}

TEST(DatasetTest, FriendshipsAreSymmetric) {
  Dataset dataset = TinyDataset();
  dataset.AddFriendship(0, 2);
  EXPECT_TRUE(dataset.has_social_network());
  EXPECT_EQ(dataset.friends(0).size(), 1u);
  EXPECT_EQ(dataset.friends(2)[0], 0);
  EXPECT_THROW(dataset.AddFriendship(1, 1), CheckError);
}

// ---------------------------------------------------------------------------
// Cold-start splits.
// ---------------------------------------------------------------------------

Dataset MediumDataset(uint64_t seed) {
  SyntheticConfig config;
  config.num_users = 80;
  config.num_items = 60;
  config.num_ratings = 1500;
  config.user_schema = {{"age", 4}};
  config.item_schema = {{"genre", 5}};
  return GenerateSyntheticDataset(config, seed);
}

TEST(SplitTest, UserColdSplitHasNoLeakage) {
  Dataset dataset = MediumDataset(1);
  Rng rng(2);
  ColdStartSplit split = MakeColdStartSplit(
      dataset, ColdStartScenario::kUserCold, 0.8, &rng);

  std::unordered_set<int64_t> cold(split.test_users.begin(),
                                   split.test_users.end());
  EXPECT_FALSE(cold.empty());
  for (const Rating& rating : split.train_ratings) {
    EXPECT_EQ(cold.count(rating.user), 0u)
        << "cold user leaked into training";
  }
  for (const Rating& rating : split.test_ratings) {
    EXPECT_EQ(cold.count(rating.user), 1u);
  }
  EXPECT_EQ(split.train_ratings.size() + split.test_ratings.size(),
            dataset.ratings().size());
}

TEST(SplitTest, ItemColdSplitHasNoLeakage) {
  Dataset dataset = MediumDataset(3);
  Rng rng(4);
  ColdStartSplit split = MakeColdStartSplit(
      dataset, ColdStartScenario::kItemCold, 0.7, &rng);
  std::unordered_set<int64_t> cold(split.test_items.begin(),
                                   split.test_items.end());
  for (const Rating& rating : split.train_ratings) {
    EXPECT_EQ(cold.count(rating.item), 0u);
  }
  for (const Rating& rating : split.test_ratings) {
    EXPECT_EQ(cold.count(rating.item), 1u);
  }
  EXPECT_TRUE(split.test_users.empty());
}

TEST(SplitTest, UserItemColdDiscardsMixedPairs) {
  Dataset dataset = MediumDataset(5);
  Rng rng(6);
  ColdStartSplit split = MakeColdStartSplit(
      dataset, ColdStartScenario::kUserItemCold, 0.7, &rng);
  std::unordered_set<int64_t> cold_users(split.test_users.begin(),
                                         split.test_users.end());
  std::unordered_set<int64_t> cold_items(split.test_items.begin(),
                                         split.test_items.end());
  for (const Rating& rating : split.train_ratings) {
    EXPECT_EQ(cold_users.count(rating.user), 0u);
    EXPECT_EQ(cold_items.count(rating.item), 0u);
  }
  for (const Rating& rating : split.test_ratings) {
    EXPECT_EQ(cold_users.count(rating.user), 1u);
    EXPECT_EQ(cold_items.count(rating.item), 1u);
  }
  // Mixed pairs are dropped, so the two sets undercount the total.
  EXPECT_LT(split.train_ratings.size() + split.test_ratings.size(),
            dataset.ratings().size());
}

TEST(SplitTest, TrainFractionControlsSplitSizes) {
  Dataset dataset = MediumDataset(7);
  Rng rng(8);
  ColdStartSplit split = MakeColdStartSplit(
      dataset, ColdStartScenario::kUserCold, 0.8, &rng);
  EXPECT_NEAR(static_cast<double>(split.train_users.size()) /
                  static_cast<double>(dataset.num_users()),
              0.8, 0.05);
}

TEST(SplitTest, DeterministicUnderSeed) {
  Dataset dataset = MediumDataset(9);
  Rng rng_a(10);
  Rng rng_b(10);
  ColdStartSplit a = MakeColdStartSplit(dataset,
                                        ColdStartScenario::kUserCold, 0.8,
                                        &rng_a);
  ColdStartSplit b = MakeColdStartSplit(dataset,
                                        ColdStartScenario::kUserCold, 0.8,
                                        &rng_b);
  EXPECT_EQ(a.test_users, b.test_users);
  EXPECT_EQ(a.train_ratings.size(), b.train_ratings.size());
}

TEST(SplitTest, RejectsBadTrainFraction) {
  Dataset dataset = MediumDataset(11);
  Rng rng(12);
  EXPECT_THROW(
      MakeColdStartSplit(dataset, ColdStartScenario::kUserCold, 0.0, &rng),
      CheckError);
  EXPECT_THROW(
      MakeColdStartSplit(dataset, ColdStartScenario::kUserCold, 1.0, &rng),
      CheckError);
}

TEST(SplitTest, ScenarioNames) {
  EXPECT_EQ(ScenarioName(ColdStartScenario::kUserCold), "user-cold");
  EXPECT_EQ(ScenarioName(ColdStartScenario::kItemCold), "item-cold");
  EXPECT_EQ(ScenarioName(ColdStartScenario::kUserItemCold),
            "user&item-cold");
}

// ---------------------------------------------------------------------------
// Synthetic generator.
// ---------------------------------------------------------------------------

TEST(SyntheticTest, GeneratesRequestedShape) {
  Dataset dataset = MediumDataset(13);
  EXPECT_EQ(dataset.num_users(), 80);
  EXPECT_EQ(dataset.num_items(), 60);
  EXPECT_GE(static_cast<int64_t>(dataset.ratings().size()), 1400);
  for (const Rating& rating : dataset.ratings()) {
    EXPECT_GE(rating.value, 1.0f);
    EXPECT_LE(rating.value, 5.0f);
    EXPECT_FLOAT_EQ(rating.value, std::round(rating.value));
  }
}

TEST(SyntheticTest, DeterministicUnderSeed) {
  Dataset a = MediumDataset(21);
  Dataset b = MediumDataset(21);
  ASSERT_EQ(a.ratings().size(), b.ratings().size());
  for (size_t r = 0; r < a.ratings().size(); ++r) {
    EXPECT_EQ(a.ratings()[r].user, b.ratings()[r].user);
    EXPECT_EQ(a.ratings()[r].item, b.ratings()[r].item);
    EXPECT_EQ(a.ratings()[r].value, b.ratings()[r].value);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  Dataset a = MediumDataset(22);
  Dataset b = MediumDataset(23);
  int differences = 0;
  const size_t count = std::min(a.ratings().size(), b.ratings().size());
  for (size_t r = 0; r < count; ++r) {
    if (a.ratings()[r].user != b.ratings()[r].user ||
        a.ratings()[r].value != b.ratings()[r].value) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 10);
}

TEST(SyntheticTest, EveryEntityHasMinimumDegree) {
  Dataset dataset = MediumDataset(24);
  std::vector<int> user_degree(80, 0);
  std::vector<int> item_degree(60, 0);
  for (const Rating& rating : dataset.ratings()) {
    ++user_degree[static_cast<size_t>(rating.user)];
    ++item_degree[static_cast<size_t>(rating.item)];
  }
  for (int degree : user_degree) EXPECT_GE(degree, 1);
  for (int degree : item_degree) EXPECT_GE(degree, 1);
}

TEST(SyntheticTest, RatingsAreUniquePairs) {
  Dataset dataset = MediumDataset(25);
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (const Rating& rating : dataset.ratings()) {
    EXPECT_TRUE(pairs.emplace(rating.user, rating.item).second)
        << "duplicate pair (" << rating.user << ", " << rating.item << ")";
  }
}

TEST(SyntheticTest, AttributesAreInformative) {
  // Users sharing all attribute values should rate more similarly than
  // random pairs, because attributes derive from the latent vectors.
  SyntheticConfig config;
  config.num_users = 150;
  config.num_items = 80;
  config.num_ratings = 6000;
  config.user_schema = {{"age", 4}, {"occupation", 6}};
  config.item_schema = {{"genre", 5}};
  config.rating_noise = 0.2;
  Dataset dataset = GenerateSyntheticDataset(config, 31);

  // Mean absolute rating difference on co-rated items for attribute-equal
  // user pairs vs. all pairs.
  std::vector<std::unordered_map<int64_t, float>> by_user(150);
  for (const Rating& rating : dataset.ratings()) {
    by_user[static_cast<size_t>(rating.user)][rating.item] = rating.value;
  }
  double same_diff = 0.0;
  int64_t same_count = 0;
  double all_diff = 0.0;
  int64_t all_count = 0;
  for (int64_t u = 0; u < 150; ++u) {
    for (int64_t v = u + 1; v < 150; ++v) {
      const bool same_attrs =
          dataset.user_attributes(u) == dataset.user_attributes(v);
      for (const auto& [item, value] : by_user[static_cast<size_t>(u)]) {
        const auto it = by_user[static_cast<size_t>(v)].find(item);
        if (it == by_user[static_cast<size_t>(v)].end()) continue;
        const double diff = std::fabs(value - it->second);
        all_diff += diff;
        ++all_count;
        if (same_attrs) {
          same_diff += diff;
          ++same_count;
        }
      }
    }
  }
  ASSERT_GT(same_count, 50);
  ASSERT_GT(all_count, 500);
  EXPECT_LT(same_diff / same_count, all_diff / all_count)
      << "attribute-equal users should rate more similarly";
}

TEST(SyntheticTest, ProfilesMatchPaperSchemas) {
  const SyntheticConfig ml = MovieLens1MProfile();
  EXPECT_EQ(ml.user_schema.size(), 4u);
  EXPECT_EQ(ml.item_schema.size(), 4u);
  EXPECT_FLOAT_EQ(ml.max_rating, 5.0f);

  const SyntheticConfig douban = DoubanProfile();
  EXPECT_TRUE(douban.user_schema.empty());  // ID attributes
  EXPECT_TRUE(douban.generate_social);

  const SyntheticConfig books = BookcrossingProfile();
  EXPECT_EQ(books.user_schema.size(), 1u);
  EXPECT_EQ(books.item_schema.size(), 1u);
  EXPECT_FLOAT_EQ(books.max_rating, 10.0f);
}

TEST(SyntheticTest, DoubanProfileGeneratesSocialAndIdAttributes) {
  SyntheticConfig config = DoubanProfile(0.2);
  Dataset dataset = GenerateSyntheticDataset(config, 33);
  EXPECT_TRUE(dataset.has_social_network());
  EXPECT_EQ(dataset.user_schema()[0].name, "id");
  EXPECT_EQ(dataset.user_attributes(7)[0], 7);
  int64_t total_friends = 0;
  for (int64_t u = 0; u < dataset.num_users(); ++u) {
    total_friends += static_cast<int64_t>(dataset.friends(u).size());
  }
  EXPECT_GT(total_friends, dataset.num_users());
}

// ---------------------------------------------------------------------------
// CSV loader.
// ---------------------------------------------------------------------------

class CsvLoaderTest : public ::testing::Test {
 protected:
  std::string WriteFile(const std::string& name, const std::string& body) {
    const std::string path = testing::TempDir() + "/" + name;
    std::ofstream out(path);
    out << body;
    return path;
  }

  void TearDown() override {
    for (const std::string& path : files_) std::remove(path.c_str());
  }

  std::vector<std::string> files_;
};

TEST_F(CsvLoaderTest, LoadsRatingsAndAttributes) {
  CsvDatasetSpec spec;
  spec.ratings_path = WriteFile("ratings.csv",
                                "user,item,rating\n"
                                "u1,i1,4\n"
                                "u1,i2,2\n"
                                "u2,i1,5\n");
  spec.user_attributes_path = WriteFile("users.csv",
                                        "user,age,job\n"
                                        "u1,young,teacher\n"
                                        "u2,old,doctor\n");
  spec.item_attributes_path = WriteFile("items.csv",
                                        "item,genre\n"
                                        "i1,comedy\n"
                                        "i2,drama\n");
  files_ = {spec.ratings_path, spec.user_attributes_path,
            spec.item_attributes_path};

  Dataset dataset = LoadCsvDataset(spec);
  EXPECT_EQ(dataset.num_users(), 2);
  EXPECT_EQ(dataset.num_items(), 2);
  EXPECT_EQ(dataset.ratings().size(), 3u);
  EXPECT_EQ(dataset.user_schema().size(), 2u);
  EXPECT_EQ(dataset.item_schema().size(), 1u);
  // u1 and u2 have different vocab-encoded attribute values.
  EXPECT_NE(dataset.user_attributes(0)[0], dataset.user_attributes(1)[0]);
  EXPECT_FLOAT_EQ(dataset.ratings()[2].value, 5.0f);
}

TEST_F(CsvLoaderTest, IdentityAttributesWhenNoFiles) {
  CsvDatasetSpec spec;
  spec.ratings_path = WriteFile("ratings_only.csv",
                                "user,item,rating\n"
                                "a,x,3\n"
                                "b,y,4\n");
  files_ = {spec.ratings_path};
  Dataset dataset = LoadCsvDataset(spec);
  EXPECT_EQ(dataset.user_schema()[0].name, "id");
  EXPECT_EQ(dataset.user_attributes(1)[0], 1);
  EXPECT_EQ(dataset.item_attributes(0)[0], 0);
}

TEST_F(CsvLoaderTest, MissingFileThrows) {
  CsvDatasetSpec spec;
  spec.ratings_path = "/nonexistent/ratings.csv";
  EXPECT_THROW(LoadCsvDataset(spec), CheckError);
}

TEST_F(CsvLoaderTest, MalformedRatingThrows) {
  CsvDatasetSpec spec;
  spec.ratings_path = WriteFile("bad_ratings.csv",
                                "user,item,rating\n"
                                "u1,i1,abc\n");
  files_ = {spec.ratings_path};
  EXPECT_THROW(LoadCsvDataset(spec), CheckError);
}

TEST_F(CsvLoaderTest, OutOfRangeRatingThrows) {
  CsvDatasetSpec spec;
  spec.ratings_path = WriteFile("oor_ratings.csv",
                                "user,item,rating\n"
                                "u1,i1,11\n");
  spec.max_rating = 5.0f;
  files_ = {spec.ratings_path};
  EXPECT_THROW(LoadCsvDataset(spec), CheckError);
}

TEST_F(CsvLoaderTest, MalformedRowReportsFileAndLineNumber) {
  CsvDatasetSpec spec;
  spec.ratings_path = WriteFile("line_ratings.csv",
                                "user,item,rating\n"
                                "u1,i1,4\n"
                                "u2,i1,oops\n");
  files_ = {spec.ratings_path};
  try {
    LoadCsvDataset(spec);
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("line_ratings.csv:3"), std::string::npos)
        << "error should name the file and line: " << message;
    EXPECT_NE(message.find("oops"), std::string::npos) << message;
  }
}

TEST_F(CsvLoaderTest, ShortRowReportsFileAndLineNumber) {
  CsvDatasetSpec spec;
  spec.ratings_path = WriteFile("short_ratings.csv",
                                "user,item,rating\n"
                                "u1,i1\n");
  files_ = {spec.ratings_path};
  try {
    LoadCsvDataset(spec);
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("short_ratings.csv:2"),
              std::string::npos)
        << error.what();
  }
}

TEST_F(CsvLoaderTest, NonFiniteRatingThrows) {
  for (const char* bad : {"nan", "inf", "-inf"}) {
    CsvDatasetSpec spec;
    spec.ratings_path = WriteFile("nonfinite_ratings.csv",
                                  std::string("user,item,rating\n"
                                              "u1,i1,") +
                                      bad + "\n");
    files_ = {spec.ratings_path};
    EXPECT_THROW(LoadCsvDataset(spec), CheckError) << bad;
  }
}

TEST_F(CsvLoaderTest, EmptyFileThrowsWithClearMessage) {
  CsvDatasetSpec spec;
  spec.ratings_path = WriteFile("empty_ratings.csv", "user,item,rating\n");
  files_ = {spec.ratings_path};
  try {
    LoadCsvDataset(spec);
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("no data rows"),
              std::string::npos)
        << error.what();
  }
}

TEST_F(CsvLoaderTest, RaggedAttributeRowReportsFileAndLineNumber) {
  CsvDatasetSpec spec;
  spec.ratings_path = WriteFile("rag_ratings.csv",
                                "user,item,rating\n"
                                "u1,i1,4\n");
  // The first data row fixes the column count; the ragged one is line 3.
  spec.user_attributes_path = WriteFile("rag_users.csv",
                                        "user,age,job\n"
                                        "u1,young,teacher\n"
                                        "u2,old,doctor,extra\n");
  files_ = {spec.ratings_path, spec.user_attributes_path};
  try {
    LoadCsvDataset(spec);
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("rag_users.csv:3"),
              std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace data
}  // namespace hire
