#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "optim/adam.h"
#include "optim/lamb.h"
#include "optim/lookahead.h"
#include "optim/lr_scheduler.h"
#include "optim/optimizer.h"
#include "optim/sgd.h"
#include "tensor/ops.h"
#include "utils/check.h"

namespace hire {
namespace optim {
namespace {

// Minimises ||x - target||^2 and returns the final squared distance.
template <typename MakeOptimizer>
float MinimiseQuadratic(MakeOptimizer make_optimizer, int steps) {
  ag::Variable x(Tensor::FromVector({5.0f, -3.0f, 2.0f}), true);
  const Tensor target = Tensor::FromVector({1.0f, 1.0f, 1.0f});
  auto optimizer = make_optimizer(std::vector<ag::Variable>{x});
  for (int s = 0; s < steps; ++s) {
    optimizer->ZeroGrad();
    ag::Variable loss = ag::MSE(x, target);
    loss.Backward();
    optimizer->Step();
  }
  float distance = 0.0f;
  for (int64_t i = 0; i < 3; ++i) {
    const float diff = x.value().flat(i) - target.flat(i);
    distance += diff * diff;
  }
  return distance;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  const float distance = MinimiseQuadratic(
      [](std::vector<ag::Variable> params) {
        return std::make_unique<Sgd>(std::move(params), 0.1f);
      },
      200);
  EXPECT_LT(distance, 1e-4f);
}

TEST(SgdTest, MomentumConverges) {
  const float distance = MinimiseQuadratic(
      [](std::vector<ag::Variable> params) {
        return std::make_unique<Sgd>(std::move(params), 0.05f, 0.9f);
      },
      200);
  EXPECT_LT(distance, 1e-4f);
}

TEST(SgdTest, SingleStepMatchesHandComputed) {
  ag::Variable x(Tensor::FromVector({2.0f}), true);
  Sgd sgd({x}, 0.5f);
  ag::Variable loss = ag::SumAll(ag::Square(x));  // d/dx = 2x = 4
  loss.Backward();
  sgd.Step();
  EXPECT_FLOAT_EQ(x.value().flat(0), 2.0f - 0.5f * 4.0f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  const float distance = MinimiseQuadratic(
      [](std::vector<ag::Variable> params) {
        AdamConfig config;
        config.learning_rate = 0.1f;
        return std::make_unique<Adam>(std::move(params), config);
      },
      300);
  EXPECT_LT(distance, 1e-3f);
}

TEST(AdamTest, FirstStepIsScaledLearningRate) {
  // With bias correction, the first Adam update is ~lr * sign(grad).
  ag::Variable x(Tensor::FromVector({1.0f}), true);
  AdamConfig config;
  config.learning_rate = 0.1f;
  Adam adam({x}, config);
  ag::Variable loss = ag::SumAll(ag::MulScalar(x, 3.0f));
  loss.Backward();
  adam.Step();
  EXPECT_NEAR(x.value().flat(0), 1.0f - 0.1f, 1e-4f);
}

TEST(LambTest, ConvergesOnQuadratic) {
  const float distance = MinimiseQuadratic(
      [](std::vector<ag::Variable> params) {
        LambConfig config;
        config.learning_rate = 0.05f;
        return std::make_unique<Lamb>(std::move(params), config);
      },
      300);
  EXPECT_LT(distance, 1e-3f);
}

TEST(LambTest, TrustRatioScalesUpdate) {
  // First step: adam-normalised update is ~sign(grad) with norm sqrt(d);
  // trust ratio = ||w|| / ||update||. Verify against a hand computation.
  ag::Variable x(Tensor::FromVector({3.0f, 4.0f}), true);  // ||w|| = 5
  LambConfig config;
  config.learning_rate = 0.1f;
  config.max_trust = 100.0f;
  Lamb lamb({x}, config);
  ag::Variable loss = ag::SumAll(ag::Mul(
      x, ag::Variable(Tensor::FromVector({1.0f, 1.0f}), false)));
  loss.Backward();  // grad = (1, 1)
  lamb.Step();
  // update ~ (1, 1)/[sqrt(v_hat)+eps] ~ (1, 1); trust = 5 / sqrt(2).
  const float trust = 5.0f / std::sqrt(2.0f);
  EXPECT_NEAR(x.value().flat(0), 3.0f - 0.1f * trust, 1e-2f);
  EXPECT_NEAR(x.value().flat(1), 4.0f - 0.1f * trust, 1e-2f);
}

TEST(LambTest, SkipsParametersWithoutGradients) {
  ag::Variable used(Tensor::FromVector({1.0f}), true);
  ag::Variable unused(Tensor::FromVector({7.0f}), true);
  LambConfig config;
  Lamb lamb({used, unused}, config);
  ag::Variable loss = ag::SumAll(ag::Square(used));
  loss.Backward();
  lamb.Step();
  EXPECT_FLOAT_EQ(unused.value().flat(0), 7.0f);
  EXPECT_NE(used.value().flat(0), 1.0f);
}

TEST(LookaheadTest, SyncInterpolatesSlowWeights) {
  ag::Variable x(Tensor::FromVector({0.0f}), true);
  auto inner = std::make_unique<Sgd>(std::vector<ag::Variable>{x}, 1.0f);
  Lookahead lookahead(std::move(inner), /*alpha=*/0.5f, /*sync_period=*/2);

  // Two steps with constant gradient 1: fast goes 0 -> -1 -> -2, then sync
  // pulls back to slow + 0.5*(fast - slow) = 0 + 0.5*(-2) = -1.
  for (int s = 0; s < 2; ++s) {
    lookahead.ZeroGrad();
    ag::Variable loss = ag::SumAll(x);
    loss.Backward();
    lookahead.Step();
  }
  EXPECT_FLOAT_EQ(x.value().flat(0), -1.0f);
}

TEST(LookaheadTest, ForwardsLearningRateToInner) {
  ag::Variable x(Tensor::FromVector({0.0f}), true);
  auto inner = std::make_unique<Sgd>(std::vector<ag::Variable>{x}, 1.0f);
  Lookahead lookahead(std::move(inner), 0.5f, 10);
  lookahead.set_learning_rate(0.25f);

  lookahead.ZeroGrad();
  ag::Variable loss = ag::SumAll(x);
  loss.Backward();
  lookahead.Step();  // no sync yet (period 10)
  EXPECT_FLOAT_EQ(x.value().flat(0), -0.25f);
}

TEST(LookaheadTest, ConvergesOnQuadratic) {
  const float distance = MinimiseQuadratic(
      [](std::vector<ag::Variable> params) {
        auto inner = std::make_unique<Sgd>(std::move(params), 0.2f);
        return std::make_unique<Lookahead>(std::move(inner), 0.5f, 6);
      },
      300);
  EXPECT_LT(distance, 1e-4f);
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  ag::Variable x(Tensor::FromVector({1.0f, 1.0f}), true);
  ag::Variable loss = ag::SumAll(ag::MulScalar(x, 30.0f));
  loss.Backward();  // grad = (30, 30), norm ~ 42.4
  const float norm = ClipGradNorm({x}, 1.0f);
  EXPECT_NEAR(norm, 30.0f * std::sqrt(2.0f), 1e-3f);
  float clipped_norm = 0.0f;
  for (int64_t i = 0; i < 2; ++i) {
    clipped_norm += x.grad().flat(i) * x.grad().flat(i);
  }
  EXPECT_NEAR(std::sqrt(clipped_norm), 1.0f, 1e-4f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsUntouched) {
  ag::Variable x(Tensor::FromVector({1.0f}), true);
  ag::Variable loss = ag::SumAll(ag::MulScalar(x, 0.5f));
  loss.Backward();
  ClipGradNorm({x}, 10.0f);
  EXPECT_FLOAT_EQ(x.grad().flat(0), 0.5f);
}

TEST(SchedulerTest, FlatThenCosineShape) {
  FlatThenCosineSchedule schedule(1e-3f, 100, 0.7f);
  // Flat for the first 70%.
  EXPECT_FLOAT_EQ(schedule.LearningRate(0), 1e-3f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(69), 1e-3f);
  // Annealing afterwards, monotonically decreasing towards ~0.
  float previous = schedule.LearningRate(70);
  EXPECT_LE(previous, 1e-3f);
  for (int64_t step = 71; step < 100; ++step) {
    const float lr = schedule.LearningRate(step);
    EXPECT_LE(lr, previous);
    previous = lr;
  }
  EXPECT_LT(schedule.LearningRate(99), 1e-4f);
}

TEST(SchedulerTest, ClampsOutOfRangeSteps) {
  FlatThenCosineSchedule schedule(1e-2f, 10, 0.5f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(-5), 1e-2f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(500), schedule.LearningRate(9));
}

TEST(SchedulerTest, ZeroFlatFractionAnnealsImmediately) {
  FlatThenCosineSchedule schedule(1.0f, 10, 0.0f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(0), 1.0f);  // cos(0) = 1
  EXPECT_LT(schedule.LearningRate(5), 1.0f);
}

TEST(OptimizerTest, RejectsEmptyOrNonGradParameters) {
  EXPECT_THROW(Sgd({}, 0.1f), CheckError);
  ag::Variable frozen(Tensor::FromVector({1.0f}), false);
  EXPECT_THROW(Sgd({frozen}, 0.1f), CheckError);
}

}  // namespace
}  // namespace optim
}  // namespace hire
