#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <numeric>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "core/attention_analysis.h"
#include "core/context_encoder.h"
#include "core/evaluation.h"
#include "core/him_block.h"
#include "core/hire_config.h"
#include "core/hire_model.h"
#include "core/inference_forward.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "graph/context_builder.h"
#include "nn/serialize.h"
#include "tensor/ops.h"
#include "utils/check.h"
#include "utils/parallel.h"

namespace hire {
namespace core {
namespace {

// Small test fixtures: tiny dataset + tiny model configuration so every
// test runs in milliseconds.

data::Dataset SmallDataset(uint64_t seed = 1) {
  data::SyntheticConfig config;
  config.num_users = 64;
  config.num_items = 64;
  config.num_ratings = 1200;
  config.user_schema = {{"age", 4}, {"gender", 2}};
  config.item_schema = {{"genre", 5}};
  return data::GenerateSyntheticDataset(config, seed);
}

HireConfig SmallConfig() {
  HireConfig config;
  config.num_him_blocks = 2;
  config.num_heads = 2;
  config.head_dim = 4;
  config.attr_embed_dim = 4;
  return config;
}

graph::PredictionContext SmallContext(const data::Dataset& dataset,
                                      uint64_t seed = 3, int64_t n = 6,
                                      int64_t m = 5) {
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  graph::NeighborhoodSampler sampler;
  Rng rng(seed);
  return graph::BuildTrainingContext(graph, sampler, n, m, 0.3, &rng);
}

TEST(ContextEncoderTest, ShapeIsNMByE) {
  data::Dataset dataset = SmallDataset();
  Rng rng(2);
  ContextEncoder encoder(&dataset, /*attr_embed_dim=*/4, &rng);
  // h = 2 user attrs + 1 item attr + 1 rating = 4; e = 16.
  EXPECT_EQ(encoder.num_attribute_slots(), 4);
  EXPECT_EQ(encoder.cell_embed_dim(), 16);

  graph::PredictionContext context = SmallContext(dataset);
  ag::Variable h = encoder.Encode(context);
  EXPECT_EQ(h.shape(),
            (std::vector<int64_t>{context.num_users(), context.num_items(),
                                  16}));
}

TEST(ContextEncoderTest, MaskedRatingSlotIsZero) {
  data::Dataset dataset = SmallDataset();
  Rng rng(4);
  ContextEncoder encoder(&dataset, 4, &rng);
  graph::PredictionContext context = SmallContext(dataset);
  Tensor h = encoder.Encode(context).value();

  const int64_t f = 4;
  const int64_t e = encoder.cell_embed_dim();
  for (int64_t k = 0; k < context.num_users(); ++k) {
    for (int64_t j = 0; j < context.num_items(); ++j) {
      if (context.observed_mask.at(k, j) > 0) continue;
      // The last f entries of the cell (the rating slot) must be zero.
      for (int64_t c = e - f; c < e; ++c) {
        ASSERT_EQ(h.at(k, j, c), 0.0f)
            << "masked rating leaked an embedding at (" << k << "," << j
            << "," << c << ")";
      }
    }
  }
}

TEST(ContextEncoderTest, UserSlotSharedAcrossItems) {
  data::Dataset dataset = SmallDataset();
  Rng rng(5);
  ContextEncoder encoder(&dataset, 4, &rng);
  graph::PredictionContext context = SmallContext(dataset);
  Tensor h = encoder.Encode(context).value();
  // The user block (first h_u * f entries) is identical across the item
  // axis.
  const int64_t user_block = 2 * 4;
  for (int64_t k = 0; k < context.num_users(); ++k) {
    for (int64_t j = 1; j < context.num_items(); ++j) {
      for (int64_t c = 0; c < user_block; ++c) {
        ASSERT_EQ(h.at(k, j, c), h.at(k, 0, c));
      }
    }
  }
}

TEST(ContextEncoderTest, ContinuousRatingScaleIsSupported) {
  // Paper §IV-B extension: continuous ratings encoded by a linear map.
  data::Dataset dataset("cont", {{"age", 3}}, {{"genre", 4}}, 30, 25, 0.0f,
                        1.0f, /*continuous_ratings=*/true);
  Rng data_rng(40);
  for (int64_t u = 0; u < 30; ++u) {
    for (int r = 0; r < 4; ++r) {
      dataset.AddRating(u, data_rng.UniformInt(25),
                        static_cast<float>(data_rng.Uniform()));
    }
  }

  Rng rng(41);
  ContextEncoder encoder(&dataset, 4, &rng);
  graph::BipartiteGraph graph(30, 25, dataset.ratings());
  graph::NeighborhoodSampler sampler;
  Rng ctx_rng(42);
  graph::PredictionContext context =
      graph::BuildTrainingContext(graph, sampler, 6, 6, 0.3, &ctx_rng);
  Tensor h = encoder.Encode(context).value();
  EXPECT_EQ(h.shape(), (std::vector<int64_t>{6, 6, encoder.cell_embed_dim()}));

  // Masked cells still contribute a zero rating slot.
  const int64_t e = encoder.cell_embed_dim();
  for (int64_t k = 0; k < 6; ++k) {
    for (int64_t j = 0; j < 6; ++j) {
      if (context.observed_mask.at(k, j) > 0) continue;
      for (int64_t c = e - 4; c < e; ++c) {
        ASSERT_EQ(h.at(k, j, c), 0.0f);
      }
    }
  }

  // The full model trains end-to-end on the continuous scale.
  HireModel model(&dataset, SmallConfig(), 43);
  graph::PredictionContext train_context =
      graph::BuildTrainingContext(graph, sampler, 6, 6, 0.3, &ctx_rng);
  ag::Variable loss =
      ag::MaskedMSE(model.Forward(train_context),
                    train_context.target_ratings, train_context.target_mask);
  EXPECT_NO_THROW(loss.Backward());
}

TEST(HimBlockTest, PreservesShape) {
  data::Dataset dataset = SmallDataset();
  Rng rng(6);
  HireConfig config = SmallConfig();
  HimBlock him(config, /*cell_embed_dim=*/16, /*num_attribute_slots=*/4,
               &rng);
  ag::Variable h(RandomNormal({5, 4, 16}, 0, 1, &rng), false);
  Rng dropout_rng(7);
  EXPECT_EQ(him.Forward(h, &dropout_rng).shape(),
            (std::vector<int64_t>{5, 4, 16}));
}

TEST(HimBlockTest, AblationTogglesRemoveLayers) {
  Rng rng(8);
  HireConfig full = SmallConfig();
  HimBlock all(full, 16, 4, &rng);

  HireConfig no_user = SmallConfig();
  no_user.use_user_attention = false;
  HimBlock without_user(no_user, 16, 4, &rng);
  EXPECT_LT(without_user.NumParameters(), all.NumParameters());

  HireConfig only_user = SmallConfig();
  only_user.use_item_attention = false;
  only_user.use_attr_attention = false;
  HimBlock user_only(only_user, 16, 4, &rng);
  EXPECT_LT(user_only.NumParameters(), without_user.NumParameters());

  // A fully ablated HIM is the identity.
  HireConfig none = SmallConfig();
  none.use_user_attention = false;
  none.use_item_attention = false;
  none.use_attr_attention = false;
  HimBlock identity(none, 16, 4, &rng);
  ag::Variable h(RandomNormal({3, 3, 16}, 0, 1, &rng), false);
  Rng dropout_rng(9);
  EXPECT_TRUE(ops::AllClose(identity.Forward(h, &dropout_rng).value(),
                            h.value()));
}

TEST(HimBlockTest, MismatchedDimensionsThrow) {
  Rng rng(10);
  HireConfig config = SmallConfig();
  EXPECT_THROW(HimBlock(config, 17, 4, &rng), CheckError);  // 17 != 4*4
}

TEST(HireModelTest, ForwardProducesRatingMatrixInRange) {
  data::Dataset dataset = SmallDataset();
  HireModel model(&dataset, SmallConfig(), /*seed=*/11);
  graph::PredictionContext context = SmallContext(dataset);
  Tensor predicted = model.Predict(context);
  EXPECT_EQ(predicted.shape(),
            (std::vector<int64_t>{context.num_users(), context.num_items()}));
  for (int64_t i = 0; i < predicted.size(); ++i) {
    EXPECT_GE(predicted.flat(i), 0.0f);
    EXPECT_LE(predicted.flat(i), dataset.max_rating());
  }
}

TEST(HireModelTest, PredictionIsDeterministicInEval) {
  data::Dataset dataset = SmallDataset();
  HireModel model(&dataset, SmallConfig(), 12);
  graph::PredictionContext context = SmallContext(dataset);
  Tensor a = model.Predict(context);
  Tensor b = model.Predict(context);
  EXPECT_TRUE(ops::AllClose(a, b));
}

TEST(HireModelTest, SameSeedSameModel) {
  data::Dataset dataset = SmallDataset();
  HireModel a(&dataset, SmallConfig(), 13);
  HireModel b(&dataset, SmallConfig(), 13);
  graph::PredictionContext context = SmallContext(dataset);
  EXPECT_TRUE(ops::AllClose(a.Predict(context), b.Predict(context)));
}

TEST(HireModelTest, FlexibleContextSizesAtTest) {
  // The paper stresses that the context size is flexible at test time.
  data::Dataset dataset = SmallDataset();
  HireModel model(&dataset, SmallConfig(), 14);
  for (const auto& [n, m] : {std::pair<int64_t, int64_t>{3, 7},
                            std::pair<int64_t, int64_t>{9, 2},
                            std::pair<int64_t, int64_t>{1, 1}}) {
    graph::PredictionContext context = SmallContext(dataset, 15, n, m);
    EXPECT_EQ(model.Predict(context).shape(),
              (std::vector<int64_t>{n, m}));
  }
}

// Property 5.1: the predicted rating matrix is equivariant to permutations
// of the users and the items in the context.
class PermutationEquivarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(PermutationEquivarianceTest, Property51Holds) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  data::Dataset dataset = SmallDataset(seed);
  HireConfig config = SmallConfig();
  config.dropout = 0.0f;
  HireModel model(&dataset, config, seed + 100);
  graph::PredictionContext context = SmallContext(dataset, seed + 200, 6, 5);
  const int64_t n = context.num_users();
  const int64_t m = context.num_items();
  Tensor base = model.Predict(context);

  Rng rng(seed + 300);
  std::vector<int64_t> user_perm(static_cast<size_t>(n));
  std::iota(user_perm.begin(), user_perm.end(), 0);
  rng.Shuffle(&user_perm);
  std::vector<int64_t> item_perm(static_cast<size_t>(m));
  std::iota(item_perm.begin(), item_perm.end(), 0);
  rng.Shuffle(&item_perm);

  // Permute the context's users, items and every [n, m] tensor.
  graph::PredictionContext permuted;
  permuted.users.resize(static_cast<size_t>(n));
  permuted.items.resize(static_cast<size_t>(m));
  permuted.observed_ratings = Tensor::Zeros({n, m});
  permuted.observed_mask = Tensor::Zeros({n, m});
  permuted.target_ratings = Tensor::Zeros({n, m});
  permuted.target_mask = Tensor::Zeros({n, m});
  for (int64_t k = 0; k < n; ++k) {
    permuted.users[static_cast<size_t>(k)] =
        context.users[static_cast<size_t>(user_perm[static_cast<size_t>(k)])];
  }
  for (int64_t j = 0; j < m; ++j) {
    permuted.items[static_cast<size_t>(j)] =
        context.items[static_cast<size_t>(item_perm[static_cast<size_t>(j)])];
  }
  for (int64_t k = 0; k < n; ++k) {
    for (int64_t j = 0; j < m; ++j) {
      const int64_t pk = user_perm[static_cast<size_t>(k)];
      const int64_t pj = item_perm[static_cast<size_t>(j)];
      permuted.observed_ratings.at(k, j) = context.observed_ratings.at(pk, pj);
      permuted.observed_mask.at(k, j) = context.observed_mask.at(pk, pj);
      permuted.target_ratings.at(k, j) = context.target_ratings.at(pk, pj);
      permuted.target_mask.at(k, j) = context.target_mask.at(pk, pj);
    }
  }

  Tensor permuted_prediction = model.Predict(permuted);
  for (int64_t k = 0; k < n; ++k) {
    for (int64_t j = 0; j < m; ++j) {
      const int64_t pk = user_perm[static_cast<size_t>(k)];
      const int64_t pj = item_perm[static_cast<size_t>(j)];
      ASSERT_NEAR(permuted_prediction.at(k, j), base.at(pk, pj), 2e-3f)
          << "Property 5.1 violated at (" << k << ", " << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationEquivarianceTest,
                         ::testing::Range(1, 7));

// Masking property: predictions must not depend on the *values* stored in
// masked target cells — only visible cells may influence the model.
TEST(HireModelTest, MaskedCellValuesCannotLeak) {
  data::Dataset dataset = SmallDataset();
  HireModel model(&dataset, SmallConfig(), 16);
  graph::PredictionContext context = SmallContext(dataset);
  Tensor base = model.Predict(context);

  graph::PredictionContext tampered = context;
  tampered.target_ratings.Fill(dataset.max_rating());
  Tensor prediction = model.Predict(tampered);
  EXPECT_TRUE(ops::AllClose(base, prediction))
      << "target cell values leaked into the prediction";
}

TEST(HireModelTest, VisibleRatingsDoInfluencePrediction) {
  data::Dataset dataset = SmallDataset();
  HireModel model(&dataset, SmallConfig(), 17);
  graph::PredictionContext context = SmallContext(dataset);

  // Find a visible cell and flip its value.
  int64_t cell = -1;
  for (int64_t flat = 0; flat < context.observed_mask.size(); ++flat) {
    if (context.observed_mask.flat(flat) > 0) {
      cell = flat;
      break;
    }
  }
  ASSERT_GE(cell, 0);
  Tensor base = model.Predict(context);
  graph::PredictionContext modified = context;
  const float old_value = modified.observed_ratings.flat(cell);
  modified.observed_ratings.flat(cell) =
      old_value > 2.5f ? 1.0f : dataset.max_rating();
  Tensor prediction = model.Predict(modified);
  EXPECT_FALSE(ops::AllClose(base, prediction))
      << "visible ratings appear to be ignored";
}

TEST(HireModelTest, AttentionCaptureProducesAllThreeMatrices) {
  data::Dataset dataset = SmallDataset();
  HireModel model(&dataset, SmallConfig(), 18);
  model.EnableAttentionCapture(true);
  graph::PredictionContext context = SmallContext(dataset, 19, 6, 5);
  model.Predict(context);
  const HimBlock& him = model.him_block(0);
  // MBU: [m, l, n, n]; MBI: [n, l, m, m]; MBA: [n*m, l, h, h].
  EXPECT_EQ(him.captured_user_attention().shape(),
            (std::vector<int64_t>{5, 2, 6, 6}));
  EXPECT_EQ(him.captured_item_attention().shape(),
            (std::vector<int64_t>{6, 2, 5, 5}));
  EXPECT_EQ(him.captured_attribute_attention().shape(),
            (std::vector<int64_t>{30, 2, 4, 4}));
}

TEST(AttentionAnalysisTest, AverageHeadsMatchesHandComputed) {
  Tensor captured({1, 2, 2, 2});
  // Head 0: [[1, 0], [0, 1]]; head 1: [[0, 1], [1, 0]].
  captured.at(0, 0, 0, 0) = 1.0f;
  captured.at(0, 0, 1, 1) = 1.0f;
  captured.at(0, 1, 0, 1) = 1.0f;
  captured.at(0, 1, 1, 0) = 1.0f;
  Tensor averaged = AverageHeads(captured, 0);
  EXPECT_FLOAT_EQ(averaged.at(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(averaged.at(0, 1), 0.5f);
  EXPECT_THROW(AverageHeads(captured, 1), CheckError);
  EXPECT_THROW(AverageHeads(Tensor({2, 2}), 0), CheckError);
}

TEST(AttentionAnalysisTest, TopEdgesSortedAndOffDiagonal) {
  Tensor attention({3, 3}, {0.9f, 0.05f, 0.05f,  //
                            0.2f, 0.5f, 0.3f,    //
                            0.6f, 0.1f, 0.3f});
  const auto edges = TopAttentionEdges(attention, 3);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].from, 2);
  EXPECT_EQ(edges[0].to, 0);
  EXPECT_FLOAT_EQ(edges[0].weight, 0.6f);
  for (const auto& edge : edges) {
    EXPECT_NE(edge.from, edge.to);
  }
  EXPECT_GE(edges[0].weight, edges[1].weight);
  EXPECT_GE(edges[1].weight, edges[2].weight);
}

TEST(AttentionAnalysisTest, RowSumDeviationAndHeatmap) {
  Tensor stochastic({2, 2}, {0.5f, 0.5f, 0.1f, 0.9f});
  EXPECT_LT(MaxRowSumDeviation(stochastic), 1e-6f);
  Tensor broken({2, 2}, {0.5f, 0.6f, 0.1f, 0.9f});
  EXPECT_NEAR(MaxRowSumDeviation(broken), 0.1f, 1e-6f);
  const std::string heatmap = RenderHeatmap(stochastic);
  EXPECT_EQ(std::count(heatmap.begin(), heatmap.end(), '\n'), 2);
}

TEST(AttentionAnalysisTest, CapturedModelAttentionIsRowStochastic) {
  data::Dataset dataset = SmallDataset();
  HireModel model(&dataset, SmallConfig(), 55);
  model.EnableAttentionCapture(true);
  graph::PredictionContext context = SmallContext(dataset, 56, 6, 5);
  model.Predict(context);
  const HimBlock& him = model.him_block(0);
  for (int64_t view = 0; view < 5; ++view) {
    Tensor averaged = AverageHeads(him.captured_user_attention(), view);
    EXPECT_LT(MaxRowSumDeviation(averaged), 1e-4f);
  }
}

TEST(HireModelTest, SerializationRoundTripReproducesPredictions) {
  data::Dataset dataset = SmallDataset();
  HireModel original(&dataset, SmallConfig(), 20);
  HireModel restored(&dataset, SmallConfig(), 999);  // different init

  const std::string path = testing::TempDir() + "/hire_model_test.bin";
  nn::SaveParameters(original, path);
  nn::LoadParameters(&restored, path);

  graph::PredictionContext context = SmallContext(dataset);
  EXPECT_TRUE(ops::AllClose(original.Predict(context),
                            restored.Predict(context)));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Training (Algorithm 1).
// ---------------------------------------------------------------------------

TEST(TrainerTest, LossDecreasesOnSmallDataset) {
  data::Dataset dataset = SmallDataset(23);
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  HireModel model(&dataset, SmallConfig(), 24);
  graph::NeighborhoodSampler sampler;

  TrainerConfig config;
  config.num_steps = 40;
  config.batch_size = 2;
  config.context_users = 8;
  config.context_items = 8;
  config.seed = 25;
  const TrainStats stats = TrainHire(&model, graph, sampler, config);

  ASSERT_EQ(stats.step_losses.size(), 40u);
  const float early = (stats.step_losses[0] + stats.step_losses[1] +
                       stats.step_losses[2]) /
                      3.0f;
  const float late =
      (stats.step_losses[37] + stats.step_losses[38] + stats.step_losses[39]) /
      3.0f;
  EXPECT_LT(late, early) << "training did not reduce the masked MSE";
  EXPECT_GT(stats.train_seconds, 0.0);
}

TEST(TrainerTest, TrainingIsDeterministicUnderSeeds) {
  data::Dataset dataset = SmallDataset(26);
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  graph::NeighborhoodSampler sampler;
  TrainerConfig config;
  config.num_steps = 10;
  config.batch_size = 1;
  config.context_users = 6;
  config.context_items = 6;
  config.seed = 27;

  HireModel model_a(&dataset, SmallConfig(), 28);
  HireModel model_b(&dataset, SmallConfig(), 28);
  const TrainStats stats_a = TrainHire(&model_a, graph, sampler, config);
  const TrainStats stats_b = TrainHire(&model_b, graph, sampler, config);
  for (size_t s = 0; s < stats_a.step_losses.size(); ++s) {
    EXPECT_FLOAT_EQ(stats_a.step_losses[s], stats_b.step_losses[s]);
  }
}

// ---------------------------------------------------------------------------
// Evaluation protocol.
// ---------------------------------------------------------------------------

TEST(EvaluationTest, ColdStartProtocolProducesBoundedMetrics) {
  data::Dataset dataset = SmallDataset(29);
  Rng split_rng(30);
  data::ColdStartSplit split = data::MakeColdStartSplit(
      dataset, data::ColdStartScenario::kUserCold, 0.7, &split_rng);

  HireModel model(&dataset, SmallConfig(), 31);
  graph::NeighborhoodSampler sampler;
  HirePredictor predictor(&model, &sampler, 8, 8, 32);

  EvalConfig config;
  config.top_ks = {3, 5};
  config.min_query_items = 3;
  config.max_eval_users = 10;
  config.seed = 33;
  const EvalResult result =
      EvaluateColdStart(&predictor, dataset, split, config);

  EXPECT_GT(result.num_lists, 0);
  ASSERT_EQ(result.by_k.size(), 2u);
  for (const auto& [k, m] : result.by_k) {
    EXPECT_GE(m.precision, 0.0);
    EXPECT_LE(m.precision, 1.0);
    EXPECT_GE(m.ndcg, 0.0);
    EXPECT_LE(m.ndcg, 1.0 + 1e-9);
    EXPECT_GE(m.map, 0.0);
    EXPECT_LE(m.map, 1.0);
  }
  EXPECT_GT(result.predict_seconds, 0.0);
}

TEST(EvaluationTest, HirePredictorUsesSupportEvidence) {
  // The target user's visible (support) ratings must reach the model: the
  // same query under different support graphs should differ.
  data::Dataset dataset = SmallDataset(60);
  graph::BipartiteGraph full(dataset.num_users(), dataset.num_items(),
                             dataset.ratings());
  HireModel model(&dataset, SmallConfig(), 61);
  graph::NeighborhoodSampler sampler;

  const int64_t user = 0;
  std::vector<data::Rating> no_user_ratings;
  for (const data::Rating& rating : dataset.ratings()) {
    if (rating.user != user) no_user_ratings.push_back(rating);
  }
  graph::BipartiteGraph without_support(dataset.num_users(),
                                        dataset.num_items(), no_user_ratings);

  const std::vector<int64_t> query{1, 2, 3};
  HirePredictor predictor_a(&model, &sampler, 8, 8, 62);
  HirePredictor predictor_b(&model, &sampler, 8, 8, 62);
  const std::vector<float> with = predictor_a.PredictForUser(user, query, full);
  const std::vector<float> without =
      predictor_b.PredictForUser(user, query, without_support);
  bool any_difference = false;
  for (size_t j = 0; j < query.size(); ++j) {
    if (with[j] != without[j]) any_difference = true;
  }
  EXPECT_TRUE(any_difference)
      << "support ratings do not influence HIRE's predictions";
}

TEST(HireModelTest, PredictAllocatesNoTapeNodes) {
  data::Dataset dataset = SmallDataset(70);
  HireModel model(&dataset, SmallConfig(), 71);
  graph::PredictionContext context = SmallContext(dataset, 72);

  // Sanity: a training-mode Forward does build a tape.
  model.SetTraining(true);
  const uint64_t before_forward = ag::TapeNodesCreated();
  ag::Variable out = model.Forward(context);
  EXPECT_GT(ag::TapeNodesCreated(), before_forward)
      << "the tape counter is not seeing training forwards";
  EXPECT_TRUE(out.requires_grad());

  // The serving path: Predict must allocate zero autograd tape nodes.
  const uint64_t before_predict = ag::TapeNodesCreated();
  const Tensor predicted = model.Predict(context);
  EXPECT_EQ(ag::TapeNodesCreated(), before_predict)
      << "Predict leaked autograd tape allocations";
  EXPECT_EQ(predicted.shape(0), static_cast<int64_t>(context.users.size()));
  EXPECT_TRUE(model.training())
      << "Predict must restore the caller's training mode";

  // And the guard is scoped: gradients work again afterwards.
  const uint64_t after = ag::TapeNodesCreated();
  ag::Variable again = model.Forward(context);
  EXPECT_GT(ag::TapeNodesCreated(), after);
  EXPECT_TRUE(again.requires_grad());
}

TEST(EvaluationTest, HirePredictorIsDeterministicAcrossCalls) {
  // Prediction is stateless: repeating a query — even interleaved with
  // queries for other users — must reproduce bitwise-identical results.
  data::Dataset dataset = SmallDataset(73);
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  HireModel model(&dataset, SmallConfig(), 74);
  graph::NeighborhoodSampler sampler;
  HirePredictor predictor(&model, &sampler, 8, 8, 75);

  const std::vector<int64_t> items{1, 2, 3, 4, 5};
  const std::vector<float> first = predictor.PredictForUser(0, items, graph);
  predictor.PredictForUser(7, {2, 3}, graph);  // unrelated interleaved call
  predictor.PredictForUser(0, {9}, graph);     // same user, different query
  const std::vector<float> second = predictor.PredictForUser(0, items, graph);
  ASSERT_EQ(first.size(), second.size());
  for (size_t j = 0; j < first.size(); ++j) {
    EXPECT_EQ(first[j], second[j]) << "prediction drifted at item " << j;
  }
}

TEST(EvaluationTest, HirePredictorChunkedCallMatchesPerChunkCalls) {
  // A long query is answered chunk by chunk against one shared context
  // plan. Each chunk's computation is a pure function of (graph, seed,
  // user, chunk contents), so the chunked call must equal the concatenation
  // of direct calls issued chunk by chunk.
  data::Dataset dataset = SmallDataset(76);
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  HireModel model(&dataset, SmallConfig(), 77);
  graph::NeighborhoodSampler sampler;
  const int64_t context_items = 4;
  const uint64_t seed = 78;
  const int64_t user = 0;
  HirePredictor predictor(&model, &sampler, 8, context_items, seed);

  // Recover the predictor's chunk capacity from the (identical) plan.
  const UserContextPlan plan =
      BuildUserContextPlan(graph, sampler, user, 8, context_items, seed);
  const int64_t capacity =
      std::max<int64_t>(1, context_items - plan.num_support_items);

  const std::vector<int64_t> items{0, 1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<float> chunked =
      predictor.PredictForUser(user, items, graph);
  ASSERT_EQ(chunked.size(), items.size());

  for (size_t begin = 0; begin < items.size();
       begin += static_cast<size_t>(capacity)) {
    const size_t end =
        std::min(items.size(), begin + static_cast<size_t>(capacity));
    const std::vector<int64_t> chunk(items.begin() + begin,
                                     items.begin() + end);
    const std::vector<float> direct =
        predictor.PredictForUser(user, chunk, graph);
    ASSERT_EQ(direct.size(), chunk.size());
    for (size_t j = 0; j < chunk.size(); ++j) {
      EXPECT_EQ(chunked[begin + j], direct[j])
          << "chunk [" << begin << ", " << end << ") diverged at offset "
          << j;
    }
  }
}

TEST(EvaluationTest, HirePredictorReturnsOnePredictionPerItem) {
  data::Dataset dataset = SmallDataset(34);
  graph::BipartiteGraph graph(dataset.num_users(), dataset.num_items(),
                              dataset.ratings());
  HireModel model(&dataset, SmallConfig(), 35);
  graph::NeighborhoodSampler sampler;
  HirePredictor predictor(&model, &sampler, 8, 4, 36);

  // 9 query items > context budget 4 forces chunking.
  std::vector<int64_t> items{0, 1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<float> predictions =
      predictor.PredictForUser(0, items, graph);
  ASSERT_EQ(predictions.size(), items.size());
  for (float p : predictions) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, dataset.max_rating());
  }
}

// ---------------------------------------------------------------------------
// Tape-free fused inference path (core/inference_forward.h).
// ---------------------------------------------------------------------------

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  float max_abs = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(a.flat(i) - b.flat(i)));
  }
  return max_abs;
}

TEST(InferenceForwardTest, MatchesTapePredictAcrossShapesAndHeadCounts) {
  data::Dataset dataset = SmallDataset();
  // e = 16, so every head count divides it with head_dim defaulted; an
  // explicit head_dim covers inner != embed_dim.
  const std::vector<std::pair<int64_t, int64_t>> head_configs = {
      {1, 0}, {2, 4}, {4, 0}, {8, 0}, {2, 3}};
  for (const auto& [heads, head_dim] : head_configs) {
    HireConfig config = SmallConfig();
    config.num_heads = heads;
    config.head_dim = head_dim;
    HireModel model(&dataset, config, /*seed=*/17);
    model.SetTraining(false);
    const InferenceModel fused(model);
    InferenceArena arena;
    for (const int64_t n : {1, 4, 16}) {
      for (const int64_t m : {8, 32}) {
        graph::PredictionContext context =
            SmallContext(dataset, /*seed=*/100 + n + m, n, m);
        const Tensor tape = model.Predict(context);
        const Tensor& out = fused.Predict(context, &arena);
        EXPECT_LE(MaxAbsDiff(out, tape), 1e-5f)
            << "heads=" << heads << " head_dim=" << head_dim << " n=" << n
            << " m=" << m;
      }
    }
  }
}

TEST(InferenceForwardTest, MatchesTapeUnderAblationToggles) {
  data::Dataset dataset = SmallDataset();
  const auto variant = [](auto mutate) {
    HireConfig config;
    config.num_him_blocks = 2;
    config.num_heads = 2;
    config.head_dim = 4;
    config.attr_embed_dim = 4;
    mutate(&config);
    return config;
  };
  const std::vector<HireConfig> variants = {
      variant([](HireConfig* c) { c->use_residual = false; }),
      variant([](HireConfig* c) { c->use_layer_norm = false; }),
      variant([](HireConfig* c) { c->use_user_attention = false; }),
      variant([](HireConfig* c) { c->use_item_attention = false; }),
      variant([](HireConfig* c) { c->use_attr_attention = false; }),
      variant([](HireConfig* c) {
        c->use_residual = false;
        c->use_layer_norm = false;
      }),
  };
  graph::PredictionContext context = SmallContext(dataset, /*seed=*/9, 6, 8);
  for (size_t i = 0; i < variants.size(); ++i) {
    HireModel model(&dataset, variants[i], /*seed=*/23);
    model.SetTraining(false);
    const InferenceModel fused(model);
    InferenceArena arena;
    EXPECT_LE(MaxAbsDiff(fused.Predict(context, &arena),
                         model.Predict(context)),
              1e-5f)
        << "ablation variant " << i;
  }
}

TEST(InferenceForwardTest, BitwiseEqualWhenAttentionDisabled) {
  // With all three attention branches off, the whole forward is encoder +
  // residual/norm + decoder: every stage shares the tape's rounding chain,
  // so the fused path must agree bit-for-bit, not just within tolerance.
  data::Dataset dataset = SmallDataset();
  HireConfig config = SmallConfig();
  config.use_user_attention = false;
  config.use_item_attention = false;
  config.use_attr_attention = false;
  HireModel model(&dataset, config, /*seed=*/29);
  model.SetTraining(false);
  const InferenceModel fused(model);
  InferenceArena arena;
  graph::PredictionContext context = SmallContext(dataset, /*seed=*/13, 5, 7);
  const Tensor tape = model.Predict(context);
  const Tensor& out = fused.Predict(context, &arena);
  ASSERT_TRUE(out.SameShape(tape));
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.flat(i), tape.flat(i)) << "flat index " << i;
  }
}

TEST(InferenceForwardTest, ArenaReusesBlocksAndRewindsMarks) {
  InferenceArena arena;
  EXPECT_EQ(arena.growth_count(), 0);
  float* a = arena.Alloc(100);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(arena.growth_count(), 1);

  const InferenceArena::Mark mark = arena.CurrentMark();
  float* b = arena.Alloc(200);
  arena.Rewind(mark);
  float* c = arena.Alloc(200);
  EXPECT_EQ(b, c) << "Rewind must hand back the same storage";

  arena.Reset();
  float* d = arena.Alloc(100);
  EXPECT_EQ(a, d) << "Reset must hand back the same storage";
  EXPECT_EQ(arena.growth_count(), 1) << "no growth after warm-up";
  const int64_t capacity = arena.capacity_floats();
  arena.Reset();
  EXPECT_EQ(arena.capacity_floats(), capacity);
}

}  // namespace
}  // namespace core
}  // namespace hire

// ---------------------------------------------------------------------------
// Zero-heap forward. Global operator new/delete are replaced (at global
// scope, affecting this whole test binary) with counting versions so the
// test below can assert that a warmed-up fused forward performs no heap
// allocation at all — the acceptance criterion for the arena-backed serve
// path. Counting is a single relaxed atomic per allocation, far too small
// to perturb the other tests. Under AddressSanitizer the replacement is
// compiled out — ASan's own new/delete interceptors flag a malloc-backed
// operator new as an alloc-dealloc mismatch — and the test falls back to
// the arena growth counter, which ASan does not perturb.
// ---------------------------------------------------------------------------

#if defined(__SANITIZE_ADDRESS__)
#define HIRE_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HIRE_TEST_ASAN 1
#endif
#endif

namespace {
std::atomic<uint64_t> g_heap_allocations{0};
}  // namespace

#if !defined(HIRE_TEST_ASAN)

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // !HIRE_TEST_ASAN

namespace hire {
namespace core {
namespace {

TEST(InferenceForwardTest, WarmForwardAllocatesZeroHeap) {
  // Run single-threaded so every kernel executes inline; the parallel
  // runtime's task submission is the one legitimate allocator on the hot
  // path and the serve tier sizes it at startup, not per request.
  SetGlobalThreads(1);
  data::Dataset dataset = SmallDataset();
  HireModel model(&dataset, SmallConfig(), /*seed=*/31);
  model.SetTraining(false);
  const InferenceModel fused(model);
  InferenceArena arena;
  // Default serve batch shape (BatcherConfig{}.context_users/items).
  graph::PredictionContext context =
      SmallContext(dataset, /*seed=*/19, 16, 16);

  // Warm-up: grows the arena, faults in thread-local GEMM pack buffers,
  // and sizes the output tensor.
  fused.Predict(context, &arena);
  fused.Predict(context, &arena);

  const int64_t growth_before = arena.growth_count();
  const uint64_t allocs_before =
      g_heap_allocations.load(std::memory_order_relaxed);
  const Tensor& out = fused.Predict(context, &arena);
  const uint64_t allocs_after =
      g_heap_allocations.load(std::memory_order_relaxed);
#if !defined(HIRE_TEST_ASAN)
  EXPECT_EQ(allocs_after, allocs_before)
      << "a warmed-up fused forward must not touch the heap";
#else
  // ASan owns operator new here; the counter stays at zero by design.
  EXPECT_EQ(allocs_after, allocs_before);
#endif
  EXPECT_EQ(arena.growth_count(), growth_before);
  EXPECT_EQ(out.shape(0), 16);
  EXPECT_EQ(out.shape(1), 16);
  SetGlobalThreads(0);
}

}  // namespace
}  // namespace core
}  // namespace hire
