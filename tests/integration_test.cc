// End-to-end integration tests: synthetic world -> cold-start split ->
// train HIRE -> evaluate against the popularity reference through the
// paper's protocol. Sizes are kept small so the whole file runs in seconds.

#include <gtest/gtest.h>

#include <vector>

#include "baselines/simple_baselines.h"
#include "core/evaluation.h"
#include "core/hire_model.h"
#include "core/trainer.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "graph/samplers.h"

namespace hire {
namespace {

struct Pipeline {
  data::Dataset dataset;
  data::ColdStartSplit split;
};

Pipeline MakePipeline(data::ColdStartScenario scenario, uint64_t seed) {
  data::SyntheticConfig config;
  config.num_users = 90;
  config.num_items = 80;
  config.num_ratings = 2600;
  config.user_schema = {{"age", 4}, {"gender", 2}};
  config.item_schema = {{"genre", 5}};
  config.rating_noise = 0.3;
  data::Dataset dataset = data::GenerateSyntheticDataset(config, seed);
  Rng rng(seed + 1);
  data::ColdStartSplit split =
      data::MakeColdStartSplit(dataset, scenario, 0.75, &rng);
  return Pipeline{std::move(dataset), std::move(split)};
}

core::HireConfig TinyHire() {
  core::HireConfig config;
  config.num_him_blocks = 2;
  config.num_heads = 2;
  config.head_dim = 4;
  config.attr_embed_dim = 4;
  return config;
}

class ScenarioTest
    : public ::testing::TestWithParam<data::ColdStartScenario> {};

TEST_P(ScenarioTest, TrainedHireProducesUsableRankings) {
  const data::ColdStartScenario scenario = GetParam();
  Pipeline pipeline = MakePipeline(scenario, 41);

  graph::BipartiteGraph train_graph(pipeline.dataset.num_users(),
                                    pipeline.dataset.num_items(),
                                    pipeline.split.train_ratings);
  core::HireModel model(&pipeline.dataset, TinyHire(), 42);
  graph::NeighborhoodSampler sampler;

  core::TrainerConfig train_config;
  train_config.num_steps = 60;
  train_config.batch_size = 2;
  train_config.context_users = 10;
  train_config.context_items = 10;
  train_config.seed = 43;
  const core::TrainStats stats =
      core::TrainHire(&model, train_graph, sampler, train_config);
  EXPECT_LT(stats.final_loss, stats.step_losses.front());

  core::HirePredictor predictor(&model, &sampler, 10, 10, 44);
  core::EvalConfig eval_config;
  eval_config.top_ks = {5};
  eval_config.min_query_items = 4;
  eval_config.max_eval_users = 12;
  eval_config.seed = 45;
  const core::EvalResult result = core::EvaluateColdStart(
      &predictor, pipeline.dataset, pipeline.split, eval_config);

  ASSERT_GT(result.num_lists, 0);
  const metrics::RankingMetrics& at5 = result.by_k.at(5);
  EXPECT_GE(at5.precision, 0.0);
  EXPECT_LE(at5.precision, 1.0);
  EXPECT_GT(at5.ndcg, 0.3) << "trained HIRE ranks close to randomly";
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ScenarioTest,
    ::testing::Values(data::ColdStartScenario::kUserCold,
                      data::ColdStartScenario::kItemCold,
                      data::ColdStartScenario::kUserItemCold));

TEST(IntegrationTest, TrainedHireBeatsUntrainedHire) {
  Pipeline pipeline = MakePipeline(data::ColdStartScenario::kUserCold, 51);
  graph::BipartiteGraph train_graph(pipeline.dataset.num_users(),
                                    pipeline.dataset.num_items(),
                                    pipeline.split.train_ratings);
  graph::NeighborhoodSampler sampler;

  core::EvalConfig eval_config;
  eval_config.top_ks = {5};
  eval_config.min_query_items = 4;
  eval_config.max_eval_users = 15;
  eval_config.seed = 52;

  core::HireModel untrained(&pipeline.dataset, TinyHire(), 53);
  core::HirePredictor untrained_predictor(&untrained, &sampler, 10, 10, 54);
  const core::EvalResult before = core::EvaluateColdStart(
      &untrained_predictor, pipeline.dataset, pipeline.split, eval_config);

  core::HireModel trained(&pipeline.dataset, TinyHire(), 53);
  core::TrainerConfig train_config;
  train_config.num_steps = 80;
  train_config.batch_size = 2;
  train_config.context_users = 10;
  train_config.context_items = 10;
  train_config.seed = 55;
  core::TrainHire(&trained, train_graph, sampler, train_config);
  core::HirePredictor trained_predictor(&trained, &sampler, 10, 10, 54);
  const core::EvalResult after = core::EvaluateColdStart(
      &trained_predictor, pipeline.dataset, pipeline.split, eval_config);

  EXPECT_GT(after.by_k.at(5).ndcg, before.by_k.at(5).ndcg)
      << "training made ranking quality worse";
}

TEST(IntegrationTest, PopularityBaselineRunsThroughSameProtocol) {
  Pipeline pipeline = MakePipeline(data::ColdStartScenario::kUserCold, 61);
  baselines::PopularityBaseline popularity(&pipeline.dataset,
                                           pipeline.split.train_ratings);
  core::EvalConfig eval_config;
  eval_config.top_ks = {5, 7, 10};
  eval_config.min_query_items = 4;
  eval_config.max_eval_users = 15;
  eval_config.seed = 62;
  const core::EvalResult result = core::EvaluateColdStart(
      &popularity, pipeline.dataset, pipeline.split, eval_config);
  EXPECT_EQ(result.by_k.size(), 3u);
  EXPECT_GT(result.num_lists, 0);
}

TEST(IntegrationTest, EvaluationNeverSeesQueryRatings) {
  // Adversarial check on the protocol itself: a predictor that echoes the
  // visible-graph rating (or -1 when invisible) must never see a query
  // rating for the cells it is asked to predict.
  class LeakProbe : public core::RatingPredictor {
   public:
    std::string name() const override { return "probe"; }
    std::vector<float> PredictForUser(
        int64_t user, const std::vector<int64_t>& items,
        const graph::BipartiteGraph& visible_graph) override {
      std::vector<float> out;
      for (int64_t item : items) {
        const auto rating = visible_graph.GetRating(user, item);
        leaked_ |= rating.has_value();
        out.push_back(rating.value_or(3.0f));
      }
      return out;
    }
    bool leaked() const { return leaked_; }

   private:
    bool leaked_ = false;
  };

  Pipeline pipeline = MakePipeline(data::ColdStartScenario::kUserCold, 71);
  LeakProbe probe;
  core::EvalConfig eval_config;
  eval_config.min_query_items = 4;
  eval_config.max_eval_users = 20;
  eval_config.seed = 72;
  core::EvaluateColdStart(&probe, pipeline.dataset, pipeline.split,
                          eval_config);
  EXPECT_FALSE(probe.leaked())
      << "query ratings are visible in the evaluation graph";
}

}  // namespace
}  // namespace hire
