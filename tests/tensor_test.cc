#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "tensor/ops.h"
#include "tensor/random.h"
#include "utils/check.h"
#include "utils/cost_model.h"
#include "utils/parallel.h"

namespace hire {
namespace {

using ::hire::ops::AllClose;

TEST(TensorTest, DefaultConstructedIsEmpty) {
  Tensor tensor;
  EXPECT_EQ(tensor.dim(), 0);
  EXPECT_EQ(tensor.size(), 0);
  EXPECT_TRUE(tensor.empty());
}

TEST(TensorTest, ShapeConstructorZeroFills) {
  Tensor tensor({2, 3});
  EXPECT_EQ(tensor.dim(), 2);
  EXPECT_EQ(tensor.size(), 6);
  for (int64_t i = 0; i < tensor.size(); ++i) {
    EXPECT_EQ(tensor.flat(i), 0.0f);
  }
}

TEST(TensorTest, DataConstructorValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), CheckError);
}

TEST(TensorTest, RejectsNonPositiveDimensions) {
  EXPECT_THROW(Tensor({2, 0}), CheckError);
  EXPECT_THROW(Tensor({-1}), CheckError);
}

TEST(TensorTest, FactoryHelpers) {
  EXPECT_EQ(Tensor::Scalar(3.5f).at(0), 3.5f);
  EXPECT_EQ(Tensor::Ones({4}).at(2), 1.0f);
  EXPECT_EQ(Tensor::Full({2, 2}, -2.0f).at(1, 1), -2.0f);
  Tensor v = Tensor::FromVector({5, 6, 7});
  EXPECT_EQ(v.dim(), 1);
  EXPECT_EQ(v.at(1), 6.0f);
}

TEST(TensorTest, MultiDimAccessors) {
  Tensor tensor({2, 3, 4});
  tensor.at(1, 2, 3) = 9.0f;
  EXPECT_EQ(tensor.at(1, 2, 3), 9.0f);
  EXPECT_EQ(tensor.flat(1 * 12 + 2 * 4 + 3), 9.0f);

  Tensor four({2, 2, 2, 2});
  four.at(1, 0, 1, 0) = 4.0f;
  EXPECT_EQ(four.flat(8 + 0 + 2 + 0), 4.0f);
}

TEST(TensorTest, AccessorsAreBoundsChecked) {
  Tensor tensor({2, 3});
  EXPECT_THROW(tensor.at(2, 0), CheckError);
  EXPECT_THROW(tensor.at(0, 3), CheckError);
  EXPECT_THROW(tensor.at(-1, 0), CheckError);
  EXPECT_THROW(tensor.at(5), CheckError);  // wrong arity
}

TEST(TensorTest, NegativeAxisShape) {
  Tensor tensor({2, 3, 4});
  EXPECT_EQ(tensor.shape(-1), 4);
  EXPECT_EQ(tensor.shape(-3), 2);
  EXPECT_THROW(tensor.shape(3), CheckError);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor tensor({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor reshaped = tensor.Reshape({3, 2});
  EXPECT_EQ(reshaped.at(2, 1), 6.0f);
  EXPECT_EQ(reshaped.at(0, 1), 2.0f);
}

TEST(TensorTest, ReshapeInfersMinusOne) {
  Tensor tensor({2, 6});
  EXPECT_EQ(tensor.Reshape({-1, 4}).shape(0), 3);
  EXPECT_EQ(tensor.Reshape({12, -1}).shape(1), 1);
  EXPECT_THROW(tensor.Reshape({-1, -1}), CheckError);
  EXPECT_THROW(tensor.Reshape({5, -1}), CheckError);
}

TEST(TensorTest, StridesAreRowMajor) {
  Tensor tensor({2, 3, 4});
  const std::vector<int64_t> expected{12, 4, 1};
  EXPECT_EQ(tensor.Strides(), expected);
}

TEST(TensorTest, CopyIsDeep) {
  Tensor a({2}, {1, 2});
  Tensor b = a;
  b.at(0) = 9;
  EXPECT_EQ(a.at(0), 1.0f);
}

TEST(OpsTest, ElementwiseBinary) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {4, 3, 2, 1});
  EXPECT_TRUE(AllClose(ops::Add(a, b), Tensor::Full({2, 2}, 5.0f)));
  EXPECT_TRUE(AllClose(ops::Sub(a, b), Tensor({2, 2}, {-3, -1, 1, 3})));
  EXPECT_TRUE(AllClose(ops::Mul(a, b), Tensor({2, 2}, {4, 6, 6, 4})));
  EXPECT_TRUE(AllClose(ops::Div(a, b), Tensor({2, 2}, {0.25f, 2.0f / 3.0f,
                                                       1.5f, 4.0f})));
}

TEST(OpsTest, BinaryShapeMismatchThrows) {
  EXPECT_THROW(ops::Add(Tensor({2}), Tensor({3})), CheckError);
}

TEST(OpsTest, ScalarAndUnary) {
  Tensor a({3}, {-1, 0, 4});
  EXPECT_TRUE(AllClose(ops::AddScalar(a, 1.0f), Tensor({3}, {0, 1, 5})));
  EXPECT_TRUE(AllClose(ops::MulScalar(a, -2.0f), Tensor({3}, {2, 0, -8})));
  EXPECT_TRUE(AllClose(ops::Neg(a), Tensor({3}, {1, 0, -4})));
  EXPECT_TRUE(AllClose(ops::Abs(a), Tensor({3}, {1, 0, 4})));
  EXPECT_TRUE(AllClose(ops::Square(a), Tensor({3}, {1, 0, 16})));
  EXPECT_TRUE(AllClose(ops::Relu(a), Tensor({3}, {0, 0, 4})));
  EXPECT_TRUE(AllClose(ops::Clamp(a, -0.5f, 2.0f),
                       Tensor({3}, {-0.5f, 0.0f, 2.0f})));
}

TEST(OpsTest, TranscendentalFunctions) {
  Tensor a({2}, {0.0f, 1.0f});
  EXPECT_NEAR(ops::Exp(a).at(1), 2.71828f, 1e-4f);
  EXPECT_NEAR(ops::Sigmoid(a).at(0), 0.5f, 1e-6f);
  EXPECT_NEAR(ops::Tanh(a).at(1), 0.76159f, 1e-4f);
  Tensor b({2}, {1.0f, 4.0f});
  EXPECT_NEAR(ops::Sqrt(b).at(1), 2.0f, 1e-6f);
  EXPECT_NEAR(ops::Log(b).at(1), 1.38629f, 1e-4f);
}

TEST(OpsTest, SigmoidIsStableForLargeInputs) {
  Tensor a({2}, {100.0f, -100.0f});
  Tensor s = ops::Sigmoid(a);
  EXPECT_NEAR(s.at(0), 1.0f, 1e-6f);
  EXPECT_NEAR(s.at(1), 0.0f, 1e-6f);
}

TEST(OpsTest, MatMulMatchesHandComputed) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::MatMul(a, b);
  EXPECT_TRUE(AllClose(c, Tensor({2, 2}, {58, 64, 139, 154})));
}

TEST(OpsTest, MatMulShapeMismatchThrows) {
  EXPECT_THROW(ops::MatMul(Tensor({2, 3}), Tensor({2, 3})), CheckError);
}

TEST(OpsTest, MatMulTransposedBMatchesMatMul) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({4, 3}, {1, 0, 2, 3, 1, 0, 0, 2, 1, 1, 1, 1});
  Tensor direct = ops::MatMul(a, ops::TransposeLast2(b));
  EXPECT_TRUE(AllClose(ops::MatMulTransposedB(a, b), direct));
}

TEST(OpsTest, BatchedMatMul) {
  // Two independent 2x2 multiplications.
  Tensor a({2, 2, 2}, {1, 0, 0, 1, 2, 0, 0, 2});
  Tensor b({2, 2, 2}, {1, 2, 3, 4, 1, 2, 3, 4});
  Tensor c = ops::BatchedMatMul(a, b);
  EXPECT_TRUE(AllClose(c, Tensor({2, 2, 2}, {1, 2, 3, 4, 2, 4, 6, 8})));
}

TEST(OpsTest, BatchedMatMulTransposedB) {
  Tensor a({1, 2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({1, 2, 3}, {1, 0, 0, 0, 1, 0});
  Tensor c = ops::BatchedMatMulTransposedB(a, b);
  EXPECT_TRUE(AllClose(c, Tensor({1, 2, 2}, {1, 2, 4, 5})));
}

TEST(OpsTest, AddBiasBroadcastsOverRows) {
  Tensor x({2, 3}, {1, 1, 1, 2, 2, 2});
  Tensor bias({3}, {10, 20, 30});
  Tensor y = ops::AddBias(x, bias);
  EXPECT_TRUE(AllClose(y, Tensor({2, 3}, {11, 21, 31, 12, 22, 32})));
  // Works for 3-D inputs too.
  Tensor x3 = x.Reshape({1, 2, 3});
  EXPECT_TRUE(AllClose(ops::AddBias(x3, bias),
                       y.Reshape({1, 2, 3})));
}

TEST(OpsTest, PermuteTransposes) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = ops::Permute(a, {1, 0});
  EXPECT_EQ(t.shape(0), 3);
  EXPECT_EQ(t.at(0, 1), 4.0f);
  EXPECT_EQ(t.at(2, 0), 3.0f);
}

TEST(OpsTest, Permute3D) {
  Tensor a({2, 3, 4});
  for (int64_t i = 0; i < a.size(); ++i) a.flat(i) = static_cast<float>(i);
  Tensor p = ops::Permute(a, {2, 0, 1});
  EXPECT_EQ(p.shape(0), 4);
  EXPECT_EQ(p.shape(1), 2);
  EXPECT_EQ(p.shape(2), 3);
  EXPECT_EQ(p.at(3, 1, 2), a.at(1, 2, 3));
}

TEST(OpsTest, PermuteRoundTripIsIdentity) {
  Tensor a({2, 3, 4});
  for (int64_t i = 0; i < a.size(); ++i) a.flat(i) = static_cast<float>(i);
  Tensor p = ops::Permute(ops::Permute(a, {1, 2, 0}), {2, 0, 1});
  EXPECT_TRUE(AllClose(p, a));
}

TEST(OpsTest, PermuteRejectsBadAxes) {
  Tensor a({2, 3});
  EXPECT_THROW(ops::Permute(a, {0, 0}), CheckError);
  EXPECT_THROW(ops::Permute(a, {0}), CheckError);
  EXPECT_THROW(ops::Permute(a, {0, 2}), CheckError);
}

TEST(OpsTest, ConcatAxis0And1) {
  Tensor a({1, 2}, {1, 2});
  Tensor b({1, 2}, {3, 4});
  EXPECT_TRUE(AllClose(ops::Concat({a, b}, 0),
                       Tensor({2, 2}, {1, 2, 3, 4})));
  EXPECT_TRUE(AllClose(ops::Concat({a, b}, 1),
                       Tensor({1, 4}, {1, 2, 3, 4})));
  EXPECT_TRUE(AllClose(ops::Concat({a, b}, -1),
                       Tensor({1, 4}, {1, 2, 3, 4})));
}

TEST(OpsTest, ConcatValidatesShapes) {
  EXPECT_THROW(ops::Concat({Tensor({1, 2}), Tensor({1, 3})}, 0), CheckError);
  EXPECT_THROW(ops::Concat({}, 0), CheckError);
}

TEST(OpsTest, SliceExtractsBlocks) {
  Tensor a({3, 2}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AllClose(ops::Slice(a, 0, 1, 2),
                       Tensor({2, 2}, {3, 4, 5, 6})));
  EXPECT_TRUE(AllClose(ops::Slice(a, 1, 1, 1), Tensor({3, 1}, {2, 4, 6})));
  EXPECT_THROW(ops::Slice(a, 0, 2, 2), CheckError);
}

TEST(OpsTest, SliceConcatRoundTrip) {
  Tensor a({4, 3});
  for (int64_t i = 0; i < a.size(); ++i) a.flat(i) = static_cast<float>(i);
  Tensor joined = ops::Concat({ops::Slice(a, 0, 0, 2), ops::Slice(a, 0, 2, 2)},
                              0);
  EXPECT_TRUE(AllClose(joined, a));
}

TEST(OpsTest, Reductions) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(ops::SumAll(a), 21.0f);
  EXPECT_FLOAT_EQ(ops::MeanAll(a), 3.5f);
  EXPECT_FLOAT_EQ(ops::MaxAll(a), 6.0f);
  EXPECT_FLOAT_EQ(ops::MinAll(a), 1.0f);
  EXPECT_TRUE(AllClose(ops::Sum(a, 0), Tensor({3}, {5, 7, 9})));
  EXPECT_TRUE(AllClose(ops::Sum(a, 1), Tensor({2}, {6, 15})));
  EXPECT_TRUE(AllClose(ops::Mean(a, 1), Tensor({2}, {2, 5})));
  EXPECT_TRUE(AllClose(ops::Mean(a, -1), Tensor({2}, {2, 5})));
}

TEST(OpsTest, NormMatchesHandComputed) {
  Tensor a({2}, {3, 4});
  EXPECT_FLOAT_EQ(ops::Norm(a), 5.0f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor a({3, 4});
  for (int64_t i = 0; i < a.size(); ++i) {
    a.flat(i) = static_cast<float>(i % 5) - 2.0f;
  }
  Tensor s = ops::Softmax(a);
  for (int64_t r = 0; r < 3; ++r) {
    float row_sum = 0.0f;
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_GT(s.at(r, c), 0.0f);
      row_sum += s.at(r, c);
    }
    EXPECT_NEAR(row_sum, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, SoftmaxIsShiftInvariantAndStable) {
  Tensor a({1, 3}, {1000.0f, 1001.0f, 1002.0f});
  Tensor b({1, 3}, {0.0f, 1.0f, 2.0f});
  EXPECT_TRUE(AllClose(ops::Softmax(a), ops::Softmax(b), 1e-6f, 1e-5f));
}

TEST(OpsTest, AllCloseDetectsDifferences) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f, 2.5f});
  EXPECT_FALSE(AllClose(a, b));
  EXPECT_FALSE(AllClose(a, Tensor({3})));
  EXPECT_TRUE(AllClose(a, Tensor({2}, {1.0f, 2.0f})));
}

// Parameterized sweep: matmul against a naive reference implementation for
// many shapes.
class MatMulSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulSweepTest, MatchesNaiveReference) {
  const auto [n, k, m] = GetParam();
  Tensor a({n, k});
  Tensor b({k, m});
  for (int64_t i = 0; i < a.size(); ++i) {
    a.flat(i) = static_cast<float>((i * 7 % 11)) - 5.0f;
  }
  for (int64_t i = 0; i < b.size(); ++i) {
    b.flat(i) = static_cast<float>((i * 5 % 13)) - 6.0f;
  }
  Tensor c = ops::MatMul(a, b);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a.at(i, p) * b.at(p, j);
      ASSERT_NEAR(c.at(i, j), acc, 1e-3f) << "at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulSweepTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 1, 7), std::make_tuple(1, 8, 1),
                      std::make_tuple(16, 16, 16), std::make_tuple(7, 13, 3),
                      std::make_tuple(32, 17, 9)));

// ---------------------------------------------------------------------------
// Parallel/blocked kernel consistency. The blocked GEMM and every threaded
// kernel are designed to keep each output element's accumulation order
// identical to the seed scalar loops, so results must be *bitwise* equal to
// a naive reference — serial or threaded, for any shape.
// ---------------------------------------------------------------------------

// Forces the cost model to shard against the requested thread count (the
// planner otherwise clamps to effective cores, which would make these tests
// vacuous on a single-core CI machine), and restores the ambient settings
// after each test.
class ParallelKernelsTest : public ::testing::Test {
 protected:
  ParallelKernelsTest() { SetCostModelForcedParallelForTesting(true); }
  ~ParallelKernelsTest() override {
    SetCostModelForcedParallelForTesting(false);
    SetGlobalThreads(0);
  }
};

// The seed's scalar GEMM (single accumulation chain per element, ascending
// p), without the `a_ip == 0` skip.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  Tensor c({a.shape(0), b.shape(1)});
  const int64_t n = a.shape(0), k = a.shape(1), m = b.shape(1);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float a_ip = a.at(i, p);
      for (int64_t j = 0; j < m; ++j) {
        c.at(i, j) += a_ip * b.at(p, j);
      }
    }
  }
  return c;
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.flat(i), b.flat(i)) << "flat index " << i;
  }
}

// Odd shapes: 1x1, prime dims, micro-tile/cache-block stragglers, and sizes
// straddling the parallel grain threshold.
const std::vector<std::tuple<int, int, int>> kGemmShapes = {
    {1, 1, 1},    {3, 5, 7},    {4, 16, 16},  {17, 31, 13},
    {64, 64, 64}, {65, 257, 35}, {128, 96, 72}, {61, 259, 67}};

TEST_F(ParallelKernelsTest, BlockedGemmBitwiseMatchesNaive) {
  Rng rng(11);
  for (const auto& [n, k, m] : kGemmShapes) {
    Tensor a = RandomNormal({n, k}, 0, 1, &rng);
    Tensor b = RandomNormal({k, m}, 0, 1, &rng);
    const Tensor expected = NaiveMatMul(a, b);
    SetGlobalThreads(1);
    ExpectBitwiseEqual(ops::MatMul(a, b), expected);
    for (const int threads : {2, 4, 7}) {
      SetGlobalThreads(threads);
      ExpectBitwiseEqual(ops::MatMul(a, b), expected);
    }
  }
}

TEST_F(ParallelKernelsTest, TransposedBGemmBitwiseMatchesNaive) {
  Rng rng(12);
  for (const auto& [n, k, m] : kGemmShapes) {
    Tensor a = RandomNormal({n, k}, 0, 1, &rng);
    Tensor bt = RandomNormal({m, k}, 0, 1, &rng);
    const Tensor expected = NaiveMatMul(a, ops::TransposeLast2(bt));
    SetGlobalThreads(1);
    ExpectBitwiseEqual(ops::MatMulTransposedB(a, bt), expected);
    for (const int threads : {2, 4, 7}) {
      SetGlobalThreads(threads);
      ExpectBitwiseEqual(ops::MatMulTransposedB(a, bt), expected);
    }
  }
}

TEST_F(ParallelKernelsTest, GemmPropagatesNonFinite) {
  // The seed kernel's zero-skip silently dropped 0 * inf terms; the blocked
  // kernel must produce NaN as IEEE demands.
  Tensor a({1, 2}, {0.0f, 1.0f});
  Tensor b({2, 1}, {std::numeric_limits<float>::infinity(), 2.0f});
  const Tensor c = ops::MatMul(a, b);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));
}

TEST_F(ParallelKernelsTest, SerialAndThreadedAgree) {
  Rng rng(13);
  // Straddle the parallel grain thresholds from both sides.
  for (const int64_t rows : {1L, 7L, 64L, 1031L}) {
    Tensor x = RandomNormal({rows, 33}, 0, 2, &rng);
    Tensor y = RandomNormal({rows, 33}, 0, 2, &rng);
    Tensor bias = RandomNormal({33}, 0, 1, &rng);

    SetGlobalThreads(1);
    const Tensor add1 = ops::Add(x, y);
    const Tensor sig1 = ops::Sigmoid(x);
    const Tensor soft1 = ops::Softmax(x);
    const Tensor bias1 = ops::AddBias(x, bias);
    const Tensor sum0_1 = ops::Sum(x, 0);
    const Tensor sum1_1 = ops::Sum(x, 1);

    for (const int threads : {2, 4, 7}) {
      SetGlobalThreads(threads);
      EXPECT_TRUE(AllClose(ops::Sigmoid(x), sig1));
      EXPECT_TRUE(AllClose(ops::AddBias(x, bias), bias1));

      // The sharding preserves per-element operation order, so threaded
      // results are in fact bitwise identical, not merely close.
      ExpectBitwiseEqual(ops::Add(x, y), add1);
      ExpectBitwiseEqual(ops::Softmax(x), soft1);
      ExpectBitwiseEqual(ops::Sum(x, 0), sum0_1);
      ExpectBitwiseEqual(ops::Sum(x, 1), sum1_1);
      ExpectBitwiseEqual(ops::AddBias(x, bias), bias1);
    }
  }
}

TEST_F(ParallelKernelsTest, SumAxis0TiledPathBitwiseStable) {
  // Wide enough that the column-sharded reduction splits into several
  // 256-column tiles per chunk; each column keeps the serial ascending-row
  // accumulation chain regardless of which lane runs it.
  Rng rng(15);
  Tensor x = RandomNormal({2048, 512}, 0, 2, &rng);
  SetGlobalThreads(1);
  const Tensor serial = ops::Sum(x, 0);
  for (const int threads : {2, 4, 7}) {
    SetGlobalThreads(threads);
    ExpectBitwiseEqual(ops::Sum(x, 0), serial);
  }
}

// ---------------------------------------------------------------------------
// Fused inference primitives (GemmBiasAct, OnlineSoftmaxWeightedSum).
// ---------------------------------------------------------------------------

TEST(FusedKernelsTest, GemmBiasActMatchesUnfusedChainBitwise) {
  Rng rng(31);
  for (const auto& [n, k, m] : kGemmShapes) {
    Tensor a = RandomNormal({n, k}, 0, 1, &rng);
    Tensor b = RandomNormal({k, m}, 0, 1, &rng);
    Tensor bias = RandomNormal({m}, 0, 1, &rng);
    ExpectBitwiseEqual(ops::GemmBiasAct(a, b, bias),
                       ops::AddBias(ops::MatMul(a, b), bias));
  }
}

TEST(FusedKernelsTest, GemmBiasActEpilogueMatchesUnfusedActivations) {
  Rng rng(32);
  Tensor a = RandomNormal({9, 24}, 0, 1, &rng);
  Tensor b = RandomNormal({24, 7}, 0, 1, &rng);
  Tensor bias = RandomNormal({7}, 0, 1, &rng);
  const Tensor linear = ops::AddBias(ops::MatMul(a, b), bias);
  ExpectBitwiseEqual(
      ops::GemmBiasAct(a, b, bias, ops::Activation::kSigmoid, 5.0f),
      ops::MulScalar(ops::Sigmoid(linear), 5.0f));
  ExpectBitwiseEqual(ops::GemmBiasAct(a, b, bias, ops::Activation::kRelu),
                     ops::Relu(linear));
}

TEST(FusedKernelsTest, OnlineSoftmaxWeightedSumMatchesSoftmaxMatmul) {
  Rng rng(33);
  for (const auto& [batch, tokens, dim] :
       std::vector<std::tuple<int64_t, int64_t, int64_t>>{
           {1, 1, 4}, {2, 5, 3}, {4, 16, 16}, {3, 33, 7}}) {
    Tensor q = RandomNormal({batch, tokens, dim}, 0, 1, &rng);
    Tensor k = RandomNormal({batch, tokens, dim}, 0, 1, &rng);
    Tensor v = RandomNormal({batch, tokens, dim}, 0, 1, &rng);
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim));
    const Tensor scores =
        ops::MulScalar(ops::BatchedMatMulTransposedB(q, k), scale);
    const Tensor reference = ops::BatchedMatMul(ops::Softmax(scores), v);
    const Tensor fused = ops::OnlineSoftmaxWeightedSum(q, k, v, scale);
    ASSERT_TRUE(fused.SameShape(reference));
    // Only the softmax normalisation is re-associated by the single-pass
    // rescaling; everything else shares the reference rounding chain.
    for (int64_t i = 0; i < fused.size(); ++i) {
      EXPECT_NEAR(fused.flat(i), reference.flat(i), 1e-5f)
          << "flat index " << i;
    }
  }
}

TEST(FusedKernelsTest, OnlineSoftmaxOverwritesStaleOutputMemory) {
  // The output row doubles as the accumulator; stale NaNs in the
  // destination (an arena hands out dirty memory) must not leak in.
  Rng rng(34);
  Tensor q = RandomNormal({1, 3, 4}, 0, 1, &rng);
  Tensor k = RandomNormal({1, 3, 4}, 0, 1, &rng);
  Tensor v = RandomNormal({1, 3, 4}, 0, 1, &rng);
  Tensor out({1, 3, 4});
  out.Fill(std::numeric_limits<float>::quiet_NaN());
  ops::OnlineSoftmaxWeightedSumInto(q.data(), 4, k.data(), 4, v.data(), 4,
                                    out.data(), 4, /*tokens=*/3,
                                    /*head_dim=*/4, 0.5f);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_FALSE(std::isnan(out.flat(i))) << "flat index " << i;
  }
}

TEST_F(ParallelKernelsTest, FusedKernelsSerialVsThreaded) {
  Rng rng(35);
  Tensor a = RandomNormal({65, 48}, 0, 1, &rng);
  Tensor b = RandomNormal({48, 33}, 0, 1, &rng);
  Tensor bias = RandomNormal({33}, 0, 1, &rng);
  Tensor q = RandomNormal({24, 17, 8}, 0, 1, &rng);
  Tensor k = RandomNormal({24, 17, 8}, 0, 1, &rng);
  Tensor v = RandomNormal({24, 17, 8}, 0, 1, &rng);
  SetGlobalThreads(1);
  const Tensor gemm1 = ops::GemmBiasAct(a, b, bias, ops::Activation::kRelu);
  const Tensor attn1 = ops::OnlineSoftmaxWeightedSum(q, k, v, 0.25f);
  for (const int threads : {2, 4, 7}) {
    SetGlobalThreads(threads);
    ExpectBitwiseEqual(ops::GemmBiasAct(a, b, bias, ops::Activation::kRelu),
                       gemm1);
    ExpectBitwiseEqual(ops::OnlineSoftmaxWeightedSum(q, k, v, 0.25f), attn1);
  }
}

TEST_F(ParallelKernelsTest, BatchedMatMulSerialVsThreaded) {
  Rng rng(14);
  for (const int64_t batch : {1L, 3L, 32L}) {
    Tensor a = RandomNormal({batch, 17, 23}, 0, 1, &rng);
    Tensor b = RandomNormal({batch, 23, 19}, 0, 1, &rng);
    Tensor bt = RandomNormal({batch, 19, 23}, 0, 1, &rng);
    SetGlobalThreads(1);
    const Tensor c1 = ops::BatchedMatMul(a, b);
    const Tensor ct1 = ops::BatchedMatMulTransposedB(a, bt);
    for (const int threads : {2, 4, 7}) {
      SetGlobalThreads(threads);
      ExpectBitwiseEqual(ops::BatchedMatMul(a, b), c1);
      ExpectBitwiseEqual(ops::BatchedMatMulTransposedB(a, bt), ct1);
    }
  }
}

}  // namespace
}  // namespace hire
