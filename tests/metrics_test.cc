#include "metrics/ranking_metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "utils/check.h"

namespace hire {
namespace metrics {
namespace {

TEST(PrecisionTest, PerfectRanking) {
  // Predictions rank the two relevant items (>= 4) first.
  const std::vector<float> predicted{5.0f, 4.5f, 1.0f, 0.5f};
  const std::vector<float> actual{5.0f, 4.0f, 2.0f, 1.0f};
  const RankingMetrics m = ComputeRankingMetrics(predicted, actual, 2, 4.0f);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.map, 1.0);
  EXPECT_NEAR(m.ndcg, 1.0, 1e-9);
}

TEST(PrecisionTest, WorstRanking) {
  // Predictions rank the two irrelevant items first.
  const std::vector<float> predicted{0.1f, 0.2f, 5.0f, 4.9f};
  const std::vector<float> actual{5.0f, 4.0f, 2.0f, 1.0f};
  const RankingMetrics m = ComputeRankingMetrics(predicted, actual, 2, 4.0f);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.map, 0.0);
  EXPECT_LT(m.ndcg, 1.0);
}

TEST(PrecisionTest, HandComputedMixedCase) {
  // Predicted order: items [A(5), B(2), C(4), D(1)] with threshold 4.
  const std::vector<float> predicted{9.0f, 8.0f, 7.0f, 6.0f};
  const std::vector<float> actual{5.0f, 2.0f, 4.0f, 1.0f};
  const RankingMetrics m = ComputeRankingMetrics(predicted, actual, 3, 4.0f);
  // Top 3 by prediction: A, B, C -> relevant A, C -> precision 2/3.
  EXPECT_NEAR(m.precision, 2.0 / 3.0, 1e-12);
  // AP@3 = (1/1 + 2/3) / min(2 relevant, 3) = (1 + 0.6667)/2.
  EXPECT_NEAR(m.map, (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
  // DCG = 5 + 2/log2(3) + 4/2; IDCG = 5 + 4/log2(3) + 2/2.
  const double dcg = 5.0 + 2.0 / std::log2(3.0) + 4.0 / 2.0;
  const double idcg = 5.0 + 4.0 / std::log2(3.0) + 2.0 / 2.0;
  EXPECT_NEAR(m.ndcg, dcg / idcg, 1e-12);
}

TEST(PrecisionTest, KLargerThanListUsesWholeList) {
  const std::vector<float> predicted{1.0f, 2.0f};
  const std::vector<float> actual{5.0f, 1.0f};
  const RankingMetrics m = ComputeRankingMetrics(predicted, actual, 10, 4.0f);
  EXPECT_NEAR(m.precision, 0.5, 1e-12);
}

TEST(PrecisionTest, NoRelevantItemsYieldsZeroMap) {
  const std::vector<float> predicted{1.0f, 2.0f, 3.0f};
  const std::vector<float> actual{1.0f, 2.0f, 3.0f};
  const RankingMetrics m = ComputeRankingMetrics(predicted, actual, 3, 4.0f);
  EXPECT_DOUBLE_EQ(m.map, 0.0);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
}

TEST(PrecisionTest, TieBreakIsDeterministic) {
  const std::vector<float> predicted{1.0f, 1.0f, 1.0f};
  const std::vector<float> actual{5.0f, 1.0f, 5.0f};
  const RankingMetrics a = ComputeRankingMetrics(predicted, actual, 2, 4.0f);
  const RankingMetrics b = ComputeRankingMetrics(predicted, actual, 2, 4.0f);
  EXPECT_DOUBLE_EQ(a.precision, b.precision);
}

TEST(PrecisionTest, InputValidation) {
  EXPECT_THROW(ComputeRankingMetrics({}, {}, 5, 4.0f), CheckError);
  EXPECT_THROW(ComputeRankingMetrics({1.0f}, {1.0f, 2.0f}, 5, 4.0f),
               CheckError);
  EXPECT_THROW(ComputeRankingMetrics({1.0f}, {1.0f}, 0, 4.0f), CheckError);
}

TEST(NdcgTest, GradedGainsPreferHighRatingsFirst) {
  const std::vector<float> actual{5.0f, 3.0f, 1.0f};
  const RankingMetrics good =
      ComputeRankingMetrics({3.0f, 2.0f, 1.0f}, actual, 3, 4.0f);
  const RankingMetrics bad =
      ComputeRankingMetrics({1.0f, 2.0f, 3.0f}, actual, 3, 4.0f);
  EXPECT_GT(good.ndcg, bad.ndcg);
  EXPECT_NEAR(good.ndcg, 1.0, 1e-12);
}

TEST(AggregateTest, MeanAndStd) {
  const MeanStd stats = Aggregate({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
  EXPECT_NEAR(stats.stddev, std::sqrt(1.25), 1e-12);
}

TEST(AggregateTest, SingleValueHasZeroStd) {
  const MeanStd stats = Aggregate({3.5});
  EXPECT_DOUBLE_EQ(stats.mean, 3.5);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

TEST(AggregateTest, EmptyThrows) {
  EXPECT_THROW(Aggregate({}), CheckError);
}

TEST(AverageMetricsTest, AveragesComponentWise) {
  RankingMetrics a{1.0, 0.8, 0.6};
  RankingMetrics b{0.0, 0.4, 0.2};
  const RankingMetrics avg = AverageMetrics({a, b});
  EXPECT_DOUBLE_EQ(avg.precision, 0.5);
  EXPECT_DOUBLE_EQ(avg.ndcg, 0.6);
  EXPECT_NEAR(avg.map, 0.4, 1e-12);
}

TEST(RegressionMetricsTest, HandComputed) {
  const std::vector<float> predicted{1.0f, 2.0f, 3.0f};
  const std::vector<float> actual{2.0f, 2.0f, 1.0f};
  EXPECT_NEAR(MeanSquaredError(predicted, actual), (1.0 + 0.0 + 4.0) / 3.0,
              1e-9);
  EXPECT_NEAR(MeanAbsoluteError(predicted, actual), (1.0 + 0.0 + 2.0) / 3.0,
              1e-9);
  EXPECT_NEAR(RootMeanSquaredError(predicted, actual),
              std::sqrt(5.0 / 3.0), 1e-6);
}

TEST(RegressionMetricsTest, Validation) {
  EXPECT_THROW(MeanSquaredError({}, {}), CheckError);
  EXPECT_THROW(MeanAbsoluteError({1.0f}, {1.0f, 2.0f}), CheckError);
}

// Parameterized sweep: precision@k is always in [0, 1] and NDCG in [0, 1]
// for random inputs.
class MetricRangeTest : public ::testing::TestWithParam<int> {};

TEST_P(MetricRangeTest, MetricsStayInUnitRange) {
  const int seed = GetParam();
  std::vector<float> predicted;
  std::vector<float> actual;
  unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1u;
  auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return static_cast<float>((state >> 8) % 50) / 10.0f;
  };
  for (int i = 0; i < 20; ++i) {
    predicted.push_back(next());
    actual.push_back(1.0f + next());
  }
  for (int k : {1, 3, 5, 10, 25}) {
    const RankingMetrics m = ComputeRankingMetrics(predicted, actual, k, 4.0f);
    EXPECT_GE(m.precision, 0.0);
    EXPECT_LE(m.precision, 1.0);
    EXPECT_GE(m.ndcg, 0.0);
    EXPECT_LE(m.ndcg, 1.0 + 1e-9);
    EXPECT_GE(m.map, 0.0);
    EXPECT_LE(m.map, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricRangeTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace metrics
}  // namespace hire
