#include "baselines/deepfm.h"

#include "autograd/ops.h"
#include "utils/check.h"

namespace hire {
namespace baselines {

DeepFM::DeepFM(const data::Dataset* dataset, int64_t embed_dim,
               uint64_t seed) {
  HIRE_CHECK(dataset != nullptr);
  rating_scale_ = dataset->max_rating();
  Rng rng(seed);

  embedder_ = std::make_unique<FeatureEmbedder>(dataset, embed_dim, &rng);
  RegisterSubmodule("embedder", embedder_.get());

  first_order_ = std::make_unique<nn::Linear>(embedder_->pair_dim(), 1, &rng);
  RegisterSubmodule("first_order", first_order_.get());

  deep_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{embedder_->pair_dim(), 2 * embed_dim, embed_dim, 1},
      nn::Activation::kRelu, &rng);
  RegisterSubmodule("deep", deep_.get());
}

ag::Variable DeepFM::ScoreBatch(
    const std::vector<std::pair<int64_t, int64_t>>& pairs,
    const graph::BipartiteGraph* /*visible_graph*/) {
  const int64_t batch = static_cast<int64_t>(pairs.size());
  ag::Variable flat = embedder_->EmbedPairsFlat(pairs);  // [B, F*f]
  ag::Variable fields = ag::Reshape(
      flat, {batch, embedder_->num_fields(), embedder_->embed_dim()});

  // FM second-order term: 0.5 * Σ_d ((Σ_f v_fd)² - Σ_f v_fd²).
  ag::Variable square_of_sum = ag::Square(ag::SumAxis(fields, 1));  // [B, f]
  ag::Variable sum_of_square = ag::SumAxis(ag::Square(fields), 1);  // [B, f]
  ag::Variable fm_interaction =
      ag::MulScalar(ag::Sub(square_of_sum, sum_of_square), 0.5f);
  ag::Variable fm_logit =
      ag::Reshape(ag::SumAxis(fm_interaction, 1), {batch, 1});

  ag::Variable logits = ag::Add(
      ag::Add(first_order_->Forward(flat), fm_logit), deep_->Forward(flat));
  return ag::Reshape(ag::MulScalar(ag::Sigmoid(logits), rating_scale_),
                     {batch});
}

}  // namespace baselines
}  // namespace hire
