#include "baselines/tanp_lite.h"

#include <algorithm>
#include <unordered_map>

#include "autograd/ops.h"
#include "optim/adam.h"
#include "utils/check.h"
#include "utils/logging.h"

namespace hire {
namespace baselines {

TaNPLite::TaNPLite(const data::Dataset* dataset, int64_t embed_dim,
                   const TaNPConfig& config)
    : dataset_(dataset), config_(config), rng_(config.seed) {
  HIRE_CHECK(dataset_ != nullptr);
  rating_scale_ = dataset_->max_rating();
  task_dim_ = 2 * embed_dim;
  Rng init_rng = rng_.Fork(1);
  embedder_ = std::make_unique<FeatureEmbedder>(dataset_, embed_dim,
                                                &init_rng);
  RegisterSubmodule("embedder", embedder_.get());
  support_encoder_ = std::make_unique<nn::Linear>(
      embedder_->pair_dim() + 1, task_dim_, &init_rng);
  RegisterSubmodule("support_encoder", support_encoder_.get());
  decoder_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{embedder_->pair_dim() + task_dim_, 4 * embed_dim,
                           2 * embed_dim, 1},
      nn::Activation::kRelu, &init_rng);
  RegisterSubmodule("decoder", decoder_.get());
}

ag::Variable TaNPLite::EncodeSupport(
    const std::vector<data::Rating>& support) {
  if (support.empty()) {
    return ag::Variable(Tensor::Zeros({1, task_dim_}), false);
  }
  std::vector<std::pair<int64_t, int64_t>> pairs;
  Tensor values({static_cast<int64_t>(support.size()), 1});
  for (size_t s = 0; s < support.size(); ++s) {
    pairs.emplace_back(support[s].user, support[s].item);
    values.at(static_cast<int64_t>(s), 0) =
        support[s].value / rating_scale_;
  }
  ag::Variable features = embedder_->EmbedPairsFlat(pairs);
  ag::Variable with_ratings =
      ag::Concat({features, ag::Variable(values, false)}, /*axis=*/1);
  ag::Variable encoded =
      ag::Relu(support_encoder_->Forward(with_ratings));  // [S, task_dim]
  // Mean pooling over the support set (permutation invariant).
  const std::vector<int64_t> segments(support.size(), 0);
  return ag::SegmentMean(encoded, segments, /*num_segments=*/1);
}

ag::Variable TaNPLite::DecodeQueries(
    const std::vector<std::pair<int64_t, int64_t>>& pairs,
    const ag::Variable& task_embedding) {
  const int64_t batch = static_cast<int64_t>(pairs.size());
  ag::Variable features = embedder_->EmbedPairsFlat(pairs);  // [B, pair_dim]
  // Tile the task embedding [1, d] across the batch.
  ag::Variable tiled = ag::Reshape(
      ag::BroadcastUsers(task_embedding, batch), {batch, task_dim_});
  ag::Variable logits =
      decoder_->Forward(ag::Concat({features, tiled}, /*axis=*/1));
  return ag::Reshape(ag::MulScalar(ag::Sigmoid(logits), rating_scale_),
                     {batch});
}

void TaNPLite::MetaTrain(const std::vector<data::Rating>& train_ratings) {
  std::unordered_map<int64_t, std::vector<data::Rating>> by_user;
  for (const data::Rating& rating : train_ratings) {
    by_user[rating.user].push_back(rating);
  }
  std::vector<std::vector<data::Rating>> tasks;
  for (auto& [user, ratings] : by_user) {
    if (static_cast<int>(ratings.size()) >= config_.min_task_ratings) {
      tasks.push_back(std::move(ratings));
    }
  }
  HIRE_CHECK(!tasks.empty()) << "no user has enough ratings to form a task";

  SetTraining(true);
  optim::AdamConfig adam_config;
  adam_config.learning_rate = config_.learning_rate;
  optim::Adam optimizer(Parameters(), adam_config);

  for (int64_t iteration = 0; iteration < config_.meta_iterations;
       ++iteration) {
    optimizer.ZeroGrad();
    ag::Variable batch_loss;
    for (int t = 0; t < config_.tasks_per_batch; ++t) {
      std::vector<data::Rating> task = tasks[static_cast<size_t>(
          rng_.UniformInt(static_cast<int64_t>(tasks.size())))];
      rng_.Shuffle(&task);
      const size_t support_count = std::max<size_t>(
          1, static_cast<size_t>(config_.support_fraction *
                                 static_cast<double>(task.size())));
      const std::vector<data::Rating> support(
          task.begin(), task.begin() + static_cast<int64_t>(support_count));
      const std::vector<data::Rating> query(
          task.begin() + static_cast<int64_t>(support_count), task.end());
      if (query.empty()) continue;

      ag::Variable task_embedding = EncodeSupport(support);
      std::vector<std::pair<int64_t, int64_t>> pairs;
      std::vector<float> targets;
      for (const data::Rating& rating : query) {
        pairs.emplace_back(rating.user, rating.item);
        targets.push_back(rating.value);
      }
      ag::Variable loss = ag::MSE(DecodeQueries(pairs, task_embedding),
                                  Tensor::FromVector(std::move(targets)));
      batch_loss = batch_loss.defined() ? ag::Add(batch_loss, loss) : loss;
    }
    if (!batch_loss.defined()) continue;
    batch_loss = ag::MulScalar(
        batch_loss, 1.0f / static_cast<float>(config_.tasks_per_batch));
    batch_loss.Backward();
    optimizer.Step();

    if (config_.log_every > 0 && (iteration + 1) % config_.log_every == 0) {
      HIRE_LOG(Info) << "TaNP-lite iteration " << (iteration + 1) << "/"
                     << config_.meta_iterations << " loss "
                     << batch_loss.value().flat(0);
    }
  }
  SetTraining(false);
}

std::vector<float> TaNPLite::PredictForUser(
    int64_t user, const std::vector<int64_t>& items,
    const graph::BipartiteGraph& visible_graph) {
  // Amortized adaptation: encode the user's visible ratings, no gradients.
  std::vector<data::Rating> support;
  for (int64_t item : visible_graph.ItemsOfUser(user)) {
    support.push_back(
        data::Rating{user, item, *visible_graph.GetRating(user, item)});
    if (static_cast<int>(support.size()) >= config_.max_support_ratings) {
      break;
    }
  }
  ag::Variable task_embedding = EncodeSupport(support);

  std::vector<std::pair<int64_t, int64_t>> pairs;
  pairs.reserve(items.size());
  for (int64_t item : items) pairs.emplace_back(user, item);
  const ag::Variable predicted = DecodeQueries(pairs, task_embedding);
  std::vector<float> out(items.size());
  for (size_t j = 0; j < items.size(); ++j) {
    out[j] = predicted.value().flat(static_cast<int64_t>(j));
  }
  return out;
}

}  // namespace baselines
}  // namespace hire
