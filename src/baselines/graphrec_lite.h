#ifndef HIRE_BASELINES_GRAPHREC_LITE_H_
#define HIRE_BASELINES_GRAPHREC_LITE_H_

#include <memory>

#include "baselines/feature_embedder.h"
#include "baselines/pointwise_model.h"
#include "data/dataset.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace hire {
namespace baselines {

/// GraphRec-style social recommender (Fan et al. 2019), reduced to one
/// aggregation layer per space:
///  - item-space user modelling: mean of the embeddings of items the user
///    rated in the visible graph;
///  - social-space user modelling: mean of friends' base embeddings;
///  - user-space item modelling: mean of the embeddings of users who rated
///    the item.
/// The aggregated representations plus the raw attribute embeddings feed an
/// MLP rating head. Only applicable to datasets with a social network
/// (Douban in the paper).
class GraphRecLite : public PointwiseModel {
 public:
  GraphRecLite(const data::Dataset* dataset, int64_t embed_dim,
               int max_neighbors, uint64_t seed);

  ag::Variable ScoreBatch(
      const std::vector<std::pair<int64_t, int64_t>>& pairs,
      const graph::BipartiteGraph* visible_graph) override;

  std::string name() const override { return "GraphRec"; }

 private:
  const data::Dataset* dataset_;
  float rating_scale_;
  int max_neighbors_;
  Rng neighbor_rng_;
  std::unique_ptr<FeatureEmbedder> embedder_;
  std::unique_ptr<nn::Linear> user_fuse_;
  std::unique_ptr<nn::Linear> item_fuse_;
  std::unique_ptr<nn::Mlp> head_;
};

}  // namespace baselines
}  // namespace hire

#endif  // HIRE_BASELINES_GRAPHREC_LITE_H_
