#ifndef HIRE_BASELINES_POINTWISE_TRAINER_H_
#define HIRE_BASELINES_POINTWISE_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/pointwise_model.h"
#include "core/evaluation.h"
#include "data/dataset.h"
#include "graph/bipartite_graph.h"

namespace hire {
namespace baselines {

/// Training configuration shared by the pointwise baselines.
struct PointwiseTrainConfig {
  int64_t num_steps = 400;
  int64_t batch_size = 128;
  float learning_rate = 1e-3f;
  float weight_decay = 0.0f;
  uint64_t seed = 11;
  int64_t log_every = 0;
  /// When the process-wide obs::TelemetrySink is open, write one JSONL step
  /// record (source = model name) every this many steps (<= 0 acts as 1).
  int64_t telemetry_every = 1;
};

/// Fits a pointwise model on the observed training ratings with Adam + MSE.
/// `graph` (built over the same ratings) is forwarded to graph-aware models.
/// Returns the final mini-batch loss.
float FitPointwise(PointwiseModel* model,
                   const std::vector<data::Rating>& train_ratings,
                   const graph::BipartiteGraph* graph,
                   const PointwiseTrainConfig& config);

/// RatingPredictor adapter running a trained pointwise model through the
/// cold-start evaluation protocol.
class PointwisePredictor : public core::RatingPredictor {
 public:
  explicit PointwisePredictor(PointwiseModel* model);

  std::string name() const override;

  std::vector<float> PredictForUser(
      int64_t user, const std::vector<int64_t>& items,
      const graph::BipartiteGraph& visible_graph) override;

 private:
  PointwiseModel* model_;
};

}  // namespace baselines
}  // namespace hire

#endif  // HIRE_BASELINES_POINTWISE_TRAINER_H_
