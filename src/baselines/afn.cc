#include "baselines/afn.h"

#include "autograd/ops.h"
#include "utils/check.h"

namespace hire {
namespace baselines {

AFN::AFN(const data::Dataset* dataset, int64_t embed_dim,
         int64_t num_log_neurons, uint64_t seed)
    : num_log_neurons_(num_log_neurons) {
  HIRE_CHECK(dataset != nullptr);
  HIRE_CHECK_GT(num_log_neurons_, 0);
  rating_scale_ = dataset->max_rating();
  Rng rng(seed);

  embedder_ = std::make_unique<FeatureEmbedder>(dataset, embed_dim, &rng);
  RegisterSubmodule("embedder", embedder_.get());

  log_layer_ = std::make_unique<nn::Linear>(embedder_->num_fields(),
                                            num_log_neurons_, &rng,
                                            /*bias=*/false);
  RegisterSubmodule("log_layer", log_layer_.get());

  head_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{num_log_neurons_ * embed_dim, 2 * embed_dim, 1},
      nn::Activation::kRelu, &rng);
  RegisterSubmodule("head", head_.get());
}

ag::Variable AFN::ScoreBatch(
    const std::vector<std::pair<int64_t, int64_t>>& pairs,
    const graph::BipartiteGraph* /*visible_graph*/) {
  const int64_t batch = static_cast<int64_t>(pairs.size());
  const int64_t fields = embedder_->num_fields();
  const int64_t width = embedder_->embed_dim();

  // [B, F, f] -> |v| -> ln -> per-dimension weighted field combinations.
  ag::Variable stacked = embedder_->EmbedPairsFields(pairs);
  // abs(v) via relu(v) + relu(-v), keeping the log input positive.
  ag::Variable magnitude =
      ag::Add(ag::Relu(stacked), ag::Relu(ag::Neg(stacked)));
  ag::Variable logs = ag::LogClamped(magnitude, 1e-4f);  // [B, F, f]

  // Apply the field-combination weights per embedding dimension:
  // [B, f, F] x [F, L] -> [B, f, L].
  ag::Variable per_dim = ag::Permute(logs, {0, 2, 1});          // [B, f, F]
  ag::Variable combined = log_layer_->Forward(per_dim);         // [B, f, L]
  ag::Variable crosses = ag::Exp(combined);                     // [B, f, L]

  ag::Variable flattened =
      ag::Reshape(crosses, {batch, num_log_neurons_ * width});
  (void)fields;
  ag::Variable logits = head_->Forward(flattened);
  return ag::Reshape(ag::MulScalar(ag::Sigmoid(logits), rating_scale_),
                     {batch});
}

}  // namespace baselines
}  // namespace hire
