#ifndef HIRE_BASELINES_MATRIX_FACTORIZATION_H_
#define HIRE_BASELINES_MATRIX_FACTORIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluation.h"
#include "data/dataset.h"
#include "tensor/random.h"

namespace hire {
namespace baselines {

/// Training hyper-parameters for classic matrix factorization.
struct MfConfig {
  int latent_dim = 16;
  int epochs = 20;
  float learning_rate = 0.02f;
  float regularization = 0.05f;
  uint64_t seed = 53;
};

/// Biased matrix factorization (Koren et al. 2009) trained with plain SGD:
///   r_hat(u, i) = mu + b_u + b_i + p_u . q_i
/// The classical non-neural CF reference. Cold entities have untrained
/// factors, so it degrades exactly the way the paper argues CF does in
/// cold-start scenarios — unless test-time support ratings are folded in,
/// which PredictForUser does for the target user (a standard folding-in
/// step: solve the user's factors against the visible ratings).
class MatrixFactorization : public core::RatingPredictor {
 public:
  MatrixFactorization(const data::Dataset* dataset, const MfConfig& config);

  /// Runs SGD over the observed training ratings.
  void Fit(const std::vector<data::Rating>& train_ratings);

  // core::RatingPredictor:
  std::string name() const override { return "MF"; }
  std::vector<float> PredictForUser(
      int64_t user, const std::vector<int64_t>& items,
      const graph::BipartiteGraph& visible_graph) override;

  /// Raw model prediction without test-time folding-in.
  float Predict(int64_t user, int64_t item) const;

 private:
  const data::Dataset* dataset_;
  MfConfig config_;
  float global_mean_ = 0.0f;
  std::vector<float> user_bias_;
  std::vector<float> item_bias_;
  std::vector<float> user_factors_;  // [num_users * latent_dim]
  std::vector<float> item_factors_;  // [num_items * latent_dim]
};

}  // namespace baselines
}  // namespace hire

#endif  // HIRE_BASELINES_MATRIX_FACTORIZATION_H_
