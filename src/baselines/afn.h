#ifndef HIRE_BASELINES_AFN_H_
#define HIRE_BASELINES_AFN_H_

#include <memory>

#include "baselines/feature_embedder.h"
#include "baselines/pointwise_model.h"
#include "data/dataset.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace hire {
namespace baselines {

/// Adaptive Factorization Network (Cheng et al. 2020): a logarithmic
/// transformation layer learns arbitrary-order cross features. Each
/// log-neuron computes exp(Σ_f w_f ln|v_f|) per embedding dimension; the
/// log-neuron outputs feed an MLP.
class AFN : public PointwiseModel {
 public:
  AFN(const data::Dataset* dataset, int64_t embed_dim, int64_t num_log_neurons,
      uint64_t seed);

  ag::Variable ScoreBatch(
      const std::vector<std::pair<int64_t, int64_t>>& pairs,
      const graph::BipartiteGraph* visible_graph) override;

  std::string name() const override { return "AFN"; }

 private:
  float rating_scale_;
  int64_t num_log_neurons_;
  std::unique_ptr<FeatureEmbedder> embedder_;
  std::unique_ptr<nn::Linear> log_layer_;  // fields -> log neurons
  std::unique_ptr<nn::Mlp> head_;
};

}  // namespace baselines
}  // namespace hire

#endif  // HIRE_BASELINES_AFN_H_
