#ifndef HIRE_BASELINES_DEEPFM_H_
#define HIRE_BASELINES_DEEPFM_H_

#include <memory>

#include "baselines/feature_embedder.h"
#include "baselines/pointwise_model.h"
#include "data/dataset.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace hire {
namespace baselines {

/// DeepFM (Guo et al. 2017): a factorization machine over the field
/// embeddings (first-order linear term plus pairwise dot-product term
/// computed with the 0.5 * ((Σv)² - Σv²) identity) combined with a deep MLP
/// sharing the same embeddings.
class DeepFM : public PointwiseModel {
 public:
  DeepFM(const data::Dataset* dataset, int64_t embed_dim, uint64_t seed);

  ag::Variable ScoreBatch(
      const std::vector<std::pair<int64_t, int64_t>>& pairs,
      const graph::BipartiteGraph* visible_graph) override;

  std::string name() const override { return "DeepFM"; }

 private:
  float rating_scale_;
  std::unique_ptr<FeatureEmbedder> embedder_;
  std::unique_ptr<nn::Linear> first_order_;
  std::unique_ptr<nn::Mlp> deep_;
};

}  // namespace baselines
}  // namespace hire

#endif  // HIRE_BASELINES_DEEPFM_H_
