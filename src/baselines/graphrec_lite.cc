#include "baselines/graphrec_lite.h"

#include <algorithm>

#include "autograd/ops.h"
#include "utils/check.h"

namespace hire {
namespace baselines {

GraphRecLite::GraphRecLite(const data::Dataset* dataset, int64_t embed_dim,
                           int max_neighbors, uint64_t seed)
    : dataset_(dataset),
      max_neighbors_(max_neighbors),
      neighbor_rng_(seed ^ 0xBEEF) {
  HIRE_CHECK(dataset != nullptr);
  HIRE_CHECK_GT(max_neighbors_, 0);
  rating_scale_ = dataset->max_rating();
  Rng rng(seed);

  embedder_ = std::make_unique<FeatureEmbedder>(dataset, embed_dim, &rng);
  RegisterSubmodule("embedder", embedder_.get());

  // User representation: own attrs + item-space aggregation + social-space
  // aggregation.
  const int64_t user_in =
      embedder_->user_dim() + embedder_->item_dim() + embedder_->user_dim();
  user_fuse_ = std::make_unique<nn::Linear>(user_in, embed_dim * 2, &rng);
  RegisterSubmodule("user_fuse", user_fuse_.get());

  // Item representation: own attrs + user-space aggregation.
  const int64_t item_in = embedder_->item_dim() + embedder_->user_dim();
  item_fuse_ = std::make_unique<nn::Linear>(item_in, embed_dim * 2, &rng);
  RegisterSubmodule("item_fuse", item_fuse_.get());

  head_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{embed_dim * 4, embed_dim * 2, 1},
      nn::Activation::kRelu, &rng);
  RegisterSubmodule("head", head_.get());
}

ag::Variable GraphRecLite::ScoreBatch(
    const std::vector<std::pair<int64_t, int64_t>>& pairs,
    const graph::BipartiteGraph* visible_graph) {
  HIRE_CHECK(visible_graph != nullptr)
      << "GraphRecLite needs the rating graph";
  const int64_t batch = static_cast<int64_t>(pairs.size());

  std::vector<int64_t> users(pairs.size());
  std::vector<int64_t> items(pairs.size());
  for (size_t b = 0; b < pairs.size(); ++b) {
    users[b] = pairs[b].first;
    items[b] = pairs[b].second;
  }

  // Collect capped neighbor lists with segment ids per batch row.
  auto cap = [&](std::vector<int64_t> neighbors) {
    if (static_cast<int>(neighbors.size()) > max_neighbors_) {
      neighbor_rng_.Shuffle(&neighbors);
      neighbors.resize(static_cast<size_t>(max_neighbors_));
    }
    return neighbors;
  };

  std::vector<int64_t> rated_items;       // item ids rated by batch users
  std::vector<int64_t> rated_segments;    // owning batch row
  std::vector<int64_t> friend_users;      // friend ids of batch users
  std::vector<int64_t> friend_segments;
  std::vector<int64_t> rater_users;       // users who rated batch items
  std::vector<int64_t> rater_segments;

  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t item :
         cap(visible_graph->ItemsOfUser(users[static_cast<size_t>(b)]))) {
      rated_items.push_back(item);
      rated_segments.push_back(b);
    }
    for (int64_t friend_id :
         cap(dataset_->friends(users[static_cast<size_t>(b)]))) {
      friend_users.push_back(friend_id);
      friend_segments.push_back(b);
    }
    for (int64_t rater :
         cap(visible_graph->UsersOfItem(items[static_cast<size_t>(b)]))) {
      rater_users.push_back(rater);
      rater_segments.push_back(b);
    }
  }

  ag::Variable user_self = embedder_->EmbedUsers(users);  // [B, du]
  ag::Variable item_self = embedder_->EmbedItems(items);  // [B, di]

  auto aggregate = [&](const std::vector<int64_t>& entities,
                       const std::vector<int64_t>& segments, bool is_user,
                       int64_t dim) {
    if (entities.empty()) {
      return ag::Variable(Tensor::Zeros({batch, dim}), false);
    }
    ag::Variable embedded =
        is_user ? embedder_->EmbedUsers(entities) : embedder_->EmbedItems(entities);
    return ag::SegmentMean(embedded, segments, batch);
  };

  ag::Variable item_space =
      aggregate(rated_items, rated_segments, /*is_user=*/false,
                embedder_->item_dim());
  ag::Variable social_space =
      aggregate(friend_users, friend_segments, /*is_user=*/true,
                embedder_->user_dim());
  ag::Variable user_space =
      aggregate(rater_users, rater_segments, /*is_user=*/true,
                embedder_->user_dim());

  ag::Variable user_representation = ag::Relu(user_fuse_->Forward(
      ag::Concat({user_self, item_space, social_space}, /*axis=*/1)));
  ag::Variable item_representation = ag::Relu(item_fuse_->Forward(
      ag::Concat({item_self, user_space}, /*axis=*/1)));

  ag::Variable logits = head_->Forward(
      ag::Concat({user_representation, item_representation}, /*axis=*/1));
  return ag::Reshape(ag::MulScalar(ag::Sigmoid(logits), rating_scale_),
                     {batch});
}

}  // namespace baselines
}  // namespace hire
