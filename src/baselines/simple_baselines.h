#ifndef HIRE_BASELINES_SIMPLE_BASELINES_H_
#define HIRE_BASELINES_SIMPLE_BASELINES_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/evaluation.h"
#include "data/dataset.h"

namespace hire {
namespace baselines {

/// Non-parametric reference: predicts an item's mean training rating
/// (global mean for unseen items). Any learning model should beat this.
class PopularityBaseline : public core::RatingPredictor {
 public:
  PopularityBaseline(const data::Dataset* dataset,
                     const std::vector<data::Rating>& train_ratings);

  std::string name() const override { return "Popularity"; }

  std::vector<float> PredictForUser(
      int64_t user, const std::vector<int64_t>& items,
      const graph::BipartiteGraph& visible_graph) override;

 private:
  std::unordered_map<int64_t, float> item_means_;
  float global_mean_ = 0.0f;
};

/// Classic item-based collaborative filtering: predicts a user's rating on
/// item i as the similarity-weighted average of the user's visible ratings,
/// where item-item similarity is the cosine over co-rater rating vectors
/// from training, backed off to attribute match fraction for cold items.
class ItemKnnBaseline : public core::RatingPredictor {
 public:
  ItemKnnBaseline(const data::Dataset* dataset,
                  const std::vector<data::Rating>& train_ratings);

  std::string name() const override { return "ItemKNN"; }

  std::vector<float> PredictForUser(
      int64_t user, const std::vector<int64_t>& items,
      const graph::BipartiteGraph& visible_graph) override;

 private:
  double Similarity(int64_t item_a, int64_t item_b) const;

  const data::Dataset* dataset_;
  /// item -> (user -> rating) from training.
  std::vector<std::unordered_map<int64_t, float>> item_ratings_;
  std::unordered_map<int64_t, float> item_means_;
  float global_mean_ = 0.0f;
};

}  // namespace baselines
}  // namespace hire

#endif  // HIRE_BASELINES_SIMPLE_BASELINES_H_
