#ifndef HIRE_BASELINES_FEATURE_EMBEDDER_H_
#define HIRE_BASELINES_FEATURE_EMBEDDER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "data/dataset.h"
#include "nn/embedding.h"
#include "nn/module.h"
#include "tensor/random.h"

namespace hire {
namespace baselines {

/// Shared categorical feature encoder for the CF baselines: one embedding
/// table per user/item attribute column (field), mirroring the sparse
/// feature handling of NeuMF/Wide&Deep/DeepFM/AFN.
class FeatureEmbedder : public nn::Module {
 public:
  FeatureEmbedder(const data::Dataset* dataset, int64_t embed_dim, Rng* rng);

  /// Concatenated field embeddings per pair: [B, (h_u + h_i) * f].
  ag::Variable EmbedPairsFlat(
      const std::vector<std::pair<int64_t, int64_t>>& pairs) const;

  /// Stacked field embeddings per pair: [B, h_u + h_i, f] (for FM/AFN).
  ag::Variable EmbedPairsFields(
      const std::vector<std::pair<int64_t, int64_t>>& pairs) const;

  /// User-side embeddings only: [B, h_u * f].
  ag::Variable EmbedUsers(const std::vector<int64_t>& users) const;

  /// Item-side embeddings only: [B, h_i * f].
  ag::Variable EmbedItems(const std::vector<int64_t>& items) const;

  int64_t embed_dim() const { return embed_dim_; }
  int64_t num_user_fields() const {
    return static_cast<int64_t>(user_embeddings_.size());
  }
  int64_t num_item_fields() const {
    return static_cast<int64_t>(item_embeddings_.size());
  }
  int64_t num_fields() const {
    return num_user_fields() + num_item_fields();
  }
  int64_t user_dim() const { return num_user_fields() * embed_dim_; }
  int64_t item_dim() const { return num_item_fields() * embed_dim_; }
  int64_t pair_dim() const { return num_fields() * embed_dim_; }

  const data::Dataset& dataset() const { return *dataset_; }

 private:
  const data::Dataset* dataset_;
  int64_t embed_dim_;
  std::vector<std::unique_ptr<nn::Embedding>> user_embeddings_;
  std::vector<std::unique_ptr<nn::Embedding>> item_embeddings_;
};

}  // namespace baselines
}  // namespace hire

#endif  // HIRE_BASELINES_FEATURE_EMBEDDER_H_
