#ifndef HIRE_BASELINES_POINTWISE_MODEL_H_
#define HIRE_BASELINES_POINTWISE_MODEL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "graph/bipartite_graph.h"
#include "nn/module.h"

namespace hire {
namespace baselines {

/// Base class for pointwise rating regressors (the neural CF baselines and
/// GraphRecLite): given a batch of (user, item) pairs they produce predicted
/// ratings. Models that exploit graph structure (GraphRecLite) read the
/// optional visibility graph; pure feature models ignore it.
class PointwiseModel : public nn::Module {
 public:
  /// Predicted ratings for `pairs`: shape [B].
  virtual ag::Variable ScoreBatch(
      const std::vector<std::pair<int64_t, int64_t>>& pairs,
      const graph::BipartiteGraph* visible_graph) = 0;

  virtual std::string name() const = 0;
};

}  // namespace baselines
}  // namespace hire

#endif  // HIRE_BASELINES_POINTWISE_MODEL_H_
