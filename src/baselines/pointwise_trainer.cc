#include "baselines/pointwise_trainer.h"

#include "autograd/ops.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "optim/adam.h"
#include "tensor/random.h"
#include "utils/check.h"
#include "utils/logging.h"
#include "utils/stopwatch.h"

namespace hire {
namespace baselines {

float FitPointwise(PointwiseModel* model,
                   const std::vector<data::Rating>& train_ratings,
                   const graph::BipartiteGraph* graph,
                   const PointwiseTrainConfig& config) {
  HIRE_CHECK(model != nullptr);
  HIRE_CHECK(!train_ratings.empty());
  Rng rng(config.seed);
  model->SetTraining(true);

  optim::AdamConfig adam_config;
  adam_config.learning_rate = config.learning_rate;
  adam_config.weight_decay = config.weight_decay;
  optim::Adam optimizer(model->Parameters(), adam_config);

  obs::TelemetrySink& telemetry = obs::TelemetrySink::Global();
  const int64_t telemetry_every =
      config.telemetry_every > 0 ? config.telemetry_every : 1;

  float last_loss = 0.0f;
  const int64_t pool = static_cast<int64_t>(train_ratings.size());
  for (int64_t step = 0; step < config.num_steps; ++step) {
    HIRE_TRACE_SCOPE("baseline_step");
    Stopwatch step_watch;
    std::vector<std::pair<int64_t, int64_t>> pairs;
    std::vector<float> targets;
    pairs.reserve(static_cast<size_t>(config.batch_size));
    targets.reserve(static_cast<size_t>(config.batch_size));
    for (int64_t b = 0; b < config.batch_size; ++b) {
      const data::Rating& rating =
          train_ratings[static_cast<size_t>(rng.UniformInt(pool))];
      pairs.emplace_back(rating.user, rating.item);
      targets.push_back(rating.value);
    }

    optimizer.ZeroGrad();
    ag::Variable predicted = model->ScoreBatch(pairs, graph);
    HIRE_CHECK_EQ(predicted.size(), config.batch_size);
    ag::Variable loss =
        ag::MSE(predicted, Tensor::FromVector(std::move(targets)));
    loss.Backward();
    optimizer.Step();

    last_loss = loss.value().flat(0);
    if (config.log_every > 0 && (step + 1) % config.log_every == 0) {
      HIRE_LOG(Info) << model->name() << " step " << (step + 1) << "/"
                     << config.num_steps << " loss " << last_loss;
    }
    if (telemetry.enabled() && (step + 1) % telemetry_every == 0) {
      obs::StepTelemetry record;
      record.source = model->name();
      record.step = step + 1;
      record.total_steps = config.num_steps;
      record.loss = last_loss;
      record.lr = config.learning_rate;
      record.wall_seconds = step_watch.ElapsedSeconds();
      telemetry.WriteStep(record);
    }
  }
  model->SetTraining(false);
  return last_loss;
}

PointwisePredictor::PointwisePredictor(PointwiseModel* model)
    : model_(model) {
  HIRE_CHECK(model_ != nullptr);
}

std::string PointwisePredictor::name() const { return model_->name(); }

std::vector<float> PointwisePredictor::PredictForUser(
    int64_t user, const std::vector<int64_t>& items,
    const graph::BipartiteGraph& visible_graph) {
  std::vector<std::pair<int64_t, int64_t>> pairs;
  pairs.reserve(items.size());
  for (int64_t item : items) pairs.emplace_back(user, item);
  const ag::Variable predicted = model_->ScoreBatch(pairs, &visible_graph);
  std::vector<float> out(items.size());
  for (size_t j = 0; j < items.size(); ++j) {
    out[j] = predicted.value().flat(static_cast<int64_t>(j));
  }
  return out;
}

}  // namespace baselines
}  // namespace hire
