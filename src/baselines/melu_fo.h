#ifndef HIRE_BASELINES_MELU_FO_H_
#define HIRE_BASELINES_MELU_FO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/feature_embedder.h"
#include "core/evaluation.h"
#include "data/dataset.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace hire {
namespace baselines {

/// Meta-training hyper-parameters for MeLUFO.
struct MeLUConfig {
  int64_t meta_iterations = 150;
  /// Tasks (users) per meta-batch.
  int tasks_per_batch = 4;
  /// Inner-loop SGD steps on a task's support set.
  int inner_steps = 3;
  float inner_learning_rate = 0.05f;
  float meta_learning_rate = 1e-3f;
  /// Users need at least this many ratings to form a task.
  int min_task_ratings = 5;
  /// Share of a task's ratings used as support (rest is query), mirroring
  /// the evaluation protocol's 10%/90%.
  double support_fraction = 0.1;
  /// Cap on support ratings used during test-time adaptation.
  int max_adapt_ratings = 24;
  uint64_t seed = 31;
  int64_t log_every = 0;
};

/// MeLU-style meta-learned preference estimator (Lee et al. 2019) with
/// first-order MAML (FOMAML): the user-preference MLP is meta-trained so a
/// few SGD steps on a cold user's support ratings personalise it. The
/// second-order MAML term is dropped — the documented approximation that
/// keeps the meta-gradient computable without differentiating through the
/// optimiser.
class MeLUFO : public nn::Module, public core::RatingPredictor {
 public:
  MeLUFO(const data::Dataset* dataset, int64_t embed_dim,
         const MeLUConfig& config);

  /// Meta-trains over per-user tasks drawn from `train_ratings`.
  void MetaTrain(const std::vector<data::Rating>& train_ratings);

  // core::RatingPredictor:
  std::string name() const override { return "MeLU-FO"; }
  std::vector<float> PredictForUser(
      int64_t user, const std::vector<int64_t>& items,
      const graph::BipartiteGraph& visible_graph) override;

 private:
  ag::Variable ScorePairs(
      const std::vector<std::pair<int64_t, int64_t>>& pairs);

  /// One MSE backward pass + in-place SGD update on the current parameters.
  void InnerStep(const std::vector<data::Rating>& support);

  std::vector<Tensor> SnapshotParameters() const;
  void RestoreParameters(const std::vector<Tensor>& snapshot);

  const data::Dataset* dataset_;
  MeLUConfig config_;
  float rating_scale_;
  Rng rng_;
  std::unique_ptr<FeatureEmbedder> embedder_;
  std::unique_ptr<nn::Mlp> head_;
};

}  // namespace baselines
}  // namespace hire

#endif  // HIRE_BASELINES_MELU_FO_H_
