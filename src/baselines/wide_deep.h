#ifndef HIRE_BASELINES_WIDE_DEEP_H_
#define HIRE_BASELINES_WIDE_DEEP_H_

#include <memory>

#include "baselines/feature_embedder.h"
#include "baselines/pointwise_model.h"
#include "data/dataset.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace hire {
namespace baselines {

/// Wide & Deep (Cheng et al. 2016): a wide linear model over the sparse
/// features (realised as a linear map over the field embeddings, which is a
/// linear function of the underlying one-hots) plus a deep MLP, summed into
/// a single logit.
class WideDeep : public PointwiseModel {
 public:
  WideDeep(const data::Dataset* dataset, int64_t embed_dim, uint64_t seed);

  ag::Variable ScoreBatch(
      const std::vector<std::pair<int64_t, int64_t>>& pairs,
      const graph::BipartiteGraph* visible_graph) override;

  std::string name() const override { return "Wide&Deep"; }

 private:
  float rating_scale_;
  std::unique_ptr<FeatureEmbedder> embedder_;
  std::unique_ptr<nn::Linear> wide_;
  std::unique_ptr<nn::Mlp> deep_;
};

}  // namespace baselines
}  // namespace hire

#endif  // HIRE_BASELINES_WIDE_DEEP_H_
