#include "baselines/simple_baselines.h"

#include <cmath>

#include "utils/check.h"

namespace hire {
namespace baselines {

namespace {

std::pair<std::unordered_map<int64_t, float>, float> ComputeItemMeans(
    const std::vector<data::Rating>& ratings) {
  std::unordered_map<int64_t, double> sums;
  std::unordered_map<int64_t, int64_t> counts;
  double global_sum = 0.0;
  for (const data::Rating& rating : ratings) {
    sums[rating.item] += rating.value;
    ++counts[rating.item];
    global_sum += rating.value;
  }
  std::unordered_map<int64_t, float> means;
  means.reserve(sums.size());
  for (const auto& [item, sum] : sums) {
    means[item] = static_cast<float>(sum / counts[item]);
  }
  const float global_mean =
      ratings.empty() ? 0.0f
                      : static_cast<float>(global_sum /
                                           static_cast<double>(ratings.size()));
  return {std::move(means), global_mean};
}

}  // namespace

PopularityBaseline::PopularityBaseline(
    const data::Dataset* dataset,
    const std::vector<data::Rating>& train_ratings) {
  HIRE_CHECK(dataset != nullptr);
  auto [means, global] = ComputeItemMeans(train_ratings);
  item_means_ = std::move(means);
  global_mean_ = global;
}

std::vector<float> PopularityBaseline::PredictForUser(
    int64_t /*user*/, const std::vector<int64_t>& items,
    const graph::BipartiteGraph& /*visible_graph*/) {
  std::vector<float> out;
  out.reserve(items.size());
  for (int64_t item : items) {
    const auto it = item_means_.find(item);
    out.push_back(it != item_means_.end() ? it->second : global_mean_);
  }
  return out;
}

ItemKnnBaseline::ItemKnnBaseline(
    const data::Dataset* dataset,
    const std::vector<data::Rating>& train_ratings)
    : dataset_(dataset) {
  HIRE_CHECK(dataset_ != nullptr);
  item_ratings_.assign(static_cast<size_t>(dataset_->num_items()), {});
  for (const data::Rating& rating : train_ratings) {
    item_ratings_[static_cast<size_t>(rating.item)][rating.user] =
        rating.value;
  }
  auto [means, global] = ComputeItemMeans(train_ratings);
  item_means_ = std::move(means);
  global_mean_ = global;
}

double ItemKnnBaseline::Similarity(int64_t item_a, int64_t item_b) const {
  const auto& ratings_a = item_ratings_[static_cast<size_t>(item_a)];
  const auto& ratings_b = item_ratings_[static_cast<size_t>(item_b)];

  // Cosine over co-rated users.
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  const auto& smaller = ratings_a.size() <= ratings_b.size() ? ratings_a
                                                             : ratings_b;
  const auto& larger = ratings_a.size() <= ratings_b.size() ? ratings_b
                                                            : ratings_a;
  for (const auto& [user, value] : smaller) {
    const auto it = larger.find(user);
    if (it != larger.end()) dot += value * it->second;
  }
  for (const auto& [user, value] : ratings_a) norm_a += value * value;
  for (const auto& [user, value] : ratings_b) norm_b += value * value;
  if (dot > 0.0 && norm_a > 0.0 && norm_b > 0.0) {
    return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
  }

  // Cold-item backoff: attribute match fraction.
  const auto& attrs_a = dataset_->item_attributes(item_a);
  const auto& attrs_b = dataset_->item_attributes(item_b);
  int64_t matches = 0;
  for (size_t a = 0; a < attrs_a.size(); ++a) {
    if (attrs_a[a] == attrs_b[a]) ++matches;
  }
  return 0.25 * static_cast<double>(matches) /
         static_cast<double>(attrs_a.size());
}

std::vector<float> ItemKnnBaseline::PredictForUser(
    int64_t user, const std::vector<int64_t>& items,
    const graph::BipartiteGraph& visible_graph) {
  // The user's visible ratings are the evidence base.
  std::vector<std::pair<int64_t, float>> evidence;
  for (int64_t item : visible_graph.ItemsOfUser(user)) {
    evidence.emplace_back(item, *visible_graph.GetRating(user, item));
  }

  std::vector<float> out;
  out.reserve(items.size());
  for (int64_t target : items) {
    const auto mean_it = item_means_.find(target);
    const float fallback =
        mean_it != item_means_.end() ? mean_it->second : global_mean_;
    if (evidence.empty()) {
      out.push_back(fallback);
      continue;
    }
    double weighted = 0.0;
    double weight_total = 0.0;
    for (const auto& [item, value] : evidence) {
      if (item == target) continue;
      const double similarity = Similarity(target, item);
      weighted += similarity * value;
      weight_total += std::fabs(similarity);
    }
    if (weight_total > 1e-9) {
      // Blend the neighborhood estimate with the item prior.
      out.push_back(static_cast<float>(0.8 * weighted / weight_total +
                                       0.2 * fallback));
    } else {
      out.push_back(fallback);
    }
  }
  return out;
}

}  // namespace baselines
}  // namespace hire
