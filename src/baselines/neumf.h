#ifndef HIRE_BASELINES_NEUMF_H_
#define HIRE_BASELINES_NEUMF_H_

#include <memory>

#include "baselines/feature_embedder.h"
#include "baselines/pointwise_model.h"
#include "data/dataset.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "tensor/random.h"

namespace hire {
namespace baselines {

/// Neural Collaborative Filtering (He et al. 2017), feature-based variant:
/// a GMF branch (elementwise product of user and item representations) and
/// an MLP branch over the concatenated features, fused by a final linear
/// layer with sigmoid output scaled to the rating range.
class NeuMF : public PointwiseModel {
 public:
  NeuMF(const data::Dataset* dataset, int64_t embed_dim, uint64_t seed);

  ag::Variable ScoreBatch(
      const std::vector<std::pair<int64_t, int64_t>>& pairs,
      const graph::BipartiteGraph* visible_graph) override;

  std::string name() const override { return "NeuMF"; }

 private:
  float rating_scale_;
  std::unique_ptr<FeatureEmbedder> embedder_;
  std::unique_ptr<nn::Linear> user_projection_;  // user feats -> gmf dim
  std::unique_ptr<nn::Linear> item_projection_;  // item feats -> gmf dim
  std::unique_ptr<nn::Mlp> mlp_branch_;
  std::unique_ptr<nn::Linear> fusion_;
};

}  // namespace baselines
}  // namespace hire

#endif  // HIRE_BASELINES_NEUMF_H_
