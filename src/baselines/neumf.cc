#include "baselines/neumf.h"

#include "autograd/ops.h"
#include "utils/check.h"

namespace hire {
namespace baselines {

NeuMF::NeuMF(const data::Dataset* dataset, int64_t embed_dim, uint64_t seed) {
  HIRE_CHECK(dataset != nullptr);
  rating_scale_ = dataset->max_rating();
  Rng rng(seed);

  embedder_ = std::make_unique<FeatureEmbedder>(dataset, embed_dim, &rng);
  RegisterSubmodule("embedder", embedder_.get());

  const int64_t gmf_dim = embed_dim;
  user_projection_ =
      std::make_unique<nn::Linear>(embedder_->user_dim(), gmf_dim, &rng);
  item_projection_ =
      std::make_unique<nn::Linear>(embedder_->item_dim(), gmf_dim, &rng);
  RegisterSubmodule("user_projection", user_projection_.get());
  RegisterSubmodule("item_projection", item_projection_.get());

  mlp_branch_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{embedder_->pair_dim(), 2 * embed_dim, embed_dim},
      nn::Activation::kRelu, &rng);
  RegisterSubmodule("mlp", mlp_branch_.get());

  fusion_ = std::make_unique<nn::Linear>(gmf_dim + embed_dim, 1, &rng);
  RegisterSubmodule("fusion", fusion_.get());
}

ag::Variable NeuMF::ScoreBatch(
    const std::vector<std::pair<int64_t, int64_t>>& pairs,
    const graph::BipartiteGraph* /*visible_graph*/) {
  const int64_t batch = static_cast<int64_t>(pairs.size());
  std::vector<int64_t> users(pairs.size());
  std::vector<int64_t> items(pairs.size());
  for (size_t b = 0; b < pairs.size(); ++b) {
    users[b] = pairs[b].first;
    items[b] = pairs[b].second;
  }

  ag::Variable user_features = embedder_->EmbedUsers(users);
  ag::Variable item_features = embedder_->EmbedItems(items);

  // GMF branch: elementwise interaction of projected representations.
  ag::Variable gmf = ag::Mul(user_projection_->Forward(user_features),
                             item_projection_->Forward(item_features));

  // MLP branch over the concatenated raw features.
  ag::Variable mlp = mlp_branch_->Forward(
      ag::Concat({user_features, item_features}, /*axis=*/1));

  ag::Variable logits = fusion_->Forward(ag::Concat({gmf, mlp}, /*axis=*/1));
  return ag::Reshape(ag::MulScalar(ag::Sigmoid(logits), rating_scale_),
                     {batch});
}

}  // namespace baselines
}  // namespace hire
