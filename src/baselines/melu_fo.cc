#include "baselines/melu_fo.h"

#include <algorithm>
#include <unordered_map>

#include "autograd/ops.h"
#include "optim/adam.h"
#include "utils/check.h"
#include "utils/logging.h"

namespace hire {
namespace baselines {

MeLUFO::MeLUFO(const data::Dataset* dataset, int64_t embed_dim,
               const MeLUConfig& config)
    : dataset_(dataset), config_(config), rng_(config.seed) {
  HIRE_CHECK(dataset_ != nullptr);
  rating_scale_ = dataset_->max_rating();
  Rng init_rng = rng_.Fork(1);
  embedder_ = std::make_unique<FeatureEmbedder>(dataset_, embed_dim,
                                                &init_rng);
  RegisterSubmodule("embedder", embedder_.get());
  head_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{embedder_->pair_dim(), 4 * embed_dim,
                           2 * embed_dim, 1},
      nn::Activation::kRelu, &init_rng);
  RegisterSubmodule("head", head_.get());
}

ag::Variable MeLUFO::ScorePairs(
    const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  const int64_t batch = static_cast<int64_t>(pairs.size());
  ag::Variable features = embedder_->EmbedPairsFlat(pairs);
  ag::Variable logits = head_->Forward(features);
  return ag::Reshape(ag::MulScalar(ag::Sigmoid(logits), rating_scale_),
                     {batch});
}

void MeLUFO::InnerStep(const std::vector<data::Rating>& support) {
  std::vector<std::pair<int64_t, int64_t>> pairs;
  std::vector<float> targets;
  pairs.reserve(support.size());
  targets.reserve(support.size());
  for (const data::Rating& rating : support) {
    pairs.emplace_back(rating.user, rating.item);
    targets.push_back(rating.value);
  }
  ZeroGrad();
  ag::Variable loss =
      ag::MSE(ScorePairs(pairs), Tensor::FromVector(std::move(targets)));
  loss.Backward();
  for (ag::Variable& parameter : Parameters()) {
    if (!parameter.has_grad()) continue;
    Tensor& value = parameter.mutable_value();
    const Tensor& grad = parameter.grad();
    for (int64_t i = 0; i < value.size(); ++i) {
      value.flat(i) -= config_.inner_learning_rate * grad.flat(i);
    }
  }
  ZeroGrad();
}

std::vector<Tensor> MeLUFO::SnapshotParameters() const {
  std::vector<Tensor> snapshot;
  for (const ag::Variable& parameter : Parameters()) {
    snapshot.push_back(parameter.value());
  }
  return snapshot;
}

void MeLUFO::RestoreParameters(const std::vector<Tensor>& snapshot) {
  std::vector<ag::Variable> parameters = Parameters();
  HIRE_CHECK_EQ(parameters.size(), snapshot.size());
  for (size_t p = 0; p < parameters.size(); ++p) {
    parameters[p].mutable_value() = snapshot[p];
  }
}

void MeLUFO::MetaTrain(const std::vector<data::Rating>& train_ratings) {
  // Build per-user tasks.
  std::unordered_map<int64_t, std::vector<data::Rating>> by_user;
  for (const data::Rating& rating : train_ratings) {
    by_user[rating.user].push_back(rating);
  }
  std::vector<std::vector<data::Rating>> tasks;
  for (auto& [user, ratings] : by_user) {
    if (static_cast<int>(ratings.size()) >= config_.min_task_ratings) {
      tasks.push_back(std::move(ratings));
    }
  }
  HIRE_CHECK(!tasks.empty()) << "no user has enough ratings to form a task";

  SetTraining(true);
  std::vector<ag::Variable> parameters = Parameters();
  optim::AdamConfig adam_config;
  adam_config.learning_rate = config_.meta_learning_rate;
  optim::Adam meta_optimizer(parameters, adam_config);

  for (int64_t iteration = 0; iteration < config_.meta_iterations;
       ++iteration) {
    // Accumulate first-order meta-gradients over a batch of tasks.
    std::vector<Tensor> meta_grads;
    meta_grads.reserve(parameters.size());
    for (const ag::Variable& parameter : parameters) {
      meta_grads.push_back(Tensor::Zeros(parameter.shape()));
    }

    float batch_query_loss = 0.0f;
    for (int t = 0; t < config_.tasks_per_batch; ++t) {
      std::vector<data::Rating> task = tasks[static_cast<size_t>(
          rng_.UniformInt(static_cast<int64_t>(tasks.size())))];
      rng_.Shuffle(&task);
      const size_t support_count = std::max<size_t>(
          1, static_cast<size_t>(config_.support_fraction *
                                 static_cast<double>(task.size())));
      const std::vector<data::Rating> support(
          task.begin(), task.begin() + static_cast<int64_t>(support_count));
      const std::vector<data::Rating> query(
          task.begin() + static_cast<int64_t>(support_count), task.end());
      if (query.empty()) continue;

      const std::vector<Tensor> snapshot = SnapshotParameters();

      // Inner adaptation on the support set.
      for (int s = 0; s < config_.inner_steps; ++s) InnerStep(support);

      // Query gradient at the adapted parameters (FOMAML meta-gradient).
      std::vector<std::pair<int64_t, int64_t>> pairs;
      std::vector<float> targets;
      for (const data::Rating& rating : query) {
        pairs.emplace_back(rating.user, rating.item);
        targets.push_back(rating.value);
      }
      ZeroGrad();
      ag::Variable loss =
          ag::MSE(ScorePairs(pairs), Tensor::FromVector(std::move(targets)));
      loss.Backward();
      batch_query_loss += loss.value().flat(0);

      for (size_t p = 0; p < parameters.size(); ++p) {
        if (!parameters[p].has_grad()) continue;
        const Tensor& grad = parameters[p].grad();
        for (int64_t i = 0; i < grad.size(); ++i) {
          meta_grads[p].flat(i) +=
              grad.flat(i) / static_cast<float>(config_.tasks_per_batch);
        }
      }
      RestoreParameters(snapshot);
      ZeroGrad();
    }

    // Inject accumulated meta-gradients and take the meta step.
    for (size_t p = 0; p < parameters.size(); ++p) {
      parameters[p].ZeroGrad();
      parameters[p].impl()->AccumulateGrad(meta_grads[p]);
    }
    meta_optimizer.Step();

    if (config_.log_every > 0 && (iteration + 1) % config_.log_every == 0) {
      HIRE_LOG(Info) << "MeLU-FO iteration " << (iteration + 1) << "/"
                     << config_.meta_iterations << " query loss "
                     << batch_query_loss / config_.tasks_per_batch;
    }
  }
  SetTraining(false);
}

std::vector<float> MeLUFO::PredictForUser(
    int64_t user, const std::vector<int64_t>& items,
    const graph::BipartiteGraph& visible_graph) {
  // Test-time adaptation on the cold user's visible (support) ratings.
  std::vector<data::Rating> support;
  for (int64_t item : visible_graph.ItemsOfUser(user)) {
    support.push_back(
        data::Rating{user, item, *visible_graph.GetRating(user, item)});
    if (static_cast<int>(support.size()) >= config_.max_adapt_ratings) break;
  }

  const std::vector<Tensor> snapshot = SnapshotParameters();
  if (!support.empty()) {
    for (int s = 0; s < config_.inner_steps; ++s) InnerStep(support);
  }

  std::vector<std::pair<int64_t, int64_t>> pairs;
  pairs.reserve(items.size());
  for (int64_t item : items) pairs.emplace_back(user, item);
  const ag::Variable predicted = ScorePairs(pairs);
  std::vector<float> out(items.size());
  for (size_t j = 0; j < items.size(); ++j) {
    out[j] = predicted.value().flat(static_cast<int64_t>(j));
  }
  RestoreParameters(snapshot);
  return out;
}

}  // namespace baselines
}  // namespace hire
