#include "baselines/wide_deep.h"

#include "autograd/ops.h"
#include "utils/check.h"

namespace hire {
namespace baselines {

WideDeep::WideDeep(const data::Dataset* dataset, int64_t embed_dim,
                   uint64_t seed) {
  HIRE_CHECK(dataset != nullptr);
  rating_scale_ = dataset->max_rating();
  Rng rng(seed);

  embedder_ = std::make_unique<FeatureEmbedder>(dataset, embed_dim, &rng);
  RegisterSubmodule("embedder", embedder_.get());

  wide_ = std::make_unique<nn::Linear>(embedder_->pair_dim(), 1, &rng);
  RegisterSubmodule("wide", wide_.get());

  deep_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{embedder_->pair_dim(), 2 * embed_dim, embed_dim, 1},
      nn::Activation::kRelu, &rng);
  RegisterSubmodule("deep", deep_.get());
}

ag::Variable WideDeep::ScoreBatch(
    const std::vector<std::pair<int64_t, int64_t>>& pairs,
    const graph::BipartiteGraph* /*visible_graph*/) {
  const int64_t batch = static_cast<int64_t>(pairs.size());
  ag::Variable features = embedder_->EmbedPairsFlat(pairs);
  ag::Variable logits =
      ag::Add(wide_->Forward(features), deep_->Forward(features));
  return ag::Reshape(ag::MulScalar(ag::Sigmoid(logits), rating_scale_),
                     {batch});
}

}  // namespace baselines
}  // namespace hire
