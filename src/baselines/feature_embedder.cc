#include "baselines/feature_embedder.h"

#include "autograd/ops.h"
#include "utils/check.h"

namespace hire {
namespace baselines {

FeatureEmbedder::FeatureEmbedder(const data::Dataset* dataset,
                                 int64_t embed_dim, Rng* rng)
    : dataset_(dataset), embed_dim_(embed_dim) {
  HIRE_CHECK(dataset_ != nullptr);
  HIRE_CHECK_GT(embed_dim_, 0);
  for (const data::AttributeSchema& attribute : dataset_->user_schema()) {
    user_embeddings_.push_back(std::make_unique<nn::Embedding>(
        attribute.num_categories, embed_dim_, rng));
    RegisterSubmodule("user_" + attribute.name, user_embeddings_.back().get());
  }
  for (const data::AttributeSchema& attribute : dataset_->item_schema()) {
    item_embeddings_.push_back(std::make_unique<nn::Embedding>(
        attribute.num_categories, embed_dim_, rng));
    RegisterSubmodule("item_" + attribute.name, item_embeddings_.back().get());
  }
}

ag::Variable FeatureEmbedder::EmbedUsers(
    const std::vector<int64_t>& users) const {
  HIRE_CHECK(!users.empty());
  std::vector<ag::Variable> parts;
  parts.reserve(user_embeddings_.size());
  for (size_t a = 0; a < user_embeddings_.size(); ++a) {
    std::vector<int64_t> indices(users.size());
    for (size_t b = 0; b < users.size(); ++b) {
      indices[b] = dataset_->user_attributes(users[b])[a];
    }
    parts.push_back(user_embeddings_[a]->Forward(indices));
  }
  return parts.size() == 1 ? parts[0] : ag::Concat(parts, /*axis=*/1);
}

ag::Variable FeatureEmbedder::EmbedItems(
    const std::vector<int64_t>& items) const {
  HIRE_CHECK(!items.empty());
  std::vector<ag::Variable> parts;
  parts.reserve(item_embeddings_.size());
  for (size_t a = 0; a < item_embeddings_.size(); ++a) {
    std::vector<int64_t> indices(items.size());
    for (size_t b = 0; b < items.size(); ++b) {
      indices[b] = dataset_->item_attributes(items[b])[a];
    }
    parts.push_back(item_embeddings_[a]->Forward(indices));
  }
  return parts.size() == 1 ? parts[0] : ag::Concat(parts, /*axis=*/1);
}

ag::Variable FeatureEmbedder::EmbedPairsFlat(
    const std::vector<std::pair<int64_t, int64_t>>& pairs) const {
  HIRE_CHECK(!pairs.empty());
  std::vector<int64_t> users(pairs.size());
  std::vector<int64_t> items(pairs.size());
  for (size_t b = 0; b < pairs.size(); ++b) {
    users[b] = pairs[b].first;
    items[b] = pairs[b].second;
  }
  return ag::Concat({EmbedUsers(users), EmbedItems(items)}, /*axis=*/1);
}

ag::Variable FeatureEmbedder::EmbedPairsFields(
    const std::vector<std::pair<int64_t, int64_t>>& pairs) const {
  const int64_t batch = static_cast<int64_t>(pairs.size());
  ag::Variable flat = EmbedPairsFlat(pairs);
  return ag::Reshape(flat, {batch, num_fields(), embed_dim_});
}

}  // namespace baselines
}  // namespace hire
