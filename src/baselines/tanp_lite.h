#ifndef HIRE_BASELINES_TANP_LITE_H_
#define HIRE_BASELINES_TANP_LITE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/feature_embedder.h"
#include "core/evaluation.h"
#include "data/dataset.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/module.h"

namespace hire {
namespace baselines {

/// Training hyper-parameters for TaNPLite.
struct TaNPConfig {
  int64_t meta_iterations = 300;
  int tasks_per_batch = 4;
  /// Share of a task's ratings forming the support set.
  double support_fraction = 0.1;
  int min_task_ratings = 5;
  /// Cap on support ratings encoded at test time.
  int max_support_ratings = 32;
  float learning_rate = 1e-3f;
  uint64_t seed = 47;
  int64_t log_every = 0;
};

/// TaNP-style task-adaptive neural process (Lin et al. 2021), reduced to its
/// deterministic path: a set encoder maps a user's support ratings
/// (pair features ++ rating value) to a task embedding by mean pooling, and
/// the decoder predicts query ratings conditioned on [pair features || task
/// embedding]. Adaptation is *amortized* — unlike MAML-style baselines, no
/// test-time gradient steps are needed, which is TaNP's selling point.
class TaNPLite : public nn::Module, public core::RatingPredictor {
 public:
  TaNPLite(const data::Dataset* dataset, int64_t embed_dim,
           const TaNPConfig& config);

  /// Meta-trains over per-user tasks from `train_ratings`: each task is
  /// split into support/query; the loss is the query MSE given the task
  /// embedding encoded from the support.
  void MetaTrain(const std::vector<data::Rating>& train_ratings);

  // core::RatingPredictor:
  std::string name() const override { return "TaNP-lite"; }
  std::vector<float> PredictForUser(
      int64_t user, const std::vector<int64_t>& items,
      const graph::BipartiteGraph& visible_graph) override;

 private:
  /// Encodes a support set into a task embedding [1, task_dim]; an empty
  /// support yields the zero embedding (pure prior).
  ag::Variable EncodeSupport(const std::vector<data::Rating>& support);

  /// Decodes ratings for pairs given a task embedding.
  ag::Variable DecodeQueries(
      const std::vector<std::pair<int64_t, int64_t>>& pairs,
      const ag::Variable& task_embedding);

  const data::Dataset* dataset_;
  TaNPConfig config_;
  float rating_scale_;
  int64_t task_dim_;
  Rng rng_;
  std::unique_ptr<FeatureEmbedder> embedder_;
  std::unique_ptr<nn::Linear> support_encoder_;  // [pair_dim + 1] -> task_dim
  std::unique_ptr<nn::Mlp> decoder_;
};

}  // namespace baselines
}  // namespace hire

#endif  // HIRE_BASELINES_TANP_LITE_H_
