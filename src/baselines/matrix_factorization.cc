#include "baselines/matrix_factorization.h"

#include <algorithm>
#include <cmath>

#include "utils/check.h"

namespace hire {
namespace baselines {

MatrixFactorization::MatrixFactorization(const data::Dataset* dataset,
                                         const MfConfig& config)
    : dataset_(dataset), config_(config) {
  HIRE_CHECK(dataset_ != nullptr);
  HIRE_CHECK_GT(config_.latent_dim, 0);
  Rng rng(config_.seed);
  const size_t user_size =
      static_cast<size_t>(dataset_->num_users() * config_.latent_dim);
  const size_t item_size =
      static_cast<size_t>(dataset_->num_items() * config_.latent_dim);
  user_factors_.resize(user_size);
  item_factors_.resize(item_size);
  const float scale = 0.1f / std::sqrt(static_cast<float>(config_.latent_dim));
  for (float& value : user_factors_) {
    value = static_cast<float>(rng.Normal(0.0, scale));
  }
  for (float& value : item_factors_) {
    value = static_cast<float>(rng.Normal(0.0, scale));
  }
  user_bias_.assign(static_cast<size_t>(dataset_->num_users()), 0.0f);
  item_bias_.assign(static_cast<size_t>(dataset_->num_items()), 0.0f);
}

void MatrixFactorization::Fit(const std::vector<data::Rating>& train_ratings) {
  HIRE_CHECK(!train_ratings.empty());
  double total = 0.0;
  for (const data::Rating& rating : train_ratings) total += rating.value;
  global_mean_ =
      static_cast<float>(total / static_cast<double>(train_ratings.size()));

  Rng rng(config_.seed ^ 0xFACE);
  std::vector<size_t> order(train_ratings.size());
  for (size_t r = 0; r < order.size(); ++r) order[r] = r;

  const int d = config_.latent_dim;
  const float lr = config_.learning_rate;
  const float reg = config_.regularization;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t index : order) {
      const data::Rating& rating = train_ratings[index];
      float* p = user_factors_.data() + rating.user * d;
      float* q = item_factors_.data() + rating.item * d;
      float dot = 0.0f;
      for (int k = 0; k < d; ++k) dot += p[k] * q[k];
      const float error = rating.value -
                          (global_mean_ +
                           user_bias_[static_cast<size_t>(rating.user)] +
                           item_bias_[static_cast<size_t>(rating.item)] + dot);
      user_bias_[static_cast<size_t>(rating.user)] +=
          lr * (error - reg * user_bias_[static_cast<size_t>(rating.user)]);
      item_bias_[static_cast<size_t>(rating.item)] +=
          lr * (error - reg * item_bias_[static_cast<size_t>(rating.item)]);
      for (int k = 0; k < d; ++k) {
        const float pk = p[k];
        p[k] += lr * (error * q[k] - reg * pk);
        q[k] += lr * (error * pk - reg * q[k]);
      }
    }
  }
}

float MatrixFactorization::Predict(int64_t user, int64_t item) const {
  HIRE_CHECK(user >= 0 && user < dataset_->num_users());
  HIRE_CHECK(item >= 0 && item < dataset_->num_items());
  const float* p = user_factors_.data() + user * config_.latent_dim;
  const float* q = item_factors_.data() + item * config_.latent_dim;
  float dot = 0.0f;
  for (int k = 0; k < config_.latent_dim; ++k) dot += p[k] * q[k];
  const float raw = global_mean_ + user_bias_[static_cast<size_t>(user)] +
                    item_bias_[static_cast<size_t>(item)] + dot;
  return std::clamp(raw, dataset_->min_rating(), dataset_->max_rating());
}

std::vector<float> MatrixFactorization::PredictForUser(
    int64_t user, const std::vector<int64_t>& items,
    const graph::BipartiteGraph& visible_graph) {
  // Fold in the target user's visible ratings: a few SGD steps on a local
  // copy of the user's bias and factors against the fixed item factors.
  float local_bias = user_bias_[static_cast<size_t>(user)];
  std::vector<float> local_factors(
      user_factors_.begin() + user * config_.latent_dim,
      user_factors_.begin() + (user + 1) * config_.latent_dim);

  const auto& support_items = visible_graph.ItemsOfUser(user);
  const int d = config_.latent_dim;
  const float lr = config_.learning_rate;
  const float reg = config_.regularization;
  for (int pass = 0; pass < 10; ++pass) {
    for (int64_t item : support_items) {
      const float* q = item_factors_.data() + item * config_.latent_dim;
      float dot = 0.0f;
      for (int k = 0; k < d; ++k) dot += local_factors[(size_t)k] * q[k];
      const float error =
          *visible_graph.GetRating(user, item) -
          (global_mean_ + local_bias +
           item_bias_[static_cast<size_t>(item)] + dot);
      local_bias += lr * (error - reg * local_bias);
      for (int k = 0; k < d; ++k) {
        local_factors[(size_t)k] +=
            lr * (error * q[k] - reg * local_factors[(size_t)k]);
      }
    }
  }

  std::vector<float> out;
  out.reserve(items.size());
  for (int64_t item : items) {
    const float* q = item_factors_.data() + item * config_.latent_dim;
    float dot = 0.0f;
    for (int k = 0; k < d; ++k) dot += local_factors[(size_t)k] * q[k];
    const float raw = global_mean_ + local_bias +
                      item_bias_[static_cast<size_t>(item)] + dot;
    out.push_back(std::clamp(raw, dataset_->min_rating(),
                             dataset_->max_rating()));
  }
  return out;
}

}  // namespace baselines
}  // namespace hire
