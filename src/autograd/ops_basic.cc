#include <cmath>
#include <utility>

#include "autograd/ops.h"
#include "obs/kernel_timers.h"
#include "tensor/ops.h"
#include "utils/check.h"

namespace hire {
namespace ag {

namespace {

// Wraps op construction: detached result when no input tracks gradients,
// tape node otherwise.
Variable Make(Tensor value, std::vector<Variable> inputs,
              std::function<void(const Tensor&)> backward) {
  if (!AnyRequiresGrad(inputs)) {
    return Variable(std::move(value), /*requires_grad=*/false);
  }
  return Variable::MakeNode(std::move(value), std::move(inputs),
                            std::move(backward));
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  Tensor value = ops::Add(a.value(), b.value());
  return Make(std::move(value), {a, b}, [a, b](const Tensor& up) {
    if (a.requires_grad()) a.impl()->AccumulateGrad(up);
    if (b.requires_grad()) b.impl()->AccumulateGrad(up);
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor value = ops::Sub(a.value(), b.value());
  return Make(std::move(value), {a, b}, [a, b](const Tensor& up) {
    if (a.requires_grad()) a.impl()->AccumulateGrad(up);
    if (b.requires_grad()) b.impl()->AccumulateGrad(ops::Neg(up));
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor value = ops::Mul(a.value(), b.value());
  return Make(std::move(value), {a, b}, [a, b](const Tensor& up) {
    if (a.requires_grad()) a.impl()->AccumulateGrad(ops::Mul(up, b.value()));
    if (b.requires_grad()) b.impl()->AccumulateGrad(ops::Mul(up, a.value()));
  });
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable AddScalar(const Variable& a, float value) {
  Tensor out = ops::AddScalar(a.value(), value);
  return Make(std::move(out), {a}, [a](const Tensor& up) {
    a.impl()->AccumulateGrad(up);
  });
}

Variable MulScalar(const Variable& a, float value) {
  Tensor out = ops::MulScalar(a.value(), value);
  return Make(std::move(out), {a}, [a, value](const Tensor& up) {
    a.impl()->AccumulateGrad(ops::MulScalar(up, value));
  });
}

Variable Sigmoid(const Variable& a) {
  Tensor y = ops::Sigmoid(a.value());
  Tensor y_copy = y;
  return Make(std::move(y), {a}, [a, y_copy](const Tensor& up) {
    Tensor grad(up.shape());
    const int64_t n = up.size();
    for (int64_t i = 0; i < n; ++i) {
      const float s = y_copy.flat(i);
      grad.flat(i) = up.flat(i) * s * (1.0f - s);
    }
    a.impl()->AccumulateGrad(grad);
  });
}

Variable Relu(const Variable& a) {
  Tensor y = ops::Relu(a.value());
  return Make(std::move(y), {a}, [a](const Tensor& up) {
    const Tensor& x = a.value();
    Tensor grad(up.shape());
    const int64_t n = up.size();
    for (int64_t i = 0; i < n; ++i) {
      grad.flat(i) = x.flat(i) > 0.0f ? up.flat(i) : 0.0f;
    }
    a.impl()->AccumulateGrad(grad);
  });
}

Variable Tanh(const Variable& a) {
  Tensor y = ops::Tanh(a.value());
  Tensor y_copy = y;
  return Make(std::move(y), {a}, [a, y_copy](const Tensor& up) {
    Tensor grad(up.shape());
    const int64_t n = up.size();
    for (int64_t i = 0; i < n; ++i) {
      const float t = y_copy.flat(i);
      grad.flat(i) = up.flat(i) * (1.0f - t * t);
    }
    a.impl()->AccumulateGrad(grad);
  });
}

Variable Exp(const Variable& a) {
  Tensor y = ops::Exp(a.value());
  Tensor y_copy = y;
  return Make(std::move(y), {a}, [a, y_copy](const Tensor& up) {
    a.impl()->AccumulateGrad(ops::Mul(up, y_copy));
  });
}

Variable LogClamped(const Variable& a, float floor) {
  HIRE_CHECK_GT(floor, 0.0f);
  Tensor y(a.value().shape());
  const int64_t n = y.size();
  for (int64_t i = 0; i < n; ++i) {
    y.flat(i) = std::log(std::max(a.value().flat(i), floor));
  }
  return Make(std::move(y), {a}, [a, floor](const Tensor& up) {
    const Tensor& x = a.value();
    Tensor grad(up.shape());
    for (int64_t i = 0; i < up.size(); ++i) {
      // Gradient is 1/x in the linear region and 0 where the clamp is active.
      grad.flat(i) = x.flat(i) > floor ? up.flat(i) / x.flat(i) : 0.0f;
    }
    a.impl()->AccumulateGrad(grad);
  });
}

Variable Square(const Variable& a) {
  Tensor y = ops::Square(a.value());
  return Make(std::move(y), {a}, [a](const Tensor& up) {
    Tensor grad = ops::Mul(up, a.value());
    a.impl()->AccumulateGrad(ops::MulScalar(grad, 2.0f));
  });
}

Variable SumAll(const Variable& a) {
  Tensor y = Tensor::Scalar(ops::SumAll(a.value()));
  return Make(std::move(y), {a}, [a](const Tensor& up) {
    a.impl()->AccumulateGrad(
        Tensor::Full(a.value().shape(), up.flat(0)));
  });
}

Variable MeanAll(const Variable& a) {
  const float inv = 1.0f / static_cast<float>(a.size());
  Tensor y = Tensor::Scalar(ops::MeanAll(a.value()));
  return Make(std::move(y), {a}, [a, inv](const Tensor& up) {
    a.impl()->AccumulateGrad(
        Tensor::Full(a.value().shape(), up.flat(0) * inv));
  });
}

Variable MaskedMSE(const Variable& pred, const Tensor& target,
                   const Tensor& mask) {
  HIRE_CHECK(pred.value().SameShape(target))
      << "MaskedMSE pred " << pred.value().ShapeString() << " vs target "
      << target.ShapeString();
  HIRE_CHECK(pred.value().SameShape(mask))
      << "MaskedMSE pred " << pred.value().ShapeString() << " vs mask "
      << mask.ShapeString();
  const float mask_total = ops::SumAll(mask);
  HIRE_CHECK_GT(mask_total, 0.0f) << "MaskedMSE needs at least one unmasked cell";

  double loss = 0.0;
  for (int64_t i = 0; i < mask.size(); ++i) {
    const double diff = pred.value().flat(i) - target.flat(i);
    loss += mask.flat(i) * diff * diff;
  }
  Tensor y = Tensor::Scalar(static_cast<float>(loss / mask_total));

  return Make(std::move(y), {pred},
              [pred, target, mask, mask_total](const Tensor& up) {
    const float scale = 2.0f * up.flat(0) / mask_total;
    Tensor grad(pred.value().shape());
    for (int64_t i = 0; i < grad.size(); ++i) {
      grad.flat(i) =
          scale * mask.flat(i) * (pred.value().flat(i) - target.flat(i));
    }
    pred.impl()->AccumulateGrad(grad);
  });
}

Variable MSE(const Variable& pred, const Tensor& target) {
  return MaskedMSE(pred, target, Tensor::Ones(target.shape()));
}

Variable EmbeddingLookup(const Variable& table,
                         const std::vector<int64_t>& indices) {
  ScopedKernelTimer timer(KernelCategory::kEmbedding);
  HIRE_CHECK_EQ(table.value().dim(), 2);
  const int64_t vocab = table.value().shape(0);
  const int64_t width = table.value().shape(1);
  const int64_t count = static_cast<int64_t>(indices.size());
  HIRE_CHECK_GT(count, 0);

  Tensor out({count, width});
  for (int64_t i = 0; i < count; ++i) {
    const int64_t row = indices[static_cast<size_t>(i)];
    if (row < 0) continue;  // masked entry -> zero row
    HIRE_CHECK_LT(row, vocab) << "embedding index out of range";
    const float* src = table.value().data() + row * width;
    std::copy(src, src + width, out.data() + i * width);
  }

  return Make(std::move(out), {table}, [table, indices, width](const Tensor& up) {
    ScopedKernelTimer timer(KernelCategory::kEmbedding);
    Tensor grad(table.value().shape());
    for (size_t i = 0; i < indices.size(); ++i) {
      const int64_t row = indices[i];
      if (row < 0) continue;
      const float* src = up.data() + static_cast<int64_t>(i) * width;
      float* dst = grad.data() + row * width;
      for (int64_t j = 0; j < width; ++j) dst[j] += src[j];
    }
    table.impl()->AccumulateGrad(grad);
  });
}

Variable SegmentMean(const Variable& x, const std::vector<int64_t>& segments,
                     int64_t num_segments) {
  HIRE_CHECK_EQ(x.value().dim(), 2);
  HIRE_CHECK_EQ(static_cast<int64_t>(segments.size()), x.value().shape(0));
  HIRE_CHECK_GT(num_segments, 0);
  const int64_t d = x.value().shape(1);

  std::vector<int64_t> counts(static_cast<size_t>(num_segments), 0);
  for (int64_t segment : segments) {
    HIRE_CHECK(segment >= 0 && segment < num_segments)
        << "segment id " << segment;
    ++counts[static_cast<size_t>(segment)];
  }

  Tensor out({num_segments, d});
  for (size_t i = 0; i < segments.size(); ++i) {
    const float* src = x.value().data() + static_cast<int64_t>(i) * d;
    float* dst = out.data() + segments[i] * d;
    for (int64_t c = 0; c < d; ++c) dst[c] += src[c];
  }
  for (int64_t s = 0; s < num_segments; ++s) {
    if (counts[static_cast<size_t>(s)] == 0) continue;
    const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(s)]);
    float* row = out.data() + s * d;
    for (int64_t c = 0; c < d; ++c) row[c] *= inv;
  }

  return Make(std::move(out), {x},
              [x, segments, counts, d](const Tensor& up) {
    Tensor grad(x.value().shape());
    for (size_t i = 0; i < segments.size(); ++i) {
      const float inv =
          1.0f / static_cast<float>(counts[static_cast<size_t>(segments[i])]);
      const float* src = up.data() + segments[i] * d;
      float* dst = grad.data() + static_cast<int64_t>(i) * d;
      for (int64_t c = 0; c < d; ++c) dst[c] = src[c] * inv;
    }
    x.impl()->AccumulateGrad(grad);
  });
}

Variable Dropout(const Variable& x, float p, bool training, Rng* rng) {
  HIRE_CHECK(p >= 0.0f && p < 1.0f) << "dropout p=" << p;
  if (!training || p == 0.0f) return x;
  HIRE_CHECK(rng != nullptr);

  const float scale = 1.0f / (1.0f - p);
  Tensor mask(x.value().shape());
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask.flat(i) = rng->Bernoulli(p) ? 0.0f : scale;
  }
  Tensor y = ops::Mul(x.value(), mask);
  return Make(std::move(y), {x}, [x, mask](const Tensor& up) {
    x.impl()->AccumulateGrad(ops::Mul(up, mask));
  });
}

Variable WithBackwardHook(const Variable& x, std::function<void()> hook) {
  HIRE_CHECK(x.defined());
  HIRE_CHECK(hook != nullptr);
  Tensor value = x.value();
  return Make(std::move(value), {x},
              [x, hook = std::move(hook)](const Tensor& up) {
    hook();
    x.impl()->AccumulateGrad(up);
  });
}

}  // namespace ag
}  // namespace hire
