#include "autograd/gradcheck.h"

#include <cmath>
#include <sstream>

#include "utils/check.h"

namespace hire {
namespace ag {

GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable> inputs, double epsilon, double tolerance) {
  HIRE_CHECK(!inputs.empty());
  for (const Variable& input : inputs) {
    HIRE_CHECK(input.requires_grad())
        << "gradcheck inputs must have requires_grad";
  }

  // Analytic pass.
  for (Variable& input : inputs) input.ZeroGrad();
  Variable output = fn(inputs);
  HIRE_CHECK_EQ(output.size(), 1) << "gradcheck target must be scalar";
  output.Backward();

  std::vector<Tensor> analytic;
  analytic.reserve(inputs.size());
  for (const Variable& input : inputs) {
    analytic.push_back(input.has_grad() ? input.grad()
                                        : Tensor::Zeros(input.shape()));
  }

  GradCheckResult result;
  result.passed = true;

  for (size_t p = 0; p < inputs.size(); ++p) {
    Tensor& values = inputs[p].mutable_value();
    for (int64_t i = 0; i < values.size(); ++i) {
      const float original = values.flat(i);

      values.flat(i) = original + static_cast<float>(epsilon);
      const double f_plus =
          static_cast<double>(fn(inputs).value().flat(0));

      values.flat(i) = original - static_cast<float>(epsilon);
      const double f_minus =
          static_cast<double>(fn(inputs).value().flat(0));

      values.flat(i) = original;

      const double numeric = (f_plus - f_minus) / (2.0 * epsilon);
      const double error =
          std::fabs(numeric - static_cast<double>(analytic[p].flat(i)));
      if (error > result.max_abs_error) {
        result.max_abs_error = error;
        std::ostringstream coordinate;
        coordinate << "input " << p << " flat index " << i << " analytic "
                   << analytic[p].flat(i) << " numeric " << numeric;
        result.worst_coordinate = coordinate.str();
      }
      if (error > tolerance) {
        result.passed = false;
      }
    }
  }
  return result;
}

}  // namespace ag
}  // namespace hire
