#ifndef HIRE_AUTOGRAD_OPS_H_
#define HIRE_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace hire {
namespace ag {

// All operations are pure: they return a fresh Variable and never mutate
// inputs. When no input requires a gradient the result is a detached leaf,
// so inference runs without tape overhead.

// ---------------------------------------------------------------------------
// Elementwise arithmetic (shapes must match exactly).
// ---------------------------------------------------------------------------

Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);

Variable Neg(const Variable& a);
Variable AddScalar(const Variable& a, float value);
Variable MulScalar(const Variable& a, float value);

// ---------------------------------------------------------------------------
// Elementwise nonlinearities.
// ---------------------------------------------------------------------------

Variable Sigmoid(const Variable& a);
Variable Relu(const Variable& a);
Variable Tanh(const Variable& a);
Variable Exp(const Variable& a);

/// ln(max(x, floor)); the floor keeps AFN-style logarithmic layers finite.
Variable LogClamped(const Variable& a, float floor = 1e-6f);

Variable Square(const Variable& a);

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------

/// [n, k] x [k, m] -> [n, m].
Variable MatMul(const Variable& a, const Variable& b);

/// [b, n, k] x [b, k, m] -> [b, n, m].
Variable BatchedMatMul(const Variable& a, const Variable& b);

/// [b, n, k] x [b, m, k]^T -> [b, n, m] (attention scores).
Variable BatchedMatMulTransposedB(const Variable& a, const Variable& b);

/// Adds bias [d] to every row of x [..., d].
Variable AddBias(const Variable& x, const Variable& bias);

// ---------------------------------------------------------------------------
// Shape manipulation.
// ---------------------------------------------------------------------------

Variable Reshape(const Variable& a, std::vector<int64_t> shape);
Variable Permute(const Variable& a, std::vector<int> axes);
Variable Concat(const std::vector<Variable>& parts, int axis);
Variable Slice(const Variable& a, int axis, int64_t start, int64_t length);

/// [n, d] -> [n, m, d]: repeats each user's feature row across m items.
/// Backward sums over the item axis.
Variable BroadcastUsers(const Variable& users, int64_t num_items);

/// [m, d] -> [n, m, d]: repeats the item feature block across n users.
/// Backward sums over the user axis.
Variable BroadcastItems(const Variable& items, int64_t num_users);

// ---------------------------------------------------------------------------
// Reductions, losses, normalisation.
// ---------------------------------------------------------------------------

Variable SumAll(const Variable& a);
Variable MeanAll(const Variable& a);

/// Sums over `axis`, dropping it from the shape (negative axes count from
/// the end).
Variable SumAxis(const Variable& a, int axis);

/// Softmax along the last axis.
Variable Softmax(const Variable& a);

/// Layer normalisation over the last axis with learnable gain/offset.
/// gamma and beta must be 1-D of extent x.shape(-1).
Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float epsilon = 1e-5f);

/// Inverted dropout; identity when !training or p == 0. Uses `rng` for mask
/// draws so training runs are reproducible.
Variable Dropout(const Variable& x, float p, bool training, Rng* rng);

/// Mean squared error over cells where mask != 0:
///   sum(mask * (pred - target)^2) / sum(mask).
/// target/mask are constants. sum(mask) must be positive.
Variable MaskedMSE(const Variable& pred, const Tensor& target,
                   const Tensor& mask);

/// Plain MSE over all elements.
Variable MSE(const Variable& pred, const Tensor& target);

// ---------------------------------------------------------------------------
// Embedding.
// ---------------------------------------------------------------------------

/// Gathers rows of `table` [V, f] by index: output [N, f]. Index -1 yields a
/// zero row (used for masked ratings) and receives no gradient.
Variable EmbeddingLookup(const Variable& table,
                         const std::vector<int64_t>& indices);

/// Averages rows of x [N, d] into `num_segments` groups: output [S, d] where
/// row s is the mean of the rows with segments[i] == s. Empty segments yield
/// zero rows. Used for neighborhood aggregation in graph baselines.
Variable SegmentMean(const Variable& x, const std::vector<int64_t>& segments,
                     int64_t num_segments);

// ---------------------------------------------------------------------------
// Tracing support.
// ---------------------------------------------------------------------------

/// Identity whose backward runs `hook()` before routing the gradient to `x`.
/// Backward executes in reverse topological order, so a hook attached to a
/// region's *output* fires before the region's backward closures and a hook
/// attached to its *input* fires after them — a pair of hooks delimits the
/// region's backward span without touching the tape internals. The forward
/// value is deep-copied, so only attach hooks when tracing is enabled.
Variable WithBackwardHook(const Variable& x, std::function<void()> hook);

}  // namespace ag
}  // namespace hire

#endif  // HIRE_AUTOGRAD_OPS_H_
