#ifndef HIRE_AUTOGRAD_GRADCHECK_H_
#define HIRE_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace hire {
namespace ag {

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  bool passed = false;
  /// Largest |analytic - numeric| across all checked coordinates.
  double max_abs_error = 0.0;
  /// Coordinate description of the worst error, for diagnostics.
  std::string worst_coordinate;
};

/// Verifies the analytic gradients of `fn` against central finite
/// differences. `fn` must be a pure function of `inputs` (re-invocable) that
/// returns a scalar Variable. Every input must have requires_grad set.
///
/// Used throughout the test suite to certify each autograd op.
GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable> inputs, double epsilon = 1e-3,
    double tolerance = 5e-2);

}  // namespace ag
}  // namespace hire

#endif  // HIRE_AUTOGRAD_GRADCHECK_H_
