#include "autograd/variable.h"

#include <atomic>
#include <unordered_set>

#include "utils/check.h"

namespace hire {
namespace ag {

namespace {

thread_local bool t_grad_mode_enabled = true;
std::atomic<uint64_t> g_tape_nodes_created{0};

}  // namespace

namespace internal {

void VarImpl::AccumulateGrad(const Tensor& g) {
  HIRE_CHECK(g.SameShape(value))
      << "gradient shape " << g.ShapeString() << " does not match value "
      << value.ShapeString();
  if (!grad_allocated) {
    grad = g;
    grad_allocated = true;
    return;
  }
  float* acc = grad.data();
  const float* src = g.data();
  const int64_t n = grad.size();
  for (int64_t i = 0; i < n; ++i) acc[i] += src[i];
}

}  // namespace internal

Variable::Variable(Tensor value, bool requires_grad)
    : impl_(std::make_shared<internal::VarImpl>()) {
  impl_->value = std::move(value);
  impl_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  HIRE_CHECK(defined()) << "null Variable";
  return impl_->value;
}

Tensor& Variable::mutable_value() {
  HIRE_CHECK(defined()) << "null Variable";
  return impl_->value;
}

const Tensor& Variable::grad() const {
  HIRE_CHECK(defined()) << "null Variable";
  HIRE_CHECK(impl_->grad_allocated)
      << "gradient not populated; call Backward() first";
  return impl_->grad;
}

bool Variable::has_grad() const {
  return defined() && impl_->grad_allocated;
}

bool Variable::requires_grad() const {
  return defined() && impl_->requires_grad;
}

void Variable::ZeroGrad() {
  HIRE_CHECK(defined()) << "null Variable";
  impl_->grad = Tensor();
  impl_->grad_allocated = false;
}

Variable Variable::MakeNode(
    Tensor value, std::vector<Variable> parents,
    std::function<void(const Tensor& upstream)> backward) {
  g_tape_nodes_created.fetch_add(1, std::memory_order_relaxed);
  Variable out(std::move(value), /*requires_grad=*/true);
  out.impl_->parents.reserve(parents.size());
  for (Variable& parent : parents) {
    HIRE_CHECK(parent.defined()) << "op input is a null Variable";
    out.impl_->parents.push_back(parent.impl());
  }
  out.impl_->backward = std::move(backward);
  return out;
}

void Variable::Backward() {
  HIRE_CHECK(defined()) << "null Variable";
  HIRE_CHECK_EQ(size(), 1) << "Backward() requires a scalar output";

  // Topological order via iterative post-order DFS.
  std::vector<internal::VarImpl*> order;
  std::unordered_set<internal::VarImpl*> visited;
  std::vector<std::pair<internal::VarImpl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      internal::VarImpl* child = node->parents[next_child].get();
      ++next_child;
      if (visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  impl_->AccumulateGrad(Tensor::Ones(impl_->value.shape()));

  // Reverse topological order: every node sees its full gradient before
  // pushing contributions to parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::VarImpl* node = *it;
    if (!node->backward || !node->grad_allocated) continue;
    node->backward(node->grad);
  }
}

bool AnyRequiresGrad(const std::vector<Variable>& inputs) {
  if (!t_grad_mode_enabled) return false;
  for (const Variable& input : inputs) {
    if (input.requires_grad()) return true;
  }
  return false;
}

bool GradModeEnabled() { return t_grad_mode_enabled; }

NoGradGuard::NoGradGuard() : previous_(t_grad_mode_enabled) {
  t_grad_mode_enabled = false;
}

NoGradGuard::~NoGradGuard() { t_grad_mode_enabled = previous_; }

uint64_t TapeNodesCreated() {
  return g_tape_nodes_created.load(std::memory_order_relaxed);
}

}  // namespace ag
}  // namespace hire
