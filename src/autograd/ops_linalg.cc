#include <cmath>

#include "autograd/ops.h"
#include "obs/kernel_timers.h"
#include "tensor/ops.h"
#include "utils/check.h"

namespace hire {
namespace ag {

namespace {

Variable Make(Tensor value, std::vector<Variable> inputs,
              std::function<void(const Tensor&)> backward) {
  if (!AnyRequiresGrad(inputs)) {
    return Variable(std::move(value), /*requires_grad=*/false);
  }
  return Variable::MakeNode(std::move(value), std::move(inputs),
                            std::move(backward));
}

std::vector<int> InversePermutation(const std::vector<int>& axes) {
  std::vector<int> inverse(axes.size());
  for (size_t i = 0; i < axes.size(); ++i) {
    inverse[static_cast<size_t>(axes[i])] = static_cast<int>(i);
  }
  return inverse;
}

}  // namespace

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor value = ops::MatMul(a.value(), b.value());
  return Make(std::move(value), {a, b}, [a, b](const Tensor& up) {
    if (a.requires_grad()) {
      // dA = dC * B^T
      a.impl()->AccumulateGrad(ops::MatMulTransposedB(up, b.value()));
    }
    if (b.requires_grad()) {
      // dB = A^T * dC
      b.impl()->AccumulateGrad(
          ops::MatMul(ops::TransposeLast2(a.value()), up));
    }
  });
}

Variable BatchedMatMul(const Variable& a, const Variable& b) {
  Tensor value = ops::BatchedMatMul(a.value(), b.value());
  return Make(std::move(value), {a, b}, [a, b](const Tensor& up) {
    if (a.requires_grad()) {
      // C = A B  =>  dA = dC B^T (B is [b, k, m], so dC and B share the
      // last axis).
      a.impl()->AccumulateGrad(ops::BatchedMatMulTransposedB(up, b.value()));
    }
    if (b.requires_grad()) {
      b.impl()->AccumulateGrad(
          ops::BatchedMatMul(ops::TransposeLast2(a.value()), up));
    }
  });
}

Variable BatchedMatMulTransposedB(const Variable& a, const Variable& b) {
  Tensor value = ops::BatchedMatMulTransposedB(a.value(), b.value());
  return Make(std::move(value), {a, b}, [a, b](const Tensor& up) {
    if (a.requires_grad()) {
      // C = A B^T  =>  dA = dC B
      a.impl()->AccumulateGrad(ops::BatchedMatMul(up, b.value()));
    }
    if (b.requires_grad()) {
      // dB = dC^T A
      b.impl()->AccumulateGrad(
          ops::BatchedMatMul(ops::TransposeLast2(up), a.value()));
    }
  });
}

Variable AddBias(const Variable& x, const Variable& bias) {
  Tensor value = ops::AddBias(x.value(), bias.value());
  return Make(std::move(value), {x, bias}, [x, bias](const Tensor& up) {
    if (x.requires_grad()) x.impl()->AccumulateGrad(up);
    if (bias.requires_grad()) {
      const int64_t d = bias.value().shape(0);
      Tensor grad({d});
      const int64_t rows = up.size() / d;
      for (int64_t r = 0; r < rows; ++r) {
        const float* src = up.data() + r * d;
        for (int64_t j = 0; j < d; ++j) grad.flat(j) += src[j];
      }
      bias.impl()->AccumulateGrad(grad);
    }
  });
}

Variable Reshape(const Variable& a, std::vector<int64_t> shape) {
  Tensor value = a.value().Reshape(std::move(shape));
  return Make(std::move(value), {a}, [a](const Tensor& up) {
    a.impl()->AccumulateGrad(up.Reshape(a.value().shape()));
  });
}

Variable Permute(const Variable& a, std::vector<int> axes) {
  Tensor value = ops::Permute(a.value(), axes);
  std::vector<int> inverse = InversePermutation(axes);
  return Make(std::move(value), {a}, [a, inverse](const Tensor& up) {
    a.impl()->AccumulateGrad(ops::Permute(up, inverse));
  });
}

Variable Concat(const std::vector<Variable>& parts, int axis) {
  HIRE_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& part : parts) values.push_back(part.value());
  Tensor value = ops::Concat(values, axis);

  const int rank = parts[0].value().dim();
  const int resolved_axis = axis < 0 ? axis + rank : axis;
  std::vector<int64_t> extents;
  extents.reserve(parts.size());
  for (const Variable& part : parts) {
    extents.push_back(part.value().shape(resolved_axis));
  }

  return Make(std::move(value), parts,
              [parts, extents, resolved_axis](const Tensor& up) {
    int64_t offset = 0;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (parts[i].requires_grad()) {
        parts[i].impl()->AccumulateGrad(
            ops::Slice(up, resolved_axis, offset, extents[i]));
      }
      offset += extents[i];
    }
  });
}

Variable Slice(const Variable& a, int axis, int64_t start, int64_t length) {
  Tensor value = ops::Slice(a.value(), axis, start, length);
  const int rank = a.value().dim();
  const int resolved_axis = axis < 0 ? axis + rank : axis;
  return Make(std::move(value), {a},
              [a, resolved_axis, start, length](const Tensor& up) {
    // Scatter the upstream gradient back into a zero tensor of the input
    // shape.
    Tensor grad(a.value().shape());
    int64_t outer = 1;
    for (int i = 0; i < resolved_axis; ++i) outer *= grad.shape(i);
    int64_t inner = 1;
    for (int i = resolved_axis + 1; i < grad.dim(); ++i) inner *= grad.shape(i);
    const int64_t extent = grad.shape(resolved_axis);
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = up.data() + o * length * inner;
      float* dst = grad.data() + (o * extent + start) * inner;
      std::copy(src, src + length * inner, dst);
    }
    a.impl()->AccumulateGrad(grad);
  });
}

Variable BroadcastUsers(const Variable& users, int64_t num_items) {
  HIRE_CHECK_EQ(users.value().dim(), 2);
  HIRE_CHECK_GT(num_items, 0);
  const int64_t n = users.value().shape(0);
  const int64_t d = users.value().shape(1);
  Tensor value({n, num_items, d});
  for (int64_t k = 0; k < n; ++k) {
    const float* src = users.value().data() + k * d;
    for (int64_t j = 0; j < num_items; ++j) {
      std::copy(src, src + d, value.data() + (k * num_items + j) * d);
    }
  }
  return Make(std::move(value), {users},
              [users, num_items, n, d](const Tensor& up) {
    Tensor grad({n, d});
    for (int64_t k = 0; k < n; ++k) {
      float* dst = grad.data() + k * d;
      for (int64_t j = 0; j < num_items; ++j) {
        const float* src = up.data() + (k * num_items + j) * d;
        for (int64_t c = 0; c < d; ++c) dst[c] += src[c];
      }
    }
    users.impl()->AccumulateGrad(grad);
  });
}

Variable BroadcastItems(const Variable& items, int64_t num_users) {
  HIRE_CHECK_EQ(items.value().dim(), 2);
  HIRE_CHECK_GT(num_users, 0);
  const int64_t m = items.value().shape(0);
  const int64_t d = items.value().shape(1);
  Tensor value({num_users, m, d});
  const int64_t block = m * d;
  for (int64_t k = 0; k < num_users; ++k) {
    std::copy(items.value().data(), items.value().data() + block,
              value.data() + k * block);
  }
  return Make(std::move(value), {items},
              [items, num_users, m, d](const Tensor& up) {
    Tensor grad({m, d});
    const int64_t block = m * d;
    for (int64_t k = 0; k < num_users; ++k) {
      const float* src = up.data() + k * block;
      for (int64_t c = 0; c < block; ++c) grad.flat(c) += src[c];
    }
    items.impl()->AccumulateGrad(grad);
  });
}

Variable SumAxis(const Variable& a, int axis) {
  const int rank = a.value().dim();
  const int resolved = axis < 0 ? axis + rank : axis;
  HIRE_CHECK(resolved >= 0 && resolved < rank) << "SumAxis axis " << axis;
  Tensor value = ops::Sum(a.value(), resolved);
  return Make(std::move(value), {a}, [a, resolved](const Tensor& up) {
    // Broadcast the upstream gradient back along the reduced axis.
    const Tensor& in = a.value();
    Tensor grad(in.shape());
    int64_t outer = 1;
    for (int i = 0; i < resolved; ++i) outer *= in.shape(i);
    int64_t inner = 1;
    for (int i = resolved + 1; i < in.dim(); ++i) inner *= in.shape(i);
    const int64_t extent = in.shape(resolved);
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = up.data() + o * inner;
      for (int64_t e = 0; e < extent; ++e) {
        float* dst = grad.data() + (o * extent + e) * inner;
        std::copy(src, src + inner, dst);
      }
    }
    a.impl()->AccumulateGrad(grad);
  });
}

Variable Softmax(const Variable& a) {
  Tensor y = ops::Softmax(a.value());
  Tensor y_copy = y;
  return Make(std::move(y), {a}, [a, y_copy](const Tensor& up) {
    // dX = Y * (dY - rowsum(dY * Y))
    const int64_t d = y_copy.shape(-1);
    const int64_t rows = y_copy.size() / d;
    Tensor grad(y_copy.shape());
    for (int64_t r = 0; r < rows; ++r) {
      const float* yr = y_copy.data() + r * d;
      const float* ur = up.data() + r * d;
      float* gr = grad.data() + r * d;
      double dot = 0.0;
      for (int64_t j = 0; j < d; ++j) dot += ur[j] * yr[j];
      for (int64_t j = 0; j < d; ++j) {
        gr[j] = yr[j] * (ur[j] - static_cast<float>(dot));
      }
    }
    a.impl()->AccumulateGrad(grad);
  });
}

Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float epsilon) {
  ScopedKernelTimer timer(KernelCategory::kLayerNorm);
  HIRE_CHECK_EQ(gamma.value().dim(), 1);
  HIRE_CHECK_EQ(beta.value().dim(), 1);
  const int64_t d = x.value().shape(-1);
  HIRE_CHECK_EQ(gamma.value().shape(0), d);
  HIRE_CHECK_EQ(beta.value().shape(0), d);

  const int64_t rows = x.value().size() / d;
  Tensor y(x.value().shape());
  Tensor xhat(x.value().shape());
  Tensor inv_std({rows});
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x.value().data() + r * d;
    double mean = 0.0;
    for (int64_t j = 0; j < d; ++j) mean += xr[j];
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const double c = xr[j] - mean;
      var += c * c;
    }
    var /= static_cast<double>(d);
    const float istd = static_cast<float>(1.0 / std::sqrt(var + epsilon));
    inv_std.flat(r) = istd;
    float* hr = xhat.data() + r * d;
    float* yr = y.data() + r * d;
    for (int64_t j = 0; j < d; ++j) {
      hr[j] = (xr[j] - static_cast<float>(mean)) * istd;
      yr[j] = hr[j] * gamma.value().flat(j) + beta.value().flat(j);
    }
  }

  return Make(std::move(y), {x, gamma, beta},
              [x, gamma, beta, xhat, inv_std, d](const Tensor& up) {
    ScopedKernelTimer timer(KernelCategory::kLayerNorm);
    const int64_t rows = xhat.size() / d;
    if (gamma.requires_grad() || beta.requires_grad()) {
      Tensor dgamma({d});
      Tensor dbeta({d});
      for (int64_t r = 0; r < rows; ++r) {
        const float* ur = up.data() + r * d;
        const float* hr = xhat.data() + r * d;
        for (int64_t j = 0; j < d; ++j) {
          dgamma.flat(j) += ur[j] * hr[j];
          dbeta.flat(j) += ur[j];
        }
      }
      if (gamma.requires_grad()) gamma.impl()->AccumulateGrad(dgamma);
      if (beta.requires_grad()) beta.impl()->AccumulateGrad(dbeta);
    }
    if (x.requires_grad()) {
      Tensor dx(xhat.shape());
      for (int64_t r = 0; r < rows; ++r) {
        const float* ur = up.data() + r * d;
        const float* hr = xhat.data() + r * d;
        float* dr = dx.data() + r * d;
        // dxhat = dy * gamma; dx = istd*(dxhat - mean(dxhat)
        //                                - xhat*mean(dxhat*xhat))
        double mean_dxhat = 0.0;
        double mean_dxhat_xhat = 0.0;
        for (int64_t j = 0; j < d; ++j) {
          const double dxh = static_cast<double>(ur[j]) * gamma.value().flat(j);
          mean_dxhat += dxh;
          mean_dxhat_xhat += dxh * hr[j];
        }
        mean_dxhat /= static_cast<double>(d);
        mean_dxhat_xhat /= static_cast<double>(d);
        const float istd = inv_std.flat(r);
        for (int64_t j = 0; j < d; ++j) {
          const double dxh = static_cast<double>(ur[j]) * gamma.value().flat(j);
          dr[j] = istd * static_cast<float>(dxh - mean_dxhat -
                                            hr[j] * mean_dxhat_xhat);
        }
      }
      x.impl()->AccumulateGrad(dx);
    }
  });
}

}  // namespace ag
}  // namespace hire
