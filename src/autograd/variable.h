#ifndef HIRE_AUTOGRAD_VARIABLE_H_
#define HIRE_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace hire {
namespace ag {

class Variable;

namespace internal {

/// Node in the reverse-mode tape. Holds the forward value, the (lazily
/// allocated) gradient accumulator, edges to parent nodes and the backward
/// closure that routes this node's gradient into its parents.
struct VarImpl {
  Tensor value;
  Tensor grad;
  bool requires_grad = false;
  bool grad_allocated = false;

  /// Parents kept alive for the duration of the backward pass.
  std::vector<std::shared_ptr<VarImpl>> parents;

  /// Given the gradient of the loss w.r.t. this node's value, accumulates
  /// gradients into the parents. Empty for leaves.
  std::function<void(const Tensor& upstream)> backward;

  /// Adds `g` into the gradient accumulator (allocating it on first use).
  void AccumulateGrad(const Tensor& g);
};

}  // namespace internal

/// Differentiable tensor handle. Variables are cheap shared handles onto tape
/// nodes: copying a Variable aliases the same node (PyTorch semantics).
///
/// Leaves are constructed directly from a Tensor; interior nodes are produced
/// by the operations in autograd/ops.h, which record backward closures.
/// Calling Backward() on a scalar result populates `grad()` on every
/// reachable node with requires_grad set.
class Variable {
 public:
  /// Null handle; defined() is false.
  Variable() = default;

  /// Leaf node holding `value`. Gradients are tracked iff `requires_grad`.
  explicit Variable(Tensor value, bool requires_grad = false);

  /// True when this handle points at a node.
  bool defined() const { return impl_ != nullptr; }

  /// Forward value (must be defined).
  const Tensor& value() const;

  /// Mutable forward value; used by optimisers to update parameters
  /// in place.
  Tensor& mutable_value();

  /// Accumulated gradient. Zero-shaped until the first backward pass
  /// touches this node.
  const Tensor& grad() const;

  /// True when a gradient buffer has been accumulated since the last
  /// ZeroGrad().
  bool has_grad() const;

  bool requires_grad() const;

  /// Clears the gradient accumulator.
  void ZeroGrad();

  /// Runs reverse-mode differentiation from this node, which must hold a
  /// single-element value. Gradients accumulate (+=) into every
  /// requires_grad node in the reachable graph.
  void Backward();

  /// Shape convenience accessors.
  const std::vector<int64_t>& shape() const { return value().shape(); }
  int64_t size() const { return value().size(); }

  /// Internal: used by ops to build interior nodes.
  static Variable MakeNode(
      Tensor value, std::vector<Variable> parents,
      std::function<void(const Tensor& upstream)> backward);

  /// Internal: direct access to the tape node.
  const std::shared_ptr<internal::VarImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<internal::VarImpl> impl_;
};

/// True if any input requires a gradient (how ops decide whether to record a
/// backward edge). Always false while a NoGradGuard is live on the calling
/// thread, so every op downstream of the guard produces detached leaves.
bool AnyRequiresGrad(const std::vector<Variable>& inputs);

/// True unless the calling thread is inside a NoGradGuard scope.
bool GradModeEnabled();

/// RAII scope that disables gradient recording on the calling thread
/// (PyTorch's torch.no_grad()). Inside the scope every op returns a detached
/// leaf: no tape nodes, no parent edges, no backward closures. This is what
/// keeps the serving/inference hot path free of autograd allocations.
/// Nestable; the previous mode is restored on destruction.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Process-wide count of tape nodes created by Variable::MakeNode since
/// start-up. Monotonic; tests snapshot it around a region to assert the
/// region allocates no autograd state (e.g. HireModel::Predict).
uint64_t TapeNodesCreated();

}  // namespace ag
}  // namespace hire

#endif  // HIRE_AUTOGRAD_VARIABLE_H_
