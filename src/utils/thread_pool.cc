#include "utils/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "obs/trace.h"
#include "utils/check.h"
#include "utils/flags.h"

namespace hire {

ThreadPool::ThreadPool(int num_threads) {
  HIRE_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HIRE_CHECK(!shutting_down_) << "submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      HIRE_TRACE_SCOPE("pool_task");
      task();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Process-wide pool.
// ---------------------------------------------------------------------------

namespace {

thread_local bool tls_in_parallel_region = false;

int AutoThreads() {
  if (const char* env = std::getenv("HIRE_NUM_THREADS")) {
    char* tail = nullptr;
    const long parsed = std::strtol(env, &tail, 10);
    if (tail != env && *tail == '\0' && parsed >= 1) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

struct GlobalPoolState {
  std::mutex mutex;
  int requested = 0;  // 0 = automatic
  int threads = 0;    // resolved size of `pool` + 1; 0 = not yet created
  std::unique_ptr<ThreadPool> pool;
};

GlobalPoolState& PoolState() {
  static GlobalPoolState* state = new GlobalPoolState();
  return *state;
}

// Resolves the thread count and (re)builds the shared pool when needed.
// Returns the resolved count.
int EnsurePool() {
  GlobalPoolState& state = PoolState();
  std::lock_guard<std::mutex> lock(state.mutex);
  const int want = state.requested > 0 ? state.requested : AutoThreads();
  if (state.threads != want) {
    state.pool.reset();
    if (want > 1) {
      state.pool = std::make_unique<ThreadPool>(want - 1);
    }
    state.threads = want;
  }
  return state.threads;
}

// Shared bookkeeping for one ParallelForRange call. Helpers submitted to the
// pool and the calling thread both pull chunk indices from `next`; the caller
// blocks until `completed` reaches `num_chunks`. Held by shared_ptr because a
// slow-to-schedule helper may outlive the caller's interest in it.
struct LoopContext {
  int64_t begin = 0;
  int64_t grain = 0;
  int64_t end = 0;
  int64_t num_chunks = 0;
  const std::function<void(int64_t, int64_t)>* body = nullptr;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> completed{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;  // guarded by `mutex`
  std::mutex mutex;
  std::condition_variable done;

  void RunChunks() {
    while (true) {
      const int64_t chunk = next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      if (!failed.load(std::memory_order_relaxed)) {
        const int64_t lo = begin + chunk * grain;
        const int64_t hi = std::min(end, lo + grain);
        try {
          (*body)(lo, hi);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
      const int64_t finished =
          completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (finished == num_chunks) {
        std::lock_guard<std::mutex> lock(mutex);
        done.notify_all();
      }
    }
  }
};

}  // namespace

int GlobalThreads() { return EnsurePool(); }

void SetGlobalThreads(int num_threads) {
  HIRE_CHECK_GE(num_threads, 0);
  {
    GlobalPoolState& state = PoolState();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.requested = num_threads;
  }
  EnsurePool();
}

void InitGlobalThreadsFromFlags(const Flags& flags) {
  SetGlobalThreads(static_cast<int>(flags.GetInt("threads", 0)));
}

ThreadPool* GlobalThreadPool() {
  EnsurePool();
  GlobalPoolState& state = PoolState();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.pool.get();
}

bool InParallelRegion() { return tls_in_parallel_region; }

void ParallelForRange(int64_t begin, int64_t end, int64_t grain,
                      const std::function<void(int64_t, int64_t)>& body) {
  if (begin >= end) return;
  HIRE_CHECK_GE(grain, 1);
  const int64_t count = end - begin;
  const int threads = EnsurePool();
  if (threads == 1 || count <= grain || tls_in_parallel_region) {
    body(begin, end);
    return;
  }

  auto context = std::make_shared<LoopContext>();
  context->begin = begin;
  context->end = end;
  context->grain = grain;
  context->num_chunks = (count + grain - 1) / grain;
  context->body = &body;

  const int64_t helpers =
      std::min<int64_t>(threads - 1, context->num_chunks - 1);
  ThreadPool* pool = GlobalThreadPool();
  for (int64_t h = 0; h < helpers; ++h) {
    pool->Submit([context] {
      tls_in_parallel_region = true;
      context->RunChunks();
      tls_in_parallel_region = false;
    });
  }

  tls_in_parallel_region = true;
  context->RunChunks();
  tls_in_parallel_region = false;

  {
    std::unique_lock<std::mutex> lock(context->mutex);
    context->done.wait(lock, [&context] {
      return context->completed.load(std::memory_order_acquire) ==
             context->num_chunks;
    });
    if (context->error) std::rethrow_exception(context->error);
  }
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t)>& body) {
  ParallelForRange(begin, end, grain, [&body](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) body(i);
  });
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body) {
  // Default grain: amortise scheduling over at least a few indices while
  // still letting every worker claim several chunks for load balance.
  const int64_t count = end - begin;
  const int64_t threads = EnsurePool();
  const int64_t grain =
      std::max<int64_t>(1, count / std::max<int64_t>(1, threads * 4));
  ParallelFor(begin, end, grain, body);
}

}  // namespace hire
