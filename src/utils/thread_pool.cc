#include "utils/thread_pool.h"

#include "obs/trace.h"
#include "utils/check.h"

namespace hire {

ThreadPool::ThreadPool(int num_threads) {
  HIRE_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HIRE_CHECK(!shutting_down_) << "submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      HIRE_TRACE_SCOPE("pool_task");
      task();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace hire
