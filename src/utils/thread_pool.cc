#include "utils/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "utils/check.h"

namespace hire {

ThreadPool::ThreadPool(int num_threads) {
  HIRE_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HIRE_CHECK(!shutting_down_) << "submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body) {
  if (begin >= end) return;
  const int64_t count = end - begin;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int num_threads =
      std::max(1, std::min<int>(hw, static_cast<int>(count)));
  if (num_threads == 1 || count < 4) {
    for (int64_t i = begin; i < end; ++i) body(i);
    return;
  }

  std::atomic<int64_t> next{begin};
  auto worker = [&] {
    while (true) {
      const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      body(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (int t = 0; t < num_threads - 1; ++t) {
    threads.emplace_back(worker);
  }
  worker();
  for (std::thread& thread : threads) {
    thread.join();
  }
}

}  // namespace hire
