#include "utils/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>

namespace hire {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Trims a path down to its basename for compact log lines.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(GetLogLevel())) {
    return;
  }
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
}

}  // namespace internal
}  // namespace hire
