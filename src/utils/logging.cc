#include "utils/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "obs/json.h"
#include "obs/trace.h"

namespace hire {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Trims a path down to its basename for compact log lines.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

int InitialLevelFromEnv() {
  if (const char* env = std::getenv("HIRE_LOG_LEVEL")) {
    LogLevel level;
    if (ParseLogLevel(env, &level)) return static_cast<int>(level);
    std::fprintf(stderr, "[WARN logging.cc] unrecognised HIRE_LOG_LEVEL '%s'\n",
                 env);
  }
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int>& LogLevelVar() {
  static std::atomic<int> level{InitialLevelFromEnv()};
  return level;
}

std::atomic<int> g_log_format{static_cast<int>(LogFormat::kText)};

/// 2026-08-06T12:34:56.789Z (UTC, millisecond resolution).
void FormatTimestamp(char* buf, size_t len) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm utc{};
  gmtime_r(&secs, &utc);
  std::snprintf(buf, len, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, millis);
}

}  // namespace

void SetLogLevel(LogLevel level) {
  LogLevelVar().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LogLevelVar().load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "0") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning" || lower == "2") {
    *out = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetLogFormat(LogFormat format) {
  g_log_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat GetLogFormat() {
  return static_cast<LogFormat>(g_log_format.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(GetLogLevel())) {
    return;
  }
  char timestamp[48];
  FormatTimestamp(timestamp, sizeof(timestamp));
  const int tid = obs::CurrentThreadId();
  const char* base = Basename(file_);

  std::string line;
  line.reserve(96 + stream_.str().size());
  if (GetLogFormat() == LogFormat::kJson) {
    line += "{\"ts\":\"";
    line += timestamp;
    line += "\",\"level\":\"";
    line += LevelName(level_);
    line += "\",\"tid\":";
    line += std::to_string(tid);
    line += ",\"src\":\"";
    line += base;
    line += ":";
    line += std::to_string(line_);
    line += "\",\"msg\":";
    line += obs::JsonString(stream_.str());
    line += "}\n";
  } else {
    line += "[";
    line += timestamp;
    line += " ";
    line += LevelName(level_);
    line += " t";
    line += std::to_string(tid);
    line += " ";
    line += base;
    line += ":";
    line += std::to_string(line_);
    line += "] ";
    line += stream_.str();
    line += "\n";
  }
  // One fwrite per message: concurrent loggers cannot shred each other's
  // lines (POSIX stdio streams lock around each call).
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace internal
}  // namespace hire
