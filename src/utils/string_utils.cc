#include "utils/string_utils.h"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "utils/check.h"

namespace hire {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      break;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(parts[i]);
  }
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

int64_t ParseInt64(std::string_view text) {
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  HIRE_CHECK(ec == std::errc() && ptr == text.data() + text.size())
      << "not an integer: '" << std::string(text) << "'";
  return value;
}

double ParseDouble(std::string_view text) {
  // std::from_chars<double> is available in libstdc++ 11+; use strtod via a
  // bounded copy to stay portable.
  std::string buffer(text);
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  HIRE_CHECK(end == buffer.c_str() + buffer.size() && !buffer.empty())
      << "not a double: '" << buffer << "'";
  return value;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return std::string(buffer);
}

}  // namespace hire
