#include "utils/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "utils/check.h"
#include "utils/flags.h"

namespace hire {
namespace {

// Tuning knobs. Workers spin briefly after running out of work before
// parking on a futex; the caller spins briefly on the completion flag
// before doing the same. Spins are short so an oversubscribed box (more
// runtime threads than cores) degrades to ≈serial instead of burning whole
// scheduler quanta.
constexpr int kWorkerSpinIters = 512;
constexpr int kCallerSpinIters = 2048;
// Lanes (= chunk queues) per loop are capped; extra workers share lanes.
constexpr int kMaxLanes = 64;
// Chunk ids are packed two-per-word in the lane queues, so cap the total.
constexpr int64_t kMaxChunks = int64_t{1} << 30;

inline void CpuPause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

thread_local bool tls_in_parallel_region = false;

std::atomic<int64_t> g_regions_in_flight{0};

// RAII in-flight marker backing the SetGlobalThreads() reconfiguration
// assertion. Covers inline regions too: resizing the runtime from inside a
// loop body is just as much a bug when the body happened to run inline.
struct InFlightRegion {
  InFlightRegion() { g_regions_in_flight.fetch_add(1, std::memory_order_acq_rel); }
  ~InFlightRegion() { g_regions_in_flight.fetch_sub(1, std::memory_order_acq_rel); }
};

// One lane's share of a loop: a contiguous block of chunk ids packed as
// (next << 32) | end. The owner claims from the front, thieves CAS the back;
// ids only ever move inward so the packed word is ABA-free.
struct alignas(64) LaneQueue {
  std::atomic<uint64_t> bounds{0};
};

inline uint64_t PackBounds(uint32_t next, uint32_t end) {
  return (static_cast<uint64_t>(next) << 32) | end;
}

bool PopFront(LaneQueue& lane, int64_t* chunk) {
  uint64_t b = lane.bounds.load(std::memory_order_relaxed);
  while (true) {
    const uint32_t next = static_cast<uint32_t>(b >> 32);
    const uint32_t end = static_cast<uint32_t>(b);
    if (next >= end) return false;
    if (lane.bounds.compare_exchange_weak(b, PackBounds(next + 1, end),
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      *chunk = next;
      return true;
    }
  }
}

bool PopBack(LaneQueue& lane, int64_t* chunk) {
  uint64_t b = lane.bounds.load(std::memory_order_relaxed);
  while (true) {
    const uint32_t next = static_cast<uint32_t>(b >> 32);
    const uint32_t end = static_cast<uint32_t>(b);
    if (next >= end) return false;
    if (lane.bounds.compare_exchange_weak(b, PackBounds(next, end - 1),
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      *chunk = end - 1;
      return true;
    }
  }
}

// A loop descriptor. Lives on the caller's stack for the duration of one
// ParallelForRangeImpl call; workers may only touch it between joining (see
// Runtime::joiners) and leaving the join section.
struct LoopTask {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 0;
  int64_t num_chunks = 0;
  int num_lanes = 0;
  detail::LoopFn fn = nullptr;
  void* ctx = nullptr;

  std::atomic<int64_t> completed{0};
  std::atomic<uint32_t> done{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  LaneQueue lanes[kMaxLanes];

  void RunChunk(int64_t chunk) {
    if (!failed.load(std::memory_order_relaxed)) {
      const int64_t lo = begin + chunk * grain;
      const int64_t hi = std::min(end, lo + grain);
      try {
        fn(ctx, lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
    const int64_t finished = completed.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (finished == num_chunks) {
      done.store(1, std::memory_order_release);
      done.notify_all();
    }
  }

  // Drains the lane's own queue front-to-back, then steals from the other
  // lanes' tails. Chunks are never re-enqueued, so one full sweep suffices:
  // when every queue has been observed empty, every chunk is claimed.
  void RunLane(int lane) {
    int64_t chunk = 0;
    while (PopFront(lanes[lane], &chunk)) RunChunk(chunk);
    for (int i = 1; i < num_lanes; ++i) {
      const int victim = lane + i < num_lanes ? lane + i : lane + i - num_lanes;
      while (PopBack(lanes[victim], &chunk)) RunChunk(chunk);
    }
  }
};

// Persistent workers plus the lock-free task slot they watch.
struct Runtime {
  explicit Runtime(int num_threads) : threads(num_threads) {
    workers.reserve(static_cast<size_t>(num_threads - 1));
    for (int i = 0; i < num_threads - 1; ++i) {
      workers.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ~Runtime() {
    shutdown.store(true, std::memory_order_seq_cst);
    epoch.fetch_add(1, std::memory_order_seq_cst);
    epoch.notify_all();
    for (std::thread& worker : workers) worker.join();
  }

  void WorkerLoop(int worker_index) {
    uint32_t joined_epoch = 0;
    while (true) {
      // Reading the epoch before the task makes the task visible: the
      // publisher stores the task before bumping the epoch, so an acquire
      // load observing the new epoch also observes the task. A worker joins
      // each epoch at most once — after it has drained a loop, the slot is
      // still occupied until the caller retires it, and re-joining would
      // just busy-sweep empty queues while the caller needs the core.
      const uint32_t e = epoch.load(std::memory_order_acquire);
      if (e != joined_epoch &&
          task.load(std::memory_order_acquire) != nullptr) {
        joined_epoch = e;
        Join(worker_index);
        continue;
      }
      if (shutdown.load(std::memory_order_acquire)) return;
      // Spin-then-park: a short spin catches back-to-back loops without a
      // syscall; otherwise wait on the epoch futex. Parking keys off the
      // epoch, not the slot, so a drained-but-unretired loop lets the
      // worker sleep instead of spinning.
      bool wake = false;
      for (int i = 0; i < kWorkerSpinIters; ++i) {
        if (epoch.load(std::memory_order_relaxed) != e ||
            shutdown.load(std::memory_order_relaxed)) {
          wake = true;
          break;
        }
        CpuPause();
      }
      if (wake) continue;
      parked.fetch_add(1, std::memory_order_seq_cst);
      if (epoch.load(std::memory_order_seq_cst) == e &&
          !shutdown.load(std::memory_order_seq_cst)) {
        epoch.wait(e, std::memory_order_acquire);
      }
      parked.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  // Joins the currently published loop, if any. The joiners counter brackets
  // every access to the task pointer so the publisher can wait for
  // quiescence before letting the stack-allocated task die.
  void Join(int worker_index) {
    joiners.fetch_add(1, std::memory_order_seq_cst);
    LoopTask* t = task.load(std::memory_order_seq_cst);
    if (t != nullptr) {
      HIRE_TRACE_SCOPE("parallel_worker");
      tls_in_parallel_region = true;
      const int lane = 1 + worker_index < t->num_lanes
                           ? 1 + worker_index
                           : (1 + worker_index) % t->num_lanes;
      t->RunLane(lane);
      tls_in_parallel_region = false;
    }
    joiners.fetch_sub(1, std::memory_order_seq_cst);
  }

  const int threads;
  std::vector<std::thread> workers;
  std::atomic<LoopTask*> task{nullptr};
  std::atomic<uint32_t> epoch{0};
  std::atomic<uint32_t> parked{0};
  std::atomic<uint32_t> joiners{0};
  std::atomic<bool> shutdown{false};
  // Measured empty fan-out cost for this runtime size; 0 = not yet measured.
  std::atomic<int64_t> dispatch_ns{0};
  std::mutex measure_mutex;
};

int AutoThreads() {
  if (const char* env = std::getenv("HIRE_NUM_THREADS")) {
    char* tail = nullptr;
    const long parsed = std::strtol(env, &tail, 10);
    if (tail != env && *tail == '\0' && parsed >= 1) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int HardwareThreads() {
  static const int hw = [] {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
  }();
  return hw;
}

struct GlobalState {
  std::mutex mutex;
  int requested = 0;            // 0 = automatic
  std::atomic<int> threads{0};  // resolved; 0 = not yet resolved
  std::atomic<Runtime*> runtime{nullptr};
};

GlobalState& State() {
  static GlobalState* state = new GlobalState();
  return *state;
}

// Resolves the thread count, (re)building the shared runtime when needed.
int EnsureRuntime() {
  GlobalState& state = State();
  const int resolved = state.threads.load(std::memory_order_acquire);
  if (resolved != 0) return resolved;
  std::lock_guard<std::mutex> lock(state.mutex);
  int threads = state.threads.load(std::memory_order_acquire);
  if (threads != 0) return threads;
  threads = state.requested > 0 ? state.requested : AutoThreads();
  if (threads > 1) {
    state.runtime.store(new Runtime(threads), std::memory_order_release);
  }
  state.threads.store(threads, std::memory_order_release);
  return threads;
}

Runtime* CurrentRuntime() {
  EnsureRuntime();
  return State().runtime.load(std::memory_order_acquire);
}

void NoopBody(void*, int64_t, int64_t) {}

}  // namespace

int GlobalThreads() { return EnsureRuntime(); }

int GlobalEffectiveThreads() {
  return std::min(GlobalThreads(), HardwareThreads());
}

void SetGlobalThreads(int num_threads) {
  HIRE_CHECK_GE(num_threads, 0);
  const int64_t in_flight = g_regions_in_flight.load(std::memory_order_acquire);
  if (in_flight != 0) {
    std::fprintf(stderr,
                 "FATAL: SetGlobalThreads(%d) called while %lld ParallelFor "
                 "region(s) are in flight. Resizing the parallel runtime "
                 "mid-loop would tear down workers that still own chunks; "
                 "finish or join all parallel work first.\n",
                 num_threads, static_cast<long long>(in_flight));
    std::fflush(stderr);
    std::abort();
  }
  GlobalState& state = State();
  Runtime* old = nullptr;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.requested = num_threads;
    old = state.runtime.exchange(nullptr, std::memory_order_acq_rel);
    state.threads.store(0, std::memory_order_release);
  }
  delete old;  // joins workers
  EnsureRuntime();
}

void InitGlobalThreadsFromFlags(const Flags& flags) {
  SetGlobalThreads(static_cast<int>(flags.GetInt("threads", 0)));
}

bool InParallelRegion() { return tls_in_parallel_region; }

int64_t ParallelRegionsInFlight() {
  return g_regions_in_flight.load(std::memory_order_acquire);
}

double ParallelDispatchOverheadNs() {
  const int threads = GlobalThreads();
  if (threads <= 1) return 0.0;
  Runtime* rt = CurrentRuntime();
  if (rt == nullptr) return 0.0;
  int64_t cached = rt->dispatch_ns.load(std::memory_order_acquire);
  if (cached > 0) return static_cast<double>(cached);
  // Measuring requires running real fan-outs; from inside a parallel region
  // they would degenerate to inline no-ops, so report a conservative guess
  // instead of caching garbage.
  constexpr double kDefaultDispatchNs = 20000.0;
  constexpr int64_t kDispatchFloorNs = 2000;
  if (tls_in_parallel_region) return kDefaultDispatchNs;
  std::lock_guard<std::mutex> lock(rt->measure_mutex);
  cached = rt->dispatch_ns.load(std::memory_order_acquire);
  if (cached > 0) return static_cast<double>(cached);
  // Time empty fan-outs with one chunk per lane; keep the minimum of the
  // post-warmup runs. The first runs pay worker wake-from-park, which is
  // part of real dispatch cost, so only the very first run is discarded.
  const int64_t range = std::min<int64_t>(threads, kMaxLanes);
  int64_t best = std::numeric_limits<int64_t>::max();
  for (int run = 0; run < 8; ++run) {
    const auto start = std::chrono::steady_clock::now();
    detail::ParallelForRangeImpl(0, range, 1, NoopBody, nullptr);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const int64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    if (run > 0) best = std::min(best, ns);
  }
  best = std::max(best, kDispatchFloorNs);
  rt->dispatch_ns.store(best, std::memory_order_release);
  return static_cast<double>(best);
}

namespace detail {

void ParallelForRangeImpl(int64_t begin, int64_t end, int64_t grain,
                          LoopFn fn, void* ctx) {
  if (begin >= end) return;
  HIRE_CHECK_GE(grain, 1);
  InFlightRegion in_flight;
  const int64_t count = end - begin;
  const int threads = EnsureRuntime();
  if (threads == 1 || count <= grain || tls_in_parallel_region) {
    fn(ctx, begin, end);
    return;
  }
  Runtime* rt = State().runtime.load(std::memory_order_acquire);
  HIRE_CHECK(rt != nullptr);

  LoopTask task;
  task.begin = begin;
  task.end = end;
  // Chunk ids must fit the packed 32-bit lane bounds; widen the grain if an
  // enormous range with a tiny grain would overflow them.
  task.grain = std::max(grain, (count + kMaxChunks - 1) / kMaxChunks);
  task.num_chunks = (count + task.grain - 1) / task.grain;
  task.fn = fn;
  task.ctx = ctx;
  task.num_lanes = static_cast<int>(
      std::min<int64_t>({task.num_chunks, threads, kMaxLanes}));
  // Deal chunks into contiguous per-lane blocks. Lane 0 is the caller.
  for (int lane = 0; lane < task.num_lanes; ++lane) {
    const int64_t lo = task.num_chunks * lane / task.num_lanes;
    const int64_t hi = task.num_chunks * (lane + 1) / task.num_lanes;
    task.lanes[lane].bounds.store(
        PackBounds(static_cast<uint32_t>(lo), static_cast<uint32_t>(hi)),
        std::memory_order_relaxed);
  }

  // Publish. If another thread's loop owns the slot, run inline rather than
  // queueing: concurrent top-level loops come from independent request
  // threads (serve), and serializing them would oversubscribe anyway.
  LoopTask* expected = nullptr;
  if (!rt->task.compare_exchange_strong(expected, &task,
                                        std::memory_order_seq_cst)) {
    fn(ctx, begin, end);
    return;
  }
  rt->epoch.fetch_add(1, std::memory_order_seq_cst);
  if (rt->parked.load(std::memory_order_seq_cst) > 0) {
    rt->epoch.notify_all();
  }

  {
    HIRE_TRACE_SCOPE("parallel_for");
    tls_in_parallel_region = true;
    task.RunLane(0);
    tls_in_parallel_region = false;
  }

  // Wait until every chunk has *finished* (claimed chunks may still be
  // running on workers): spin briefly, then park on the done futex.
  if (task.done.load(std::memory_order_acquire) == 0) {
    bool finished = false;
    for (int i = 0; i < kCallerSpinIters; ++i) {
      if (task.done.load(std::memory_order_acquire) != 0) {
        finished = true;
        break;
      }
      CpuPause();
    }
    while (!finished && task.done.load(std::memory_order_acquire) == 0) {
      task.done.wait(0, std::memory_order_acquire);
      finished = task.done.load(std::memory_order_acquire) != 0;
    }
  }

  // Retire: clear the slot, then wait for workers to leave the join
  // section before the stack-allocated task goes out of scope. Workers
  // observe the cleared slot on their next joiners-bracketed load, so this
  // wait is bounded by one empty lane sweep.
  rt->task.store(nullptr, std::memory_order_seq_cst);
  while (rt->joiners.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  if (task.error) std::rethrow_exception(task.error);
}

}  // namespace detail
}  // namespace hire
