#include "utils/flags.h"

#include "utils/check.h"
#include "utils/string_utils.h"

namespace hire {

Flags Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      flags.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    HIRE_CHECK(!body.empty()) << "bare '--' is not a flag";
    const size_t equals = body.find('=');
    if (equals != std::string::npos) {
      flags.values_[body.substr(0, equals)] = body.substr(equals + 1);
      continue;
    }
    // Bare "--key" is a boolean flag; values must use "--key=value" (the
    // space-separated form is ambiguous with positional arguments).
    flags.values_[body] = "";
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return ParseInt64(it->second);
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return ParseDouble(it->second);
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  if (it->second == "false" || it->second == "0") return false;
  HIRE_CHECK(false) << "bad boolean for --" << name << ": '" << it->second
                    << "'";
  return fallback;
}

std::vector<std::string> Flags::FlagNames() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

}  // namespace hire
