#ifndef HIRE_UTILS_TABLE_PRINTER_H_
#define HIRE_UTILS_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace hire {

/// Renders fixed-width ASCII tables for the benchmark harness. Output mirrors
/// the row/column layout of the paper's tables so results can be compared
/// side by side.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; the row must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Inserts a horizontal separator line before the next row.
  void AddSeparator();

  /// Renders the table to `out`.
  void Print(std::ostream& out) const;

  /// Renders the table to a string.
  std::string ToString() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace hire

#endif  // HIRE_UTILS_TABLE_PRINTER_H_
