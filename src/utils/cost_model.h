#ifndef HIRE_UTILS_COST_MODEL_H_
#define HIRE_UTILS_COST_MODEL_H_

#include <cstdint>

namespace hire {

// ---------------------------------------------------------------------------
// Per-op parallelisation cost model.
//
// Kernels describe one loop index (a row, a column, a matrix, an element)
// by its arithmetic and memory traffic; the planner turns that into a chunk
// grain for ParallelForRange, or decides the loop is too small to pay the
// fork/join fan-out and keeps it serial.
//
//   est ns/index  = max(flops / kFlopsPerNs, bytes / kBytesPerNs)   (roofline)
//   serial unless   est total >= kPayoffFactor * dispatch            (measured)
//   grain         = max(index count for kMinChunkNs,
//                       count / (threads * kChunksPerLane))
//
// `dispatch` is ParallelDispatchOverheadNs() — the *measured* cost of an
// empty fan-out at the current thread count — so the serial-fallback
// threshold tracks the machine instead of a hand-tuned constant. Transcen-
// dental-heavy bodies should inflate `flops_per_index` (an exp costs tens
// of flops); the model only needs order-of-magnitude accuracy because the
// payoff factor keeps a wide safety margin.
// ---------------------------------------------------------------------------

struct LoopCost {
  double flops_per_index = 0.0;
  double bytes_per_index = 0.0;
};

/// Estimated serial nanoseconds for one loop index under the roofline model.
double EstimatedIndexNs(const LoopCost& cost);

/// Chunk grain for a loop over `count` indices with per-index cost `cost`.
/// Plans against GlobalEffectiveThreads() — oversubscribed settings are
/// clamped to the core count, so a single-core machine always plans serial.
/// Returns `count` (one chunk => ParallelForRange runs inline) when the
/// effective thread count is 1, when called inside a parallel region, or
/// when the estimated total work is below the measured fallback threshold.
int64_t PlanGrain(int64_t count, const LoopCost& cost);

/// The serial-fallback threshold in nanoseconds at the current thread
/// count: loops estimated below this stay serial. Exposed for tests/docs.
double SerialFallbackThresholdNs();

/// Test-only: when true, PlanGrain ignores the effective-core clamp and the
/// payoff threshold and shards against the *requested* thread count, so
/// kernel tests exercise real multi-lane execution even for tiny tensors on
/// a single-core CI machine. Never enable in production code.
void SetCostModelForcedParallelForTesting(bool forced);

}  // namespace hire

#endif  // HIRE_UTILS_COST_MODEL_H_
