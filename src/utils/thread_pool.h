#ifndef HIRE_UTILS_THREAD_POOL_H_
#define HIRE_UTILS_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hire {

/// Fixed-size worker pool. Used by ParallelFor to shard batch work (context
/// assembly, evaluation loops) across cores; degrades to inline execution on
/// single-core machines.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs `body(i)` for i in [begin, end). Executes inline when the range is
/// small or hardware concurrency is 1; otherwise shards the range across a
/// transient pool. `body` must be safe to invoke concurrently.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body);

}  // namespace hire

#endif  // HIRE_UTILS_THREAD_POOL_H_
