#ifndef HIRE_UTILS_THREAD_POOL_H_
#define HIRE_UTILS_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hire {

class Flags;

/// Fixed-size worker pool. The tensor kernels shard work across the
/// process-wide instance (see GlobalThreadPool below) via ParallelFor;
/// standalone pools remain useful for coarse task parallelism.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

// ---------------------------------------------------------------------------
// Process-wide pool configuration.
// ---------------------------------------------------------------------------

/// Logical parallelism of the process-wide pool. Resolution order:
/// SetGlobalThreads() > HIRE_NUM_THREADS env var > hardware concurrency.
/// Always >= 1.
int GlobalThreads();

/// Sets the process-wide parallelism. `num_threads` == 0 restores the
/// automatic default (env var, then hardware concurrency). Destroys and
/// recreates the shared pool: must not be called while a ParallelFor is in
/// flight on another thread.
void SetGlobalThreads(int num_threads);

/// Applies the conventional `--threads` flag (0 or absent = automatic).
void InitGlobalThreadsFromFlags(const Flags& flags);

/// Lazily constructed shared pool with GlobalThreads() - 1 workers (the
/// calling thread is the remaining lane). Returns nullptr when
/// GlobalThreads() == 1, in which case all parallel helpers run inline.
ThreadPool* GlobalThreadPool();

/// True when called from inside a ParallelFor worker; nested parallel
/// regions execute inline to avoid deadlocking the shared pool.
bool InParallelRegion();

// ---------------------------------------------------------------------------
// Parallel loops.
// ---------------------------------------------------------------------------

/// Runs `body(chunk_begin, chunk_end)` over a partition of [begin, end) into
/// chunks of at least `grain` indices. Runs inline (single chunk) when the
/// range is at most `grain`, when GlobalThreads() == 1, or when already
/// inside a parallel region. Chunk boundaries are deterministic for a fixed
/// thread count; an exception thrown by any chunk is rethrown on the calling
/// thread after all chunks finish or are abandoned. `body` must be safe to
/// invoke concurrently on disjoint chunks.
void ParallelForRange(int64_t begin, int64_t end, int64_t grain,
                      const std::function<void(int64_t, int64_t)>& body);

/// Runs `body(i)` for i in [begin, end), sharded with chunks of `grain`.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t)>& body);

/// Back-compat overload with an automatic grain.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body);

}  // namespace hire

#endif  // HIRE_UTILS_THREAD_POOL_H_
