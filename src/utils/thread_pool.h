#ifndef HIRE_UTILS_THREAD_POOL_H_
#define HIRE_UTILS_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hire {

/// Fixed-size worker pool for coarse, potentially *blocking* tasks —
/// serve's connection handlers, background jobs. Workers park on a condvar
/// while idle, which is the right policy for tasks that sit in I/O.
///
/// Data-parallel loops do NOT run here: tensor kernels use the
/// work-stealing parallel runtime in utils/parallel.h, whose spin-then-park
/// workers and lock-free loop slot are tuned for short CPU-bound chunks.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace hire

#endif  // HIRE_UTILS_THREAD_POOL_H_
