#ifndef HIRE_UTILS_STOPWATCH_H_
#define HIRE_UTILS_STOPWATCH_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>

namespace hire {

/// Monotonic wall-clock stopwatch used by the benchmark harness and the
/// efficiency experiments (Fig. 6).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// ---------------------------------------------------------------------------
// Kernel time accounting.
// ---------------------------------------------------------------------------

/// Coarse hot-path categories tracked by KernelTimers. kMatMul and kSoftmax
/// are charged inside the tensor ops, kAttention around whole MHSA forwards
/// (so it overlaps the former two), kOptimizer around the optimiser update.
enum class KernelCategory : int {
  kMatMul = 0,
  kSoftmax,
  kAttention,
  kOptimizer,
};

/// Process-wide accumulator of time spent per KernelCategory. Thread-safe;
/// the trainer snapshots it to print a per-epoch kernel-time breakdown.
class KernelTimers {
 public:
  static constexpr int kNumCategories = 4;

  /// Per-category totals at one instant, subtractable for interval deltas.
  struct Snapshot {
    std::array<uint64_t, kNumCategories> nanos{};

    double Seconds(KernelCategory category) const {
      return static_cast<double>(nanos[static_cast<int>(category)]) * 1e-9;
    }

    Snapshot operator-(const Snapshot& other) const {
      Snapshot delta;
      for (int i = 0; i < kNumCategories; ++i) {
        delta.nanos[i] = nanos[i] - other.nanos[i];
      }
      return delta;
    }

    /// e.g. "matmul 1.23s | softmax 0.40s | attention 1.71s | optim 0.25s".
    std::string ToString() const {
      static constexpr const char* kNames[kNumCategories] = {
          "matmul", "softmax", "attention", "optim"};
      std::ostringstream out;
      for (int i = 0; i < kNumCategories; ++i) {
        if (i > 0) out << " | ";
        out << kNames[i] << " " << static_cast<double>(nanos[i]) * 1e-9
            << "s";
      }
      return out.str();
    }
  };

  static void Add(KernelCategory category, uint64_t nanos) {
    Totals()[static_cast<int>(category)].fetch_add(
        nanos, std::memory_order_relaxed);
  }

  static Snapshot Take() {
    Snapshot snapshot;
    for (int i = 0; i < kNumCategories; ++i) {
      snapshot.nanos[i] = Totals()[i].load(std::memory_order_relaxed);
    }
    return snapshot;
  }

  static void Reset() {
    for (int i = 0; i < kNumCategories; ++i) {
      Totals()[i].store(0, std::memory_order_relaxed);
    }
  }

 private:
  static std::array<std::atomic<uint64_t>, kNumCategories>& Totals() {
    static std::array<std::atomic<uint64_t>, kNumCategories> totals{};
    return totals;
  }
};

/// RAII accumulator: charges the scope's wall time to one KernelCategory.
/// Cheap enough for per-op use on matrix-sized work (one steady_clock read
/// on entry and exit); keep it off per-element paths.
class ScopedKernelTimer {
 public:
  explicit ScopedKernelTimer(KernelCategory category)
      : category_(category), start_(std::chrono::steady_clock::now()) {}

  ~ScopedKernelTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    KernelTimers::Add(
        category_,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  ScopedKernelTimer(const ScopedKernelTimer&) = delete;
  ScopedKernelTimer& operator=(const ScopedKernelTimer&) = delete;

 private:
  KernelCategory category_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hire

#endif  // HIRE_UTILS_STOPWATCH_H_
