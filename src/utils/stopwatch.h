#ifndef HIRE_UTILS_STOPWATCH_H_
#define HIRE_UTILS_STOPWATCH_H_

// Compatibility shim: Stopwatch and the kernel-time accounting moved into
// the observability subsystem (src/obs/). Existing includes of
// "utils/stopwatch.h" keep compiling; new code should include
// "obs/stopwatch.h" and "obs/kernel_timers.h" directly.

#include "obs/kernel_timers.h"  // IWYU pragma: export
#include "obs/stopwatch.h"      // IWYU pragma: export

#endif  // HIRE_UTILS_STOPWATCH_H_
