#ifndef HIRE_UTILS_STRING_UTILS_H_
#define HIRE_UTILS_STRING_UTILS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hire {

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view text);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Returns true if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a signed integer; throws hire::CheckError on malformed input.
int64_t ParseInt64(std::string_view text);

/// Parses a double; throws hire::CheckError on malformed input.
double ParseDouble(std::string_view text);

/// Formats a double with fixed precision, e.g. FormatDouble(0.12345, 4)
/// yields "0.1234".
std::string FormatDouble(double value, int precision);

}  // namespace hire

#endif  // HIRE_UTILS_STRING_UTILS_H_
