#ifndef HIRE_UTILS_FLAGS_H_
#define HIRE_UTILS_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hire {

/// Minimal command-line flag parser for the example binaries and the CLI
/// tool. Supports "--key=value" and boolean "--key" forms; positional
/// arguments are collected in order.
class Flags {
 public:
  /// Parses argv; throws hire::CheckError on malformed input (e.g. a value
  /// flag at the end with no value).
  static Flags Parse(int argc, const char* const* argv);

  /// True when --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// Typed getters with defaults. Throw hire::CheckError when the value is
  /// present but malformed.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of all flags that were set (for unknown-flag diagnostics).
  std::vector<std::string> FlagNames() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace hire

#endif  // HIRE_UTILS_FLAGS_H_
