#include "utils/cost_model.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "utils/parallel.h"

namespace hire {
namespace {

std::atomic<bool> g_forced_parallel_for_testing{false};

// Nominal single-core throughputs. Deliberately round numbers: the payoff
// factor absorbs the inevitable 2-5x misestimate, and the dispatch cost —
// the term that actually varies across machines — is measured, not assumed.
constexpr double kFlopsPerNs = 32.0;  // ~vectorized fp32 on one core
constexpr double kBytesPerNs = 16.0;  // ~streaming DRAM bandwidth per core
// Estimated total work must exceed this multiple of the measured empty
// fan-out cost before the loop leaves the serial path. At factor 4 and two
// lanes the worst-case win is still ~1.3x; below it the fork/join handshake
// eats the savings.
constexpr double kPayoffFactor = 4.0;
// Chunks should each carry at least this much estimated work so the
// per-chunk claim (one CAS) and completion count stay <1% overhead.
constexpr double kMinChunkNs = 4000.0;
// Upper bound on chunks per lane: enough slack for stealing to rebalance
// when a lane stalls, few enough that chunk bookkeeping stays invisible.
constexpr int kChunksPerLane = 4;

}  // namespace

double EstimatedIndexNs(const LoopCost& cost) {
  const double compute = cost.flops_per_index / kFlopsPerNs;
  const double memory = cost.bytes_per_index / kBytesPerNs;
  return std::max({compute, memory, 1e-3});
}

double SerialFallbackThresholdNs() {
  return kPayoffFactor * ParallelDispatchOverheadNs();
}

void SetCostModelForcedParallelForTesting(bool forced) {
  g_forced_parallel_for_testing.store(forced, std::memory_order_relaxed);
}

int64_t PlanGrain(int64_t count, const LoopCost& cost) {
  if (count <= 1) return 1;
  if (InParallelRegion()) return count;
  if (g_forced_parallel_for_testing.load(std::memory_order_relaxed) &&
      GlobalThreads() > 1) {
    const int64_t max_chunks = int64_t{GlobalThreads()} * kChunksPerLane;
    return std::max<int64_t>(1, (count + max_chunks - 1) / max_chunks);
  }
  // Plan against *effective* threads: requesting more lanes than the machine
  // has cores cannot add throughput, only contention, so an oversubscribed
  // setting plans as if clamped — and a single-core machine always runs the
  // kernels serially no matter what --threads asks for.
  const int64_t threads = GlobalEffectiveThreads();
  if (threads <= 1) return count;
  const double index_ns = EstimatedIndexNs(cost);
  if (static_cast<double>(count) * index_ns < SerialFallbackThresholdNs()) {
    return count;  // below the measured payoff: stay serial
  }
  const int64_t min_chunk_indices =
      static_cast<int64_t>(std::ceil(kMinChunkNs / index_ns));
  const int64_t max_chunks = threads * kChunksPerLane;
  const int64_t balance_indices = (count + max_chunks - 1) / max_chunks;
  return std::clamp(std::max(min_chunk_indices, balance_indices),
                    int64_t{1}, count);
}

}  // namespace hire
