#ifndef HIRE_UTILS_FAULT_INJECTION_H_
#define HIRE_UTILS_FAULT_INJECTION_H_

#include <cstdint>
#include <set>
#include <string>

namespace hire {

/// Process-wide fault-injection harness for robustness testing. The trainer
/// and checkpoint writer consult it at well-defined points; in production
/// nothing is armed and every hook is a cheap no-op.
///
/// Faults are armed from environment variables the first time Global() is
/// called (or programmatically from tests):
///
///   HIRE_FAULT_CRASH_AT_STEP=k        raise SIGKILL when training step k
///                                     begins (simulates a hard kill / OOM)
///   HIRE_FAULT_NAN_LOSS_AT_STEPS=a,b  poison the loss with NaN at the
///                                     listed steps (one-shot per listed
///                                     entry, like a transient numeric
///                                     fault; list a step twice to also
///                                     poison its post-rollback replay)
///   HIRE_FAULT_TRUNCATE_CHECKPOINT=1  truncate every checkpoint just after
///                                     it is written
///   HIRE_FAULT_BITFLIP_CHECKPOINT=1   flip one payload bit in every
///                                     checkpoint just after it is written
class FaultInjector {
 public:
  /// Singleton; arms faults from the environment on first use.
  static FaultInjector& Global();

  /// Disarms everything (tests call this between cases).
  void Reset();

  /// Re-reads the HIRE_FAULT_* environment variables.
  void LoadFromEnv();

  void ArmCrashAtStep(int64_t step);
  void ArmNanLossAtSteps(std::multiset<int64_t> steps);
  void ArmTruncateCheckpoint(bool on);
  void ArmBitflipCheckpoint(bool on);

  /// Kills the process (SIGKILL) if a crash is armed for `step`.
  void MaybeCrash(int64_t step);

  /// True exactly once per armed entry: the caller should poison that step's
  /// loss with NaN. Each entry is one-shot so a post-rollback re-run of the
  /// same step index succeeds, modelling a transient fault; arming a step
  /// multiple times poisons that many visits to it.
  bool ConsumeNanLoss(int64_t step);

  /// Applies the armed checkpoint corruption (truncate / bit flip) to the
  /// file at `path`. Called by the checkpoint writer after each write.
  void MaybeCorruptCheckpoint(const std::string& path);

  bool AnyCheckpointCorruptionArmed() const {
    return truncate_checkpoint_ || bitflip_checkpoint_;
  }

 private:
  FaultInjector() { LoadFromEnv(); }

  int64_t crash_at_step_ = -1;
  std::multiset<int64_t> nan_loss_steps_;
  bool truncate_checkpoint_ = false;
  bool bitflip_checkpoint_ = false;
};

/// Truncates the file at `path` to its first `keep_bytes` bytes.
void TruncateFile(const std::string& path, uint64_t keep_bytes);

/// Flips bit `bit` (0-7) of the byte at `byte_offset` in the file at `path`.
void FlipFileBit(const std::string& path, uint64_t byte_offset, int bit);

/// Size in bytes of the file at `path`; throws if it cannot be stat'd.
uint64_t FileSize(const std::string& path);

}  // namespace hire

#endif  // HIRE_UTILS_FAULT_INJECTION_H_
