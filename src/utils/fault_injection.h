#ifndef HIRE_UTILS_FAULT_INJECTION_H_
#define HIRE_UTILS_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <set>
#include <string>

namespace hire {

/// Process-wide fault-injection harness for robustness testing. The trainer,
/// checkpoint writer, and serving tier consult it at well-defined points; in
/// production nothing is armed and every hook is a cheap no-op.
///
/// Faults are armed from environment variables the first time Global() is
/// called (or programmatically from tests):
///
///   HIRE_FAULT_CRASH_AT_STEP=k        raise SIGKILL when training step k
///                                     begins (simulates a hard kill / OOM)
///   HIRE_FAULT_NAN_LOSS_AT_STEPS=a,b  poison the loss with NaN at the
///                                     listed steps (one-shot per listed
///                                     entry, like a transient numeric
///                                     fault; list a step twice to also
///                                     poison its post-rollback replay)
///   HIRE_FAULT_TRUNCATE_CHECKPOINT=1  truncate every checkpoint just after
///                                     it is written
///   HIRE_FAULT_BITFLIP_CHECKPOINT=1   flip one payload bit in every
///                                     checkpoint just after it is written
///
/// Serve-side faults (the serve_chaos drill drives all of these):
///
///   HIRE_FAULT_SERVE_SLOW_HANDLER_MS=n  sleep n ms in the batch worker
///                                     before each forward (a slow model /
///                                     GC pause; expires deadlines)
///   HIRE_FAULT_SERVE_CORRUPT_RELOAD=1 flip one bit in the snapshot file a
///                                     /reload names before it is read (the
///                                     CRC check must reject it and the old
///                                     model must stay published)
///   HIRE_FAULT_SERVE_CORRUPT_RELOAD_SHARD=k  one-shot: corrupt the snapshot
///                                     only for engine shard k's next reload
///                                     (on a private copy, so the other
///                                     shards still read the intact file);
///                                     the sick shard must degrade to the
///                                     bias-table fallback while the rest of
///                                     the fleet serves, and the following
///                                     reload must recover it
///   HIRE_FAULT_SERVE_RESET_EVERY=k    close every k-th HTTP connection
///                                     without sending the response
///                                     (client sees a connection reset)
///   HIRE_FAULT_SERVE_STALL_CLIENT_MS=n  HttpClient sends its request head
///                                     in two halves with an n ms stall in
///                                     between (slow-loris client; the
///                                     server's header-read deadline must
///                                     cut it off)
///   HIRE_FAULT_SERVE_FAIL_FORWARD=k   make the next k batch forwards throw
///                                     (repeated batch failures; trips the
///                                     serve circuit breaker)
class FaultInjector {
 public:
  /// Singleton; arms faults from the environment on first use.
  static FaultInjector& Global();

  /// Disarms everything (tests call this between cases).
  void Reset();

  /// Re-reads the HIRE_FAULT_* environment variables.
  void LoadFromEnv();

  void ArmCrashAtStep(int64_t step);
  void ArmNanLossAtSteps(std::multiset<int64_t> steps);
  void ArmTruncateCheckpoint(bool on);
  void ArmBitflipCheckpoint(bool on);
  void ArmServeSlowHandler(int64_t ms);
  void ArmServeCorruptReload(bool on);
  void ArmServeCorruptReloadShard(int64_t shard);
  void ArmServeResetEvery(int64_t every);
  void ArmServeStallClient(int64_t ms);
  void ArmServeFailForward(int64_t count);

  /// Kills the process (SIGKILL) if a crash is armed for `step`.
  void MaybeCrash(int64_t step);

  /// True exactly once per armed entry: the caller should poison that step's
  /// loss with NaN. Each entry is one-shot so a post-rollback re-run of the
  /// same step index succeeds, modelling a transient fault; arming a step
  /// multiple times poisons that many visits to it.
  bool ConsumeNanLoss(int64_t step);

  /// Applies the armed checkpoint corruption (truncate / bit flip) to the
  /// file at `path`. Called by the checkpoint writer after each write.
  void MaybeCorruptCheckpoint(const std::string& path);

  bool AnyCheckpointCorruptionArmed() const {
    return truncate_checkpoint_ || bitflip_checkpoint_;
  }

  /// Milliseconds the serve batch worker should stall before each forward
  /// (0 = disarmed).
  int64_t ServeSlowHandlerMs() const { return serve_slow_handler_ms_; }

  /// Milliseconds an HttpClient should stall mid-header (0 = disarmed).
  int64_t ServeStallClientMs() const { return serve_stall_client_ms_; }

  /// Flips one bit in `path` when corrupt-reload is armed. The serving tier
  /// calls this on the snapshot file a /reload names, before reading it.
  void MaybeCorruptServeReload(const std::string& path);

  /// True exactly once when `shard` matches the armed
  /// HIRE_FAULT_SERVE_CORRUPT_RELOAD_SHARD index, then disarms (so the next
  /// rolling reload recovers the shard). The shard router corrupts a private
  /// copy of the snapshot for that shard only.
  bool ConsumeServeCorruptReloadShard(int64_t shard);

  /// True every k-th call when reset-every is armed: the HTTP server should
  /// close this connection without sending the response. Thread-safe (the
  /// connection pool calls it concurrently).
  bool ConsumeServeConnectionReset();

  /// True while armed forward failures remain; consumes one per call. The
  /// batch worker throws instead of running the forward.
  bool ConsumeServeFailForward();

 private:
  FaultInjector() { LoadFromEnv(); }

  int64_t crash_at_step_ = -1;
  std::multiset<int64_t> nan_loss_steps_;
  bool truncate_checkpoint_ = false;
  bool bitflip_checkpoint_ = false;
  int64_t serve_slow_handler_ms_ = 0;
  bool serve_corrupt_reload_ = false;
  std::atomic<int64_t> serve_corrupt_reload_shard_{-1};
  int64_t serve_reset_every_ = 0;
  std::atomic<int64_t> serve_reset_counter_{0};
  int64_t serve_stall_client_ms_ = 0;
  std::atomic<int64_t> serve_fail_forward_{0};
};

/// Truncates the file at `path` to its first `keep_bytes` bytes.
void TruncateFile(const std::string& path, uint64_t keep_bytes);

/// Flips bit `bit` (0-7) of the byte at `byte_offset` in the file at `path`.
void FlipFileBit(const std::string& path, uint64_t byte_offset, int bit);

/// Size in bytes of the file at `path`; throws if it cannot be stat'd.
uint64_t FileSize(const std::string& path);

}  // namespace hire

#endif  // HIRE_UTILS_FAULT_INJECTION_H_
