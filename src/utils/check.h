#ifndef HIRE_UTILS_CHECK_H_
#define HIRE_UTILS_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace hire {

/// Exception type thrown by all HIRE_CHECK* macros. Carries a formatted
/// message including the failing condition and source location.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace internal {

/// Builds the failure message for a check. Streams extra context appended
/// via operator<< at the macro call site.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* condition, const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: " << condition;
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    if (!wrote_detail_) {
      stream_ << " — ";
      wrote_detail_ = true;
    }
    stream_ << value;
    return *this;
  }

  [[noreturn]] void Throw() const { throw CheckError(stream_.str()); }

 private:
  std::ostringstream stream_;
  bool wrote_detail_ = false;
};

/// Helper that throws when the builder finishes streaming. Using a struct
/// whose operator&= consumes the builder lets the macro support both
/// `HIRE_CHECK(x);` and `HIRE_CHECK(x) << "detail";` forms.
struct Thrower {
  [[noreturn]] void operator&=(CheckMessageBuilder& builder) const {
    builder.Throw();
  }
  [[noreturn]] void operator&=(CheckMessageBuilder&& builder) const {
    builder.Throw();
  }
};

}  // namespace internal
}  // namespace hire

/// Validates a runtime invariant. Throws hire::CheckError on failure.
/// Additional context may be streamed: HIRE_CHECK(n > 0) << "n=" << n;
#define HIRE_CHECK(condition)                                          \
  if (condition) {                                                     \
  } else /* NOLINT */                                                  \
    ::hire::internal::Thrower{} &= ::hire::internal::CheckMessageBuilder( \
        #condition, __FILE__, __LINE__)

#define HIRE_CHECK_EQ(a, b) HIRE_CHECK((a) == (b)) << "lhs=" << (a) << " rhs=" << (b)
#define HIRE_CHECK_NE(a, b) HIRE_CHECK((a) != (b)) << "lhs=" << (a) << " rhs=" << (b)
#define HIRE_CHECK_LT(a, b) HIRE_CHECK((a) < (b)) << "lhs=" << (a) << " rhs=" << (b)
#define HIRE_CHECK_LE(a, b) HIRE_CHECK((a) <= (b)) << "lhs=" << (a) << " rhs=" << (b)
#define HIRE_CHECK_GT(a, b) HIRE_CHECK((a) > (b)) << "lhs=" << (a) << " rhs=" << (b)
#define HIRE_CHECK_GE(a, b) HIRE_CHECK((a) >= (b)) << "lhs=" << (a) << " rhs=" << (b)

#endif  // HIRE_UTILS_CHECK_H_
