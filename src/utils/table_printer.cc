#include "utils/table_printer.h"

#include <algorithm>
#include <sstream>

#include "utils/check.h"

namespace hire {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HIRE_CHECK(!headers_.empty()) << "table needs at least one column";
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  HIRE_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void TablePrinter::AddSeparator() { pending_separator_ = true; }

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto print_line = [&] {
    out << "+";
    for (size_t width : widths) {
      out << std::string(width + 2, '-') << "+";
    }
    out << "\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      out << " " << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
          << " |";
    }
    out << "\n";
  };

  print_line();
  print_cells(headers_);
  print_line();
  for (const Row& row : rows_) {
    if (row.separator_before) print_line();
    print_cells(row.cells);
  }
  print_line();
}

std::string TablePrinter::ToString() const {
  std::ostringstream out;
  Print(out);
  return out.str();
}

}  // namespace hire
