#ifndef HIRE_UTILS_LOGGING_H_
#define HIRE_UTILS_LOGGING_H_

#include <sstream>
#include <string>

namespace hire {

/// Severity levels for the process-wide logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Output format for log lines.
enum class LogFormat : int {
  kText = 0,  // [2026-08-06T12:34:56.789Z INFO t1 file.cc:42] message
  kJson = 1,  // {"ts":"...","level":"info","tid":1,"src":"file.cc:42",...}
};

/// Sets the minimum severity that is emitted. Defaults to kInfo, or to the
/// HIRE_LOG_LEVEL environment variable (debug|info|warn|error, or 0-3) when
/// set at process start.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warn" / "warning" / "error" (case-insensitive)
/// or a numeric 0-3 into `out`. Returns false on unrecognised input.
bool ParseLogLevel(const std::string& text, LogLevel* out);

/// Switches between human-readable text lines and structured JSON lines.
void SetLogFormat(LogFormat format);
LogFormat GetLogFormat();

namespace internal {

/// Accumulates one log line and emits it on destruction when the message's
/// severity is at or above the configured threshold. The fully formatted
/// line (ISO-8601 UTC timestamp, severity, thread id, source location) is
/// written to stderr with a single fwrite, so concurrent threads can log
/// without interleaving fragments of each other's lines.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hire

#define HIRE_LOG(level)                                  \
  ::hire::internal::LogMessage(::hire::LogLevel::k##level, __FILE__, __LINE__)

#endif  // HIRE_UTILS_LOGGING_H_
