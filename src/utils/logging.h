#ifndef HIRE_UTILS_LOGGING_H_
#define HIRE_UTILS_LOGGING_H_

#include <sstream>
#include <string>

namespace hire {

/// Severity levels for the process-wide logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the minimum severity that is emitted. Defaults to kInfo.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction when the
/// message's severity is at or above the configured threshold.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hire

#define HIRE_LOG(level)                                  \
  ::hire::internal::LogMessage(::hire::LogLevel::k##level, __FILE__, __LINE__)

#endif  // HIRE_UTILS_LOGGING_H_
