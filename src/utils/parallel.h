#ifndef HIRE_UTILS_PARALLEL_H_
#define HIRE_UTILS_PARALLEL_H_

#include <cstdint>

namespace hire {

class Flags;

// ---------------------------------------------------------------------------
// Process-wide parallel runtime.
//
// A persistent-worker fork/join runtime for data-parallel loops. One runtime
// instance is shared by every tensor kernel: N-1 parked worker threads plus
// the calling thread. A loop publishes a single stack-allocated descriptor
// into a lock-free task slot (no per-chunk or per-loop heap allocation),
// chunks are dealt into per-lane queues, and idle lanes steal from the tail
// of other lanes' queues. Chunk boundaries are a pure function of
// (begin, end, grain) — work stealing only changes *which* thread runs a
// chunk, never what the chunk covers — so kernels that keep each output
// element inside one chunk stay bitwise reproducible for any thread count.
//
// The coarse-task `ThreadPool` (utils/thread_pool.h) is a separate facility
// for long-running, blocking jobs (e.g. serve's connection handlers); this
// runtime spins briefly before parking and must only run short CPU-bound
// chunks.
// ---------------------------------------------------------------------------

/// Logical parallelism of the process-wide runtime. Resolution order:
/// SetGlobalThreads() > HIRE_NUM_THREADS env var > hardware concurrency.
/// Always >= 1.
int GlobalThreads();

/// Threads that can actually run concurrently: min(GlobalThreads(),
/// hardware concurrency). When GlobalThreads() exceeds this, the runtime is
/// oversubscribed and threaded timings measure time-slicing, not scaling.
int GlobalEffectiveThreads();

/// Sets the process-wide parallelism. `num_threads` == 0 restores the
/// automatic default (env var, then hardware concurrency). Destroys and
/// recreates the shared runtime: must not be called while a ParallelFor is
/// in flight on any thread. This is enforced — an in-flight region counter
/// makes the call abort with a diagnostic instead of corrupting the runtime.
void SetGlobalThreads(int num_threads);

/// Applies the conventional `--threads` flag (0 or absent = automatic).
void InitGlobalThreadsFromFlags(const Flags& flags);

/// True when called from inside a ParallelFor worker; nested parallel
/// regions execute inline to avoid deadlocking the shared runtime.
bool InParallelRegion();

/// Number of ParallelFor regions currently executing across all threads
/// (includes inline regions). Exposed for tests and diagnostics.
int64_t ParallelRegionsInFlight();

/// Measured cost (ns) of one empty fork/join fan-out at the current thread
/// count: publish + worker wake + chunk claims + completion wait. Measured
/// lazily once per runtime (re-measured after SetGlobalThreads) and used by
/// the cost model as the serial-fallback threshold. Returns 0 when
/// GlobalThreads() == 1 (loops run inline, dispatch is free).
double ParallelDispatchOverheadNs();

namespace detail {

using LoopFn = void (*)(void* ctx, int64_t lo, int64_t hi);

/// Type-erased core. `fn(ctx, lo, hi)` is invoked over a deterministic
/// partition of [begin, end) into chunks of `grain` indices (the last chunk
/// may be short). Runs inline when the range fits one chunk, when
/// GlobalThreads() == 1, when called from inside a parallel region, or when
/// another thread's loop already occupies the task slot. An exception from
/// any chunk is rethrown on the calling thread after all chunks finish.
void ParallelForRangeImpl(int64_t begin, int64_t end, int64_t grain,
                          LoopFn fn, void* ctx);

}  // namespace detail

/// Runs `body(chunk_begin, chunk_end)` over a partition of [begin, end)
/// into chunks of at least `grain` indices. `body` must be safe to invoke
/// concurrently on disjoint chunks. Accepts any callable; no std::function
/// is constructed and nothing is heap-allocated on the dispatch path.
template <typename Body>
void ParallelForRange(int64_t begin, int64_t end, int64_t grain,
                      const Body& body) {
  detail::ParallelForRangeImpl(
      begin, end, grain,
      [](void* ctx, int64_t lo, int64_t hi) {
        (*static_cast<const Body*>(ctx))(lo, hi);
      },
      const_cast<void*>(static_cast<const void*>(&body)));
}

/// Runs `body(i)` for i in [begin, end), sharded with chunks of `grain`.
template <typename Body>
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const Body& body) {
  ParallelForRange(begin, end, grain, [&body](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) body(i);
  });
}

/// Back-compat overload with an automatic grain: at least a few indices per
/// chunk while still letting every lane claim several chunks for balance.
template <typename Body>
void ParallelFor(int64_t begin, int64_t end, const Body& body) {
  const int64_t count = end - begin;
  const int64_t threads = GlobalThreads();
  const int64_t grain = count / (threads * 4) > 0 ? count / (threads * 4) : 1;
  ParallelFor(begin, end, grain, body);
}

}  // namespace hire

#endif  // HIRE_UTILS_PARALLEL_H_
