#include "utils/fault_injection.h"

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "utils/check.h"
#include "utils/logging.h"
#include "utils/string_utils.h"

namespace hire {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Reset() {
  crash_at_step_ = -1;
  nan_loss_steps_.clear();
  truncate_checkpoint_ = false;
  bitflip_checkpoint_ = false;
  serve_slow_handler_ms_ = 0;
  serve_corrupt_reload_ = false;
  serve_corrupt_reload_shard_.store(-1);
  serve_reset_every_ = 0;
  serve_reset_counter_.store(0);
  serve_stall_client_ms_ = 0;
  serve_fail_forward_.store(0);
}

void FaultInjector::LoadFromEnv() {
  if (const char* value = std::getenv("HIRE_FAULT_CRASH_AT_STEP")) {
    crash_at_step_ = ParseInt64(value);
  }
  if (const char* value = std::getenv("HIRE_FAULT_NAN_LOSS_AT_STEPS")) {
    for (const std::string& field : Split(value, ',')) {
      const std::string token = Trim(field);
      if (!token.empty()) nan_loss_steps_.insert(ParseInt64(token));
    }
  }
  if (const char* value = std::getenv("HIRE_FAULT_TRUNCATE_CHECKPOINT")) {
    truncate_checkpoint_ = std::string(value) != "0";
  }
  if (const char* value = std::getenv("HIRE_FAULT_BITFLIP_CHECKPOINT")) {
    bitflip_checkpoint_ = std::string(value) != "0";
  }
  if (const char* value = std::getenv("HIRE_FAULT_SERVE_SLOW_HANDLER_MS")) {
    serve_slow_handler_ms_ = ParseInt64(value);
  }
  if (const char* value = std::getenv("HIRE_FAULT_SERVE_CORRUPT_RELOAD")) {
    serve_corrupt_reload_ = std::string(value) != "0";
  }
  if (const char* value =
          std::getenv("HIRE_FAULT_SERVE_CORRUPT_RELOAD_SHARD")) {
    serve_corrupt_reload_shard_.store(ParseInt64(value));
  }
  if (const char* value = std::getenv("HIRE_FAULT_SERVE_RESET_EVERY")) {
    serve_reset_every_ = ParseInt64(value);
  }
  if (const char* value = std::getenv("HIRE_FAULT_SERVE_STALL_CLIENT_MS")) {
    serve_stall_client_ms_ = ParseInt64(value);
  }
  if (const char* value = std::getenv("HIRE_FAULT_SERVE_FAIL_FORWARD")) {
    serve_fail_forward_.store(ParseInt64(value));
  }
}

void FaultInjector::ArmCrashAtStep(int64_t step) { crash_at_step_ = step; }

void FaultInjector::ArmNanLossAtSteps(std::multiset<int64_t> steps) {
  nan_loss_steps_ = std::move(steps);
}

void FaultInjector::ArmTruncateCheckpoint(bool on) {
  truncate_checkpoint_ = on;
}

void FaultInjector::ArmBitflipCheckpoint(bool on) {
  bitflip_checkpoint_ = on;
}

void FaultInjector::ArmServeSlowHandler(int64_t ms) {
  serve_slow_handler_ms_ = ms;
}

void FaultInjector::ArmServeCorruptReload(bool on) {
  serve_corrupt_reload_ = on;
}

void FaultInjector::ArmServeCorruptReloadShard(int64_t shard) {
  serve_corrupt_reload_shard_.store(shard);
}

void FaultInjector::ArmServeResetEvery(int64_t every) {
  serve_reset_every_ = every;
  serve_reset_counter_.store(0);
}

void FaultInjector::ArmServeStallClient(int64_t ms) {
  serve_stall_client_ms_ = ms;
}

void FaultInjector::ArmServeFailForward(int64_t count) {
  serve_fail_forward_.store(count);
}

void FaultInjector::MaybeCorruptServeReload(const std::string& path) {
  if (!serve_corrupt_reload_) return;
  const uint64_t size = FileSize(path);
  HIRE_CHECK_GT(size, 0u);
  FlipFileBit(path, size / 2, 2);
  HIRE_LOG(Warning) << "fault injection: corrupted snapshot '" << path
                    << "' before reload";
}

bool FaultInjector::ConsumeServeCorruptReloadShard(int64_t shard) {
  int64_t armed = serve_corrupt_reload_shard_.load();
  while (armed >= 0 && armed == shard) {
    if (serve_corrupt_reload_shard_.compare_exchange_weak(armed, -1)) {
      HIRE_LOG(Warning) << "fault injection: corrupting reload for shard "
                        << shard << " (one-shot)";
      return true;
    }
  }
  return false;
}

bool FaultInjector::ConsumeServeConnectionReset() {
  if (serve_reset_every_ <= 0) return false;
  const int64_t n = serve_reset_counter_.fetch_add(1) + 1;
  if (n % serve_reset_every_ != 0) return false;
  HIRE_LOG(Warning) << "fault injection: resetting HTTP connection (request "
                    << n << ")";
  return true;
}

bool FaultInjector::ConsumeServeFailForward() {
  int64_t remaining = serve_fail_forward_.load();
  while (remaining > 0) {
    if (serve_fail_forward_.compare_exchange_weak(remaining, remaining - 1)) {
      HIRE_LOG(Warning) << "fault injection: failing batch forward ("
                        << remaining - 1 << " left)";
      return true;
    }
  }
  return false;
}

void FaultInjector::MaybeCrash(int64_t step) {
  if (crash_at_step_ < 0 || step != crash_at_step_) return;
  HIRE_LOG(Warning) << "fault injection: SIGKILL at step " << step;
  std::raise(SIGKILL);
  // SIGKILL cannot be handled; if raise somehow returns, hard-exit anyway so
  // the harness still observes an abnormal termination.
  std::_Exit(137);
}

bool FaultInjector::ConsumeNanLoss(int64_t step) {
  auto it = nan_loss_steps_.find(step);
  if (it == nan_loss_steps_.end()) return false;
  nan_loss_steps_.erase(it);
  HIRE_LOG(Warning) << "fault injection: poisoning loss with NaN at step "
                    << step;
  return true;
}

void FaultInjector::MaybeCorruptCheckpoint(const std::string& path) {
  if (truncate_checkpoint_) {
    const uint64_t size = FileSize(path);
    TruncateFile(path, size / 2);
    HIRE_LOG(Warning) << "fault injection: truncated checkpoint '" << path
                      << "' to " << size / 2 << " bytes";
  }
  if (bitflip_checkpoint_) {
    const uint64_t size = FileSize(path);
    HIRE_CHECK_GT(size, 0u);
    FlipFileBit(path, size / 2, 3);
    HIRE_LOG(Warning) << "fault injection: flipped a bit in checkpoint '"
                      << path << "'";
  }
}

void TruncateFile(const std::string& path, uint64_t keep_bytes) {
  std::error_code error;
  std::filesystem::resize_file(path, keep_bytes, error);
  HIRE_CHECK(!error) << "cannot truncate '" << path
                     << "': " << error.message();
}

void FlipFileBit(const std::string& path, uint64_t byte_offset, int bit) {
  HIRE_CHECK(bit >= 0 && bit < 8);
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  HIRE_CHECK(file.is_open()) << "cannot open '" << path << "' to flip a bit";
  file.seekg(static_cast<std::streamoff>(byte_offset));
  char byte = 0;
  file.read(&byte, 1);
  HIRE_CHECK(file.good()) << "offset " << byte_offset << " past end of '"
                          << path << "'";
  byte = static_cast<char>(byte ^ (1 << bit));
  file.seekp(static_cast<std::streamoff>(byte_offset));
  file.write(&byte, 1);
  HIRE_CHECK(file.good()) << "cannot write flipped byte to '" << path << "'";
}

uint64_t FileSize(const std::string& path) {
  std::error_code error;
  const uint64_t size = std::filesystem::file_size(path, error);
  HIRE_CHECK(!error) << "cannot stat '" << path << "': " << error.message();
  return size;
}

}  // namespace hire
