#include "core/attention_analysis.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "utils/check.h"

namespace hire {
namespace core {

Tensor AverageHeads(const Tensor& captured, int64_t batch_index) {
  HIRE_CHECK_EQ(captured.dim(), 4)
      << "expected captured attention [B, l, t, t], got "
      << captured.ShapeString();
  HIRE_CHECK(batch_index >= 0 && batch_index < captured.shape(0))
      << "batch index " << batch_index;
  const int64_t heads = captured.shape(1);
  const int64_t tokens = captured.shape(2);
  HIRE_CHECK_EQ(captured.shape(3), tokens);

  Tensor out({tokens, tokens});
  const float inverse_heads = 1.0f / static_cast<float>(heads);
  for (int64_t h = 0; h < heads; ++h) {
    for (int64_t i = 0; i < tokens; ++i) {
      for (int64_t j = 0; j < tokens; ++j) {
        out.at(i, j) += captured.at(batch_index, h, i, j) * inverse_heads;
      }
    }
  }
  return out;
}

std::vector<AttentionEdge> TopAttentionEdges(const Tensor& attention,
                                             int64_t top_k) {
  HIRE_CHECK_EQ(attention.dim(), 2);
  HIRE_CHECK_EQ(attention.shape(0), attention.shape(1));
  HIRE_CHECK_GT(top_k, 0);
  const int64_t tokens = attention.shape(0);

  std::vector<AttentionEdge> edges;
  edges.reserve(static_cast<size_t>(tokens * (tokens - 1)));
  for (int64_t i = 0; i < tokens; ++i) {
    for (int64_t j = 0; j < tokens; ++j) {
      if (i == j) continue;
      edges.push_back(AttentionEdge{i, j, attention.at(i, j)});
    }
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const AttentionEdge& a, const AttentionEdge& b) {
                     return a.weight > b.weight;
                   });
  if (static_cast<int64_t>(edges.size()) > top_k) {
    edges.resize(static_cast<size_t>(top_k));
  }
  return edges;
}

std::string RenderHeatmap(const Tensor& attention) {
  HIRE_CHECK_EQ(attention.dim(), 2);
  static const char kShades[] = " .:-=+*#%@";
  float max_value = 1e-9f;
  for (int64_t i = 0; i < attention.size(); ++i) {
    max_value = std::max(max_value, attention.flat(i));
  }
  std::ostringstream out;
  for (int64_t i = 0; i < attention.shape(0); ++i) {
    for (int64_t j = 0; j < attention.shape(1); ++j) {
      const int shade = std::min<int>(
          9, static_cast<int>(attention.at(i, j) / max_value * 9.99f));
      out << kShades[shade] << kShades[shade];
    }
    out << "\n";
  }
  return out.str();
}

float MaxRowSumDeviation(const Tensor& attention) {
  HIRE_CHECK_EQ(attention.dim(), 2);
  float worst = 0.0f;
  for (int64_t i = 0; i < attention.shape(0); ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < attention.shape(1); ++j) {
      row += attention.at(i, j);
    }
    worst = std::max(worst, std::fabs(row - 1.0f));
  }
  return worst;
}

}  // namespace core
}  // namespace hire
