#ifndef HIRE_CORE_EVALUATION_H_
#define HIRE_CORE_EVALUATION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/hire_model.h"
#include "core/inference_forward.h"
#include "data/dataset.h"
#include "data/splits.h"
#include "graph/bipartite_graph.h"
#include "graph/samplers.h"
#include "metrics/ranking_metrics.h"

namespace hire {
namespace core {

/// Uniform prediction interface shared by HIRE and every baseline, so all
/// models run through the identical cold-start evaluation protocol.
class RatingPredictor {
 public:
  virtual ~RatingPredictor() = default;

  virtual std::string name() const = 0;

  /// Predicts `user`'s ratings on `items`. `visible_graph` holds every
  /// rating the model may legitimately see at test time (training ratings
  /// plus the 10% support ratings of cold entities); query ratings are never
  /// in it.
  virtual std::vector<float> PredictForUser(
      int64_t user, const std::vector<int64_t>& items,
      const graph::BipartiteGraph& visible_graph) = 0;
};

/// The reusable half of a user's prediction context: the sampled context
/// user rows and a base item pool (the user's own support items first, then
/// neighborhood fill). Sampled once per (user, graph) and reused across
/// query chunks by HirePredictor, and across requests by the serving
/// context cache — a pure function of (graph, sampler, user, seed), so two
/// plans built from the same inputs are identical.
struct UserContextPlan {
  int64_t user = 0;
  /// Context rows, target user first. Size <= the row budget.
  std::vector<int64_t> context_users;
  /// Column pool: support items first (up to the reserve), then sampled
  /// neighborhood items. Size <= the item budget.
  std::vector<int64_t> base_items;
  /// How many leading base_items are the user's own support items.
  int64_t num_support_items = 0;

  /// Rough heap footprint, used by the serving cache for accounting.
  size_t ApproxBytes() const {
    return sizeof(UserContextPlan) +
           (context_users.capacity() + base_items.capacity()) *
               sizeof(int64_t);
  }
};

/// Samples a user's context plan: rows seeded with the user, columns seeded
/// with the user's visible (support) items. Deterministic given `seed`
/// (independent of any caller rng state or call history).
UserContextPlan BuildUserContextPlan(const graph::BipartiteGraph& graph,
                                     const graph::ContextSampler& sampler,
                                     int64_t user, int64_t context_users,
                                     int64_t context_items, uint64_t seed);

/// Thins `context`'s observed ratings to approximately `visible_fraction`
/// via a per-cell hash of (seed, row entity, column entity): whether a cell
/// stays visible depends only on its own identity, never on which other
/// cells share the context. The first `keep_rows` rows (the target users)
/// are always fully preserved.
void ThinObservedCells(graph::PredictionContext* context, int64_t keep_rows,
                       double visible_fraction, uint64_t seed);

/// Adapter exposing a trained HireModel through RatingPredictor: builds a
/// prediction context seeded with (user, query items), assembles visible
/// ratings, and reads the predicted cells off the decoded rating matrix.
/// Query lists longer than the item budget are processed in chunks.
///
/// Prediction is stateless: the context rows are sampled once per user from
/// a seed derived from (seed, user) and reused across every chunk, and the
/// visibility thinning is per-cell deterministic. Consequently the
/// predictions for a chunk depend only on (graph, seed, user, chunk
/// contents) — not on preceding chunks, other users, or call history.
class HirePredictor : public RatingPredictor {
 public:
  /// `context_visible_fraction` matches the paper's test protocol: only this
  /// share of the context's observed ratings stays visible (the target
  /// user's own support ratings are always kept), so test contexts follow
  /// the same density distribution the model was trained on.
  HirePredictor(HireModel* model, const graph::ContextSampler* sampler,
                int64_t context_users, int64_t context_items, uint64_t seed,
                double context_visible_fraction = 0.1);

  std::string name() const override { return "HIRE"; }

  std::vector<float> PredictForUser(
      int64_t user, const std::vector<int64_t>& items,
      const graph::BipartiteGraph& visible_graph) override;

 private:
  HireModel* model_;
  const graph::ContextSampler* sampler_;
  int64_t context_users_;
  int64_t context_items_;
  double context_visible_fraction_;
  uint64_t seed_;
  /// Tape-free fused forward, packed lazily on the first prediction (the
  /// model is trained by then) and reused for every subsequent call; the
  /// arena makes repeat predictions allocation-free. The tape model stays
  /// around as `model_` for attention capture and as the autograd
  /// reference.
  std::unique_ptr<InferenceModel> inference_;
  InferenceArena arena_;
};

/// Cold-start evaluation configuration (paper §VI-A).
struct EvalConfig {
  /// Fraction of test ratings revealed as support context; the rest are the
  /// prediction queries (paper: 10% / 90%).
  double support_fraction = 0.1;
  /// Ranking cut-offs reported (paper: 5, 7, 10).
  std::vector<int> top_ks = {5, 7, 10};
  /// Minimum query items a user needs to be scored.
  int min_query_items = 5;
  /// Cap on ranked lists (users) per evaluation for bounded runtime;
  /// <= 0 means no cap.
  int64_t max_eval_users = 60;
  /// Worker threads for the tensor kernels during prediction: > 0 resizes
  /// the process-wide pool, 0 keeps the current setting.
  int num_threads = 0;
  uint64_t seed = 99;
};

/// Aggregated evaluation outcome.
struct EvalResult {
  /// Mean Precision/NDCG/MAP per cut-off k.
  std::map<int, metrics::RankingMetrics> by_k;
  /// Wall-clock seconds spent inside the predictor (Fig. 6).
  double predict_seconds = 0.0;
  /// Number of ranked lists scored.
  int64_t num_lists = 0;
};

/// Runs the full cold-start protocol: reveals `support_fraction` of the test
/// ratings, builds the visible graph (train + support), groups the remaining
/// query ratings by user, asks the predictor to rank each user's query items
/// and scores the ranking against the actual ratings.
EvalResult EvaluateColdStart(RatingPredictor* predictor,
                             const data::Dataset& dataset,
                             const data::ColdStartSplit& split,
                             const EvalConfig& config);

}  // namespace core
}  // namespace hire

#endif  // HIRE_CORE_EVALUATION_H_
