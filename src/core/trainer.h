#ifndef HIRE_CORE_TRAINER_H_
#define HIRE_CORE_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/hire_model.h"
#include "graph/bipartite_graph.h"
#include "graph/samplers.h"

namespace hire {
namespace core {

/// Training hyper-parameters (paper §VI-A implementation details).
struct TrainerConfig {
  /// Optimisation steps (each step processes one mini-batch of contexts).
  int64_t num_steps = 300;
  /// Contexts per mini-batch (|B| in Algorithm 1).
  int64_t batch_size = 4;
  /// n and m: users/items per prediction context.
  int64_t context_users = 32;
  int64_t context_items = 32;
  /// p: fraction of observed ratings left visible; the rest are masked and
  /// predicted (paper: 10% visible / 90% masked).
  double visible_fraction = 0.1;

  /// Base learning rate for the flat-then-cosine schedule.
  float base_learning_rate = 1e-3f;
  /// Fraction of steps at the flat base rate before cosine annealing.
  float flat_fraction = 0.7f;
  /// Global gradient-norm clip.
  float gradient_clip = 1.0f;
  /// Lookahead wrapper parameters.
  float lookahead_alpha = 0.5f;
  int lookahead_period = 6;
  /// LAMB weight decay.
  float weight_decay = 0.0f;

  /// Log the running loss every this many steps (0 disables).
  int64_t log_every = 0;

  /// When the process-wide obs::TelemetrySink is open, write one JSONL step
  /// record every this many steps (<= 0 behaves like 1). Has no effect while
  /// the sink is closed.
  int64_t telemetry_every = 1;

  /// Fault tolerance. With a non-empty `checkpoint_dir` and
  /// `checkpoint_every > 0`, a full training snapshot (model + optimizer
  /// moments + slow weights + schedule position + sampler RNG stream) is
  /// written atomically every `checkpoint_every` steps, retaining the newest
  /// `checkpoint_keep` files. With `resume`, training continues from the
  /// newest valid snapshot in `checkpoint_dir` (corrupt ones are skipped)
  /// and the resumed run is bitwise identical to an uninterrupted one.
  int64_t checkpoint_every = 0;
  std::string checkpoint_dir;
  int checkpoint_keep = 3;
  bool resume = false;

  /// Divergence guard: a step whose loss or gradient norm is non-finite is
  /// skipped (no optimizer update). After `max_bad_steps` consecutive bad
  /// steps the trainer rolls back to the last good snapshot and multiplies
  /// the learning rate by `divergence_lr_backoff`; the backoff compounds
  /// across successive rollbacks. 0 disables the guard.
  int max_bad_steps = 3;
  float divergence_lr_backoff = 0.5f;
  /// Hard cap on rollbacks per run: exceeding it aborts with CheckError
  /// instead of retraining forever on a run that cannot recover.
  /// 0 disables the cap.
  int64_t max_rollbacks = 8;

  /// Worker threads for the tensor kernels: > 0 resizes the process-wide
  /// pool, 0 keeps the current setting (--threads flag / HIRE_NUM_THREADS
  /// env / hardware concurrency).
  int num_threads = 0;

  uint64_t seed = 7;
};

/// Result of a training run.
struct TrainStats {
  /// Loss of every executed (non-skipped) step in this process. Losses from
  /// trajectories discarded by a divergence rollback are removed, so entries
  /// always describe the surviving trajectory.
  std::vector<float> step_losses;
  float final_loss = 0.0f;
  double train_seconds = 0.0;
  /// First step index this run executed (> 0 when resumed).
  int64_t start_step = 0;
  /// Divergence-guard counters.
  int64_t skipped_steps = 0;
  int64_t rollbacks = 0;
  /// Learning-rate multiplier at the end of the run: divergence_lr_backoff
  /// compounded once per rollback (1.0 when no rollback happened).
  float final_lr_scale = 1.0f;
  int64_t checkpoints_written = 0;
  /// Kernel-time breakdown accumulated over the run (attention overlaps
  /// matmul/softmax: it wraps whole MHSA forwards).
  double matmul_seconds = 0.0;
  double softmax_seconds = 0.0;
  double attention_seconds = 0.0;
  double optimizer_seconds = 0.0;
  double layernorm_seconds = 0.0;
  double embedding_seconds = 0.0;
  double sampling_seconds = 0.0;
  double checkpoint_io_seconds = 0.0;
};

/// Trains `model` on contexts sampled from `graph` with `sampler`
/// (Algorithm 1): LAMB + Lookahead, flat-then-cosine schedule, gradient
/// clipping, masked-MSE objective.
TrainStats TrainHire(HireModel* model, const graph::BipartiteGraph& graph,
                     const graph::ContextSampler& sampler,
                     const TrainerConfig& config);

}  // namespace core
}  // namespace hire

#endif  // HIRE_CORE_TRAINER_H_
