#include "core/context_encoder.h"

#include "autograd/ops.h"
#include "utils/check.h"

namespace hire {
namespace core {

ContextEncoder::ContextEncoder(const data::Dataset* dataset,
                               int64_t attr_embed_dim, Rng* rng)
    : dataset_(dataset), attr_embed_dim_(attr_embed_dim) {
  HIRE_CHECK(dataset_ != nullptr);
  HIRE_CHECK_GT(attr_embed_dim_, 0);

  const auto& user_schema = dataset_->user_schema();
  const auto& item_schema = dataset_->item_schema();
  num_attribute_slots_ = static_cast<int64_t>(user_schema.size()) +
                         static_cast<int64_t>(item_schema.size()) + 1;

  for (size_t a = 0; a < user_schema.size(); ++a) {
    user_attribute_embeddings_.push_back(std::make_unique<nn::Embedding>(
        user_schema[a].num_categories, attr_embed_dim_, rng));
    RegisterSubmodule("user_" + user_schema[a].name,
                      user_attribute_embeddings_.back().get());
  }
  for (size_t a = 0; a < item_schema.size(); ++a) {
    item_attribute_embeddings_.push_back(std::make_unique<nn::Embedding>(
        item_schema[a].num_categories, attr_embed_dim_, rng));
    RegisterSubmodule("item_" + item_schema[a].name,
                      item_attribute_embeddings_.back().get());
  }
  if (dataset_->continuous_ratings()) {
    rating_projection_ =
        std::make_unique<nn::Linear>(1, attr_embed_dim_, rng);
    RegisterSubmodule("rating", rating_projection_.get());
  } else {
    rating_embedding_ = std::make_unique<nn::Embedding>(
        dataset_->NumRatingLevels(), attr_embed_dim_, rng);
    RegisterSubmodule("rating", rating_embedding_.get());
  }
}

ag::Variable ContextEncoder::Encode(
    const graph::PredictionContext& context) const {
  const int64_t n = context.num_users();
  const int64_t m = context.num_items();
  HIRE_CHECK_GT(n, 0);
  HIRE_CHECK_GT(m, 0);

  // x_u = [f_U^1(e_u^1) || ... || f_U^{h_u}(e_u^{h_u})]  (Eq. 7): [n, h_u*f].
  std::vector<ag::Variable> user_parts;
  user_parts.reserve(user_attribute_embeddings_.size());
  for (size_t a = 0; a < user_attribute_embeddings_.size(); ++a) {
    std::vector<int64_t> indices(static_cast<size_t>(n));
    for (int64_t k = 0; k < n; ++k) {
      indices[static_cast<size_t>(k)] =
          dataset_->user_attributes(context.users[static_cast<size_t>(k)])[a];
    }
    user_parts.push_back(user_attribute_embeddings_[a]->Forward(indices));
  }
  ag::Variable user_features = user_parts.size() == 1
                                   ? user_parts[0]
                                   : ag::Concat(user_parts, /*axis=*/1);

  // x_i (Eq. 8): [m, h_i*f].
  std::vector<ag::Variable> item_parts;
  item_parts.reserve(item_attribute_embeddings_.size());
  for (size_t a = 0; a < item_attribute_embeddings_.size(); ++a) {
    std::vector<int64_t> indices(static_cast<size_t>(m));
    for (int64_t j = 0; j < m; ++j) {
      indices[static_cast<size_t>(j)] =
          dataset_->item_attributes(context.items[static_cast<size_t>(j)])[a];
    }
    item_parts.push_back(item_attribute_embeddings_[a]->Forward(indices));
  }
  ag::Variable item_features = item_parts.size() == 1
                                   ? item_parts[0]
                                   : ag::Concat(item_parts, /*axis=*/1);

  // x_r (Eq. 9): [n*m, f]; masked cells become zero vectors.
  ag::Variable rating_features;
  if (dataset_->continuous_ratings()) {
    // Linear map of the normalised scalar; masked rows zeroed by an
    // elementwise product with the (constant) expanded visibility mask.
    Tensor scalars({n * m, 1});
    Tensor mask({n * m, attr_embed_dim_});
    for (int64_t k = 0; k < n; ++k) {
      for (int64_t j = 0; j < m; ++j) {
        if (context.observed_mask.at(k, j) > 0.0f) {
          scalars.at(k * m + j, 0) =
              dataset_->NormalizeRating(context.observed_ratings.at(k, j));
          for (int64_t c = 0; c < attr_embed_dim_; ++c) {
            mask.at(k * m + j, c) = 1.0f;
          }
        }
      }
    }
    rating_features =
        ag::Mul(rating_projection_->Forward(ag::Variable(scalars, false)),
                ag::Variable(mask, false));
    rating_features = ag::Reshape(rating_features, {n, m, attr_embed_dim_});
  } else {
    std::vector<int64_t> rating_indices(static_cast<size_t>(n * m), -1);
    for (int64_t k = 0; k < n; ++k) {
      for (int64_t j = 0; j < m; ++j) {
        if (context.observed_mask.at(k, j) > 0.0f) {
          rating_indices[static_cast<size_t>(k * m + j)] =
              dataset_->RatingToLevel(context.observed_ratings.at(k, j));
        }
      }
    }
    rating_features = ag::Reshape(rating_embedding_->Forward(rating_indices),
                                  {n, m, attr_embed_dim_});
  }

  // H[k, j, :] = [x_{u_k} || x_{i_j} || x_r]  (Eq. 6): [n, m, e].
  ag::Variable user_block = ag::BroadcastUsers(user_features, m);
  ag::Variable item_block = ag::BroadcastItems(item_features, n);
  return ag::Concat({user_block, item_block, rating_features}, /*axis=*/2);
}

}  // namespace core
}  // namespace hire
