#ifndef HIRE_CORE_CONTEXT_ENCODER_H_
#define HIRE_CORE_CONTEXT_ENCODER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "data/dataset.h"
#include "graph/context_builder.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/random.h"

namespace hire {
namespace core {

/// Builds the initial context embedding H ∈ R^{n x m x e} (paper Eq. 6-9).
///
/// Every categorical user attribute k has its own transform f_U^k, every
/// item attribute its f_I^k, and ratings have f_R; all are realised as
/// embedding tables (one-hot times weight matrix == row lookup). The cell
/// (k, j) concatenates [x_{u_k} || x_{i_j} || x_r], so
/// e = (h_u + h_i + 1) * f. Masked ratings contribute a zero vector.
///
/// Datasets with continuous rating scales (Dataset::continuous_ratings)
/// use the paper's sketched extension: f_R becomes a linear map of the
/// normalised scalar rating instead of a level lookup.
class ContextEncoder : public nn::Module {
 public:
  /// `dataset` supplies schemas and attribute values; it must outlive the
  /// encoder.
  ContextEncoder(const data::Dataset* dataset, int64_t attr_embed_dim,
                 Rng* rng);

  /// Encodes a prediction context into H: [n, m, e].
  ag::Variable Encode(const graph::PredictionContext& context) const;

  /// Number of attribute slots h = h_u + h_i + 1 (the +1 is the rating).
  int64_t num_attribute_slots() const { return num_attribute_slots_; }

  /// f: per-attribute embedding width.
  int64_t attr_embed_dim() const { return attr_embed_dim_; }

  /// e = h * f: per-cell embedding width.
  int64_t cell_embed_dim() const {
    return num_attribute_slots_ * attr_embed_dim_;
  }

 private:
  const data::Dataset* dataset_;
  int64_t attr_embed_dim_;
  int64_t num_attribute_slots_;
  std::vector<std::unique_ptr<nn::Embedding>> user_attribute_embeddings_;
  std::vector<std::unique_ptr<nn::Embedding>> item_attribute_embeddings_;
  /// Discrete scales: level lookup table. Continuous scales: linear map.
  std::unique_ptr<nn::Embedding> rating_embedding_;
  std::unique_ptr<nn::Linear> rating_projection_;
};

}  // namespace core
}  // namespace hire

#endif  // HIRE_CORE_CONTEXT_ENCODER_H_
