#include "core/inference_forward.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "obs/kernel_timers.h"
#include "tensor/ops.h"
#include "utils/check.h"

namespace hire {
namespace core {

// ---------------------------------------------------------------------------
// InferenceArena.
// ---------------------------------------------------------------------------

float* InferenceArena::Alloc(int64_t count) {
  HIRE_CHECK_GT(count, 0);
  while (active_ < blocks_.size()) {
    Block& block = blocks_[active_];
    if (block.used + count <= block.capacity) {
      float* out = block.data.get() + block.used;
      block.used += count;
      return out;
    }
    // The tail of this block is wasted until the next Reset/Rewind. The
    // allocation sequence is identical every forward, so the same waste
    // recurs in the same place and capacity still converges.
    ++active_;
  }
  // Grow: at least double total capacity so warm-up takes O(log) blocks.
  constexpr int64_t kMinBlockFloats = int64_t{1} << 16;  // 256 KiB
  const int64_t want = std::max(count, std::max(kMinBlockFloats,
                                                2 * capacity_floats()));
  Block block;
  block.data = std::make_unique<float[]>(static_cast<size_t>(want));
  block.capacity = want;
  block.used = count;
  blocks_.push_back(std::move(block));
  active_ = blocks_.size() - 1;
  ++growth_count_;
  return blocks_.back().data.get();
}

void InferenceArena::Reset() {
  for (Block& block : blocks_) block.used = 0;
  active_ = 0;
}

InferenceArena::Mark InferenceArena::CurrentMark() const {
  Mark mark;
  mark.block = active_;
  mark.used = active_ < blocks_.size() ? blocks_[active_].used : 0;
  return mark;
}

void InferenceArena::Rewind(const Mark& mark) {
  HIRE_CHECK(mark.block <= blocks_.size());
  for (size_t b = mark.block; b < blocks_.size(); ++b) blocks_[b].used = 0;
  if (mark.block < blocks_.size()) blocks_[mark.block].used = mark.used;
  active_ = mark.block;
}

int64_t InferenceArena::capacity_floats() const {
  int64_t total = 0;
  for (const Block& block : blocks_) total += block.capacity;
  return total;
}

Tensor& InferenceArena::output(int64_t n, int64_t m) {
  if (output_.dim() != 2 || output_.shape(0) != n || output_.shape(1) != m) {
    output_ = Tensor({n, m});
  }
  return output_;
}

// ---------------------------------------------------------------------------
// InferenceModel: packing.
// ---------------------------------------------------------------------------

namespace {

using NamedParams = std::vector<std::pair<std::string, ag::Variable>>;

const Tensor& Find(const NamedParams& params, const std::string& name) {
  for (const auto& [param_name, variable] : params) {
    if (param_name == name) return variable.value();
  }
  HIRE_CHECK(false) << "missing model parameter " << name;
  static const Tensor* kEmpty = new Tensor();
  return *kEmpty;
}

nn::FusedAttentionWeights PackMhsa(const NamedParams& params,
                                   const std::string& prefix,
                                   int64_t embed_dim, int64_t num_heads,
                                   int64_t head_dim) {
  return nn::PackAttentionWeights(
      embed_dim, num_heads, head_dim, Find(params, prefix + "query.weight"),
      Find(params, prefix + "query.bias"), Find(params, prefix + "key.weight"),
      Find(params, prefix + "key.bias"), Find(params, prefix + "value.weight"),
      Find(params, prefix + "value.bias"),
      Find(params, prefix + "output.weight"),
      Find(params, prefix + "output.bias"));
}

}  // namespace

InferenceModel::InferenceModel(const HireModel& model)
    : dataset_(&model.dataset()), config_(model.config()) {
  rating_scale_ = dataset_->max_rating();
  attr_embed_dim_ = config_.attr_embed_dim;
  const auto& user_schema = dataset_->user_schema();
  const auto& item_schema = dataset_->item_schema();
  num_attribute_slots_ = static_cast<int64_t>(user_schema.size()) +
                         static_cast<int64_t>(item_schema.size()) + 1;
  cell_embed_dim_ = num_attribute_slots_ * attr_embed_dim_;

  const NamedParams params = model.NamedParameters();

  for (const auto& attr : user_schema) {
    user_tables_.push_back(Find(params, "encoder.user_" + attr.name +
                                            ".table"));
  }
  for (const auto& attr : item_schema) {
    item_tables_.push_back(Find(params, "encoder.item_" + attr.name +
                                            ".table"));
  }
  continuous_ratings_ = dataset_->continuous_ratings();
  if (continuous_ratings_) {
    rating_weight_ = Find(params, "encoder.rating.weight");  // [1, f]
    rating_bias_ = Find(params, "encoder.rating.bias");      // [f]
  } else {
    rating_table_ = Find(params, "encoder.rating.table");
  }

  // MhsaConfig resolves head_dim == 0 to embed_dim / num_heads; MBA layers
  // always derive max(1, f / heads) (see HimBlock's constructor).
  const int64_t cell_head_dim = config_.head_dim > 0
                                    ? config_.head_dim
                                    : cell_embed_dim_ / config_.num_heads;
  const int64_t attr_head_dim =
      std::max<int64_t>(1, attr_embed_dim_ / config_.num_heads);

  blocks_.resize(static_cast<size_t>(config_.num_him_blocks));
  for (int k = 0; k < config_.num_him_blocks; ++k) {
    BlockWeights& block = blocks_[static_cast<size_t>(k)];
    const std::string prefix = "him" + std::to_string(k) + ".";
    auto pack_norm = [&](const std::string& name, NormWeights* norm) {
      if (!config_.use_layer_norm) return;
      norm->present = true;
      norm->gamma = Find(params, prefix + name + ".gamma");
      norm->beta = Find(params, prefix + name + ".beta");
    };
    if (config_.use_user_attention) {
      block.has_user = true;
      block.user = PackMhsa(params, prefix + "mbu.", cell_embed_dim_,
                            config_.num_heads, cell_head_dim);
      pack_norm("mbu_norm", &block.user_norm);
    }
    if (config_.use_item_attention) {
      block.has_item = true;
      block.item = PackMhsa(params, prefix + "mbi.", cell_embed_dim_,
                            config_.num_heads, cell_head_dim);
      pack_norm("mbi_norm", &block.item_norm);
    }
    if (config_.use_attr_attention) {
      block.has_attr = true;
      block.attr = PackMhsa(params, prefix + "mba.", attr_embed_dim_,
                            config_.num_heads, attr_head_dim);
      pack_norm("mba_norm", &block.attr_norm);
    }
  }

  decoder_weight_ = Find(params, "decoder.weight");
  decoder_bias_ = Find(params, "decoder.bias");
  HIRE_CHECK_EQ(decoder_weight_.shape(0), cell_embed_dim_);
  HIRE_CHECK_EQ(decoder_weight_.shape(1), 1);
}

// ---------------------------------------------------------------------------
// InferenceModel: forward.
// ---------------------------------------------------------------------------

namespace {

/// Replicates ag::LayerNorm's forward rounding chain exactly: double mean
/// and variance, one float cast of the mean, float multiply by the float
/// inverse stddev, then gamma/beta.
void LayerNormInto(const float* x, const float* gamma, const float* beta,
                   float* y, int64_t rows, int64_t d) {
  constexpr float kEpsilon = 1e-5f;  // nn::LayerNorm's default
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    float* yr = y + r * d;
    double mean = 0.0;
    for (int64_t j = 0; j < d; ++j) mean += xr[j];
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const double c = xr[j] - mean;
      var += c * c;
    }
    var /= static_cast<double>(d);
    const float istd = static_cast<float>(1.0 / std::sqrt(var + kEpsilon));
    const float fmean = static_cast<float>(mean);
    for (int64_t j = 0; j < d; ++j) {
      yr[j] = (xr[j] - fmean) * istd * gamma[j] + beta[j];
    }
  }
}

}  // namespace

void InferenceModel::EncodeInto(const graph::PredictionContext& context,
                                float* h) const {
  const int64_t n = context.num_users();
  const int64_t m = context.num_items();
  const int64_t f = attr_embed_dim_;
  const int64_t e = cell_embed_dim_;
  const int64_t user_width = static_cast<int64_t>(user_tables_.size()) * f;
  const int64_t item_width = static_cast<int64_t>(item_tables_.size()) * f;
  const int64_t rating_offset = user_width + item_width;

  // Item attribute segment: gather once into row k = 0, replicate down.
  for (int64_t j = 0; j < m; ++j) {
    float* cell = h + j * e + user_width;
    const auto& attrs =
        dataset_->item_attributes(context.items[static_cast<size_t>(j)]);
    for (size_t a = 0; a < item_tables_.size(); ++a) {
      const float* row =
          item_tables_[a].data() + attrs[a] * f;
      std::copy(row, row + f, cell + static_cast<int64_t>(a) * f);
    }
  }
  for (int64_t k = 1; k < n; ++k) {
    for (int64_t j = 0; j < m; ++j) {
      const float* src = h + j * e + user_width;
      std::copy(src, src + item_width, h + (k * m + j) * e + user_width);
    }
  }

  // User attribute segment: gather once per user, replicate across items.
  for (int64_t k = 0; k < n; ++k) {
    float* first = h + k * m * e;
    const auto& attrs =
        dataset_->user_attributes(context.users[static_cast<size_t>(k)]);
    for (size_t a = 0; a < user_tables_.size(); ++a) {
      const float* row = user_tables_[a].data() + attrs[a] * f;
      std::copy(row, row + f, first + static_cast<int64_t>(a) * f);
    }
    for (int64_t j = 1; j < m; ++j) {
      std::copy(first, first + user_width, h + (k * m + j) * e);
    }
  }

  // Rating segment: level lookup (discrete) or scalar projection
  // (continuous); masked cells are zero vectors, matching the tape
  // encoder's -1-index lookup / mask product.
  for (int64_t k = 0; k < n; ++k) {
    for (int64_t j = 0; j < m; ++j) {
      float* cell = h + (k * m + j) * e + rating_offset;
      const bool visible = context.observed_mask.at(k, j) > 0.0f;
      if (!visible) {
        std::fill(cell, cell + f, 0.0f);
        continue;
      }
      const float rating = context.observed_ratings.at(k, j);
      if (continuous_ratings_) {
        const float s = dataset_->NormalizeRating(rating);
        const float* w = rating_weight_.data();
        const float* b = rating_bias_.data();
        for (int64_t c = 0; c < f; ++c) {
          // Two roundings, same as the tape's 1-wide GEMM + bias add.
          const float prod = s * w[c];
          cell[c] = prod + b[c];
        }
      } else {
        const float* row =
            rating_table_.data() + dataset_->RatingToLevel(rating) * f;
        std::copy(row, row + f, cell);
      }
    }
  }
}

void InferenceModel::BlockForward(const BlockWeights& block, float* h,
                                  int64_t n, int64_t m,
                                  InferenceArena* arena) const {
  const int64_t e = cell_embed_dim_;
  const int64_t cells = n * m;
  const InferenceArena::Mark mark = arena->CurrentMark();

  // Residual + (optional) layer norm, writing the sublayer result back into
  // h. Addition is commutative, so `fused + h` is bitwise the tape's
  // Add(current, fused).
  auto finish = [&](const float* fused, const NormWeights& norm) {
    ScopedKernelTimer timer(KernelCategory::kInferArena);
    float* merged = const_cast<float*>(fused);
    if (config_.use_residual) {
      for (int64_t i = 0; i < cells * e; ++i) merged[i] += h[i];
    }
    if (norm.present) {
      LayerNormInto(merged, norm.gamma.data(), norm.beta.data(), h, cells, e);
    } else {
      std::copy(merged, merged + cells * e, h);
    }
  };

  // MBU: transpose to [m, n, e] so items batch sequences of n user tokens.
  if (block.has_user) {
    float* views = arena->Alloc(cells * e);
    {
      ScopedKernelTimer timer(KernelCategory::kInferArena);
      for (int64_t k = 0; k < n; ++k) {
        for (int64_t j = 0; j < m; ++j) {
          std::copy(h + (k * m + j) * e, h + (k * m + j) * e + e,
                    views + (j * n + k) * e);
        }
      }
    }
    float* attn = arena->Alloc(cells * e);
    float* scratch = arena->Alloc(block.user.ScratchFloats(m, n));
    nn::FusedAttentionForward(block.user, views, m, n, attn, scratch);
    {
      ScopedKernelTimer timer(KernelCategory::kInferArena);
      for (int64_t j = 0; j < m; ++j) {
        for (int64_t k = 0; k < n; ++k) {
          std::copy(attn + (j * n + k) * e, attn + (j * n + k) * e + e,
                    views + (k * m + j) * e);
        }
      }
    }
    finish(views, block.user_norm);
  }

  // MBI: users already batch sequences of m item tokens.
  if (block.has_item) {
    float* attn = arena->Alloc(cells * e);
    float* scratch = arena->Alloc(block.item.ScratchFloats(n, m));
    nn::FusedAttentionForward(block.item, h, n, m, attn, scratch);
    finish(attn, block.item_norm);
  }

  // MBA: reinterpret [n, m, e] as [n*m, h, f] — free, row-major layout.
  if (block.has_attr) {
    float* attn = arena->Alloc(cells * e);
    float* scratch =
        arena->Alloc(block.attr.ScratchFloats(cells, num_attribute_slots_));
    nn::FusedAttentionForward(block.attr, h, cells, num_attribute_slots_,
                              attn, scratch);
    finish(attn, block.attr_norm);
  }

  arena->Rewind(mark);
}

const Tensor& InferenceModel::Predict(const graph::PredictionContext& context,
                                      InferenceArena* arena) const {
  HIRE_CHECK(arena != nullptr);
  const int64_t n = context.num_users();
  const int64_t m = context.num_items();
  HIRE_CHECK_GT(n, 0);
  HIRE_CHECK_GT(m, 0);

  arena->Reset();
  Tensor& out = arena->output(n, m);
  float* h = arena->Alloc(n * m * cell_embed_dim_);
  {
    ScopedKernelTimer timer(KernelCategory::kInferArena);
    EncodeInto(context, h);
  }
  for (const BlockWeights& block : blocks_) {
    BlockForward(block, h, n, m, arena);
  }
  // R_hat = alpha * sigmoid(decoder(h)) fused into the GEMM epilogue —
  // bitwise the tape's Linear -> Sigmoid -> MulScalar chain.
  ops::GemmBiasActInto(h, decoder_weight_.data(), decoder_bias_.data(),
                       out.data(), n * m, cell_embed_dim_, 1,
                       /*b_transposed=*/false, ops::Activation::kSigmoid,
                       rating_scale_);
  return out;
}

}  // namespace core
}  // namespace hire
