#ifndef HIRE_CORE_HIRE_MODEL_H_
#define HIRE_CORE_HIRE_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "core/context_encoder.h"
#include "core/him_block.h"
#include "core/hire_config.h"
#include "data/dataset.h"
#include "graph/context_builder.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/random.h"

namespace hire {
namespace core {

/// The HIRE model (paper Fig. 3): context encoder -> K HIM blocks ->
/// sigmoid decoder producing a dense predicted rating matrix
/// R_hat = alpha * sigmoid(g_theta(H^(A))) (Eq. 16), where alpha is the
/// dataset's maximum rating.
///
/// Property 5.1 (permutation equivariance w.r.t. user and item order) holds
/// by construction and is verified in tests/core_test.cc.
class HireModel : public nn::Module {
 public:
  /// `dataset` provides schemas/attributes; it must outlive the model.
  /// `seed` drives parameter initialisation and dropout.
  HireModel(const data::Dataset* dataset, const HireConfig& config,
            uint64_t seed);

  /// Differentiable forward pass: predicted rating matrix [n, m].
  ag::Variable Forward(const graph::PredictionContext& context);

  /// Inference: predicted rating matrix without gradient tracking.
  Tensor Predict(const graph::PredictionContext& context);

  const HireConfig& config() const { return config_; }
  const data::Dataset& dataset() const { return *dataset_; }

  /// Attention capture for the Fig. 9 case study; see HimBlock accessors.
  void EnableAttentionCapture(bool enable);
  const HimBlock& him_block(int index) const;

 private:
  const data::Dataset* dataset_;
  HireConfig config_;
  Rng rng_;  // dropout stream
  float rating_scale_;

  std::unique_ptr<ContextEncoder> encoder_;
  std::vector<std::unique_ptr<HimBlock>> him_blocks_;
  std::unique_ptr<nn::Linear> decoder_;
};

}  // namespace core
}  // namespace hire

#endif  // HIRE_CORE_HIRE_MODEL_H_
