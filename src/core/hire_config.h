#ifndef HIRE_CORE_HIRE_CONFIG_H_
#define HIRE_CORE_HIRE_CONFIG_H_

#include <cstdint>

namespace hire {
namespace core {

/// Hyper-parameters of the HIRE model.
///
/// Defaults follow the paper's configuration (3 HIM blocks, 8 heads of
/// hidden dimension 16, f = 16, contexts of 32 users x 32 items, 10% of
/// observed ratings visible). The CPU-scale benchmark harness overrides the
/// width parameters downward; every experiment binary prints the
/// configuration it ran.
struct HireConfig {
  /// K: number of stacked Heterogeneous Interaction Modules.
  int num_him_blocks = 3;
  /// l: attention heads per MHSA layer.
  int64_t num_heads = 8;
  /// d_k = d_v: hidden dimension of each head.
  int64_t head_dim = 16;
  /// f: embedding dimension of each attribute (and of ratings).
  int64_t attr_embed_dim = 16;

  /// Ablation toggles for the three attention layers (Table VI):
  /// MBU (between users), MBI (between items), MBA (between attributes).
  bool use_user_attention = true;
  bool use_item_attention = true;
  bool use_attr_attention = true;

  /// Residual connections and layer normalisation around each attention
  /// layer. The paper describes bare MHSA stacks; residual+LN is the
  /// standard stabilisation for K*3 stacked attention layers and is kept
  /// configurable (see DESIGN.md).
  bool use_residual = true;
  bool use_layer_norm = true;

  /// Dropout on attention-block outputs; 0 disables.
  float dropout = 0.0f;
};

}  // namespace core
}  // namespace hire

#endif  // HIRE_CORE_HIRE_CONFIG_H_
