#ifndef HIRE_CORE_HIM_BLOCK_H_
#define HIRE_CORE_HIM_BLOCK_H_

#include <cstdint>
#include <memory>

#include "autograd/variable.h"
#include "core/hire_config.h"
#include "nn/layer_norm.h"
#include "nn/module.h"
#include "nn/multi_head_self_attention.h"
#include "tensor/random.h"

namespace hire {
namespace core {

/// Heterogeneous Interaction Module (paper §IV-C): three stacked
/// parameter-sharing multi-head self-attention layers over a context tensor
/// H ∈ R^{n x m x e}:
///
///  - MBU (Eq. 10-11): attention between the n users, applied in parallel to
///    each item's embedding view H[:, j, :].
///  - MBI (Eq. 12-13): attention between the m items, applied in parallel to
///    each user's embedding view H[k, :, :].
///  - MBA (Eq. 14-15): attention between the h attribute slots, applied in
///    parallel to each user-item pair view reshaped to [h, f].
///
/// Any subset of the three layers can be disabled (Table VI ablation).
/// Residual connections and layer norm around each layer are configurable.
class HimBlock : public nn::Module {
 public:
  /// `cell_embed_dim` is e = h * f; `num_attribute_slots` is h.
  HimBlock(const HireConfig& config, int64_t cell_embed_dim,
           int64_t num_attribute_slots, Rng* rng);

  /// H: [n, m, e] -> [n, m, e].
  ag::Variable Forward(const ag::Variable& h, Rng* dropout_rng) const;

  /// Enables retention of attention weights for the case study (Fig. 9).
  void EnableAttentionCapture(bool enable);

  /// Captured weights, shapes: MBU [m, l, n, n]; MBI [n, l, m, m];
  /// MBA [n*m, l, h, h]. Empty when capture is off or the layer is disabled.
  const Tensor& captured_user_attention() const;
  const Tensor& captured_item_attention() const;
  const Tensor& captured_attribute_attention() const;

 private:
  HireConfig config_;
  int64_t cell_embed_dim_;
  int64_t num_attribute_slots_;
  int64_t attr_embed_dim_;

  std::unique_ptr<nn::MultiHeadSelfAttention> user_attention_;
  std::unique_ptr<nn::MultiHeadSelfAttention> item_attention_;
  std::unique_ptr<nn::MultiHeadSelfAttention> attribute_attention_;
  std::unique_ptr<nn::LayerNorm> user_norm_;
  std::unique_ptr<nn::LayerNorm> item_norm_;
  std::unique_ptr<nn::LayerNorm> attribute_norm_;
};

}  // namespace core
}  // namespace hire

#endif  // HIRE_CORE_HIM_BLOCK_H_
