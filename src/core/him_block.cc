#include "core/him_block.h"

#include "autograd/ops.h"
#include "utils/check.h"

namespace hire {
namespace core {

HimBlock::HimBlock(const HireConfig& config, int64_t cell_embed_dim,
                   int64_t num_attribute_slots, Rng* rng)
    : config_(config),
      cell_embed_dim_(cell_embed_dim),
      num_attribute_slots_(num_attribute_slots),
      attr_embed_dim_(config.attr_embed_dim) {
  HIRE_CHECK_EQ(cell_embed_dim_, num_attribute_slots_ * attr_embed_dim_)
      << "e must equal h * f";

  if (config_.use_user_attention) {
    nn::MhsaConfig mhsa;
    mhsa.embed_dim = cell_embed_dim_;
    mhsa.num_heads = config_.num_heads;
    mhsa.head_dim = config_.head_dim;
    user_attention_ = std::make_unique<nn::MultiHeadSelfAttention>(mhsa, rng);
    RegisterSubmodule("mbu", user_attention_.get());
    if (config_.use_layer_norm) {
      user_norm_ = std::make_unique<nn::LayerNorm>(cell_embed_dim_);
      RegisterSubmodule("mbu_norm", user_norm_.get());
    }
  }
  if (config_.use_item_attention) {
    nn::MhsaConfig mhsa;
    mhsa.embed_dim = cell_embed_dim_;
    mhsa.num_heads = config_.num_heads;
    mhsa.head_dim = config_.head_dim;
    item_attention_ = std::make_unique<nn::MultiHeadSelfAttention>(mhsa, rng);
    RegisterSubmodule("mbi", item_attention_.get());
    if (config_.use_layer_norm) {
      item_norm_ = std::make_unique<nn::LayerNorm>(cell_embed_dim_);
      RegisterSubmodule("mbi_norm", item_norm_.get());
    }
  }
  if (config_.use_attr_attention) {
    nn::MhsaConfig mhsa;
    mhsa.embed_dim = attr_embed_dim_;
    mhsa.num_heads = config_.num_heads;
    // Attribute tokens are f-dimensional; derive a per-head width that
    // keeps the layer small.
    mhsa.head_dim =
        std::max<int64_t>(1, attr_embed_dim_ / config_.num_heads);
    attribute_attention_ =
        std::make_unique<nn::MultiHeadSelfAttention>(mhsa, rng);
    RegisterSubmodule("mba", attribute_attention_.get());
    if (config_.use_layer_norm) {
      attribute_norm_ = std::make_unique<nn::LayerNorm>(cell_embed_dim_);
      RegisterSubmodule("mba_norm", attribute_norm_.get());
    }
  }
}

ag::Variable HimBlock::Forward(const ag::Variable& h, Rng* dropout_rng) const {
  HIRE_CHECK_EQ(h.value().dim(), 3);
  HIRE_CHECK_EQ(h.value().shape(2), cell_embed_dim_);
  const int64_t n = h.value().shape(0);
  const int64_t m = h.value().shape(1);

  auto maybe_dropout = [&](const ag::Variable& x) {
    return ag::Dropout(x, config_.dropout, training(), dropout_rng);
  };

  ag::Variable current = h;

  // MBU (Eq. 10-11): each item view H[:, j, :] is a sequence of n user
  // tokens. Transposing to [m, n, e] makes items the batch axis.
  if (user_attention_ != nullptr) {
    ag::Variable views = ag::Permute(current, {1, 0, 2});
    ag::Variable fused = maybe_dropout(user_attention_->Forward(views));
    fused = ag::Permute(fused, {1, 0, 2});
    if (config_.use_residual) fused = ag::Add(current, fused);
    if (user_norm_ != nullptr) fused = user_norm_->Forward(fused);
    current = fused;
  }

  // MBI (Eq. 12-13): each user view H[k, :, :] is a sequence of m item
  // tokens; users are already the batch axis.
  if (item_attention_ != nullptr) {
    ag::Variable fused = maybe_dropout(item_attention_->Forward(current));
    if (config_.use_residual) fused = ag::Add(current, fused);
    if (item_norm_ != nullptr) fused = item_norm_->Forward(fused);
    current = fused;
  }

  // MBA (Eq. 14-15): each user-item pair view is a sequence of h attribute
  // tokens of width f.
  if (attribute_attention_ != nullptr) {
    ag::Variable views = ag::Reshape(
        current, {n * m, num_attribute_slots_, attr_embed_dim_});
    ag::Variable fused = attribute_attention_->Forward(views);
    fused = maybe_dropout(ag::Reshape(fused, {n, m, cell_embed_dim_}));
    if (config_.use_residual) fused = ag::Add(current, fused);
    if (attribute_norm_ != nullptr) fused = attribute_norm_->Forward(fused);
    current = fused;
  }

  return current;
}

void HimBlock::EnableAttentionCapture(bool enable) {
  if (user_attention_ != nullptr) {
    user_attention_->EnableAttentionCapture(enable);
  }
  if (item_attention_ != nullptr) {
    item_attention_->EnableAttentionCapture(enable);
  }
  if (attribute_attention_ != nullptr) {
    attribute_attention_->EnableAttentionCapture(enable);
  }
}

namespace {
const Tensor& EmptyTensor() {
  static const Tensor* kEmpty = new Tensor();
  return *kEmpty;
}
}  // namespace

const Tensor& HimBlock::captured_user_attention() const {
  return user_attention_ != nullptr ? user_attention_->captured_attention()
                                    : EmptyTensor();
}

const Tensor& HimBlock::captured_item_attention() const {
  return item_attention_ != nullptr ? item_attention_->captured_attention()
                                    : EmptyTensor();
}

const Tensor& HimBlock::captured_attribute_attention() const {
  return attribute_attention_ != nullptr
             ? attribute_attention_->captured_attention()
             : EmptyTensor();
}

}  // namespace core
}  // namespace hire
