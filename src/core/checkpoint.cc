#include "core/checkpoint.h"

#include <algorithm>
#include <filesystem>

#include "nn/serialize.h"
#include "utils/check.h"
#include "utils/fault_injection.h"
#include "utils/logging.h"
#include "utils/string_utils.h"

namespace hire {
namespace core {

namespace {

constexpr char kCheckpointPrefix[] = "ckpt-";
constexpr char kCheckpointSuffix[] = ".snap";

/// Parses "ckpt-<step>.snap"; returns -1 for non-checkpoint names.
int64_t StepFromFileName(const std::string& name) {
  if (!StartsWith(name, kCheckpointPrefix)) return -1;
  const size_t suffix_at = name.rfind(kCheckpointSuffix);
  if (suffix_at == std::string::npos ||
      suffix_at + sizeof(kCheckpointSuffix) - 1 != name.size()) {
    return -1;
  }
  const std::string digits = name.substr(
      sizeof(kCheckpointPrefix) - 1, suffix_at - (sizeof(kCheckpointPrefix) - 1));
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  return ParseInt64(digits);
}

}  // namespace

StateDict CaptureTrainingState(const nn::Module& model,
                               const optim::Optimizer& optimizer,
                               const Rng& rng, const ResumeInfo& info) {
  StateDict state;
  nn::ExportParameters(model, "model.", &state);
  state.Merge(optimizer.StateDict(), "optim.");
  const auto rng_words = rng.ExportState();
  for (size_t w = 0; w < rng_words.size(); ++w) {
    state.PutScalar("rng." + std::to_string(w), rng_words[w]);
  }
  state.PutScalar("trainer.next_step", static_cast<uint64_t>(info.next_step));
  state.PutFloat("trainer.lr_scale", info.lr_scale);
  return state;
}

ResumeInfo RestoreTrainingState(const StateDict& state, nn::Module* model,
                                optim::Optimizer* optimizer, Rng* rng) {
  HIRE_CHECK(model != nullptr);
  HIRE_CHECK(optimizer != nullptr);
  HIRE_CHECK(rng != nullptr);
  nn::ImportParameters(model, "model.", state);
  optimizer->LoadStateDict(state.Extract("optim."));
  std::array<uint64_t, Rng::kStateWords> rng_words{};
  for (size_t w = 0; w < rng_words.size(); ++w) {
    rng_words[w] = state.GetScalar("rng." + std::to_string(w));
  }
  rng->RestoreState(rng_words);
  ResumeInfo info;
  info.next_step = static_cast<int64_t>(state.GetScalar("trainer.next_step"));
  info.lr_scale = state.GetFloat("trainer.lr_scale");
  return info;
}

std::string CheckpointFileName(int64_t next_step) {
  HIRE_CHECK_GE(next_step, 0);
  std::string digits = std::to_string(next_step);
  if (digits.size() < 12) digits.insert(0, 12 - digits.size(), '0');
  return kCheckpointPrefix + digits + kCheckpointSuffix;
}

std::string WriteCheckpoint(const std::string& dir, int64_t next_step,
                            const StateDict& state, int keep) {
  HIRE_CHECK(!dir.empty()) << "checkpoint directory is empty";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + CheckpointFileName(next_step);
  nn::SaveStateDict(state, path);
  FaultInjector::Global().MaybeCorruptCheckpoint(path);

  if (keep > 0) {
    std::vector<int64_t> steps = ListCheckpointSteps(dir);
    while (steps.size() > static_cast<size_t>(keep)) {
      const std::string victim = dir + "/" + CheckpointFileName(steps.front());
      std::error_code error;
      std::filesystem::remove(victim, error);
      if (error) {
        HIRE_LOG(Warning) << "cannot remove old checkpoint '" << victim
                          << "': " << error.message();
      }
      steps.erase(steps.begin());
    }
  }
  return path;
}

std::vector<int64_t> ListCheckpointSteps(const std::string& dir) {
  std::vector<int64_t> steps;
  std::error_code error;
  std::filesystem::directory_iterator it(dir, error);
  if (error) return steps;
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    const int64_t step = StepFromFileName(entry.path().filename().string());
    if (step >= 0) steps.push_back(step);
  }
  std::sort(steps.begin(), steps.end());
  return steps;
}

std::optional<LoadedCheckpoint> LoadLatestCheckpoint(const std::string& dir) {
  std::vector<int64_t> steps = ListCheckpointSteps(dir);
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    const std::string path = dir + "/" + CheckpointFileName(*it);
    try {
      LoadedCheckpoint loaded;
      loaded.state = nn::LoadStateDict(path);
      loaded.path = path;
      return loaded;
    } catch (const std::exception& error) {
      // Catch std::exception, not just CheckError: a corrupt snapshot can
      // also surface as bad_alloc/length_error/filesystem_error, and any of
      // them must fall back to the next-older snapshot, not abort resume.
      HIRE_LOG(Warning) << "skipping unusable checkpoint '" << path
                        << "': " << error.what();
    }
  }
  return std::nullopt;
}

}  // namespace core
}  // namespace hire
