#include "core/trainer.h"

#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "autograd/ops.h"
#include "core/checkpoint.h"
#include "graph/context_builder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "optim/lamb.h"
#include "optim/lookahead.h"
#include "optim/lr_scheduler.h"
#include "optim/optimizer.h"
#include "utils/check.h"
#include "utils/fault_injection.h"
#include "utils/logging.h"
#include "utils/stopwatch.h"
#include "utils/parallel.h"

namespace hire {
namespace core {

TrainStats TrainHire(HireModel* model, const graph::BipartiteGraph& graph,
                     const graph::ContextSampler& sampler,
                     const TrainerConfig& config) {
  HIRE_CHECK(model != nullptr);
  HIRE_CHECK_GT(config.num_steps, 0);
  HIRE_CHECK_GT(config.batch_size, 0);

  if (config.num_threads > 0) SetGlobalThreads(config.num_threads);
  HIRE_LOG(Info) << "training with " << GlobalThreads()
                 << " tensor worker thread(s)";

  Rng rng(config.seed);
  model->SetTraining(true);

  optim::LambConfig lamb_config;
  lamb_config.learning_rate = config.base_learning_rate;
  lamb_config.weight_decay = config.weight_decay;
  auto lamb = std::make_unique<optim::Lamb>(model->Parameters(), lamb_config);
  optim::Lookahead optimizer(std::move(lamb), config.lookahead_alpha,
                             config.lookahead_period);
  optim::FlatThenCosineSchedule schedule(config.base_learning_rate,
                                         config.num_steps,
                                         config.flat_fraction);

  TrainStats stats;
  stats.step_losses.reserve(static_cast<size_t>(config.num_steps));
  Stopwatch stopwatch;
  const KernelTimers::Snapshot run_start = KernelTimers::Take();
  KernelTimers::Snapshot window_start = run_start;
  KernelTimers::Snapshot telemetry_window = run_start;

  obs::TelemetrySink& telemetry = obs::TelemetrySink::Global();
  const int64_t telemetry_every =
      config.telemetry_every > 0 ? config.telemetry_every : 1;
  // Registry handles are stable pointers; resolving them once keeps the step
  // loop free of registry lookups.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Gauge* loss_gauge = registry.GetGauge("train.loss");
  obs::Gauge* grad_norm_gauge = registry.GetGauge("train.grad_norm");
  obs::Gauge* lr_gauge = registry.GetGauge("train.lr");
  obs::Counter* steps_counter = registry.GetCounter("train.steps");
  obs::Counter* skipped_counter = registry.GetCounter("train.skipped_steps");
  obs::Counter* rollback_counter = registry.GetCounter("train.rollbacks");
  obs::Counter* checkpoint_counter =
      registry.GetCounter("train.checkpoints_written");
  obs::Histogram* step_seconds_hist =
      registry.GetHistogram("train.step_seconds");

  const bool checkpointing =
      config.checkpoint_every > 0 && !config.checkpoint_dir.empty();
  int64_t step = 0;
  float lr_scale = 1.0f;

  if (config.resume && !config.checkpoint_dir.empty()) {
    HIRE_TRACE_SCOPE("checkpoint_load");
    if (auto loaded = LoadLatestCheckpoint(config.checkpoint_dir)) {
      const ResumeInfo info =
          RestoreTrainingState(loaded->state, model, &optimizer, &rng);
      step = info.next_step;
      lr_scale = info.lr_scale;
      HIRE_LOG(Info) << "resumed from '" << loaded->path << "' at step "
                     << step << " (lr scale " << lr_scale << ")";
      telemetry.WriteEvent("resume", step,
                           {{"path", obs::JsonString(loaded->path)},
                            {"lr_scale", obs::JsonNumber(lr_scale)}});
    } else {
      HIRE_LOG(Info) << "no usable checkpoint in '" << config.checkpoint_dir
                     << "'; starting from scratch";
    }
  }
  stats.start_step = step;

  // Divergence-guard rollback anchor: the last known-good snapshot, kept in
  // memory and refreshed whenever a checkpoint is written. With
  // checkpointing disabled the anchor is the starting state.
  StateDict last_good;
  bool has_anchor = false;
  size_t anchor_loss_count = 0;
  if (config.max_bad_steps > 0) {
    last_good = CaptureTrainingState(*model, optimizer, rng,
                                     ResumeInfo{step, lr_scale});
    has_anchor = true;
  }
  int consecutive_bad = 0;
  FaultInjector& faults = FaultInjector::Global();

  for (; step < config.num_steps; ++step) {
    faults.MaybeCrash(step);
    HIRE_TRACE_SCOPE("train_step");
    Stopwatch step_watch;
    optimizer.set_learning_rate(schedule.LearningRate(step) * lr_scale);
    {
      ScopedKernelTimer timer(KernelCategory::kOptimizer);
      optimizer.ZeroGrad();
    }

    // Accumulate the mini-batch loss (line 5-12 of Algorithm 1).
    ag::Variable batch_loss;
    {
      HIRE_TRACE_SCOPE("forward");
      for (int64_t b = 0; b < config.batch_size; ++b) {
        graph::PredictionContext context = graph::BuildTrainingContext(
            graph, sampler, config.context_users, config.context_items,
            config.visible_fraction, &rng);
        ag::Variable prediction = model->Forward(context);
        ag::Variable loss = ag::MaskedMSE(prediction, context.target_ratings,
                                          context.target_mask);
        batch_loss = batch_loss.defined() ? ag::Add(batch_loss, loss) : loss;
      }
      batch_loss = ag::MulScalar(batch_loss,
                                 1.0f / static_cast<float>(config.batch_size));
    }
    if (faults.ConsumeNanLoss(step)) {
      batch_loss = ag::MulScalar(batch_loss,
                                 std::numeric_limits<float>::quiet_NaN());
    }

    {
      HIRE_TRACE_SCOPE("backward");
      batch_loss.Backward();
    }
    const float loss_value = batch_loss.value().flat(0);
    float grad_norm = 0.0f;
    {
      ScopedKernelTimer timer(KernelCategory::kOptimizer);
      HIRE_TRACE_SCOPE("grad_clip");
      grad_norm =
          optim::ClipGradNorm(optimizer.parameters(), config.gradient_clip);
    }

    // Divergence guard: never let a non-finite loss or gradient reach the
    // parameters. The poisoned step is skipped; after max_bad_steps
    // consecutive bad steps, roll back to the last good snapshot and back
    // off the learning rate.
    if (config.max_bad_steps > 0 &&
        (!std::isfinite(loss_value) || !std::isfinite(grad_norm))) {
      ++stats.skipped_steps;
      ++consecutive_bad;
      skipped_counter->Increment();
      HIRE_LOG(Warning) << "step " << step << ": non-finite loss ("
                        << loss_value << ") or grad norm (" << grad_norm
                        << "); skipping update (" << consecutive_bad << "/"
                        << config.max_bad_steps << " before rollback)";
      telemetry.WriteEvent(
          "nonfinite_step_skipped", step,
          {{"loss", obs::JsonNumber(loss_value)},
           {"grad_norm", obs::JsonNumber(grad_norm)},
           {"consecutive_bad", std::to_string(consecutive_bad)}});
      if (consecutive_bad >= config.max_bad_steps && has_anchor) {
        const ResumeInfo info =
            RestoreTrainingState(last_good, model, &optimizer, &rng);
        // Compound off the running scale, not the anchor's stored one: the
        // anchor only refreshes at checkpoint writes, so re-reading its
        // scale on a second rollback would restore identical params/RNG
        // with an identical rate and replay the same diverging trajectory
        // forever.
        lr_scale *= config.divergence_lr_backoff;
        stats.step_losses.resize(anchor_loss_count);
        ++stats.rollbacks;
        rollback_counter->Increment();
        telemetry.WriteEvent("rollback", step,
                             {{"restored_step",
                               std::to_string(info.next_step)},
                              {"lr_scale", obs::JsonNumber(lr_scale)}});
        consecutive_bad = 0;
        HIRE_CHECK(config.max_rollbacks <= 0 ||
                   stats.rollbacks <= config.max_rollbacks)
            << "training rolled back " << stats.rollbacks
            << " times without recovering (lr scale down to " << lr_scale
            << "); aborting";
        HIRE_LOG(Warning) << "rolled back to step " << info.next_step
                          << " with lr scale " << lr_scale;
        step = info.next_step - 1;  // loop increment lands on next_step
      }
      continue;
    }
    consecutive_bad = 0;

    {
      ScopedKernelTimer timer(KernelCategory::kOptimizer);
      HIRE_TRACE_SCOPE("optimizer_step");
      optimizer.Step();
    }

    stats.step_losses.push_back(loss_value);
    steps_counter->Increment();
    loss_gauge->Set(loss_value);
    grad_norm_gauge->Set(grad_norm);
    lr_gauge->Set(optimizer.learning_rate());
    step_seconds_hist->Record(step_watch.ElapsedSeconds());
    if (config.log_every > 0 && (step + 1) % config.log_every == 0) {
      const KernelTimers::Snapshot now = KernelTimers::Take();
      HIRE_LOG(Info) << "step " << (step + 1) << "/" << config.num_steps
                     << " loss " << loss_value << " lr "
                     << optimizer.learning_rate() << " | kernels: "
                     << (now - window_start).ToString();
      window_start = now;
    }
    if (telemetry.enabled() && (step + 1) % telemetry_every == 0) {
      obs::StepTelemetry record;
      record.step = step + 1;
      record.total_steps = config.num_steps;
      record.loss = loss_value;
      record.grad_norm = grad_norm;
      record.lr = optimizer.learning_rate();
      record.lr_scale = lr_scale;
      record.wall_seconds = step_watch.ElapsedSeconds();
      const KernelTimers::Snapshot now = KernelTimers::Take();
      record.kernel_delta = now - telemetry_window;
      record.has_kernel_delta = true;
      telemetry_window = now;
      telemetry.WriteStep(record);
    }

    if (checkpointing && (step + 1) % config.checkpoint_every == 0) {
      HIRE_TRACE_SCOPE("checkpoint_write");
      StateDict snapshot = CaptureTrainingState(
          *model, optimizer, rng, ResumeInfo{step + 1, lr_scale});
      const std::string path =
          WriteCheckpoint(config.checkpoint_dir, step + 1, snapshot,
                          config.checkpoint_keep);
      ++stats.checkpoints_written;
      checkpoint_counter->Increment();
      telemetry.WriteEvent("checkpoint_write", step + 1,
                           {{"path", obs::JsonString(path)}});
      if (config.max_bad_steps > 0 &&
          !faults.AnyCheckpointCorruptionArmed()) {
        last_good = std::move(snapshot);
        has_anchor = true;
        anchor_loss_count = stats.step_losses.size();
      }
    }
  }

  stats.final_loss =
      stats.step_losses.empty() ? 0.0f : stats.step_losses.back();
  stats.final_lr_scale = lr_scale;
  stats.train_seconds = stopwatch.ElapsedSeconds();
  const KernelTimers::Snapshot run_delta = KernelTimers::Take() - run_start;
  stats.matmul_seconds = run_delta.Seconds(KernelCategory::kMatMul);
  stats.softmax_seconds = run_delta.Seconds(KernelCategory::kSoftmax);
  stats.attention_seconds = run_delta.Seconds(KernelCategory::kAttention);
  stats.optimizer_seconds = run_delta.Seconds(KernelCategory::kOptimizer);
  stats.layernorm_seconds = run_delta.Seconds(KernelCategory::kLayerNorm);
  stats.embedding_seconds = run_delta.Seconds(KernelCategory::kEmbedding);
  stats.sampling_seconds = run_delta.Seconds(KernelCategory::kSampling);
  stats.checkpoint_io_seconds =
      run_delta.Seconds(KernelCategory::kCheckpointIo);
  if (config.log_every > 0) {
    HIRE_LOG(Info) << "kernel-time breakdown over " << config.num_steps
                   << " steps: " << run_delta.ToString();
  }
  model->SetTraining(false);
  return stats;
}

}  // namespace core
}  // namespace hire
