#include "core/trainer.h"

#include <memory>

#include "autograd/ops.h"
#include "graph/context_builder.h"
#include "optim/lamb.h"
#include "optim/lookahead.h"
#include "optim/lr_scheduler.h"
#include "optim/optimizer.h"
#include "utils/check.h"
#include "utils/logging.h"
#include "utils/stopwatch.h"
#include "utils/thread_pool.h"

namespace hire {
namespace core {

TrainStats TrainHire(HireModel* model, const graph::BipartiteGraph& graph,
                     const graph::ContextSampler& sampler,
                     const TrainerConfig& config) {
  HIRE_CHECK(model != nullptr);
  HIRE_CHECK_GT(config.num_steps, 0);
  HIRE_CHECK_GT(config.batch_size, 0);

  if (config.num_threads > 0) SetGlobalThreads(config.num_threads);
  HIRE_LOG(Info) << "training with " << GlobalThreads()
                 << " tensor worker thread(s)";

  Rng rng(config.seed);
  model->SetTraining(true);

  optim::LambConfig lamb_config;
  lamb_config.learning_rate = config.base_learning_rate;
  lamb_config.weight_decay = config.weight_decay;
  auto lamb = std::make_unique<optim::Lamb>(model->Parameters(), lamb_config);
  optim::Lookahead optimizer(std::move(lamb), config.lookahead_alpha,
                             config.lookahead_period);
  optim::FlatThenCosineSchedule schedule(config.base_learning_rate,
                                         config.num_steps,
                                         config.flat_fraction);

  TrainStats stats;
  stats.step_losses.reserve(static_cast<size_t>(config.num_steps));
  Stopwatch stopwatch;
  const KernelTimers::Snapshot run_start = KernelTimers::Take();
  KernelTimers::Snapshot window_start = run_start;

  for (int64_t step = 0; step < config.num_steps; ++step) {
    optimizer.set_learning_rate(schedule.LearningRate(step));
    {
      ScopedKernelTimer timer(KernelCategory::kOptimizer);
      optimizer.ZeroGrad();
    }

    // Accumulate the mini-batch loss (line 5-12 of Algorithm 1).
    ag::Variable batch_loss;
    for (int64_t b = 0; b < config.batch_size; ++b) {
      graph::PredictionContext context = graph::BuildTrainingContext(
          graph, sampler, config.context_users, config.context_items,
          config.visible_fraction, &rng);
      ag::Variable prediction = model->Forward(context);
      ag::Variable loss = ag::MaskedMSE(prediction, context.target_ratings,
                                        context.target_mask);
      batch_loss = batch_loss.defined() ? ag::Add(batch_loss, loss) : loss;
    }
    batch_loss =
        ag::MulScalar(batch_loss, 1.0f / static_cast<float>(config.batch_size));

    batch_loss.Backward();
    {
      ScopedKernelTimer timer(KernelCategory::kOptimizer);
      optim::ClipGradNorm(optimizer.parameters(), config.gradient_clip);
      optimizer.Step();
    }

    const float loss_value = batch_loss.value().flat(0);
    stats.step_losses.push_back(loss_value);
    if (config.log_every > 0 && (step + 1) % config.log_every == 0) {
      const KernelTimers::Snapshot now = KernelTimers::Take();
      HIRE_LOG(Info) << "step " << (step + 1) << "/" << config.num_steps
                     << " loss " << loss_value << " lr "
                     << optimizer.learning_rate() << " | kernels: "
                     << (now - window_start).ToString();
      window_start = now;
    }
  }

  stats.final_loss = stats.step_losses.back();
  stats.train_seconds = stopwatch.ElapsedSeconds();
  const KernelTimers::Snapshot run_delta = KernelTimers::Take() - run_start;
  stats.matmul_seconds = run_delta.Seconds(KernelCategory::kMatMul);
  stats.softmax_seconds = run_delta.Seconds(KernelCategory::kSoftmax);
  stats.attention_seconds = run_delta.Seconds(KernelCategory::kAttention);
  stats.optimizer_seconds = run_delta.Seconds(KernelCategory::kOptimizer);
  if (config.log_every > 0) {
    HIRE_LOG(Info) << "kernel-time breakdown over " << config.num_steps
                   << " steps: " << run_delta.ToString();
  }
  model->SetTraining(false);
  return stats;
}

}  // namespace core
}  // namespace hire
