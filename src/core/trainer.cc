#include "core/trainer.h"

#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "autograd/ops.h"
#include "core/checkpoint.h"
#include "graph/context_builder.h"
#include "optim/lamb.h"
#include "optim/lookahead.h"
#include "optim/lr_scheduler.h"
#include "optim/optimizer.h"
#include "utils/check.h"
#include "utils/fault_injection.h"
#include "utils/logging.h"
#include "utils/stopwatch.h"
#include "utils/thread_pool.h"

namespace hire {
namespace core {

TrainStats TrainHire(HireModel* model, const graph::BipartiteGraph& graph,
                     const graph::ContextSampler& sampler,
                     const TrainerConfig& config) {
  HIRE_CHECK(model != nullptr);
  HIRE_CHECK_GT(config.num_steps, 0);
  HIRE_CHECK_GT(config.batch_size, 0);

  if (config.num_threads > 0) SetGlobalThreads(config.num_threads);
  HIRE_LOG(Info) << "training with " << GlobalThreads()
                 << " tensor worker thread(s)";

  Rng rng(config.seed);
  model->SetTraining(true);

  optim::LambConfig lamb_config;
  lamb_config.learning_rate = config.base_learning_rate;
  lamb_config.weight_decay = config.weight_decay;
  auto lamb = std::make_unique<optim::Lamb>(model->Parameters(), lamb_config);
  optim::Lookahead optimizer(std::move(lamb), config.lookahead_alpha,
                             config.lookahead_period);
  optim::FlatThenCosineSchedule schedule(config.base_learning_rate,
                                         config.num_steps,
                                         config.flat_fraction);

  TrainStats stats;
  stats.step_losses.reserve(static_cast<size_t>(config.num_steps));
  Stopwatch stopwatch;
  const KernelTimers::Snapshot run_start = KernelTimers::Take();
  KernelTimers::Snapshot window_start = run_start;

  const bool checkpointing =
      config.checkpoint_every > 0 && !config.checkpoint_dir.empty();
  int64_t step = 0;
  float lr_scale = 1.0f;

  if (config.resume && !config.checkpoint_dir.empty()) {
    if (auto loaded = LoadLatestCheckpoint(config.checkpoint_dir)) {
      const ResumeInfo info =
          RestoreTrainingState(loaded->state, model, &optimizer, &rng);
      step = info.next_step;
      lr_scale = info.lr_scale;
      HIRE_LOG(Info) << "resumed from '" << loaded->path << "' at step "
                     << step << " (lr scale " << lr_scale << ")";
    } else {
      HIRE_LOG(Info) << "no usable checkpoint in '" << config.checkpoint_dir
                     << "'; starting from scratch";
    }
  }
  stats.start_step = step;

  // Divergence-guard rollback anchor: the last known-good snapshot, kept in
  // memory and refreshed whenever a checkpoint is written. With
  // checkpointing disabled the anchor is the starting state.
  StateDict last_good;
  bool has_anchor = false;
  size_t anchor_loss_count = 0;
  if (config.max_bad_steps > 0) {
    last_good = CaptureTrainingState(*model, optimizer, rng,
                                     ResumeInfo{step, lr_scale});
    has_anchor = true;
  }
  int consecutive_bad = 0;
  FaultInjector& faults = FaultInjector::Global();

  for (; step < config.num_steps; ++step) {
    faults.MaybeCrash(step);
    optimizer.set_learning_rate(schedule.LearningRate(step) * lr_scale);
    {
      ScopedKernelTimer timer(KernelCategory::kOptimizer);
      optimizer.ZeroGrad();
    }

    // Accumulate the mini-batch loss (line 5-12 of Algorithm 1).
    ag::Variable batch_loss;
    for (int64_t b = 0; b < config.batch_size; ++b) {
      graph::PredictionContext context = graph::BuildTrainingContext(
          graph, sampler, config.context_users, config.context_items,
          config.visible_fraction, &rng);
      ag::Variable prediction = model->Forward(context);
      ag::Variable loss = ag::MaskedMSE(prediction, context.target_ratings,
                                        context.target_mask);
      batch_loss = batch_loss.defined() ? ag::Add(batch_loss, loss) : loss;
    }
    batch_loss =
        ag::MulScalar(batch_loss, 1.0f / static_cast<float>(config.batch_size));
    if (faults.ConsumeNanLoss(step)) {
      batch_loss = ag::MulScalar(batch_loss,
                                 std::numeric_limits<float>::quiet_NaN());
    }

    batch_loss.Backward();
    const float loss_value = batch_loss.value().flat(0);
    float grad_norm = 0.0f;
    {
      ScopedKernelTimer timer(KernelCategory::kOptimizer);
      grad_norm =
          optim::ClipGradNorm(optimizer.parameters(), config.gradient_clip);
    }

    // Divergence guard: never let a non-finite loss or gradient reach the
    // parameters. The poisoned step is skipped; after max_bad_steps
    // consecutive bad steps, roll back to the last good snapshot and back
    // off the learning rate.
    if (config.max_bad_steps > 0 &&
        (!std::isfinite(loss_value) || !std::isfinite(grad_norm))) {
      ++stats.skipped_steps;
      ++consecutive_bad;
      HIRE_LOG(Warning) << "step " << step << ": non-finite loss ("
                        << loss_value << ") or grad norm (" << grad_norm
                        << "); skipping update (" << consecutive_bad << "/"
                        << config.max_bad_steps << " before rollback)";
      if (consecutive_bad >= config.max_bad_steps && has_anchor) {
        const ResumeInfo info =
            RestoreTrainingState(last_good, model, &optimizer, &rng);
        // Compound off the running scale, not the anchor's stored one: the
        // anchor only refreshes at checkpoint writes, so re-reading its
        // scale on a second rollback would restore identical params/RNG
        // with an identical rate and replay the same diverging trajectory
        // forever.
        lr_scale *= config.divergence_lr_backoff;
        stats.step_losses.resize(anchor_loss_count);
        ++stats.rollbacks;
        consecutive_bad = 0;
        HIRE_CHECK(config.max_rollbacks <= 0 ||
                   stats.rollbacks <= config.max_rollbacks)
            << "training rolled back " << stats.rollbacks
            << " times without recovering (lr scale down to " << lr_scale
            << "); aborting";
        HIRE_LOG(Warning) << "rolled back to step " << info.next_step
                          << " with lr scale " << lr_scale;
        step = info.next_step - 1;  // loop increment lands on next_step
      }
      continue;
    }
    consecutive_bad = 0;

    {
      ScopedKernelTimer timer(KernelCategory::kOptimizer);
      optimizer.Step();
    }

    stats.step_losses.push_back(loss_value);
    if (config.log_every > 0 && (step + 1) % config.log_every == 0) {
      const KernelTimers::Snapshot now = KernelTimers::Take();
      HIRE_LOG(Info) << "step " << (step + 1) << "/" << config.num_steps
                     << " loss " << loss_value << " lr "
                     << optimizer.learning_rate() << " | kernels: "
                     << (now - window_start).ToString();
      window_start = now;
    }

    if (checkpointing && (step + 1) % config.checkpoint_every == 0) {
      StateDict snapshot = CaptureTrainingState(
          *model, optimizer, rng, ResumeInfo{step + 1, lr_scale});
      WriteCheckpoint(config.checkpoint_dir, step + 1, snapshot,
                      config.checkpoint_keep);
      ++stats.checkpoints_written;
      if (config.max_bad_steps > 0 &&
          !faults.AnyCheckpointCorruptionArmed()) {
        last_good = std::move(snapshot);
        has_anchor = true;
        anchor_loss_count = stats.step_losses.size();
      }
    }
  }

  stats.final_loss =
      stats.step_losses.empty() ? 0.0f : stats.step_losses.back();
  stats.final_lr_scale = lr_scale;
  stats.train_seconds = stopwatch.ElapsedSeconds();
  const KernelTimers::Snapshot run_delta = KernelTimers::Take() - run_start;
  stats.matmul_seconds = run_delta.Seconds(KernelCategory::kMatMul);
  stats.softmax_seconds = run_delta.Seconds(KernelCategory::kSoftmax);
  stats.attention_seconds = run_delta.Seconds(KernelCategory::kAttention);
  stats.optimizer_seconds = run_delta.Seconds(KernelCategory::kOptimizer);
  if (config.log_every > 0) {
    HIRE_LOG(Info) << "kernel-time breakdown over " << config.num_steps
                   << " steps: " << run_delta.ToString();
  }
  model->SetTraining(false);
  return stats;
}

}  // namespace core
}  // namespace hire
