#ifndef HIRE_CORE_INFERENCE_FORWARD_H_
#define HIRE_CORE_INFERENCE_FORWARD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/hire_config.h"
#include "core/hire_model.h"
#include "data/dataset.h"
#include "graph/context_builder.h"
#include "nn/fused_attention.h"
#include "tensor/tensor.h"

namespace hire {
namespace core {

/// Bump allocator backing the tape-free forward. Buffers are handed out in
/// call order and released all at once (Reset per forward, Rewind per HIM
/// block), so a forward over a context shape the arena has seen before
/// allocates zero heap: the backing blocks are retained across Reset and
/// the identical allocation sequence lands in the same places. Growth only
/// happens while warming up on a new, larger (n, m, e) shape —
/// growth_count() is monotone and tests pin it flat across warmed-up
/// requests.
///
/// Lifetime rule (serve tier): an arena is pure scratch owned by the
/// forward's driver (the micro-batcher worker, a predictor), holds no
/// pointers into any model snapshot, and is Reset at the start of every
/// forward — so it may outlive snapshots across hot-swaps, and snapshots
/// never reference it back.
class InferenceArena {
 public:
  InferenceArena() = default;
  InferenceArena(const InferenceArena&) = delete;
  InferenceArena& operator=(const InferenceArena&) = delete;

  /// A buffer of `count` floats, valid until the next Reset/Rewind that
  /// covers it. Contents are unspecified (stale bytes from prior forwards).
  float* Alloc(int64_t count);

  /// Rewinds everything; capacity is retained.
  void Reset();

  /// Stack discipline for per-block scratch: Mark before the block's
  /// allocations, Rewind after, and the space is reused by the next block.
  struct Mark {
    size_t block = 0;
    int64_t used = 0;
  };
  Mark CurrentMark() const;
  void Rewind(const Mark& mark);

  /// Backing blocks allocated since construction (never shrinks). Flat
  /// across repeated forwards == no per-request heap.
  int64_t growth_count() const { return growth_count_; }
  int64_t capacity_floats() const;

  /// The forward's output matrix, reused across calls; reallocated only
  /// when the context shape changes.
  Tensor& output(int64_t n, int64_t m);

 private:
  struct Block {
    std::unique_ptr<float[]> data;
    int64_t capacity = 0;
    int64_t used = 0;
  };
  std::vector<Block> blocks_;
  size_t active_ = 0;
  int64_t growth_count_ = 0;
  Tensor output_;
};

/// A trained HireModel's weights packed for tape-free inference: embedding
/// tables, per-block fused MHSA weights (QKV concatenated, see
/// nn::FusedAttentionWeights), layer-norm gains/offsets and the decoder,
/// all deep-copied at construction — packing happens once per snapshot
/// load, never per forward. Predict replays the exact forward semantics of
/// HireModel::Predict (encoder -> K HIM blocks -> sigmoid decoder, eval
/// mode) over arena buffers with no autograd tape, no Variable wrappers and
/// no per-op tensor allocation:
///
///   * the projections, residuals, layer norms, embedding gathers and the
///     decoder are bitwise identical to the tape forward (same kernels or
///     same rounding chains);
///   * the single-pass online-softmax attention re-associates only the
///     softmax normalisation, so whole-model predictions agree within 1e-5
///     max-abs (tests/core_test.cc and serve_test.cc pin this).
///
/// Pack after training: the copied weights do not track later updates to
/// the source model. Thread-safe for concurrent Predict calls as long as
/// each caller brings its own arena.
class InferenceModel {
 public:
  /// Packs `model`'s current parameters. `model.dataset()` must outlive
  /// this object (attribute schemas and rating normalisation are read per
  /// forward).
  explicit InferenceModel(const HireModel& model);

  /// Predicted rating matrix [n, m], written into `arena->output`. The
  /// reference stays valid until the arena's next Predict.
  const Tensor& Predict(const graph::PredictionContext& context,
                        InferenceArena* arena) const;

  int64_t cell_embed_dim() const { return cell_embed_dim_; }
  const HireConfig& config() const { return config_; }

 private:
  struct NormWeights {
    bool present = false;
    Tensor gamma;
    Tensor beta;
  };
  struct BlockWeights {
    bool has_user = false;
    bool has_item = false;
    bool has_attr = false;
    nn::FusedAttentionWeights user;
    nn::FusedAttentionWeights item;
    nn::FusedAttentionWeights attr;
    NormWeights user_norm;
    NormWeights item_norm;
    NormWeights attr_norm;
  };

  void EncodeInto(const graph::PredictionContext& context, float* h) const;
  void BlockForward(const BlockWeights& block, float* h, int64_t n,
                    int64_t m, InferenceArena* arena) const;

  const data::Dataset* dataset_;
  HireConfig config_;
  float rating_scale_;
  int64_t attr_embed_dim_;
  int64_t num_attribute_slots_;
  int64_t cell_embed_dim_;

  std::vector<Tensor> user_tables_;  // one per user attribute, [cats, f]
  std::vector<Tensor> item_tables_;
  bool continuous_ratings_ = false;
  Tensor rating_table_;   // discrete scales: [levels, f]
  Tensor rating_weight_;  // continuous scales: [1, f] + [f]
  Tensor rating_bias_;
  std::vector<BlockWeights> blocks_;
  Tensor decoder_weight_;  // [e, 1]
  Tensor decoder_bias_;    // [1]
};

}  // namespace core
}  // namespace hire

#endif  // HIRE_CORE_INFERENCE_FORWARD_H_
