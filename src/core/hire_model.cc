#include "core/hire_model.h"

#include <memory>
#include <string>

#include "autograd/ops.h"
#include "obs/trace.h"
#include "utils/check.h"

namespace hire {
namespace core {

HireModel::HireModel(const data::Dataset* dataset, const HireConfig& config,
                     uint64_t seed)
    : dataset_(dataset), config_(config), rng_(seed) {
  HIRE_CHECK(dataset_ != nullptr);
  HIRE_CHECK_GT(config_.num_him_blocks, 0);
  rating_scale_ = dataset_->max_rating();

  Rng init_rng = rng_.Fork(/*salt=*/1);
  encoder_ = std::make_unique<ContextEncoder>(dataset_,
                                              config_.attr_embed_dim,
                                              &init_rng);
  RegisterSubmodule("encoder", encoder_.get());

  for (int k = 0; k < config_.num_him_blocks; ++k) {
    him_blocks_.push_back(std::make_unique<HimBlock>(
        config_, encoder_->cell_embed_dim(), encoder_->num_attribute_slots(),
        &init_rng));
    RegisterSubmodule("him" + std::to_string(k), him_blocks_.back().get());
  }

  decoder_ = std::make_unique<nn::Linear>(encoder_->cell_embed_dim(), 1,
                                          &init_rng);
  RegisterSubmodule("decoder", decoder_.get());
}

ag::Variable HireModel::Forward(const graph::PredictionContext& context) {
  HIRE_TRACE_SCOPE("model_forward");
  const int64_t n = context.num_users();
  const int64_t m = context.num_items();

  ag::Variable h = encoder_->Encode(context);
  const bool tracing = obs::Tracer::Enabled();
  for (size_t k = 0; k < him_blocks_.size(); ++k) {
    if (!tracing) {
      h = him_blocks_[k]->Forward(h, &rng_);
      continue;
    }
    // Per-block forward span plus a backward-hook bracket (see
    // ag::WithBackwardHook): the input hook emits "him_block_<k>_backward"
    // between the timestamps stamped by the pair.
    const std::string label = "him_block_" + std::to_string(k);
    std::shared_ptr<uint64_t> backward_start;
    if (h.requires_grad()) {
      backward_start = std::make_shared<uint64_t>(0);
      auto start = backward_start;
      const std::string span = label + "_backward";
      h = ag::WithBackwardHook(h, [start, span] {
        obs::EmitSpan(span, *start, obs::TraceNowNanos());
      });
    }
    {
      obs::TraceScope scope(label + "_forward");
      h = him_blocks_[k]->Forward(h, &rng_);
    }
    if (backward_start != nullptr && h.requires_grad()) {
      auto start = backward_start;
      h = ag::WithBackwardHook(h, [start] { *start = obs::TraceNowNanos(); });
    }
  }
  // R_hat = alpha * sigmoid(g_theta(H^(A)))  (Eq. 16).
  ag::Variable logits = decoder_->Forward(h);          // [n, m, 1]
  ag::Variable squashed = ag::Sigmoid(logits);
  return ag::Reshape(ag::MulScalar(squashed, rating_scale_), {n, m});
}

Tensor HireModel::Predict(const graph::PredictionContext& context) {
  const bool was_training = training();
  SetTraining(false);
  // Inference must not pay for autograd: the guard makes every op in the
  // forward return a detached leaf, so no tape nodes, parent edges or
  // backward closures are allocated (tests/core_test.cc pins this down via
  // ag::TapeNodesCreated).
  ag::NoGradGuard no_grad;
  ag::Variable prediction = Forward(context);
  SetTraining(was_training);
  return prediction.value();
}

void HireModel::EnableAttentionCapture(bool enable) {
  for (const auto& him : him_blocks_) {
    him->EnableAttentionCapture(enable);
  }
}

const HimBlock& HireModel::him_block(int index) const {
  HIRE_CHECK(index >= 0 && index < static_cast<int>(him_blocks_.size()));
  return *him_blocks_[static_cast<size_t>(index)];
}

}  // namespace core
}  // namespace hire
