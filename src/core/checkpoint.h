#ifndef HIRE_CORE_CHECKPOINT_H_
#define HIRE_CORE_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nn/module.h"
#include "optim/optimizer.h"
#include "tensor/random.h"
#include "tensor/state_dict.h"

namespace hire {
namespace core {

/// Non-tensor training-loop state carried in a checkpoint.
struct ResumeInfo {
  /// First step the resumed loop should execute.
  int64_t next_step = 0;
  /// Divergence-guard learning-rate multiplier (1.0 until a rollback).
  float lr_scale = 1.0f;
};

/// Captures the complete training state — model parameters ("model.*"),
/// optimiser moments and slow weights ("optim.*"), the sampler RNG stream
/// ("rng.*") and loop position ("trainer.*") — into one StateDict. Restoring
/// this dictionary reproduces the rest of the run bitwise.
StateDict CaptureTrainingState(const nn::Module& model,
                               const optim::Optimizer& optimizer,
                               const Rng& rng, const ResumeInfo& info);

/// Restores state captured by CaptureTrainingState into freshly constructed
/// (or rolled-back) objects. Shape/key mismatches throw hire::CheckError.
ResumeInfo RestoreTrainingState(const StateDict& state, nn::Module* model,
                                optim::Optimizer* optimizer, Rng* rng);

/// Snapshot file name for a checkpoint taken before `next_step`
/// ("ckpt-000000000120.snap"). Zero padding keeps lexicographic and numeric
/// order identical.
std::string CheckpointFileName(int64_t next_step);

/// Writes `state` to `<dir>/<CheckpointFileName(next_step)>` atomically
/// (temp + fsync + rename), creates `dir` if needed, applies any armed
/// fault-injection corruption, then deletes all but the newest `keep`
/// snapshots. Returns the written path.
std::string WriteCheckpoint(const std::string& dir, int64_t next_step,
                            const StateDict& state, int keep);

struct LoadedCheckpoint {
  std::string path;
  StateDict state;
};

/// Scans `dir` for checkpoint snapshots, newest first, and returns the first
/// one that passes magic/size/checksum validation. Corrupt or truncated
/// snapshots are logged and skipped — this is the crash-recovery fallback
/// path. Returns nullopt when the directory is missing or holds no usable
/// snapshot.
std::optional<LoadedCheckpoint> LoadLatestCheckpoint(const std::string& dir);

/// All checkpoint step numbers present in `dir`, ascending (no validation).
std::vector<int64_t> ListCheckpointSteps(const std::string& dir);

}  // namespace core
}  // namespace hire

#endif  // HIRE_CORE_CHECKPOINT_H_
