#ifndef HIRE_CORE_ATTENTION_ANALYSIS_H_
#define HIRE_CORE_ATTENTION_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace hire {
namespace core {

/// Utilities for inspecting captured attention weights (the paper's Fig. 9
/// case study). Captured tensors have shape [B, l, t, t]: batch of views,
/// l heads, t x t attention weights.

/// Averages the attention weights over heads for one batch view:
/// [B, l, t, t] at `batch_index` -> [t, t].
Tensor AverageHeads(const Tensor& captured, int64_t batch_index);

/// One directed attention edge i -> j with its (head-averaged) weight.
struct AttentionEdge {
  int64_t from = 0;
  int64_t to = 0;
  float weight = 0.0f;
};

/// The `top_k` strongest off-diagonal edges of a [t, t] attention matrix,
/// sorted by descending weight. Ties resolve by (from, to) order, so the
/// result is deterministic.
std::vector<AttentionEdge> TopAttentionEdges(const Tensor& attention,
                                             int64_t top_k);

/// Renders a [t, t] attention matrix as an ASCII heatmap (rows of glyphs
/// from light to dark), normalised by the matrix maximum. Useful for
/// terminal-based case studies.
std::string RenderHeatmap(const Tensor& attention);

/// Row-stochasticity check: returns the maximum |row sum - 1| over all
/// rows; a correctly captured softmax matrix stays within float epsilon.
float MaxRowSumDeviation(const Tensor& attention);

}  // namespace core
}  // namespace hire

#endif  // HIRE_CORE_ATTENTION_ANALYSIS_H_
