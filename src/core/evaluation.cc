#include "core/evaluation.h"

#include <algorithm>
#include <unordered_map>

#include "graph/context_builder.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "utils/check.h"
#include "utils/stopwatch.h"
#include "utils/thread_pool.h"

namespace hire {
namespace core {

HirePredictor::HirePredictor(HireModel* model,
                             const graph::ContextSampler* sampler,
                             int64_t context_users, int64_t context_items,
                             uint64_t seed, double context_visible_fraction)
    : model_(model),
      sampler_(sampler),
      context_users_(context_users),
      context_items_(context_items),
      context_visible_fraction_(context_visible_fraction),
      rng_(seed) {
  HIRE_CHECK(model_ != nullptr);
  HIRE_CHECK(sampler_ != nullptr);
  HIRE_CHECK_GT(context_users_, 0);
  HIRE_CHECK_GT(context_items_, 0);
  HIRE_CHECK(context_visible_fraction_ > 0.0 &&
             context_visible_fraction_ <= 1.0);
}

std::vector<float> HirePredictor::PredictForUser(
    int64_t user, const std::vector<int64_t>& items,
    const graph::BipartiteGraph& visible_graph) {
  HIRE_TRACE_SCOPE("predict_user");
  std::vector<float> predictions;
  predictions.reserve(items.size());

  // Reserve part of the item budget for the cold user's own visible
  // (support) items: they carry the collaborative evidence HIRE's user row
  // needs. The remaining capacity processes query items in chunks.
  const std::vector<int64_t>& support_items = visible_graph.ItemsOfUser(user);
  const int64_t support_reserve = std::min<int64_t>(
      static_cast<int64_t>(support_items.size()), context_items_ / 2);
  const int64_t chunk_capacity =
      std::max<int64_t>(1, context_items_ - support_reserve);

  for (size_t begin = 0; begin < items.size();
       begin += static_cast<size_t>(chunk_capacity)) {
    const size_t end =
        std::min(items.size(), begin + static_cast<size_t>(chunk_capacity));
    const std::vector<int64_t> chunk(items.begin() + begin,
                                     items.begin() + end);

    // Seed with the query chunk first (so predictions line up with the
    // leading columns), then the support items.
    std::vector<int64_t> seed_items = chunk;
    for (int64_t support : support_items) {
      if (static_cast<int64_t>(seed_items.size()) >=
          static_cast<int64_t>(chunk.size()) + support_reserve) {
        break;
      }
      seed_items.push_back(support);
    }

    graph::PredictionContext context;
    {
      ScopedKernelTimer timer(KernelCategory::kSampling);
      HIRE_TRACE_SCOPE("context_sampling");
      graph::ContextSelection selection =
          sampler_->Sample(visible_graph, {user}, seed_items, context_users_,
                           context_items_, &rng_);
      context = graph::AssembleContext(visible_graph, std::move(selection));
    }

    // Thin the context's observed ratings to the training density (the
    // paper keeps 10% visible at test time as well). The target user's
    // support row is always preserved.
    if (context_visible_fraction_ < 1.0) {
      std::vector<int64_t> other_cells;
      for (int64_t flat = 0; flat < context.observed_mask.size(); ++flat) {
        const int64_t row = flat / context.num_items();
        if (row == 0) continue;  // target user's row
        if (context.observed_mask.flat(flat) > 0.0f) {
          other_cells.push_back(flat);
        }
      }
      rng_.Shuffle(&other_cells);
      const size_t keep = static_cast<size_t>(
          context_visible_fraction_ * static_cast<double>(other_cells.size()));
      for (size_t c = keep; c < other_cells.size(); ++c) {
        context.observed_mask.flat(other_cells[c]) = 0.0f;
        context.observed_ratings.flat(other_cells[c]) = 0.0f;
      }
    }

    const Tensor predicted = model_->Predict(context);

    // The seed user is the first row; seed items are the first columns
    // (samplers preserve seed order).
    HIRE_CHECK_EQ(context.users[0], user);
    for (size_t j = 0; j < chunk.size(); ++j) {
      HIRE_CHECK_EQ(context.items[j], chunk[j]);
      predictions.push_back(predicted.at(0, static_cast<int64_t>(j)));
    }
  }
  return predictions;
}

EvalResult EvaluateColdStart(RatingPredictor* predictor,
                             const data::Dataset& dataset,
                             const data::ColdStartSplit& split,
                             const EvalConfig& config) {
  HIRE_CHECK(predictor != nullptr);
  HIRE_CHECK(config.support_fraction >= 0.0 && config.support_fraction < 1.0);
  if (config.num_threads > 0) SetGlobalThreads(config.num_threads);
  Rng rng(config.seed);

  // Reveal support_fraction of the test ratings as context input; the rest
  // are prediction queries.
  std::vector<data::Rating> shuffled = split.test_ratings;
  rng.Shuffle(&shuffled);
  const size_t support_count = static_cast<size_t>(
      config.support_fraction * static_cast<double>(shuffled.size()));

  std::vector<data::Rating> visible_ratings = split.train_ratings;
  visible_ratings.insert(visible_ratings.end(), shuffled.begin(),
                         shuffled.begin() + static_cast<int64_t>(support_count));
  const graph::BipartiteGraph visible_graph(
      dataset.num_users(), dataset.num_items(), visible_ratings);

  // Group query ratings by user.
  std::unordered_map<int64_t, std::vector<data::Rating>> queries_by_user;
  for (size_t r = support_count; r < shuffled.size(); ++r) {
    queries_by_user[shuffled[r].user].push_back(shuffled[r]);
  }

  std::vector<int64_t> eval_users;
  for (const auto& [user, ratings] : queries_by_user) {
    if (static_cast<int>(ratings.size()) >= config.min_query_items) {
      eval_users.push_back(user);
    }
  }
  std::sort(eval_users.begin(), eval_users.end());
  rng.Shuffle(&eval_users);
  if (config.max_eval_users > 0 &&
      static_cast<int64_t>(eval_users.size()) > config.max_eval_users) {
    eval_users.resize(static_cast<size_t>(config.max_eval_users));
  }
  HIRE_CHECK(!eval_users.empty())
      << "no user has >= " << config.min_query_items
      << " query ratings; shrink min_query_items or enlarge the dataset";

  const float threshold = dataset.RelevanceThreshold();
  std::map<int, std::vector<metrics::RankingMetrics>> per_user;
  EvalResult result;
  Stopwatch stopwatch;

  for (int64_t user : eval_users) {
    const auto& ratings = queries_by_user[user];
    std::vector<int64_t> items;
    std::vector<float> actual;
    items.reserve(ratings.size());
    actual.reserve(ratings.size());
    for (const data::Rating& rating : ratings) {
      items.push_back(rating.item);
      actual.push_back(rating.value);
    }

    stopwatch.Reset();
    const std::vector<float> predicted =
        predictor->PredictForUser(user, items, visible_graph);
    result.predict_seconds += stopwatch.ElapsedSeconds();
    HIRE_CHECK_EQ(predicted.size(), items.size());

    for (int k : config.top_ks) {
      per_user[k].push_back(
          metrics::ComputeRankingMetrics(predicted, actual, k, threshold));
    }
    ++result.num_lists;
  }

  for (const auto& [k, metrics_list] : per_user) {
    result.by_k[k] = metrics::AverageMetrics(metrics_list);
  }
  obs::TelemetrySink::Global().WriteEvent(
      "eval_complete", /*step=*/0,
      {{"num_lists", std::to_string(result.num_lists)},
       {"predict_seconds", obs::JsonNumber(result.predict_seconds)}});
  return result;
}

}  // namespace core
}  // namespace hire
