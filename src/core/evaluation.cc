#include "core/evaluation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/context_builder.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "utils/check.h"
#include "utils/stopwatch.h"
#include "utils/parallel.h"

namespace hire {
namespace core {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t MixSeed(uint64_t a, uint64_t b) {
  return SplitMix64(a ^ SplitMix64(b));
}

// Uniform double in [0, 1) derived from the hash of `x`.
double Hash01(uint64_t x) {
  return static_cast<double>(SplitMix64(x) >> 11) * 0x1.0p-53;
}

}  // namespace

UserContextPlan BuildUserContextPlan(const graph::BipartiteGraph& graph,
                                     const graph::ContextSampler& sampler,
                                     int64_t user, int64_t context_users,
                                     int64_t context_items, uint64_t seed) {
  ScopedKernelTimer timer(KernelCategory::kSampling);
  HIRE_TRACE_SCOPE("context_sampling");
  HIRE_CHECK_GT(context_users, 0);
  HIRE_CHECK_GT(context_items, 0);

  // Reserve part of the item budget for the user's own visible (support)
  // items: they carry the collaborative evidence HIRE's user row needs. The
  // rest of the pool is filled by the sampler's neighborhood walk.
  const std::vector<int64_t>& support_items = graph.ItemsOfUser(user);
  const int64_t support_reserve = std::min<int64_t>(
      static_cast<int64_t>(support_items.size()), context_items / 2);
  const std::vector<int64_t> seed_items(
      support_items.begin(), support_items.begin() + support_reserve);

  // The rng is a pure function of (seed, user): the plan never depends on
  // caller rng state or call history, which is what makes predictions
  // deterministic and the plan cacheable across serving requests.
  Rng rng(MixSeed(seed, static_cast<uint64_t>(user)));
  graph::ContextSelection selection = sampler.Sample(
      graph, {user}, seed_items, context_users, context_items, &rng);

  UserContextPlan plan;
  plan.user = user;
  plan.context_users = std::move(selection.users);
  plan.base_items = std::move(selection.items);
  plan.num_support_items = support_reserve;
  HIRE_CHECK(!plan.context_users.empty());
  HIRE_CHECK_EQ(plan.context_users[0], user);
  return plan;
}

void ThinObservedCells(graph::PredictionContext* context, int64_t keep_rows,
                       double visible_fraction, uint64_t seed) {
  HIRE_CHECK(context != nullptr);
  if (visible_fraction >= 1.0) return;
  const int64_t n = context->num_users();
  const int64_t m = context->num_items();
  for (int64_t r = keep_rows; r < n; ++r) {
    const uint64_t row_hash =
        MixSeed(seed, static_cast<uint64_t>(context->users[r]));
    for (int64_t c = 0; c < m; ++c) {
      if (context->observed_mask.at(r, c) <= 0.0f) continue;
      const uint64_t cell =
          MixSeed(row_hash, static_cast<uint64_t>(context->items[c]));
      if (Hash01(cell) >= visible_fraction) {
        context->observed_mask.at(r, c) = 0.0f;
        context->observed_ratings.at(r, c) = 0.0f;
      }
    }
  }
}

HirePredictor::HirePredictor(HireModel* model,
                             const graph::ContextSampler* sampler,
                             int64_t context_users, int64_t context_items,
                             uint64_t seed, double context_visible_fraction)
    : model_(model),
      sampler_(sampler),
      context_users_(context_users),
      context_items_(context_items),
      context_visible_fraction_(context_visible_fraction),
      seed_(seed) {
  HIRE_CHECK(model_ != nullptr);
  HIRE_CHECK(sampler_ != nullptr);
  HIRE_CHECK_GT(context_users_, 0);
  HIRE_CHECK_GT(context_items_, 0);
  HIRE_CHECK(context_visible_fraction_ > 0.0 &&
             context_visible_fraction_ <= 1.0);
}

std::vector<float> HirePredictor::PredictForUser(
    int64_t user, const std::vector<int64_t>& items,
    const graph::BipartiteGraph& visible_graph) {
  HIRE_TRACE_SCOPE("predict_user");
  std::vector<float> predictions;
  predictions.reserve(items.size());

  // One sampler walk per call: the context rows and the base item pool
  // (support first, then neighborhood fill) are shared by every chunk.
  const UserContextPlan plan = BuildUserContextPlan(
      visible_graph, *sampler_, user, context_users_, context_items_, seed_);
  const int64_t chunk_capacity =
      std::max<int64_t>(1, context_items_ - plan.num_support_items);

  for (size_t begin = 0; begin < items.size();
       begin += static_cast<size_t>(chunk_capacity)) {
    const size_t end =
        std::min(items.size(), begin + static_cast<size_t>(chunk_capacity));
    const std::vector<int64_t> chunk(items.begin() + begin,
                                     items.begin() + end);

    // Columns: the query chunk first (so predictions line up with the
    // leading columns), then base-pool items (support first) until the item
    // budget is reached. The column set depends only on the chunk contents,
    // never on other chunks.
    std::vector<int64_t> columns = chunk;
    std::unordered_set<int64_t> in_columns(chunk.begin(), chunk.end());
    for (int64_t base : plan.base_items) {
      if (static_cast<int64_t>(columns.size()) >= context_items_) break;
      if (in_columns.insert(base).second) columns.push_back(base);
    }

    graph::ContextSelection selection;
    selection.users = plan.context_users;
    selection.items = std::move(columns);
    graph::PredictionContext context =
        graph::AssembleContext(visible_graph, std::move(selection));

    // Thin the context's observed ratings to the training density (the
    // paper keeps 10% visible at test time as well). The target user's
    // support row is always preserved, and the per-cell hash keeps the
    // visible set independent of the chunk partition.
    ThinObservedCells(&context, /*keep_rows=*/1, context_visible_fraction_,
                      seed_);

    // Fused tape-free forward (packed once, first call). Falls within 1e-5
    // of model_->Predict — see the equivalence tests in tests/core_test.cc.
    if (inference_ == nullptr) {
      inference_ = std::make_unique<InferenceModel>(*model_);
    }
    const Tensor& predicted = inference_->Predict(context, &arena_);

    // The seed user is the first row; seed items are the first columns
    // (samplers preserve seed order).
    HIRE_CHECK_EQ(context.users[0], user);
    for (size_t j = 0; j < chunk.size(); ++j) {
      HIRE_CHECK_EQ(context.items[j], chunk[j]);
      predictions.push_back(predicted.at(0, static_cast<int64_t>(j)));
    }
  }
  return predictions;
}

EvalResult EvaluateColdStart(RatingPredictor* predictor,
                             const data::Dataset& dataset,
                             const data::ColdStartSplit& split,
                             const EvalConfig& config) {
  HIRE_CHECK(predictor != nullptr);
  HIRE_CHECK(config.support_fraction >= 0.0 && config.support_fraction < 1.0);
  if (config.num_threads > 0) SetGlobalThreads(config.num_threads);
  Rng rng(config.seed);

  // Reveal support_fraction of the test ratings as context input; the rest
  // are prediction queries.
  std::vector<data::Rating> shuffled = split.test_ratings;
  rng.Shuffle(&shuffled);
  const size_t support_count = static_cast<size_t>(
      config.support_fraction * static_cast<double>(shuffled.size()));

  std::vector<data::Rating> visible_ratings = split.train_ratings;
  visible_ratings.insert(visible_ratings.end(), shuffled.begin(),
                         shuffled.begin() + static_cast<int64_t>(support_count));
  const graph::BipartiteGraph visible_graph(
      dataset.num_users(), dataset.num_items(), visible_ratings);

  // Group query ratings by user.
  std::unordered_map<int64_t, std::vector<data::Rating>> queries_by_user;
  for (size_t r = support_count; r < shuffled.size(); ++r) {
    queries_by_user[shuffled[r].user].push_back(shuffled[r]);
  }

  std::vector<int64_t> eval_users;
  for (const auto& [user, ratings] : queries_by_user) {
    if (static_cast<int>(ratings.size()) >= config.min_query_items) {
      eval_users.push_back(user);
    }
  }
  std::sort(eval_users.begin(), eval_users.end());
  rng.Shuffle(&eval_users);
  if (config.max_eval_users > 0 &&
      static_cast<int64_t>(eval_users.size()) > config.max_eval_users) {
    eval_users.resize(static_cast<size_t>(config.max_eval_users));
  }
  HIRE_CHECK(!eval_users.empty())
      << "no user has >= " << config.min_query_items
      << " query ratings; shrink min_query_items or enlarge the dataset";

  const float threshold = dataset.RelevanceThreshold();
  std::map<int, std::vector<metrics::RankingMetrics>> per_user;
  EvalResult result;
  Stopwatch stopwatch;

  for (int64_t user : eval_users) {
    const auto& ratings = queries_by_user[user];
    std::vector<int64_t> items;
    std::vector<float> actual;
    items.reserve(ratings.size());
    actual.reserve(ratings.size());
    for (const data::Rating& rating : ratings) {
      items.push_back(rating.item);
      actual.push_back(rating.value);
    }

    stopwatch.Reset();
    const std::vector<float> predicted =
        predictor->PredictForUser(user, items, visible_graph);
    result.predict_seconds += stopwatch.ElapsedSeconds();
    HIRE_CHECK_EQ(predicted.size(), items.size());

    for (int k : config.top_ks) {
      per_user[k].push_back(
          metrics::ComputeRankingMetrics(predicted, actual, k, threshold));
    }
    ++result.num_lists;
  }

  for (const auto& [k, metrics_list] : per_user) {
    result.by_k[k] = metrics::AverageMetrics(metrics_list);
  }
  obs::TelemetrySink::Global().WriteEvent(
      "eval_complete", /*step=*/0,
      {{"num_lists", std::to_string(result.num_lists)},
       {"predict_seconds", obs::JsonNumber(result.predict_seconds)}});
  return result;
}

}  // namespace core
}  // namespace hire
