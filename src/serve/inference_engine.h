#ifndef HIRE_SERVE_INFERENCE_ENGINE_H_
#define HIRE_SERVE_INFERENCE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/hire_config.h"
#include "core/hire_model.h"
#include "core/inference_forward.h"
#include "data/dataset.h"

namespace hire {
namespace serve {

/// One published model generation. Immutable after publication except for
/// running forwards through `model` (HireModel is stateful only in its
/// dropout stream, which eval mode never touches); the engine guarantees a
/// snapshot is only ever driven by one micro-batcher worker at a time.
struct ModelSnapshot {
  std::unique_ptr<core::HireModel> model;
  /// Tape-free fused forward packed from `model` once at Load time (never
  /// per request; the "serve.snapshot.pack_us" histogram records each
  /// packing and tests pin its count to the number of loads). This is what
  /// the micro-batcher actually drives; `model` stays as the autograd
  /// reference and for tooling that needs the tape.
  std::unique_ptr<core::InferenceModel> inference;
  std::string source_path;
  int64_t version = 0;
  int64_t num_parameters = 0;
};

/// Owns the currently published model snapshot and supports atomic hot-swap
/// to a newer HIRESNAP checkpoint while requests are in flight: Load builds
/// the replacement completely off to the side, then swaps one shared_ptr
/// under a mutex. Workers that called Acquire keep their (old) snapshot
/// alive until their batch finishes — a reload never fails or stalls an
/// in-flight request, and dropping the last reference frees the old
/// parameters.
class InferenceEngine {
 public:
  /// `dataset` supplies attribute schemas for model construction and must
  /// outlive the engine. `config` must match the checkpoint being loaded
  /// (shape mismatches throw on Load).
  InferenceEngine(const data::Dataset* dataset, core::HireConfig config);

  /// Loads `snapshot_path` (a HIRESNAP file written by SaveParameters /
  /// training checkpoints) into a fresh model and publishes it. Returns the
  /// new version number (1 for the first load). Throws hire::CheckError on
  /// a missing/corrupt/mismatched snapshot, in which case the previously
  /// published snapshot stays in place.
  int64_t Load(const std::string& snapshot_path);

  /// The currently published snapshot; never nullptr after the first
  /// successful Load. Callers hold the returned pointer for the duration of
  /// one batch so a concurrent Load cannot pull the model out from under
  /// them.
  std::shared_ptr<const ModelSnapshot> Acquire() const;

  bool loaded() const;
  int64_t version() const { return version_.load(std::memory_order_relaxed); }

 private:
  const data::Dataset* dataset_;
  core::HireConfig config_;

  mutable std::mutex mutex_;
  std::shared_ptr<const ModelSnapshot> published_;
  std::atomic<int64_t> version_{0};
};

}  // namespace serve
}  // namespace hire

#endif  // HIRE_SERVE_INFERENCE_ENGINE_H_
