#ifndef HIRE_SERVE_SHARD_ROUTER_H_
#define HIRE_SERVE_SHARD_ROUTER_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/hire_config.h"
#include "data/dataset.h"
#include "graph/bipartite_graph.h"
#include "graph/samplers.h"
#include "serve/batcher.h"
#include "serve/context_cache.h"
#include "serve/inference_engine.h"

namespace hire {
namespace serve {

/// Consistent-hash ring mapping user ids onto engine shards. Each shard owns
/// `vnodes_per_shard` virtual nodes placed deterministically on a 64-bit
/// ring; a key belongs to the first vnode clockwise of its hash. Two
/// properties the tests pin:
///   - stable: the same key maps to the same shard for the lifetime of a
///     ring (and across rings built with the same shard count), and
///   - minimal remap: growing an N-shard ring to N+1 moves keys *only onto
///     the new shard* (never between surviving shards), roughly 1/(N+1) of
///     them.
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(int num_shards, int vnodes_per_shard = 64);

  int ShardForKey(uint64_t key) const;
  int num_shards() const { return num_shards_; }

 private:
  int num_shards_;
  /// (ring position, shard) sorted by position.
  std::vector<std::pair<uint64_t, int>> ring_;
};

/// Outcome of one rolling reload across the fleet.
struct RollingReloadResult {
  bool ok = false;                      // every shard swapped
  int64_t version = 0;                  // min published version afterwards
  std::vector<int64_t> shard_versions;  // per-shard published version
  std::vector<std::string> errors;      // "" for shards that swapped cleanly
  int failed_shards = 0;
};

/// ServeConfig lives in server.h; the router only needs the slice below, so
/// it takes the pieces directly and server.h composes them.
struct ShardRouterConfig {
  int num_shards = 1;
  size_t cache_capacity = 1024;  // total across shards, split evenly
  /// Per-shard template: shard index and metric prefix are stamped, and
  /// batch_window_us is scaled by num_shards so the expected
  /// arrivals-per-window product (co-batch occupancy) is invariant under
  /// sharding — each shard only sees ~1/N of the traffic.
  BatcherConfig batcher;
};

/// N engine shards behind one process: every shard owns its own
/// InferenceEngine (independently hot-swappable snapshot), ContextCache, and
/// MicroBatcher (its own worker thread + bounded queue), plus its own
/// published graph generation pointer. /predict traffic is routed by
/// user-id consistent hashing — the paper's per-user prediction contexts
/// make rating serving embarrassingly partitionable by user — so a user's
/// context plans, cache entries, and co-batched neighbors all live on one
/// shard.
///
/// Metrics: the global "serve.*" counters stay the merged fleet totals
/// (every shard's batcher records into them), and each shard additionally
/// publishes "serve.shard.<i>.routed", "serve.shard.<i>.outcome.*", and
/// "serve.shard.<i>.model_version". Per shard,
///   routed == sum over outcomes of serve.shard.<i>.outcome.*
/// exactly partitions that shard's traffic, mirroring the global invariant.
class ShardRouter {
 public:
  /// `dataset` must outlive the router. `graph` becomes generation 1 on
  /// every shard (shards share the immutable generation object).
  ShardRouter(const data::Dataset* dataset, core::HireConfig model_config,
              graph::BipartiteGraph graph, const ShardRouterConfig& config);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Starts every shard's batch worker (and stops them). Start does not load
  /// a model; call RollingReload for that.
  void Start();
  void Stop();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int ShardForUser(int64_t user) const;

  /// Validates ids against the owning shard's current graph generation and
  /// submits to that shard's batcher; `done` fires exactly once when the
  /// request resolves (see PredictCallback for threading). Early rejections
  /// are accounted against both the global and the shard's outcome
  /// partition, exactly once, and invoke `done` before SubmitAsync returns.
  void SubmitAsync(int64_t user, std::vector<int64_t> items,
                   RequestDeadline deadline, PredictCallback done);

  /// Future-returning convenience wrapper over SubmitAsync (tests and
  /// callers that want to block).
  std::future<RatingResponse> Submit(int64_t user, std::vector<int64_t> items,
                                     RequestDeadline deadline = std::nullopt);

  /// Rolling hot-swap: loads `snapshot_path` into one shard at a time, in
  /// shard order. Each shard's swap is an atomic snapshot-pointer publish —
  /// batches that already Acquire()d the old snapshot drain on it, so no
  /// request ever fails because of the roll. A shard whose load throws
  /// (missing/corrupt file) keeps its previous snapshot and is reported in
  /// the result; the roll still proceeds to the remaining shards so one sick
  /// shard never blocks the rest of the fleet.
  RollingReloadResult RollingReload(const std::string& snapshot_path);

  /// Publishes a new rating-graph generation, rolling across shards: each
  /// shard's graph pointer is swapped and its context cache dropped before
  /// the next shard is touched. The bumped version keys every cache entry,
  /// so a plan built against an old generation can never be served.
  void UpdateGraph(graph::BipartiteGraph graph);

  /// Fleet-wide views (conservative: min version, any-shard circuit open).
  int64_t min_model_version() const;
  int64_t graph_version() const;
  bool all_loaded() const;
  bool any_circuit_open() const;
  int64_t total_inflight() const;
  int64_t total_queue_depth() const;
  std::vector<int64_t> ShardModelVersions() const;

  /// Per-shard components (tests and the single-shard compat accessors).
  InferenceEngine& engine(int shard) { return *shards_[shard]->engine; }
  ContextCache& cache(int shard) { return *shards_[shard]->cache; }
  MicroBatcher& batcher(int shard) { return *shards_[shard]->batcher; }

 private:
  struct EngineShard {
    int index = 0;
    std::unique_ptr<InferenceEngine> engine;
    std::unique_ptr<ContextCache> cache;
    std::unique_ptr<MicroBatcher> batcher;
    mutable std::mutex graph_mutex;
    std::shared_ptr<const VersionedGraph> graph;
    obs::Counter* routed = nullptr;       // serve.shard.<i>.routed
    obs::Gauge* model_version = nullptr;  // serve.shard.<i>.model_version
  };

  /// Loads one shard, honoring the shard-scoped corrupt-reload fault (which
  /// corrupts a private copy so other shards still read the intact file).
  void LoadShard(EngineShard& shard, const std::string& snapshot_path);

  const data::Dataset* dataset_;
  core::HireConfig model_config_;
  graph::NeighborhoodSampler sampler_;
  ConsistentHashRing ring_;
  std::vector<std::unique_ptr<EngineShard>> shards_;
  bool started_ = false;
};

}  // namespace serve
}  // namespace hire

#endif  // HIRE_SERVE_SHARD_ROUTER_H_
