#ifndef HIRE_SERVE_HTTP_CLIENT_H_
#define HIRE_SERVE_HTTP_CLIENT_H_

#include <string>

namespace hire {
namespace serve {

/// Minimal blocking HTTP/1.1 client for loopback, the counterpart of
/// HttpServer: one persistent keep-alive connection per instance, so a
/// closed-loop load-generator client pays the TCP handshake once. Not
/// thread-safe; use one instance per thread.
class HttpClient {
 public:
  struct Result {
    bool ok = false;     // transport-level success (a 500 is still ok=true)
    int status = 0;
    std::string body;
    std::string error;   // set when !ok
  };

  explicit HttpClient(int port, const std::string& host = "127.0.0.1");
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Issues one request. A stale recycled keep-alive connection is detected
  /// and replaced before any bytes are sent (safe for every method); after a
  /// mid-exchange failure, only idempotent GETs are retried on a fresh
  /// connection — a POST may already have been processed server-side.
  Result Request(const std::string& method, const std::string& path,
                 const std::string& body = "");

  Result Get(const std::string& path) { return Request("GET", path); }
  Result Post(const std::string& path, const std::string& body) {
    return Request("POST", path, body);
  }

 private:
  bool EnsureConnected(std::string* error);
  void Disconnect();
  Result RequestOnce(const std::string& method, const std::string& path,
                     const std::string& body);

  const std::string host_;
  const int port_;
  int fd_ = -1;
};

}  // namespace serve
}  // namespace hire

#endif  // HIRE_SERVE_HTTP_CLIENT_H_
