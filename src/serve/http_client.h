#ifndef HIRE_SERVE_HTTP_CLIENT_H_
#define HIRE_SERVE_HTTP_CLIENT_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace hire {
namespace serve {

/// Minimal blocking HTTP/1.1 client for loopback, the counterpart of
/// HttpServer: one persistent keep-alive connection per instance, so a
/// closed-loop load-generator client pays the TCP handshake once. Not
/// thread-safe; use one instance per thread.
class HttpClient {
 public:
  struct Result {
    bool ok = false;     // transport-level success (a 500 is still ok=true)
    int status = 0;
    std::string body;
    /// Response headers, names lower-cased.
    std::map<std::string, std::string> headers;
    std::string error;   // set when !ok
    /// The socket timeout expired (distinct from connection-refused or a
    /// reset: the server is reachable but did not answer in time). The
    /// error string carries a "timeout:" prefix too.
    bool timed_out = false;
  };

  /// `timeout_ms` bounds every socket send and receive (SO_SNDTIMEO /
  /// SO_RCVTIMEO); an expiry surfaces as Result.timed_out.
  explicit HttpClient(int port, const std::string& host = "127.0.0.1",
                      int timeout_ms = 30000);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Issues one request. A stale recycled keep-alive connection is detected
  /// and replaced before any bytes are sent (safe for every method); after a
  /// mid-exchange failure, only idempotent GETs are retried on a fresh
  /// connection — a POST may already have been processed server-side. A
  /// timed-out GET is not retried either (the server is alive but slow;
  /// retrying would just double the wait).
  Result Request(
      const std::string& method, const std::string& path,
      const std::string& body = "",
      const std::vector<std::pair<std::string, std::string>>& extra_headers =
          {});

  Result Get(const std::string& path) { return Request("GET", path); }
  Result Post(const std::string& path, const std::string& body) {
    return Request("POST", path, body);
  }

 private:
  bool EnsureConnected(std::string* error);
  void Disconnect();
  Result RequestOnce(
      const std::string& method, const std::string& path,
      const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& extra_headers);

  const std::string host_;
  const int port_;
  const int timeout_ms_;
  int fd_ = -1;
};

}  // namespace serve
}  // namespace hire

#endif  // HIRE_SERVE_HTTP_CLIENT_H_
