#include "serve/server.h"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "utils/check.h"
#include "utils/fault_injection.h"
#include "utils/logging.h"

namespace hire {
namespace serve {

namespace {

/// Parses a /predict body of the form {"user":u,"items":[i,...]}. Returns
/// false with `error` set on malformed input.
bool ParsePredictBody(const std::string& body, int64_t* user,
                      std::vector<int64_t>* items, std::string* error) {
  std::string json_error;
  if (!obs::JsonValidate(body, &json_error)) {
    *error = "invalid JSON: " + json_error;
    return false;
  }
  double user_value = 0.0;
  if (!obs::FindJsonNumberField(body, "user", &user_value)) {
    *error = "missing numeric \"user\" field";
    return false;
  }
  *user = static_cast<int64_t>(user_value);

  const size_t key = body.find("\"items\"");
  if (key == std::string::npos) {
    *error = "missing \"items\" field";
    return false;
  }
  size_t pos = body.find('[', key);
  if (pos == std::string::npos) {
    *error = "\"items\" must be an array";
    return false;
  }
  ++pos;
  items->clear();
  while (pos < body.size()) {
    while (pos < body.size() &&
           (std::isspace(static_cast<unsigned char>(body[pos])) ||
            body[pos] == ',')) {
      ++pos;
    }
    if (pos < body.size() && body[pos] == ']') return true;
    char* end = nullptr;
    const long long value = std::strtoll(body.c_str() + pos, &end, 10);
    if (end == body.c_str() + pos) {
      *error = "\"items\" must contain only integers";
      return false;
    }
    items->push_back(static_cast<int64_t>(value));
    pos = static_cast<size_t>(end - body.c_str());
  }
  *error = "unterminated \"items\" array";
  return false;
}

/// Maps a batcher error string onto an HTTP status.
int StatusForError(const std::string& error) {
  if (error.rfind("bad request", 0) == 0) return 400;
  if (error.rfind("overloaded", 0) == 0) return 503;
  if (error.rfind("deadline exceeded", 0) == 0) return 504;
  if (error == "no model published") return 503;
  return 500;
}

std::string RenderPredictResponse(int64_t user, const RatingResponse& r) {
  std::string out = "{\"user\":" + std::to_string(user) + ",\"predictions\":[";
  for (size_t i = 0; i < r.predictions.size(); ++i) {
    if (i > 0) out += ",";
    out += obs::JsonNumber(static_cast<double>(r.predictions[i]));
  }
  out += "],\"degraded\":" + std::string(r.degraded ? "true" : "false") +
         ",\"model_version\":" + std::to_string(r.model_version) +
         ",\"graph_version\":" + std::to_string(r.graph_version) +
         ",\"cache_hit\":" + std::string(r.cache_hit ? "true" : "false") +
         ",\"batch_users\":" + std::to_string(r.batch_users) +
         ",\"latency_us\":" + obs::JsonNumber(r.latency_us) +
         ",\"request_id\":" + std::to_string(r.request_id) + "}";
  return out;
}

/// Error response whose status and outcome accounting follow from the error
/// string; shed responses carry Retry-After so well-behaved clients back
/// off instead of hammering an overloaded server.
HttpResponse ErrorResponse(const RatingResponse& response) {
  HttpResponse http{StatusForError(response.error), "application/json",
                    "{\"error\":" + obs::JsonString(response.error) + "}"};
  if (http.status == 503) http.headers.push_back({"Retry-After", "1"});
  return http;
}

/// True when the raw query string asks for Prometheus exposition
/// (GET /metrics?format=prometheus).
bool WantsPrometheus(const std::string& query) {
  return query.find("format=prometheus") != std::string::npos;
}

/// Splices point-in-time header fields into a Snapshot::ToJson object so the
/// existing top-level keys (and the scripts that grep them) are untouched.
std::string MetricsJsonWithHeader(const std::string& snapshot_json,
                                  double uptime_seconds) {
  const int64_t ts_unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::string out = "{\"ts_unix_ms\":" + std::to_string(ts_unix_ms) +
                    ",\"uptime_seconds\":" + obs::JsonNumber(uptime_seconds);
  const std::string rest = snapshot_json.substr(1);  // after the opening '{'
  out += rest == "}" ? rest : "," + rest;
  return out;
}

}  // namespace

RatingServer::RatingServer(const data::Dataset* dataset,
                           core::HireConfig model_config,
                           graph::BipartiteGraph graph,
                           const ServeConfig& config)
    : config_(config),
      engine_(dataset, model_config),
      cache_(config.cache_capacity),
      batcher_(config.batcher, &engine_, &cache_, &sampler_,
               [this] {
                 std::lock_guard<std::mutex> lock(graph_mutex_);
                 return current_graph_;
               }),
      http_(config.port, config.http_threads,
            HttpServerOptions{config.idle_timeout_ms,
                              config.header_timeout_ms}) {
  current_graph_ =
      std::make_shared<VersionedGraph>(std::move(graph), /*version=*/1);
  RegisterRoutes();
}

RatingServer::~RatingServer() { Stop(); }

void RatingServer::Start() {
  HIRE_CHECK(!started_) << "server already started";
  if (!config_.model_path.empty()) {
    engine_.Load(config_.model_path);
  } else {
    HIRE_LOG(Warning) << "starting with no model: serving degraded "
                         "(bias-table) predictions until /reload publishes "
                         "a snapshot";
  }
  batcher_.Start();
  http_.Start();
  if (config_.stats_tick_ms > 0) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_stop_ = false;
    }
    stats_thread_ = std::thread([this] { StatsLoop(); });
  }
  started_ = true;
}

void RatingServer::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_stop_ = true;
  }
  stats_cv_.notify_all();
  if (stats_thread_.joinable()) stats_thread_.join();
  http_.Stop();
  batcher_.Stop();
  started_ = false;
}

double RatingServer::UptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_time_)
      .count();
}

obs::MetricsRegistry::Snapshot RatingServer::TakeMetricsSnapshot() {
  // Refresh point-in-time gauges first so every scrape (JSON or Prometheus)
  // carries a consistent uptime and the currently published versions.
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("serve.uptime_seconds")->Set(UptimeSeconds());
  registry.GetGauge("serve.model_version")
      ->Set(static_cast<double>(engine_.version()));
  registry.GetGauge("serve.graph_version")
      ->Set(static_cast<double>(graph_version()));
  return registry.Take();
}

void RatingServer::StatsTick() {
  auto& registry = obs::MetricsRegistry::Global();
  const auto snapshot = registry.Take();
  const auto it = snapshot.histograms.find("serve.request_latency_us");
  if (it == snapshot.histograms.end()) return;
  const obs::HistogramSnapshot delta = latency_window_.Advance(it->second);
  registry.GetGauge("serve.latency_window_count")
      ->Set(static_cast<double>(delta.count));
  // An idle window keeps the previous percentiles (a gap would read as a
  // latency cliff); serve.latency_window_count tells consumers the gauges
  // are stale.
  if (delta.count == 0) return;
  registry.GetGauge("serve.latency_p50_us")
      ->Set(obs::HistogramQuantile(delta, 0.50));
  registry.GetGauge("serve.latency_p95_us")
      ->Set(obs::HistogramQuantile(delta, 0.95));
  registry.GetGauge("serve.latency_p99_us")
      ->Set(obs::HistogramQuantile(delta, 0.99));
}

void RatingServer::StatsLoop() {
  std::unique_lock<std::mutex> lock(stats_mutex_);
  while (!stats_stop_) {
    if (stats_cv_.wait_for(lock,
                           std::chrono::milliseconds(config_.stats_tick_ms),
                           [this] { return stats_stop_; })) {
      break;
    }
    lock.unlock();
    StatsTick();
    lock.lock();
  }
  // One final tick so short-lived servers still publish window gauges.
  lock.unlock();
  StatsTick();
}

RatingResponse RatingServer::Predict(int64_t user, std::vector<int64_t> items,
                                     RequestDeadline deadline) {
  return PredictAsync(user, std::move(items), deadline).get();
}

std::future<RatingResponse> RatingServer::PredictAsync(
    int64_t user, std::vector<int64_t> items, RequestDeadline deadline) {
  // Bounds-check against the entity universe up front: the context
  // assembler indexes attribute tables by id and must never see a
  // out-of-range one.
  int64_t num_users = 0;
  int64_t num_items = 0;
  {
    std::lock_guard<std::mutex> lock(graph_mutex_);
    num_users = current_graph_->graph.num_users();
    num_items = current_graph_->graph.num_items();
  }
  std::string error;
  if (user < 0 || user >= num_users) {
    error = "bad request: user " + std::to_string(user) +
            " outside [0, " + std::to_string(num_users) + ")";
  } else {
    for (int64_t item : items) {
      if (item < 0 || item >= num_items) {
        error = "bad request: item " + std::to_string(item) +
                " outside [0, " + std::to_string(num_items) + ")";
        break;
      }
    }
  }
  if (!error.empty()) {
    // Rejected before the batcher ever saw it, so account the outcome here
    // (the batcher's Resolve() accounts everything it admits).
    std::promise<RatingResponse> rejected;
    RatingResponse response;
    response.ok = false;
    response.error = std::move(error);
    RecordOutcome(ClassifyOutcome(response));
    rejected.set_value(std::move(response));
    return rejected.get_future();
  }
  return batcher_.Submit(user, std::move(items), deadline);
}

int64_t RatingServer::Reload(const std::string& snapshot_path) {
  const std::string& path =
      snapshot_path.empty() ? config_.model_path : snapshot_path;
  HIRE_CHECK(!path.empty()) << "no model path to reload";
  // Chaos hook: when HIRE_FAULT_SERVE_CORRUPT_RELOAD is armed this flips a
  // bit in the snapshot file, and the CRC check in Load must reject it
  // while the previously published snapshot keeps serving.
  FaultInjector::Global().MaybeCorruptServeReload(path);
  return engine_.Load(path);
}

void RatingServer::UpdateGraph(graph::BipartiteGraph graph) {
  {
    std::lock_guard<std::mutex> lock(graph_mutex_);
    current_graph_ = std::make_shared<VersionedGraph>(
        std::move(graph), current_graph_->version + 1);
  }
  cache_.InvalidateAll();
  obs::MetricsRegistry::Global().GetCounter("serve.graph_updates")->Increment();
  HIRE_LOG(Info) << "published graph v" << graph_version();
}

int64_t RatingServer::graph_version() const {
  std::lock_guard<std::mutex> lock(graph_mutex_);
  return current_graph_->version;
}

void RatingServer::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

bool RatingServer::WaitForShutdown(int timeout_ms) {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  return shutdown_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               [this] { return shutdown_requested_; });
}

void RatingServer::RegisterRoutes() {
  http_.AddRoute("POST", "/predict", [this](const HttpRequest& request) {
    int64_t user = 0;
    std::vector<int64_t> items;
    std::string error;
    if (!ParsePredictBody(request.body, &user, &items, &error)) {
      // Never reaches the batcher; account the failure here so the outcome
      // counters still partition all /predict traffic.
      RecordOutcome(RequestOutcome::kFailed);
      return HttpResponse{400, "application/json",
                          "{\"error\":" + obs::JsonString(error) + "}"};
    }
    // Per-request deadline override: X-Deadline-Ms is a relative budget,
    // converted to an absolute deadline at admission.
    RequestDeadline deadline;
    const auto header = request.headers.find("x-deadline-ms");
    if (header != request.headers.end()) {
      char* end = nullptr;
      const long long ms = std::strtoll(header->second.c_str(), &end, 10);
      if (end == header->second.c_str() || ms <= 0) {
        RecordOutcome(RequestOutcome::kFailed);
        return HttpResponse{
            400, "application/json",
            "{\"error\":\"bad request: X-Deadline-Ms must be a positive "
            "integer\"}"};
      }
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(ms);
    }
    RatingResponse response = Predict(user, std::move(items), deadline);
    // Serialize and socket-write happen after the batcher resolved the
    // request, so the transport attributes those two stages itself, under
    // the same outcome the batcher recorded.
    const RequestOutcome outcome = ClassifyOutcome(response);
    const auto serialize_start = std::chrono::steady_clock::now();
    HttpResponse http =
        response.ok ? HttpResponse{200, "application/json",
                                   RenderPredictResponse(user, response)}
                    : ErrorResponse(response);
    RecordStageLatency(outcome, RequestStage::kSerialize,
                       std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - serialize_start)
                           .count());
    http.on_written = [outcome](double write_micros) {
      RecordStageLatency(outcome, RequestStage::kWrite, write_micros);
    };
    return http;
  });

  http_.AddRoute("GET", "/healthz", [this](const HttpRequest&) {
    // Liveness stays 200 even without a model: the server still answers
    // (degraded), and restart-looping it would not help.
    const bool degraded = !engine_.loaded() || batcher_.circuit_open();
    std::string body =
        std::string("{\"status\":") + (degraded ? "\"degraded\"" : "\"ok\"") +
        ",\"model_loaded\":" + (engine_.loaded() ? "true" : "false") +
        ",\"circuit_open\":" + (batcher_.circuit_open() ? "true" : "false") +
        ",\"model_version\":" + std::to_string(engine_.version()) +
        ",\"graph_version\":" + std::to_string(graph_version()) +
        ",\"inflight\":" + std::to_string(batcher_.inflight()) +
        ",\"queue_depth\":" + std::to_string(batcher_.queue_depth()) + "}";
    return HttpResponse{200, "application/json", body};
  });

  http_.AddRoute("GET", "/metrics", [this](const HttpRequest& request) {
    const auto snapshot = TakeMetricsSnapshot();
    if (WantsPrometheus(request.query)) {
      return HttpResponse{200, obs::kPrometheusContentType,
                          obs::ToPrometheusText(snapshot)};
    }
    return HttpResponse{
        200, "application/json",
        MetricsJsonWithHeader(snapshot.ToJson(), UptimeSeconds())};
  });

  // Scraper-friendly alias: same exposition, no query string needed.
  http_.AddRoute("GET", "/metrics/prometheus", [this](const HttpRequest&) {
    return HttpResponse{200, obs::kPrometheusContentType,
                        obs::ToPrometheusText(TakeMetricsSnapshot())};
  });

  http_.AddRoute("POST", "/reload", [this](const HttpRequest& request) {
    std::string path;
    if (!request.body.empty()) {
      std::string json_error;
      if (!obs::JsonValidate(request.body, &json_error)) {
        return HttpResponse{400, "application/json",
                            "{\"error\":" + obs::JsonString(
                                                "invalid JSON: " + json_error) +
                                "}"};
      }
      obs::FindJsonStringField(request.body, "model", &path);
    }
    try {
      const int64_t version = Reload(path);
      return HttpResponse{200, "application/json",
                          "{\"model_version\":" + std::to_string(version) +
                              "}"};
    } catch (const std::exception& error) {
      return HttpResponse{500, "application/json",
                          "{\"error\":" +
                              obs::JsonString(std::string(error.what())) +
                              "}"};
    }
  });

  http_.AddRoute("POST", "/shutdown", [this](const HttpRequest&) {
    RequestShutdown();
    return HttpResponse{200, "application/json",
                        "{\"status\":\"shutting down\"}"};
  });
}

}  // namespace serve
}  // namespace hire
