#include "serve/server.h"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "utils/check.h"
#include "utils/fault_injection.h"
#include "utils/logging.h"

namespace hire {
namespace serve {

namespace {

/// Parses a /predict body of the form {"user":u,"items":[i,...]}. Returns
/// false with `error` set on malformed input.
bool ParsePredictBody(const std::string& body, int64_t* user,
                      std::vector<int64_t>* items, std::string* error) {
  std::string json_error;
  if (!obs::JsonValidate(body, &json_error)) {
    *error = "invalid JSON: " + json_error;
    return false;
  }
  double user_value = 0.0;
  if (!obs::FindJsonNumberField(body, "user", &user_value)) {
    *error = "missing numeric \"user\" field";
    return false;
  }
  *user = static_cast<int64_t>(user_value);

  const size_t key = body.find("\"items\"");
  if (key == std::string::npos) {
    *error = "missing \"items\" field";
    return false;
  }
  size_t pos = body.find('[', key);
  if (pos == std::string::npos) {
    *error = "\"items\" must be an array";
    return false;
  }
  ++pos;
  items->clear();
  while (pos < body.size()) {
    while (pos < body.size() &&
           (std::isspace(static_cast<unsigned char>(body[pos])) ||
            body[pos] == ',')) {
      ++pos;
    }
    if (pos < body.size() && body[pos] == ']') return true;
    char* end = nullptr;
    const long long value = std::strtoll(body.c_str() + pos, &end, 10);
    if (end == body.c_str() + pos) {
      *error = "\"items\" must contain only integers";
      return false;
    }
    items->push_back(static_cast<int64_t>(value));
    pos = static_cast<size_t>(end - body.c_str());
  }
  *error = "unterminated \"items\" array";
  return false;
}

/// Maps a batcher error string onto an HTTP status.
int StatusForError(const std::string& error) {
  if (error.rfind("bad request", 0) == 0) return 400;
  if (error.rfind("overloaded", 0) == 0) return 503;
  if (error.rfind("deadline exceeded", 0) == 0) return 504;
  if (error == "no model published") return 503;
  return 500;
}

std::string RenderPredictResponse(int64_t user, const RatingResponse& r) {
  std::string out = "{\"user\":" + std::to_string(user) + ",\"predictions\":[";
  for (size_t i = 0; i < r.predictions.size(); ++i) {
    if (i > 0) out += ",";
    out += obs::JsonNumber(static_cast<double>(r.predictions[i]));
  }
  out += "],\"degraded\":" + std::string(r.degraded ? "true" : "false") +
         ",\"model_version\":" + std::to_string(r.model_version) +
         ",\"graph_version\":" + std::to_string(r.graph_version) +
         ",\"cache_hit\":" + std::string(r.cache_hit ? "true" : "false") +
         ",\"batch_users\":" + std::to_string(r.batch_users) +
         ",\"latency_us\":" + obs::JsonNumber(r.latency_us) +
         ",\"request_id\":" + std::to_string(r.request_id) +
         ",\"shard\":" + std::to_string(r.shard) + "}";
  return out;
}

std::string JsonInt64Array(const std::vector<int64_t>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(values[i]);
  }
  out += "]";
  return out;
}

/// Error response whose status and outcome accounting follow from the error
/// string; shed responses carry Retry-After so well-behaved clients back
/// off instead of hammering an overloaded server.
HttpResponse ErrorResponse(const RatingResponse& response) {
  HttpResponse http{StatusForError(response.error), "application/json",
                    "{\"error\":" + obs::JsonString(response.error) + "}"};
  if (http.status == 503) http.headers.push_back({"Retry-After", "1"});
  return http;
}

/// True when the raw query string asks for Prometheus exposition
/// (GET /metrics?format=prometheus).
bool WantsPrometheus(const std::string& query) {
  return query.find("format=prometheus") != std::string::npos;
}

/// Splices point-in-time header fields into a Snapshot::ToJson object so the
/// existing top-level keys (and the scripts that grep them) are untouched.
std::string MetricsJsonWithHeader(const std::string& snapshot_json,
                                  double uptime_seconds) {
  const int64_t ts_unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::string out = "{\"ts_unix_ms\":" + std::to_string(ts_unix_ms) +
                    ",\"uptime_seconds\":" + obs::JsonNumber(uptime_seconds);
  const std::string rest = snapshot_json.substr(1);  // after the opening '{'
  out += rest == "}" ? rest : "," + rest;
  return out;
}

}  // namespace

RatingServer::RatingServer(const data::Dataset* dataset,
                           core::HireConfig model_config,
                           graph::BipartiteGraph graph,
                           const ServeConfig& config)
    : config_(config),
      router_(dataset, model_config, std::move(graph),
              ShardRouterConfig{config.num_shards, config.cache_capacity,
                                config.batcher}),
      http_(config.port, config.http_threads,
            HttpServerOptions{config.idle_timeout_ms, config.header_timeout_ms,
                              config.max_connections}) {
  RegisterRoutes();
}

RatingServer::~RatingServer() { Stop(); }

void RatingServer::Start() {
  HIRE_CHECK(!started_) << "server already started";
  if (!config_.model_path.empty()) {
    const RollingReloadResult initial =
        router_.RollingReload(config_.model_path);
    std::string first_error;
    for (const std::string& error : initial.errors) {
      if (!error.empty()) {
        first_error = error;
        break;
      }
    }
    HIRE_CHECK(initial.ok) << "initial model load failed on "
                           << initial.failed_shards
                           << " shard(s): " << first_error;
  } else {
    HIRE_LOG(Warning) << "starting with no model: serving degraded "
                         "(bias-table) predictions until /reload publishes "
                         "a snapshot";
  }
  router_.Start();
  http_.Start();
  if (config_.stats_tick_ms > 0) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_stop_ = false;
    }
    stats_thread_ = std::thread([this] { StatsLoop(); });
  }
  started_ = true;
}

void RatingServer::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_stop_ = true;
  }
  stats_cv_.notify_all();
  if (stats_thread_.joinable()) stats_thread_.join();
  http_.Stop();
  router_.Stop();
  started_ = false;
}

double RatingServer::UptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_time_)
      .count();
}

obs::MetricsRegistry::Snapshot RatingServer::TakeMetricsSnapshot() {
  // Refresh point-in-time gauges first so every scrape (JSON or Prometheus)
  // carries a consistent uptime and the currently published versions.
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("serve.uptime_seconds")->Set(UptimeSeconds());
  // The fleet's published version is the conservative minimum; each shard
  // also keeps its own serve.shard.<i>.model_version gauge current.
  registry.GetGauge("serve.model_version")
      ->Set(static_cast<double>(router_.min_model_version()));
  registry.GetGauge("serve.graph_version")
      ->Set(static_cast<double>(graph_version()));
  return registry.Take();
}

void RatingServer::StatsTick() {
  auto& registry = obs::MetricsRegistry::Global();
  const auto snapshot = registry.Take();
  const auto it = snapshot.histograms.find("serve.request_latency_us");
  if (it == snapshot.histograms.end()) return;
  const obs::HistogramSnapshot delta = latency_window_.Advance(it->second);
  registry.GetGauge("serve.latency_window_count")
      ->Set(static_cast<double>(delta.count));
  // An idle window keeps the previous percentiles (a gap would read as a
  // latency cliff); serve.latency_window_count tells consumers the gauges
  // are stale.
  if (delta.count == 0) return;
  registry.GetGauge("serve.latency_p50_us")
      ->Set(obs::HistogramQuantile(delta, 0.50));
  registry.GetGauge("serve.latency_p95_us")
      ->Set(obs::HistogramQuantile(delta, 0.95));
  registry.GetGauge("serve.latency_p99_us")
      ->Set(obs::HistogramQuantile(delta, 0.99));
}

void RatingServer::StatsLoop() {
  std::unique_lock<std::mutex> lock(stats_mutex_);
  while (!stats_stop_) {
    if (stats_cv_.wait_for(lock,
                           std::chrono::milliseconds(config_.stats_tick_ms),
                           [this] { return stats_stop_; })) {
      break;
    }
    lock.unlock();
    StatsTick();
    lock.lock();
  }
  // One final tick so short-lived servers still publish window gauges.
  lock.unlock();
  StatsTick();
}

RatingResponse RatingServer::Predict(int64_t user, std::vector<int64_t> items,
                                     RequestDeadline deadline) {
  return PredictAsync(user, std::move(items), deadline).get();
}

std::future<RatingResponse> RatingServer::PredictAsync(
    int64_t user, std::vector<int64_t> items, RequestDeadline deadline) {
  // The router owns id validation and per-shard/global outcome accounting.
  return router_.Submit(user, std::move(items), deadline);
}

int64_t RatingServer::Reload(const std::string& snapshot_path) {
  const RollingReloadResult result = ReloadDetailed(snapshot_path);
  if (!result.ok) {
    std::string message = std::to_string(result.failed_shards) +
                          " shard(s) rejected the snapshot:";
    for (size_t i = 0; i < result.errors.size(); ++i) {
      if (result.errors[i].empty()) continue;
      message += " [shard " + std::to_string(i) + "] " + result.errors[i];
    }
    throw std::runtime_error(message);
  }
  return result.version;
}

RollingReloadResult RatingServer::ReloadDetailed(
    const std::string& snapshot_path) {
  const std::string& path =
      snapshot_path.empty() ? config_.model_path : snapshot_path;
  HIRE_CHECK(!path.empty()) << "no model path to reload";
  // Chaos hook (fleet-wide knob, explicit reloads only — never the boot
  // load): when HIRE_FAULT_SERVE_CORRUPT_RELOAD is armed this flips a bit in
  // the snapshot file itself, so every shard's CRC check must reject it and
  // the whole fleet keeps its previous snapshots.
  FaultInjector::Global().MaybeCorruptServeReload(path);
  return router_.RollingReload(path);
}

void RatingServer::UpdateGraph(graph::BipartiteGraph graph) {
  router_.UpdateGraph(std::move(graph));
}

int64_t RatingServer::graph_version() const {
  return router_.graph_version();
}

void RatingServer::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

bool RatingServer::WaitForShutdown(int timeout_ms) {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  return shutdown_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               [this] { return shutdown_requested_; });
}

void RatingServer::RegisterRoutes() {
  // Async route: the handler thread is released as soon as the request is
  // in its shard's queue, and the response is completed from the batcher's
  // resolve callback. Requests in flight are therefore bounded by per-shard
  // admission control (queue + max-inflight), not by --http-threads — the
  // property that lets every shard keep full batches under load.
  http_.AddAsyncRoute("POST", "/predict", [this](const HttpRequest& request,
                                                 HttpDone done) {
    int64_t user = 0;
    std::vector<int64_t> items;
    std::string error;
    if (!ParsePredictBody(request.body, &user, &items, &error)) {
      // Never reaches the batcher; account the failure here so the outcome
      // counters still partition all /predict traffic.
      RecordOutcome(RequestOutcome::kFailed);
      done(HttpResponse{400, "application/json",
                        "{\"error\":" + obs::JsonString(error) + "}"});
      return;
    }
    // Per-request deadline override: X-Deadline-Ms is a relative budget,
    // converted to an absolute deadline at admission.
    RequestDeadline deadline;
    const auto header = request.headers.find("x-deadline-ms");
    if (header != request.headers.end()) {
      char* end = nullptr;
      const long long ms = std::strtoll(header->second.c_str(), &end, 10);
      if (end == header->second.c_str() || ms <= 0) {
        RecordOutcome(RequestOutcome::kFailed);
        done(HttpResponse{
            400, "application/json",
            "{\"error\":\"bad request: X-Deadline-Ms must be a positive "
            "integer\"}"});
        return;
      }
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(ms);
    }
    router_.SubmitAsync(
        user, std::move(items), deadline,
        [user, done = std::move(done)](RatingResponse response) {
          // Serialize and socket-write happen after the batcher resolved
          // the request, so the transport attributes those two stages
          // itself, under the same outcome the batcher recorded.
          const RequestOutcome outcome = ClassifyOutcome(response);
          const auto serialize_start = std::chrono::steady_clock::now();
          HttpResponse http =
              response.ok ? HttpResponse{200, "application/json",
                                         RenderPredictResponse(user, response)}
                          : ErrorResponse(response);
          RecordStageLatency(
              outcome, RequestStage::kSerialize,
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - serialize_start)
                  .count());
          http.on_written = [outcome](double write_micros) {
            RecordStageLatency(outcome, RequestStage::kWrite, write_micros);
          };
          done(std::move(http));
        });
  });

  http_.AddRoute("GET", "/healthz", [this](const HttpRequest&) {
    // Liveness stays 200 even without a model: the server still answers
    // (degraded), and restart-looping it would not help. "degraded" means
    // ANY shard lacks a model or has its breaker open; the top-level
    // model_version is the conservative fleet minimum and shard_versions
    // breaks it out per shard.
    const bool all_loaded = router_.all_loaded();
    const bool any_open = router_.any_circuit_open();
    const bool degraded = !all_loaded || any_open;
    std::string body =
        std::string("{\"status\":") + (degraded ? "\"degraded\"" : "\"ok\"") +
        ",\"model_loaded\":" + (all_loaded ? "true" : "false") +
        ",\"circuit_open\":" + (any_open ? "true" : "false") +
        ",\"model_version\":" + std::to_string(router_.min_model_version()) +
        ",\"graph_version\":" + std::to_string(graph_version()) +
        ",\"inflight\":" + std::to_string(router_.total_inflight()) +
        ",\"queue_depth\":" + std::to_string(router_.total_queue_depth()) +
        ",\"shards\":" + std::to_string(router_.num_shards()) +
        ",\"shard_versions\":" + JsonInt64Array(router_.ShardModelVersions()) +
        "}";
    return HttpResponse{200, "application/json", body};
  });

  http_.AddRoute("GET", "/metrics", [this](const HttpRequest& request) {
    const auto snapshot = TakeMetricsSnapshot();
    if (WantsPrometheus(request.query)) {
      return HttpResponse{200, obs::kPrometheusContentType,
                          obs::ToPrometheusText(snapshot)};
    }
    return HttpResponse{
        200, "application/json",
        MetricsJsonWithHeader(snapshot.ToJson(), UptimeSeconds())};
  });

  // Scraper-friendly alias: same exposition, no query string needed.
  http_.AddRoute("GET", "/metrics/prometheus", [this](const HttpRequest&) {
    return HttpResponse{200, obs::kPrometheusContentType,
                        obs::ToPrometheusText(TakeMetricsSnapshot())};
  });

  http_.AddRoute("POST", "/reload", [this](const HttpRequest& request) {
    std::string path;
    if (!request.body.empty()) {
      std::string json_error;
      if (!obs::JsonValidate(request.body, &json_error)) {
        return HttpResponse{400, "application/json",
                            "{\"error\":" + obs::JsonString(
                                                "invalid JSON: " + json_error) +
                                "}"};
      }
      obs::FindJsonStringField(request.body, "model", &path);
    }
    try {
      const RollingReloadResult result = ReloadDetailed(path);
      const std::string versions = JsonInt64Array(result.shard_versions);
      if (result.ok) {
        return HttpResponse{
            200, "application/json",
            "{\"model_version\":" + std::to_string(result.version) +
                ",\"shard_versions\":" + versions + "}"};
      }
      // Partial failure: shards that swapped keep the new snapshot, the sick
      // ones keep serving their previous one (or degrade) — 500 tells the
      // operator the roll did not fully land.
      std::string message;
      for (size_t i = 0; i < result.errors.size(); ++i) {
        if (result.errors[i].empty()) continue;
        if (!message.empty()) message += "; ";
        message += "shard " + std::to_string(i) + ": " + result.errors[i];
      }
      return HttpResponse{
          500, "application/json",
          "{\"error\":" + obs::JsonString(message) +
              ",\"failed_shards\":" + std::to_string(result.failed_shards) +
              ",\"model_version\":" + std::to_string(result.version) +
              ",\"shard_versions\":" + versions + "}"};
    } catch (const std::exception& error) {
      return HttpResponse{500, "application/json",
                          "{\"error\":" +
                              obs::JsonString(std::string(error.what())) +
                              "}"};
    }
  });

  http_.AddRoute("POST", "/shutdown", [this](const HttpRequest&) {
    RequestShutdown();
    return HttpResponse{200, "application/json",
                        "{\"status\":\"shutting down\"}"};
  });
}

}  // namespace serve
}  // namespace hire
