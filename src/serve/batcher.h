#ifndef HIRE_SERVE_BATCHER_H_
#define HIRE_SERVE_BATCHER_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/hire_config.h"
#include "graph/bipartite_graph.h"
#include "graph/samplers.h"
#include "serve/bounded_queue.h"
#include "serve/context_cache.h"
#include "serve/inference_engine.h"

namespace hire {
namespace serve {

/// One immutable published generation of the rating graph. Requests are
/// answered against whichever generation is current when their batch runs;
/// the version is part of the context-cache key.
struct VersionedGraph {
  VersionedGraph(graph::BipartiteGraph g, int64_t v)
      : graph(std::move(g)), version(v) {}
  graph::BipartiteGraph graph;
  int64_t version;
};

/// Answer for one rating request.
struct RatingResponse {
  bool ok = false;
  std::string error;              // set when !ok
  std::vector<float> predictions; // one per requested item, in request order
  bool cache_hit = false;         // this user's context plan was cached
  int64_t batch_users = 0;        // distinct users sharing the forward
  int64_t model_version = 0;
  int64_t graph_version = 0;
  double latency_us = 0.0;        // enqueue -> completion
};

struct BatcherConfig {
  /// How long the worker keeps the batch open after the first request
  /// arrives, waiting for co-batchable requests. 0 = no coalescing: every
  /// request gets its own context and forward (the "one context per
  /// request" baseline the load generator compares against).
  int64_t batch_window_us = 2000;
  /// Max distinct users coalesced into one shared context (bounded by the
  /// context row budget).
  int64_t max_batch_users = 8;
  /// Prediction-context dimensions (rows x columns).
  int64_t context_users = 16;
  int64_t context_items = 16;
  /// Share of non-target rows' observed ratings kept visible, matching the
  /// training density (paper test protocol).
  double visible_fraction = 0.1;
  /// Seed for context sampling; predictions are deterministic given
  /// (seed, graph, model).
  uint64_t seed = 7;
  /// Bound of the request queue; TryPush failures surface as 503s.
  size_t queue_capacity = 256;
};

/// Dynamic micro-batcher: a bounded MPMC queue feeding one inference worker
/// that coalesces requests arriving within the batch window into shared
/// prediction contexts. k users sharing a context cost one HIM forward
/// instead of k — the HIRE all-in-one property that makes serving
/// batchable. A single worker drives the published model snapshot, so
/// forwards never race while hot-swap (InferenceEngine::Load) proceeds
/// concurrently.
class MicroBatcher {
 public:
  /// `graph_provider` returns the current graph generation (called once per
  /// batch). All pointers must outlive the batcher.
  MicroBatcher(
      const BatcherConfig& config, InferenceEngine* engine,
      ContextCache* cache, const graph::ContextSampler* sampler,
      std::function<std::shared_ptr<const VersionedGraph>()> graph_provider);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  void Start();
  /// Closes the queue and joins the worker. Already-queued requests are
  /// drained and served; only new submissions are rejected.
  void Stop();

  /// Enqueues a request. The future resolves when its batch completes. When
  /// the queue is full or the batcher is stopped, the future is already
  /// resolved with ok=false (callers map that to 503).
  std::future<RatingResponse> Submit(int64_t user,
                                     std::vector<int64_t> items);

  const BatcherConfig& config() const { return config_; }
  size_t queue_depth() const { return queue_.size(); }

 private:
  struct PendingRequest {
    int64_t user = 0;
    std::vector<int64_t> items;
    std::promise<RatingResponse> promise;
    std::chrono::steady_clock::time_point enqueue_time;
  };

  void WorkerLoop();
  std::vector<PendingRequest> CollectBatch(PendingRequest first);
  void ProcessBatch(std::vector<PendingRequest> batch);
  /// Runs one shared context + forward for a group of co-batched requests
  /// and resolves their promises (the last thing it does, so a throw means
  /// no promise in the group was touched).
  void ProcessGroup(std::vector<PendingRequest> group,
                    const VersionedGraph& versioned_graph,
                    const ModelSnapshot& snapshot);

  BatcherConfig config_;
  InferenceEngine* engine_;
  ContextCache* cache_;
  const graph::ContextSampler* sampler_;
  std::function<std::shared_ptr<const VersionedGraph>()> graph_provider_;

  BoundedQueue<PendingRequest> queue_;
  std::thread worker_;
  bool started_ = false;
};

}  // namespace serve
}  // namespace hire

#endif  // HIRE_SERVE_BATCHER_H_
