#ifndef HIRE_SERVE_BATCHER_H_
#define HIRE_SERVE_BATCHER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/hire_config.h"
#include "core/inference_forward.h"
#include "graph/bipartite_graph.h"
#include "graph/samplers.h"
#include "serve/bounded_queue.h"
#include "serve/context_cache.h"
#include "serve/inference_engine.h"

namespace hire {
namespace serve {

/// Absolute per-request deadline (nullopt = none).
using RequestDeadline = std::optional<std::chrono::steady_clock::time_point>;

struct RatingResponse;

/// Completion callback for the async submit path. Invoked exactly once per
/// request — from the submitting thread when the request resolves during
/// admission (bad request, shed, born expired), otherwise from the batch
/// worker thread — so it must be thread-safe and must not block: the batch
/// worker resolving one request is on every co-batched neighbor's critical
/// path.
using PredictCallback = std::function<void(RatingResponse)>;

/// One immutable published generation of the rating graph. Requests are
/// answered against whichever generation is current when their batch runs;
/// the version is part of the context-cache key. The per-user mean ratings
/// (and the global mean) double as the degraded-mode fallback predictor: a
/// bias-table answer that needs no model forward.
struct VersionedGraph {
  VersionedGraph(graph::BipartiteGraph g, int64_t v);
  graph::BipartiteGraph graph;
  int64_t version;
  std::vector<float> user_mean_rating;  // global mean for unrated users
  float global_mean_rating = 0.0f;
};

/// Request-path stages instrumented per request. Each resolved request
/// records one observation per reached stage into the histogram
/// "serve.stage.<stage>_us.<outcome>", so tail latency can be attributed to
/// admission vs queueing vs batch formation vs the forward vs the response
/// path, separately for every outcome class.
enum class RequestStage : int {
  kAdmission = 0,  // transport parse/validate + Submit bookkeeping
  kQueue,          // admitted -> dequeued by the batch worker
  kBatchForm,      // dequeued -> batch closed (co-batching window)
  kForward,        // context assembly + shared model forward
  kSerialize,      // response JSON rendering (transport)
  kWrite,          // socket write of the rendered response (transport)
};
inline constexpr int kNumRequestStages = 6;

/// Stable lower-case stage name ("admission", "queue", ...).
const char* RequestStageName(RequestStage stage);

/// Per-request wall time spent in each stage, in microseconds. A negative
/// value means the request never reached that stage (e.g. a shed request
/// has only an admission time).
struct StageBreakdown {
  std::array<double, kNumRequestStages> micros;
  StageBreakdown() { micros.fill(-1.0); }
  double& at(RequestStage stage) {
    return micros[static_cast<size_t>(stage)];
  }
  double at(RequestStage stage) const {
    return micros[static_cast<size_t>(stage)];
  }
};

/// Answer for one rating request.
struct RatingResponse {
  bool ok = false;
  std::string error;              // set when !ok
  std::vector<float> predictions; // one per requested item, in request order
  bool degraded = false;          // fallback prediction, not a model forward
  bool cache_hit = false;         // this user's context plan was cached
  int64_t batch_users = 0;        // distinct users sharing the forward
  int64_t model_version = 0;
  int64_t graph_version = 0;
  double latency_us = 0.0;        // enqueue -> completion
  uint64_t request_id = 0;        // process-wide monotonic id
  int shard = 0;                  // engine shard that answered
  StageBreakdown stages;          // per-stage latency attribution
};

/// Terminal accounting state of one request. Every request resolves into
/// exactly one of these; the matching "serve.outcome.*" counter moves once
/// per request, so the five counters partition all traffic.
enum class RequestOutcome {
  kServed,    // model forward answered (200)
  kDegraded,  // fallback prediction answered (200, "degraded":true)
  kShed,      // admission control refused it (503 + Retry-After)
  kExpired,   // its deadline passed before the forward (504)
  kFailed,    // bad request or internal error (400/500)
};

/// Classifies a resolved response (used by the transports so early
/// rejections that never reach the batcher are still accounted).
RequestOutcome ClassifyOutcome(const RatingResponse& response);

/// Bumps the "serve.outcome.*" counter for `outcome` (and the
/// serve.deadline_exceeded alias for kExpired).
void RecordOutcome(RequestOutcome outcome);

/// Stable lower-case outcome name ("served", "degraded", ...), used as the
/// suffix of per-outcome metric names.
const char* RequestOutcomeName(RequestOutcome outcome);

/// Next process-wide request id (1, 2, 3, ...). Ids are assigned at
/// admission and correlate the response, the per-stage metrics, sampled
/// trace spans ("req#<id>/<stage>"), and the slow-request log line.
uint64_t NextServeRequestId();

/// Records one stage observation into
/// "serve.stage.<stage>_us.<outcome>". Handles are resolved once and
/// cached, so the per-record cost is a few relaxed atomics.
void RecordStageLatency(RequestOutcome outcome, RequestStage stage,
                        double micros);

/// Records every stage of `stages` that was reached (micros >= 0).
void RecordStageBreakdown(RequestOutcome outcome,
                          const StageBreakdown& stages);

/// Eagerly registers all stage/outcome histograms (and the overall request
/// latency histogram) so every outcome class is visible in /metrics from
/// boot, before any traffic arrives.
void EnsureServeStageMetrics();

struct BatcherConfig {
  /// How long the worker keeps the batch open after the first request
  /// arrives, waiting for co-batchable requests. 0 = no coalescing: every
  /// request gets its own context and forward (the "one context per
  /// request" baseline the load generator compares against).
  int64_t batch_window_us = 2000;
  /// Max distinct users coalesced into one shared context (bounded by the
  /// context row budget).
  int64_t max_batch_users = 8;
  /// Prediction-context dimensions (rows x columns).
  int64_t context_users = 16;
  int64_t context_items = 16;
  /// Share of non-target rows' observed ratings kept visible, matching the
  /// training density (paper test protocol).
  double visible_fraction = 0.1;
  /// Seed for context sampling; predictions are deterministic given
  /// (seed, graph, model).
  uint64_t seed = 7;
  /// Bound of the request queue; TryPush failures surface as 503s.
  size_t queue_capacity = 256;
  /// Default per-request deadline applied at admission when the caller
  /// supplies none (0 = requests never expire).
  int64_t request_deadline_ms = 0;
  /// Admitted-but-unresolved cap. Submissions beyond it are shed with an
  /// "overloaded" response before any work is queued (0 = 2x queue
  /// capacity).
  int64_t max_inflight = 0;
  /// Consecutive batch-forward failures before the circuit breaker opens
  /// and requests are answered with fallback predictions (0 = disabled).
  int64_t breaker_threshold = 3;
  /// How long an open breaker waits before letting one trial batch through
  /// (half-open). A successful trial or a new model version closes it.
  int64_t breaker_cooldown_ms = 1000;
  /// Emit request-correlated trace spans ("req#<id>/queue", ".../forward",
  /// ...) for every Nth request when the tracer is running (0 = never).
  /// Sampling bounds the span volume under load; the per-stage histograms
  /// are unconditional.
  int64_t trace_sample_every = 0;
  /// Requests whose total latency exceeds this budget log one structured
  /// warning line with their full stage breakdown (0 = disabled).
  int64_t slow_request_ms = 0;
  /// Which engine shard this batcher belongs to (stamped into every
  /// response so transports and chaos drills can attribute answers).
  int shard_index = 0;
  /// Metric-name prefix for per-shard counters (e.g. "serve.shard.0.").
  /// When set, every resolved request also bumps
  /// "<prefix>outcome.<outcome>" next to the global "serve.outcome.*"
  /// partition; empty = single-shard metrics only.
  std::string metric_prefix;
};

/// Dynamic micro-batcher: a bounded MPMC queue feeding one inference worker
/// that coalesces requests arriving within the batch window into shared
/// prediction contexts. k users sharing a context cost one HIM forward
/// instead of k — the HIRE all-in-one property that makes serving
/// batchable. A single worker drives the published model snapshot, so
/// forwards never race while hot-swap (InferenceEngine::Load) proceeds
/// concurrently.
class MicroBatcher {
 public:
  /// `graph_provider` returns the current graph generation (called once per
  /// batch). All pointers must outlive the batcher.
  MicroBatcher(
      const BatcherConfig& config, InferenceEngine* engine,
      ContextCache* cache, const graph::ContextSampler* sampler,
      std::function<std::shared_ptr<const VersionedGraph>()> graph_provider);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  void Start();
  /// Closes the queue and joins the worker. Already-queued requests are
  /// drained and served; only new submissions are rejected.
  void Stop();

  /// Enqueues a request; `done` is invoked exactly once when it resolves
  /// (see PredictCallback for threading). When admission control sheds it
  /// (queue full or in-flight cap), `done` runs before SubmitAsync returns,
  /// with an "overloaded" error (callers map that to 503); a request whose
  /// deadline has already passed resolves "deadline exceeded" (504).
  /// `deadline` overrides the configured default. This is the primary submit
  /// path: it never blocks the caller on batch formation or the forward,
  /// which is what lets an event-loop transport keep thousands of requests
  /// in flight per handler thread.
  void SubmitAsync(int64_t user, std::vector<int64_t> items,
                   RequestDeadline deadline, PredictCallback done);

  /// Future-returning convenience wrapper over SubmitAsync for callers that
  /// want to block (tests, the in-process load generator).
  std::future<RatingResponse> Submit(int64_t user, std::vector<int64_t> items,
                                     RequestDeadline deadline = std::nullopt);

  const BatcherConfig& config() const { return config_; }
  size_t queue_depth() const { return queue_.size(); }
  /// Requests admitted but not yet resolved (queued + being processed).
  int64_t inflight() const { return inflight_.load(); }
  /// True while the circuit breaker answers with fallback predictions.
  bool circuit_open() const { return breaker_open_.load(); }

 private:
  struct PendingRequest {
    int64_t user = 0;
    std::vector<int64_t> items;
    PredictCallback done;
    std::chrono::steady_clock::time_point enqueue_time;
    RequestDeadline deadline;
    bool admitted = false;  // counted in inflight_
    uint64_t request_id = 0;
    bool trace_sampled = false;  // emit req#<id> spans at resolution
    // Stage stamps; a default-constructed (epoch) time_point means the
    // request never reached that point. Durations are derived at Resolve.
    std::chrono::steady_clock::time_point dequeue_time{};
    std::chrono::steady_clock::time_point collected_time{};
    std::chrono::steady_clock::time_point forward_start{};
    std::chrono::steady_clock::time_point forward_end{};
    double admission_us = -1.0;  // stamped when admission completes
  };

  void WorkerLoop();
  std::vector<PendingRequest> CollectBatch(PendingRequest first);
  void ProcessBatch(std::vector<PendingRequest> batch);
  /// Runs one shared context + forward for a group of co-batched requests.
  /// Erases every request it resolves from `group`, so after a throw the
  /// caller can still answer whatever is left unresolved.
  void ProcessGroup(std::vector<PendingRequest>* group,
                    const VersionedGraph& versioned_graph,
                    const ModelSnapshot& snapshot);

  /// Resolves one request: invokes its completion callback, releases its
  /// in-flight slot, and bumps exactly one outcome counter. Every request
  /// ends here.
  void Resolve(PendingRequest* request, RatingResponse response);
  /// Fallback (bias-table) answer for one request; always ok + degraded.
  RatingResponse DegradedResponse(const PendingRequest& request,
                                  const VersionedGraph& versioned_graph,
                                  int64_t model_version) const;
  /// Drops expired requests out of `batch`, resolving each with a
  /// deadline-exceeded error.
  void ExpireOverdue(std::vector<PendingRequest>* batch);

  /// Circuit-breaker bookkeeping (worker thread only, except the atomic
  /// mirror read by circuit_open()).
  bool BreakerAllowsForward(int64_t model_version);
  void BreakerRecordSuccess();
  /// Returns true when this failure leaves the breaker open.
  bool BreakerRecordFailure(int64_t model_version);

  BatcherConfig config_;
  InferenceEngine* engine_;
  /// Scratch for the tape-free fused forward. Touched only by the single
  /// batch worker; holds no snapshot pointers, so it safely outlives model
  /// hot-swaps (see InferenceArena's lifetime rule). After warming up on
  /// the configured context shape, forwards allocate zero heap from it.
  core::InferenceArena arena_;
  ContextCache* cache_;
  const graph::ContextSampler* sampler_;
  std::function<std::shared_ptr<const VersionedGraph>()> graph_provider_;

  BoundedQueue<PendingRequest> queue_;
  std::thread worker_;
  bool started_ = false;

  /// Per-shard outcome counters ("<metric_prefix>outcome.<o>"), resolved
  /// once at construction; all nullptr when no prefix is configured.
  std::array<obs::Counter*, 5> shard_outcome_{};

  std::atomic<int64_t> inflight_{0};

  // Breaker state: consecutive failures, and when open, the model version
  // and time at opening (a new version or an elapsed cooldown lets a trial
  // batch through).
  int64_t breaker_failures_ = 0;
  std::atomic<bool> breaker_open_{false};
  std::chrono::steady_clock::time_point breaker_opened_at_;
  int64_t breaker_version_at_open_ = 0;
};

}  // namespace serve
}  // namespace hire

#endif  // HIRE_SERVE_BATCHER_H_
