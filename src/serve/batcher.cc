#include "serve/batcher.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/evaluation.h"
#include "graph/context_builder.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "utils/check.h"
#include "utils/fault_injection.h"
#include "utils/logging.h"

namespace hire {
namespace serve {

namespace {

RatingResponse FailedResponse(std::string error) {
  RatingResponse response;
  response.ok = false;
  response.error = std::move(error);
  return response;
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double MicrosBetween(std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

/// A default-constructed time_point marks a stage stamp as never taken.
bool Stamped(std::chrono::steady_clock::time_point tp) {
  return tp.time_since_epoch().count() != 0;
}

uint64_t SteadyNanos(std::chrono::steady_clock::time_point tp) {
  // Same timebase as obs::TraceNowNanos (steady clock since epoch), so
  // spans built from stage stamps line up with HIRE_TRACE_SCOPE spans.
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

constexpr int kNumRequestOutcomes = 5;

}  // namespace

VersionedGraph::VersionedGraph(graph::BipartiteGraph g, int64_t v)
    : graph(std::move(g)), version(v) {
  // Bias tables for the degraded-mode fallback predictor: per-user mean
  // observed rating, with the global mean covering unrated (cold) users.
  double total = 0.0;
  int64_t count = 0;
  std::vector<double> user_sum(static_cast<size_t>(graph.num_users()), 0.0);
  std::vector<int64_t> user_count(static_cast<size_t>(graph.num_users()), 0);
  for (int64_t user = 0; user < graph.num_users(); ++user) {
    for (int64_t item : graph.ItemsOfUser(user)) {
      const std::optional<float> rating = graph.GetRating(user, item);
      if (!rating.has_value()) continue;
      user_sum[static_cast<size_t>(user)] += *rating;
      ++user_count[static_cast<size_t>(user)];
      total += *rating;
      ++count;
    }
  }
  global_mean_rating =
      count > 0 ? static_cast<float>(total / static_cast<double>(count)) : 0.0f;
  user_mean_rating.resize(static_cast<size_t>(graph.num_users()),
                          global_mean_rating);
  for (size_t u = 0; u < user_mean_rating.size(); ++u) {
    if (user_count[u] > 0) {
      user_mean_rating[u] =
          static_cast<float>(user_sum[u] / static_cast<double>(user_count[u]));
    }
  }
}

RequestOutcome ClassifyOutcome(const RatingResponse& response) {
  if (response.ok) {
    return response.degraded ? RequestOutcome::kDegraded
                             : RequestOutcome::kServed;
  }
  if (response.error.rfind("overloaded", 0) == 0) return RequestOutcome::kShed;
  if (response.error.rfind("deadline exceeded", 0) == 0) {
    return RequestOutcome::kExpired;
  }
  return RequestOutcome::kFailed;
}

const char* RequestStageName(RequestStage stage) {
  switch (stage) {
    case RequestStage::kAdmission: return "admission";
    case RequestStage::kQueue: return "queue";
    case RequestStage::kBatchForm: return "batch_form";
    case RequestStage::kForward: return "forward";
    case RequestStage::kSerialize: return "serialize";
    case RequestStage::kWrite: return "write";
  }
  return "unknown";
}

const char* RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kServed: return "served";
    case RequestOutcome::kDegraded: return "degraded";
    case RequestOutcome::kShed: return "shed";
    case RequestOutcome::kExpired: return "expired";
    case RequestOutcome::kFailed: return "failed";
  }
  return "unknown";
}

uint64_t NextServeRequestId() {
  static std::atomic<uint64_t> next_id{0};
  return next_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

namespace {

/// Handles for the 5x6 outcome/stage histograms plus the overall request
/// latency histogram, resolved once so the per-request cost is only the
/// lock-free Record calls.
struct ServeStageMetrics {
  std::array<std::array<obs::Histogram*, kNumRequestStages>,
             kNumRequestOutcomes>
      stage;
  obs::Histogram* request_latency = nullptr;
  obs::Counter* slow_requests = nullptr;
};

const ServeStageMetrics& StageMetrics() {
  static const ServeStageMetrics* metrics = [] {
    auto* created = new ServeStageMetrics();
    auto& registry = obs::MetricsRegistry::Global();
    obs::HistogramOptions options;
    options.first_bound = 1.0;  // microseconds
    options.growth = 2.0;
    options.num_buckets = 26;  // ~67s before overflow
    for (int o = 0; o < kNumRequestOutcomes; ++o) {
      for (int s = 0; s < kNumRequestStages; ++s) {
        created->stage[static_cast<size_t>(o)][static_cast<size_t>(s)] =
            registry.GetHistogram(
                std::string("serve.stage.") +
                    RequestStageName(static_cast<RequestStage>(s)) + "_us." +
                    RequestOutcomeName(static_cast<RequestOutcome>(o)),
                options);
      }
    }
    obs::HistogramOptions latency_options;
    latency_options.first_bound = 1.0;
    latency_options.growth = 2.0;
    latency_options.num_buckets = 32;
    created->request_latency =
        registry.GetHistogram("serve.request_latency_us", latency_options);
    created->slow_requests = registry.GetCounter("serve.slow_requests");
    return created;
  }();
  return *metrics;
}

}  // namespace

void RecordStageLatency(RequestOutcome outcome, RequestStage stage,
                        double micros) {
  if (micros < 0) return;
  StageMetrics()
      .stage[static_cast<size_t>(outcome)][static_cast<size_t>(stage)]
      ->Record(micros);
}

void RecordStageBreakdown(RequestOutcome outcome,
                          const StageBreakdown& stages) {
  for (int s = 0; s < kNumRequestStages; ++s) {
    RecordStageLatency(outcome, static_cast<RequestStage>(s),
                       stages.micros[static_cast<size_t>(s)]);
  }
}

void EnsureServeStageMetrics() { StageMetrics(); }

void RecordOutcome(RequestOutcome outcome) {
  auto& registry = obs::MetricsRegistry::Global();
  switch (outcome) {
    case RequestOutcome::kServed:
      registry.GetCounter("serve.outcome.served")->Increment();
      break;
    case RequestOutcome::kDegraded:
      registry.GetCounter("serve.outcome.degraded")->Increment();
      break;
    case RequestOutcome::kShed:
      registry.GetCounter("serve.outcome.shed")->Increment();
      registry.GetCounter("serve.requests_shed")->Increment();
      break;
    case RequestOutcome::kExpired:
      registry.GetCounter("serve.outcome.expired")->Increment();
      registry.GetCounter("serve.deadline_exceeded")->Increment();
      break;
    case RequestOutcome::kFailed:
      registry.GetCounter("serve.outcome.failed")->Increment();
      break;
  }
}

MicroBatcher::MicroBatcher(
    const BatcherConfig& config, InferenceEngine* engine, ContextCache* cache,
    const graph::ContextSampler* sampler,
    std::function<std::shared_ptr<const VersionedGraph>()> graph_provider)
    : config_(config),
      engine_(engine),
      cache_(cache),
      sampler_(sampler),
      graph_provider_(std::move(graph_provider)),
      queue_(config.queue_capacity) {
  HIRE_CHECK(engine_ != nullptr);
  HIRE_CHECK(cache_ != nullptr);
  HIRE_CHECK(sampler_ != nullptr);
  HIRE_CHECK(graph_provider_ != nullptr);
  HIRE_CHECK_GT(config_.max_batch_users, 0);
  HIRE_CHECK_GT(config_.context_users, 0);
  HIRE_CHECK_GT(config_.context_items, 0);
  if (config_.max_inflight <= 0) {
    config_.max_inflight = 2 * static_cast<int64_t>(config_.queue_capacity);
  }
  // Register every outcome's stage histograms up front so /metrics shows the
  // full partition (with zero counts) from boot.
  EnsureServeStageMetrics();
  if (!config_.metric_prefix.empty()) {
    auto& registry = obs::MetricsRegistry::Global();
    for (int o = 0; o < kNumRequestOutcomes; ++o) {
      shard_outcome_[static_cast<size_t>(o)] = registry.GetCounter(
          config_.metric_prefix + "outcome." +
          RequestOutcomeName(static_cast<RequestOutcome>(o)));
    }
  }
}

MicroBatcher::~MicroBatcher() { Stop(); }

void MicroBatcher::Start() {
  HIRE_CHECK(!started_) << "batcher already started";
  started_ = true;
  worker_ = std::thread([this] { WorkerLoop(); });
}

void MicroBatcher::Stop() {
  if (!started_) return;
  queue_.Close();
  if (worker_.joinable()) worker_.join();
  started_ = false;
}

std::future<RatingResponse> MicroBatcher::Submit(int64_t user,
                                                 std::vector<int64_t> items,
                                                 RequestDeadline deadline) {
  auto promise = std::make_shared<std::promise<RatingResponse>>();
  std::future<RatingResponse> future = promise->get_future();
  SubmitAsync(user, std::move(items), deadline,
              [promise](RatingResponse response) {
                promise->set_value(std::move(response));
              });
  return future;
}

void MicroBatcher::SubmitAsync(int64_t user, std::vector<int64_t> items,
                               RequestDeadline deadline, PredictCallback done) {
  const auto now = std::chrono::steady_clock::now();
  PendingRequest request;
  request.user = user;
  request.items = std::move(items);
  request.done = std::move(done);
  request.enqueue_time = now;
  request.request_id = NextServeRequestId();
  request.trace_sampled = config_.trace_sample_every > 0 &&
                          request.request_id %
                                  static_cast<uint64_t>(
                                      config_.trace_sample_every) ==
                              0;
  if (deadline.has_value()) {
    request.deadline = deadline;
  } else if (config_.request_deadline_ms > 0) {
    request.deadline =
        now + std::chrono::milliseconds(config_.request_deadline_ms);
  }
  if (request.items.empty()) {
    Resolve(&request, FailedResponse("bad request: empty item list"));
    return;
  }
  if (static_cast<int64_t>(request.items.size()) > config_.context_items) {
    Resolve(&request, FailedResponse(
        "bad request: " + std::to_string(request.items.size()) +
        " items exceed the context item budget of " +
        std::to_string(config_.context_items)));
    return;
  }
  // Admission deadline check: a request born expired never costs a queue
  // slot.
  if (request.deadline.has_value() && *request.deadline <= now) {
    Resolve(&request,
            FailedResponse("deadline exceeded: expired before admission"));
    return;
  }
  // In-flight cap: shed before any work is queued rather than letting tail
  // latency grow without bound.
  if (inflight_.load() >= config_.max_inflight) {
    obs::MetricsRegistry::Global()
        .GetCounter("serve.shed.inflight")
        ->Increment();
    obs::MetricsRegistry::Global()
        .GetCounter("serve.requests_rejected")
        ->Increment();
    Resolve(&request, FailedResponse(
        "overloaded: " + std::to_string(inflight_.load()) +
        " requests in flight (cap " + std::to_string(config_.max_inflight) +
        ")"));
    return;
  }

  // Admission completes here: everything before this point (validation,
  // deadline/shed checks, id assignment) is the admission stage. The push
  // itself is a few lock-protected moves and rides along.
  request.admission_us = MicrosSince(now);
  request.admitted = true;
  inflight_.fetch_add(1);
  if (!queue_.TryPush(std::move(request))) {
    // TryPush guarantees `request` is untouched on failure, so the callback
    // (and its in-flight slot) is still ours to resolve here.
    obs::MetricsRegistry::Global()
        .GetCounter("serve.shed.queue_full")
        ->Increment();
    obs::MetricsRegistry::Global()
        .GetCounter("serve.requests_rejected")
        ->Increment();
    Resolve(&request, FailedResponse("overloaded: request queue is full"));
    return;
  }
  obs::MetricsRegistry::Global()
      .GetGauge("serve.queue_depth")
      ->Set(static_cast<double>(queue_.size()));
}

namespace {

/// Emits request-correlated spans for one sampled request. Span names carry
/// the request id ("req#42/queue"), so a Perfetto search for the id from a
/// slow-request log line lands on the request's full timeline; the forward
/// span of co-batched requests overlaps their shared "serve_forward" scope.
void EmitRequestSpans(uint64_t request_id,
                      std::chrono::steady_clock::time_point enqueue,
                      std::chrono::steady_clock::time_point dequeue,
                      std::chrono::steady_clock::time_point collected,
                      std::chrono::steady_clock::time_point forward_start,
                      std::chrono::steady_clock::time_point forward_end,
                      std::chrono::steady_clock::time_point resolved) {
  char name[obs::internal::kMaxSpanName];
  const auto emit = [&](const char* stage,
                        std::chrono::steady_clock::time_point a,
                        std::chrono::steady_clock::time_point b) {
    if (!Stamped(a) || !Stamped(b) || b < a) return;
    std::snprintf(name, sizeof(name), "req#%llu/%s",
                  static_cast<unsigned long long>(request_id), stage);
    obs::EmitSpan(name, SteadyNanos(a), SteadyNanos(b));
  };
  emit("total", enqueue, resolved);
  emit("queue", enqueue, dequeue);
  emit("batch_form", dequeue, collected);
  emit("forward", forward_start, forward_end);
}

/// One structured key=value line describing a resolved request; shared by
/// the slow-request warning and the per-request debug log.
std::string RequestLogLine(int64_t user, size_t num_items,
                           const RatingResponse& response) {
  std::ostringstream line;
  line << "id=" << response.request_id
       << " outcome=" << RequestOutcomeName(ClassifyOutcome(response))
       << " user=" << user << " items=" << num_items
       << " total_us=" << static_cast<int64_t>(response.latency_us);
  for (int s = 0; s < kNumRequestStages; ++s) {
    const double micros = response.stages.micros[static_cast<size_t>(s)];
    if (micros < 0) continue;
    line << " " << RequestStageName(static_cast<RequestStage>(s))
         << "_us=" << static_cast<int64_t>(micros);
  }
  if (response.ok) {
    line << " batch_users=" << response.batch_users
         << " cache_hit=" << (response.cache_hit ? 1 : 0)
         << " model_v=" << response.model_version
         << " graph_v=" << response.graph_version;
  } else {
    line << " error=\"" << response.error << "\"";
  }
  return line.str();
}

}  // namespace

void MicroBatcher::Resolve(PendingRequest* request, RatingResponse response) {
  const auto now = std::chrono::steady_clock::now();
  if (request->admitted) {
    inflight_.fetch_sub(1);
    request->admitted = false;
  }

  response.request_id = request->request_id;
  response.shard = config_.shard_index;
  response.latency_us = MicrosBetween(request->enqueue_time, now);
  StageBreakdown& stages = response.stages;
  // Requests resolved during admission (bad request, shed, born expired)
  // spent their whole life in the admission stage.
  stages.at(RequestStage::kAdmission) =
      request->admission_us >= 0 ? request->admission_us : response.latency_us;
  if (Stamped(request->dequeue_time)) {
    stages.at(RequestStage::kQueue) =
        MicrosBetween(request->enqueue_time, request->dequeue_time);
  }
  if (Stamped(request->dequeue_time) && Stamped(request->collected_time)) {
    stages.at(RequestStage::kBatchForm) =
        MicrosBetween(request->dequeue_time, request->collected_time);
  }
  if (Stamped(request->forward_start) && Stamped(request->forward_end)) {
    stages.at(RequestStage::kForward) =
        MicrosBetween(request->forward_start, request->forward_end);
  }

  const RequestOutcome outcome = ClassifyOutcome(response);
  RecordOutcome(outcome);
  if (shard_outcome_[0] != nullptr) {
    shard_outcome_[static_cast<size_t>(outcome)]->Increment();
  }
  RecordStageBreakdown(outcome, stages);
  StageMetrics().request_latency->Record(response.latency_us);

  if (request->trace_sampled && obs::Tracer::Enabled()) {
    EmitRequestSpans(request->request_id, request->enqueue_time,
                     request->dequeue_time, request->collected_time,
                     request->forward_start, request->forward_end, now);
  }

  if (config_.slow_request_ms > 0 &&
      response.latency_us >
          static_cast<double>(config_.slow_request_ms) * 1000.0) {
    StageMetrics().slow_requests->Increment();
    HIRE_LOG(Warning) << "slow request "
                      << RequestLogLine(request->user, request->items.size(),
                                        response);
  } else if (GetLogLevel() <= LogLevel::kDebug) {
    HIRE_LOG(Debug) << "request "
                    << RequestLogLine(request->user, request->items.size(),
                                      response);
  }

  request->done(std::move(response));
}

RatingResponse MicroBatcher::DegradedResponse(
    const PendingRequest& request, const VersionedGraph& versioned_graph,
    int64_t model_version) const {
  RatingResponse response;
  response.ok = true;
  response.degraded = true;
  const float mean =
      (request.user >= 0 &&
       request.user < static_cast<int64_t>(
                          versioned_graph.user_mean_rating.size()))
          ? versioned_graph.user_mean_rating[static_cast<size_t>(request.user)]
          : versioned_graph.global_mean_rating;
  response.predictions.assign(request.items.size(), mean);
  response.model_version = model_version;
  response.graph_version = versioned_graph.version;
  response.latency_us = MicrosSince(request.enqueue_time);
  obs::MetricsRegistry::Global()
      .GetCounter("serve.fallback_predictions")
      ->Increment();
  return response;
}

void MicroBatcher::ExpireOverdue(std::vector<PendingRequest>* batch) {
  const auto now = std::chrono::steady_clock::now();
  std::vector<PendingRequest> alive;
  alive.reserve(batch->size());
  for (PendingRequest& request : *batch) {
    if (request.deadline.has_value() && *request.deadline <= now) {
      Resolve(&request, FailedResponse(
          "deadline exceeded: waited " +
          std::to_string(static_cast<int64_t>(
              MicrosSince(request.enqueue_time) / 1000.0)) +
          "ms"));
    } else {
      alive.push_back(std::move(request));
    }
  }
  *batch = std::move(alive);
}

bool MicroBatcher::BreakerAllowsForward(int64_t model_version) {
  if (config_.breaker_threshold <= 0) return true;
  if (!breaker_open_.load()) return true;
  if (model_version != breaker_version_at_open_) {
    // A new snapshot was published since the breaker opened; trust it.
    breaker_open_.store(false);
    breaker_failures_ = 0;
    obs::MetricsRegistry::Global().GetGauge("serve.circuit_open")->Set(0.0);
    HIRE_LOG(Info) << "serve circuit breaker closed (model v" << model_version
                   << " published)";
    return true;
  }
  const auto now = std::chrono::steady_clock::now();
  if (now - breaker_opened_at_ >=
      std::chrono::milliseconds(config_.breaker_cooldown_ms)) {
    return true;  // half-open: let one trial batch through
  }
  return false;
}

void MicroBatcher::BreakerRecordSuccess() {
  breaker_failures_ = 0;
  if (breaker_open_.load()) {
    breaker_open_.store(false);
    obs::MetricsRegistry::Global().GetGauge("serve.circuit_open")->Set(0.0);
    HIRE_LOG(Info) << "serve circuit breaker closed (trial batch succeeded)";
  }
}

bool MicroBatcher::BreakerRecordFailure(int64_t model_version) {
  if (config_.breaker_threshold <= 0) return false;
  ++breaker_failures_;
  if (!breaker_open_.load() && breaker_failures_ < config_.breaker_threshold) {
    return false;
  }
  if (!breaker_open_.load()) {
    obs::MetricsRegistry::Global().GetCounter("serve.circuit_opened")
        ->Increment();
    HIRE_LOG(Warning) << "serve circuit breaker opened after "
                      << breaker_failures_
                      << " consecutive batch failure(s); serving fallback "
                         "predictions";
  }
  breaker_open_.store(true);
  breaker_opened_at_ = std::chrono::steady_clock::now();
  breaker_version_at_open_ = model_version;
  obs::MetricsRegistry::Global().GetGauge("serve.circuit_open")->Set(1.0);
  return true;
}

void MicroBatcher::WorkerLoop() {
  while (true) {
    std::optional<PendingRequest> first = queue_.Pop();
    if (!first.has_value()) return;  // closed and drained
    ProcessBatch(CollectBatch(std::move(*first)));
  }
}

std::vector<MicroBatcher::PendingRequest> MicroBatcher::CollectBatch(
    PendingRequest first) {
  first.dequeue_time = std::chrono::steady_clock::now();
  std::vector<PendingRequest> batch;
  std::unordered_set<int64_t> users{first.user};
  batch.push_back(std::move(first));
  if (config_.batch_window_us <= 0) return batch;

  // The window is anchored at dequeue, not enqueue: when the worker lags
  // arrivals (many shard workers contending for few cores), an
  // enqueue-anchored deadline has already passed by the time the batch
  // opens, silently collapsing coalescing to singleton forwards. When the
  // worker is idle the two anchors coincide, so unloaded latency is
  // unchanged.
  const auto deadline =
      batch.front().dequeue_time +
      std::chrono::microseconds(config_.batch_window_us);
  while (static_cast<int64_t>(users.size()) < config_.max_batch_users) {
    std::optional<PendingRequest> next = queue_.PopUntil(deadline);
    if (!next.has_value()) break;  // window closed (or batcher stopping)
    next->dequeue_time = std::chrono::steady_clock::now();
    users.insert(next->user);
    batch.push_back(std::move(*next));
  }
  return batch;
}

void MicroBatcher::ProcessBatch(std::vector<PendingRequest> batch) {
  HIRE_TRACE_SCOPE("serve_batch");
  // The batch is closed: everything from here until the forward starts is
  // per-batch overhead (graph/snapshot acquire, revalidation, grouping).
  {
    const auto collected = std::chrono::steady_clock::now();
    for (PendingRequest& request : batch) request.collected_time = collected;
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("serve.queue_depth")
      ->Set(static_cast<double>(queue_.size()));

  std::shared_ptr<const VersionedGraph> versioned_graph;
  std::shared_ptr<const ModelSnapshot> snapshot;
  try {
    versioned_graph = graph_provider_();
    snapshot = engine_->Acquire();
  } catch (const std::exception& error) {
    for (PendingRequest& request : batch) {
      Resolve(&request, FailedResponse(error.what()));
    }
    return;
  }
  if (versioned_graph == nullptr) {
    for (PendingRequest& request : batch) {
      Resolve(&request, FailedResponse("no graph published"));
    }
    return;
  }

  // Deadline check at dequeue: a request that aged out in the queue gets a
  // 504 instead of consuming a batch slot.
  ExpireOverdue(&batch);
  if (batch.empty()) return;

  // The transport validated ids against the graph current at submit time,
  // but a smaller universe may have been published since; re-validate
  // against the generation this batch actually runs on so the context
  // assembler never indexes attribute tables out of range. Only the
  // offending requests fail (as bad requests), not their whole group.
  {
    const int64_t num_users = versioned_graph->graph.num_users();
    const int64_t num_items = versioned_graph->graph.num_items();
    std::vector<PendingRequest> in_range;
    in_range.reserve(batch.size());
    for (PendingRequest& request : batch) {
      std::string error;
      if (request.user < 0 || request.user >= num_users) {
        error = "bad request: user " + std::to_string(request.user) +
                " outside [0, " + std::to_string(num_users) + ")";
      } else {
        for (int64_t item : request.items) {
          if (item < 0 || item >= num_items) {
            error = "bad request: item " + std::to_string(item) +
                    " outside [0, " + std::to_string(num_items) + ")";
            break;
          }
        }
      }
      if (error.empty()) {
        in_range.push_back(std::move(request));
      } else {
        Resolve(&request, FailedResponse(std::move(error)));
      }
    }
    batch = std::move(in_range);
    if (batch.empty()) return;
  }

  // Graceful degradation: with no valid snapshot (engine never loaded, or
  // every load failed) or an open circuit breaker, answer from the graph's
  // bias tables instead of erroring. Recovery is automatic — a published
  // snapshot / closed breaker routes the next batch back to the model.
  const int64_t model_version = snapshot != nullptr ? snapshot->version : 0;
  if (snapshot == nullptr || !BreakerAllowsForward(model_version)) {
    for (PendingRequest& request : batch) {
      Resolve(&request,
              DegradedResponse(request, *versioned_graph, model_version));
    }
    return;
  }

  // Partition the batch into groups whose distinct users fit the row budget
  // and whose item union fits the column budget; each group shares one
  // context and one forward.
  const int64_t max_users =
      std::min(config_.max_batch_users, config_.context_users);
  std::vector<std::vector<PendingRequest>> groups;
  std::unordered_set<int64_t> group_users;
  std::unordered_set<int64_t> group_items;
  for (PendingRequest& request : batch) {
    int64_t new_users = group_users.count(request.user) ? 0 : 1;
    int64_t new_items = 0;
    for (int64_t item : request.items) {
      if (group_items.count(item) == 0) ++new_items;
    }
    const bool fits =
        !groups.empty() &&
        static_cast<int64_t>(group_users.size()) + new_users <= max_users &&
        static_cast<int64_t>(group_items.size()) + new_items <=
            config_.context_items;
    if (!fits) {
      groups.emplace_back();
      group_users.clear();
      group_items.clear();
    }
    group_users.insert(request.user);
    group_items.insert(request.items.begin(), request.items.end());
    groups.back().push_back(std::move(request));
  }

  for (std::vector<PendingRequest>& group : groups) {
    try {
      ProcessGroup(&group, *versioned_graph, *snapshot);
      BreakerRecordSuccess();
    } catch (const std::exception& error) {
      registry.GetCounter("serve.batch_errors")->Increment();
      // ProcessGroup erases every request it resolves, so whatever is left
      // in `group` is still unanswered. The first failures surface as
      // internal errors; once the breaker opens, fall back instead.
      const bool breaker_open = BreakerRecordFailure(snapshot->version);
      for (PendingRequest& request : group) {
        if (breaker_open) {
          Resolve(&request, DegradedResponse(request, *versioned_graph,
                                             model_version));
        } else {
          Resolve(&request, FailedResponse(error.what()));
        }
      }
      group.clear();
    }
  }
}

void MicroBatcher::ProcessGroup(std::vector<PendingRequest>* group,
                                const VersionedGraph& versioned_graph,
                                const ModelSnapshot& snapshot) {
  auto& registry = obs::MetricsRegistry::Global();
  const graph::BipartiteGraph& graph = versioned_graph.graph;

  // Injected slow handler (a stalled model / GC pause) runs before the
  // final deadline check so expired requests still get their 504.
  const int64_t slow_ms = FaultInjector::Global().ServeSlowHandlerMs();
  if (slow_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(slow_ms));
  }

  // Deadline check immediately before the forward.
  ExpireOverdue(group);
  if (group->empty()) return;

  if (FaultInjector::Global().ConsumeServeFailForward()) {
    HIRE_CHECK(false) << "fault injection: batch forward failure";
  }

  // The forward stage covers context assembly plus the shared model
  // forward — the work a request's co-batched peers amortise.
  {
    const auto forward_start = std::chrono::steady_clock::now();
    for (PendingRequest& request : *group) {
      request.forward_start = forward_start;
    }
  }

  // Distinct users in arrival order; fetch or build each user's context
  // plan (the cacheable, graph-walk half of the work).
  std::vector<int64_t> users;
  std::unordered_map<int64_t, bool> cache_hit;
  std::vector<std::shared_ptr<const core::UserContextPlan>> plans;
  for (const PendingRequest& request : *group) {
    if (cache_hit.count(request.user)) continue;
    users.push_back(request.user);
    std::shared_ptr<const core::UserContextPlan> plan =
        cache_->Get(request.user, versioned_graph.version);
    cache_hit[request.user] = plan != nullptr;
    if (plan == nullptr) {
      plan = std::make_shared<core::UserContextPlan>(core::BuildUserContextPlan(
          graph, *sampler_, request.user, config_.context_users,
          config_.context_items, config_.seed));
      cache_->Put(request.user, versioned_graph.version, plan);
    }
    plans.push_back(std::move(plan));
  }

  // Rows: the batch users first, then their sampled context neighbors
  // round-robin until the row budget is filled.
  std::vector<int64_t> rows = users;
  std::unordered_set<int64_t> row_set(rows.begin(), rows.end());
  for (size_t offset = 1;
       static_cast<int64_t>(rows.size()) < config_.context_users; ++offset) {
    bool any = false;
    for (const auto& plan : plans) {
      if (offset >= plan->context_users.size()) continue;
      any = true;
      const int64_t candidate = plan->context_users[offset];
      if (row_set.insert(candidate).second) {
        rows.push_back(candidate);
        if (static_cast<int64_t>(rows.size()) >= config_.context_users) break;
      }
    }
    if (!any) break;
  }

  // Columns: the union of queried items in arrival order, then base-pool
  // items (support first) round-robin until the column budget is filled.
  std::vector<int64_t> cols;
  std::unordered_set<int64_t> col_set;
  for (const PendingRequest& request : *group) {
    for (int64_t item : request.items) {
      if (col_set.insert(item).second) cols.push_back(item);
    }
  }
  for (size_t offset = 0;
       static_cast<int64_t>(cols.size()) < config_.context_items; ++offset) {
    bool any = false;
    for (const auto& plan : plans) {
      if (offset >= plan->base_items.size()) continue;
      any = true;
      const int64_t candidate = plan->base_items[offset];
      if (col_set.insert(candidate).second) {
        cols.push_back(candidate);
        if (static_cast<int64_t>(cols.size()) >= config_.context_items) break;
      }
    }
    if (!any) break;
  }

  graph::ContextSelection selection;
  selection.users = rows;
  selection.items = cols;
  graph::PredictionContext context =
      graph::AssembleContext(graph, std::move(selection));
  core::ThinObservedCells(&context,
                          /*keep_rows=*/static_cast<int64_t>(users.size()),
                          config_.visible_fraction, config_.seed);

  // Tape-free fused forward: weights were packed at snapshot load, the
  // arena is the worker's own scratch, and the result tensor lives in the
  // arena — zero heap per request after warm-up.
  const Tensor* predicted_ptr = nullptr;
  {
    HIRE_TRACE_SCOPE("serve_forward");
    predicted_ptr = &snapshot.inference->Predict(context, &arena_);
  }
  const Tensor& predicted = *predicted_ptr;
  {
    const auto forward_end = std::chrono::steady_clock::now();
    for (PendingRequest& request : *group) {
      request.forward_end = forward_end;
    }
  }

  std::unordered_map<int64_t, int64_t> row_of_user;
  for (size_t r = 0; r < rows.size(); ++r) {
    row_of_user[rows[r]] = static_cast<int64_t>(r);
  }
  std::unordered_map<int64_t, int64_t> col_of_item;
  for (size_t c = 0; c < cols.size(); ++c) {
    col_of_item[cols[c]] = static_cast<int64_t>(c);
  }

  registry.GetCounter("serve.batches")->Increment();
  registry.GetCounter("serve.batched_users")->Increment(users.size());
  obs::HistogramOptions batch_options;
  batch_options.first_bound = 1.0;
  batch_options.growth = 2.0;
  batch_options.num_buckets = 8;
  registry.GetHistogram("serve.batch_users", batch_options)
      ->Record(static_cast<double>(users.size()));
  obs::Counter* served = registry.GetCounter("serve.requests");

  for (PendingRequest& request : *group) {
    RatingResponse response;
    response.ok = true;
    response.predictions.reserve(request.items.size());
    const int64_t row = row_of_user.at(request.user);
    for (int64_t item : request.items) {
      response.predictions.push_back(
          predicted.at(row, col_of_item.at(item)));
    }
    response.cache_hit = cache_hit.at(request.user);
    response.batch_users = static_cast<int64_t>(users.size());
    response.model_version = snapshot.version;
    response.graph_version = versioned_graph.version;
    response.latency_us = MicrosSince(request.enqueue_time);

    served->Increment();
    if (obs::TelemetrySink::Global().enabled()) {
      obs::ServeTelemetry record;
      record.user = request.user;
      record.num_items = static_cast<int64_t>(request.items.size());
      record.latency_us = response.latency_us;
      record.batch_users = response.batch_users;
      record.cache_hit = response.cache_hit;
      record.model_version = response.model_version;
      record.graph_version = response.graph_version;
      obs::TelemetrySink::Global().WriteServe(record);
    }
    Resolve(&request, std::move(response));
  }
  group->clear();
}

}  // namespace serve
}  // namespace hire
