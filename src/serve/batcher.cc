#include "serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/evaluation.h"
#include "graph/context_builder.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "utils/check.h"
#include "utils/logging.h"

namespace hire {
namespace serve {

namespace {

RatingResponse FailedResponse(std::string error) {
  RatingResponse response;
  response.ok = false;
  response.error = std::move(error);
  return response;
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

MicroBatcher::MicroBatcher(
    const BatcherConfig& config, InferenceEngine* engine, ContextCache* cache,
    const graph::ContextSampler* sampler,
    std::function<std::shared_ptr<const VersionedGraph>()> graph_provider)
    : config_(config),
      engine_(engine),
      cache_(cache),
      sampler_(sampler),
      graph_provider_(std::move(graph_provider)),
      queue_(config.queue_capacity) {
  HIRE_CHECK(engine_ != nullptr);
  HIRE_CHECK(cache_ != nullptr);
  HIRE_CHECK(sampler_ != nullptr);
  HIRE_CHECK(graph_provider_ != nullptr);
  HIRE_CHECK_GT(config_.max_batch_users, 0);
  HIRE_CHECK_GT(config_.context_users, 0);
  HIRE_CHECK_GT(config_.context_items, 0);
}

MicroBatcher::~MicroBatcher() { Stop(); }

void MicroBatcher::Start() {
  HIRE_CHECK(!started_) << "batcher already started";
  started_ = true;
  worker_ = std::thread([this] { WorkerLoop(); });
}

void MicroBatcher::Stop() {
  if (!started_) return;
  queue_.Close();
  if (worker_.joinable()) worker_.join();
  started_ = false;
}

std::future<RatingResponse> MicroBatcher::Submit(int64_t user,
                                                 std::vector<int64_t> items) {
  PendingRequest request;
  request.user = user;
  request.items = std::move(items);
  request.enqueue_time = std::chrono::steady_clock::now();
  std::future<RatingResponse> future = request.promise.get_future();

  if (request.items.empty()) {
    request.promise.set_value(FailedResponse("bad request: empty item list"));
    return future;
  }
  if (static_cast<int64_t>(request.items.size()) > config_.context_items) {
    request.promise.set_value(FailedResponse(
        "bad request: " + std::to_string(request.items.size()) +
        " items exceed the context item budget of " +
        std::to_string(config_.context_items)));
    return future;
  }
  if (!queue_.TryPush(std::move(request))) {
    // TryPush guarantees `request` is untouched on failure, so the promise
    // is still ours to resolve here.
    request.promise.set_value(
        FailedResponse("overloaded: request queue is full"));
    obs::MetricsRegistry::Global()
        .GetCounter("serve.requests_rejected")
        ->Increment();
    return future;
  }
  obs::MetricsRegistry::Global()
      .GetGauge("serve.queue_depth")
      ->Set(static_cast<double>(queue_.size()));
  return future;
}

void MicroBatcher::WorkerLoop() {
  while (true) {
    std::optional<PendingRequest> first = queue_.Pop();
    if (!first.has_value()) return;  // closed and drained
    ProcessBatch(CollectBatch(std::move(*first)));
  }
}

std::vector<MicroBatcher::PendingRequest> MicroBatcher::CollectBatch(
    PendingRequest first) {
  std::vector<PendingRequest> batch;
  std::unordered_set<int64_t> users{first.user};
  batch.push_back(std::move(first));
  if (config_.batch_window_us <= 0) return batch;

  const auto deadline =
      batch.front().enqueue_time +
      std::chrono::microseconds(config_.batch_window_us);
  while (static_cast<int64_t>(users.size()) < config_.max_batch_users) {
    std::optional<PendingRequest> next = queue_.PopUntil(deadline);
    if (!next.has_value()) break;  // window closed (or batcher stopping)
    users.insert(next->user);
    batch.push_back(std::move(*next));
  }
  return batch;
}

void MicroBatcher::ProcessBatch(std::vector<PendingRequest> batch) {
  HIRE_TRACE_SCOPE("serve_batch");
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("serve.queue_depth")
      ->Set(static_cast<double>(queue_.size()));

  std::shared_ptr<const VersionedGraph> versioned_graph;
  std::shared_ptr<const ModelSnapshot> snapshot;
  try {
    versioned_graph = graph_provider_();
    snapshot = engine_->Acquire();
  } catch (const std::exception& error) {
    for (PendingRequest& request : batch) {
      request.promise.set_value(FailedResponse(error.what()));
    }
    return;
  }
  if (snapshot == nullptr || versioned_graph == nullptr) {
    for (PendingRequest& request : batch) {
      request.promise.set_value(FailedResponse("no model published"));
    }
    return;
  }

  // The transport validated ids against the graph current at submit time,
  // but a smaller universe may have been published since; re-validate
  // against the generation this batch actually runs on so the context
  // assembler never indexes attribute tables out of range. Only the
  // offending requests fail (as bad requests), not their whole group.
  {
    const int64_t num_users = versioned_graph->graph.num_users();
    const int64_t num_items = versioned_graph->graph.num_items();
    std::vector<PendingRequest> in_range;
    in_range.reserve(batch.size());
    for (PendingRequest& request : batch) {
      std::string error;
      if (request.user < 0 || request.user >= num_users) {
        error = "bad request: user " + std::to_string(request.user) +
                " outside [0, " + std::to_string(num_users) + ")";
      } else {
        for (int64_t item : request.items) {
          if (item < 0 || item >= num_items) {
            error = "bad request: item " + std::to_string(item) +
                    " outside [0, " + std::to_string(num_items) + ")";
            break;
          }
        }
      }
      if (error.empty()) {
        in_range.push_back(std::move(request));
      } else {
        request.promise.set_value(FailedResponse(std::move(error)));
      }
    }
    batch = std::move(in_range);
    if (batch.empty()) return;
  }

  // Partition the batch into groups whose distinct users fit the row budget
  // and whose item union fits the column budget; each group shares one
  // context and one forward.
  const int64_t max_users =
      std::min(config_.max_batch_users, config_.context_users);
  std::vector<std::vector<PendingRequest>> groups;
  std::unordered_set<int64_t> group_users;
  std::unordered_set<int64_t> group_items;
  for (PendingRequest& request : batch) {
    int64_t new_users = group_users.count(request.user) ? 0 : 1;
    int64_t new_items = 0;
    for (int64_t item : request.items) {
      if (group_items.count(item) == 0) ++new_items;
    }
    const bool fits =
        !groups.empty() &&
        static_cast<int64_t>(group_users.size()) + new_users <= max_users &&
        static_cast<int64_t>(group_items.size()) + new_items <=
            config_.context_items;
    if (!fits) {
      groups.emplace_back();
      group_users.clear();
      group_items.clear();
    }
    group_users.insert(request.user);
    group_items.insert(request.items.begin(), request.items.end());
    groups.back().push_back(std::move(request));
  }

  for (std::vector<PendingRequest>& group : groups) {
    try {
      ProcessGroup(std::move(group), *versioned_graph, *snapshot);
    } catch (const std::exception& error) {
      // ProcessGroup resolves promises as its last act; an exception means
      // none of this group's requests were answered yet.
      for (PendingRequest& request : group) {
        request.promise.set_value(FailedResponse(error.what()));
      }
      registry.GetCounter("serve.batch_errors")->Increment();
    }
  }
}

void MicroBatcher::ProcessGroup(std::vector<PendingRequest> group,
                                const VersionedGraph& versioned_graph,
                                const ModelSnapshot& snapshot) {
  auto& registry = obs::MetricsRegistry::Global();
  const graph::BipartiteGraph& graph = versioned_graph.graph;

  // Distinct users in arrival order; fetch or build each user's context
  // plan (the cacheable, graph-walk half of the work).
  std::vector<int64_t> users;
  std::unordered_map<int64_t, bool> cache_hit;
  std::vector<std::shared_ptr<const core::UserContextPlan>> plans;
  for (const PendingRequest& request : group) {
    if (cache_hit.count(request.user)) continue;
    users.push_back(request.user);
    std::shared_ptr<const core::UserContextPlan> plan =
        cache_->Get(request.user, versioned_graph.version);
    cache_hit[request.user] = plan != nullptr;
    if (plan == nullptr) {
      plan = std::make_shared<core::UserContextPlan>(core::BuildUserContextPlan(
          graph, *sampler_, request.user, config_.context_users,
          config_.context_items, config_.seed));
      cache_->Put(request.user, versioned_graph.version, plan);
    }
    plans.push_back(std::move(plan));
  }

  // Rows: the batch users first, then their sampled context neighbors
  // round-robin until the row budget is filled.
  std::vector<int64_t> rows = users;
  std::unordered_set<int64_t> row_set(rows.begin(), rows.end());
  for (size_t offset = 1;
       static_cast<int64_t>(rows.size()) < config_.context_users; ++offset) {
    bool any = false;
    for (const auto& plan : plans) {
      if (offset >= plan->context_users.size()) continue;
      any = true;
      const int64_t candidate = plan->context_users[offset];
      if (row_set.insert(candidate).second) {
        rows.push_back(candidate);
        if (static_cast<int64_t>(rows.size()) >= config_.context_users) break;
      }
    }
    if (!any) break;
  }

  // Columns: the union of queried items in arrival order, then base-pool
  // items (support first) round-robin until the column budget is filled.
  std::vector<int64_t> cols;
  std::unordered_set<int64_t> col_set;
  for (const PendingRequest& request : group) {
    for (int64_t item : request.items) {
      if (col_set.insert(item).second) cols.push_back(item);
    }
  }
  for (size_t offset = 0;
       static_cast<int64_t>(cols.size()) < config_.context_items; ++offset) {
    bool any = false;
    for (const auto& plan : plans) {
      if (offset >= plan->base_items.size()) continue;
      any = true;
      const int64_t candidate = plan->base_items[offset];
      if (col_set.insert(candidate).second) {
        cols.push_back(candidate);
        if (static_cast<int64_t>(cols.size()) >= config_.context_items) break;
      }
    }
    if (!any) break;
  }

  graph::ContextSelection selection;
  selection.users = rows;
  selection.items = cols;
  graph::PredictionContext context =
      graph::AssembleContext(graph, std::move(selection));
  core::ThinObservedCells(&context,
                          /*keep_rows=*/static_cast<int64_t>(users.size()),
                          config_.visible_fraction, config_.seed);

  Tensor predicted;
  {
    HIRE_TRACE_SCOPE("serve_forward");
    predicted = snapshot.model->Predict(context);
  }

  std::unordered_map<int64_t, int64_t> row_of_user;
  for (size_t r = 0; r < rows.size(); ++r) {
    row_of_user[rows[r]] = static_cast<int64_t>(r);
  }
  std::unordered_map<int64_t, int64_t> col_of_item;
  for (size_t c = 0; c < cols.size(); ++c) {
    col_of_item[cols[c]] = static_cast<int64_t>(c);
  }

  registry.GetCounter("serve.batches")->Increment();
  registry.GetCounter("serve.batched_users")->Increment(users.size());
  obs::HistogramOptions batch_options;
  batch_options.first_bound = 1.0;
  batch_options.growth = 2.0;
  batch_options.num_buckets = 8;
  registry.GetHistogram("serve.batch_users", batch_options)
      ->Record(static_cast<double>(users.size()));
  obs::Histogram* latency_hist = registry.GetHistogram(
      "serve.request_latency_us",
      obs::HistogramOptions{/*first_bound=*/1.0, /*growth=*/2.0,
                            /*num_buckets=*/32});
  obs::Counter* served = registry.GetCounter("serve.requests");

  for (PendingRequest& request : group) {
    RatingResponse response;
    response.ok = true;
    response.predictions.reserve(request.items.size());
    const int64_t row = row_of_user.at(request.user);
    for (int64_t item : request.items) {
      response.predictions.push_back(
          predicted.at(row, col_of_item.at(item)));
    }
    response.cache_hit = cache_hit.at(request.user);
    response.batch_users = static_cast<int64_t>(users.size());
    response.model_version = snapshot.version;
    response.graph_version = versioned_graph.version;
    response.latency_us = MicrosSince(request.enqueue_time);

    served->Increment();
    latency_hist->Record(response.latency_us);
    if (obs::TelemetrySink::Global().enabled()) {
      obs::ServeTelemetry record;
      record.user = request.user;
      record.num_items = static_cast<int64_t>(request.items.size());
      record.latency_us = response.latency_us;
      record.batch_users = response.batch_users;
      record.cache_hit = response.cache_hit;
      record.model_version = response.model_version;
      record.graph_version = response.graph_version;
      obs::TelemetrySink::Global().WriteServe(record);
    }
    request.promise.set_value(std::move(response));
  }
}

}  // namespace serve
}  // namespace hire
