#include "serve/event_loop.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "utils/check.h"
#include "utils/fault_injection.h"
#include "utils/logging.h"

namespace hire {
namespace serve {

namespace {

constexpr size_t kMaxHeadBytes = 16 * 1024;
constexpr size_t kMaxBodyBytes = 4 * 1024 * 1024;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string ToLower(std::string text) {
  for (char& c : text) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return text;
}

std::string RenderResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

struct ParsedHead {
  bool ok = false;
  std::string method;
  std::string path;
  std::string query;
  size_t content_length = 0;
  bool keep_alive = true;  // HTTP/1.1 default
  std::map<std::string, std::string> headers;  // names lower-cased
};

/// Parses the request line + headers in buffer[0, head_end).
ParsedHead ParseHead(const std::string& buffer, size_t head_end) {
  ParsedHead head;
  const size_t line_end = buffer.find("\r\n");
  if (line_end == std::string::npos || line_end > head_end) return head;

  const std::string request_line = buffer.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return head;
  head.method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = target.find('?');
  if (query != std::string::npos) {
    head.query = target.substr(query + 1);
    target.resize(query);
  }
  head.path = target;
  const std::string version = request_line.substr(sp2 + 1);
  if (version == "HTTP/1.0") head.keep_alive = false;

  size_t pos = line_end + 2;
  while (pos < head_end) {
    const size_t eol = buffer.find("\r\n", pos);
    if (eol == std::string::npos || eol > head_end) break;
    const std::string line = buffer.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string name = ToLower(line.substr(0, colon));
    size_t value_begin = colon + 1;
    while (value_begin < line.size() && line[value_begin] == ' ') {
      ++value_begin;
    }
    const std::string value = line.substr(value_begin);
    head.headers[name] = value;
    if (name == "content-length") {
      try {
        head.content_length = static_cast<size_t>(std::stoull(value));
      } catch (const std::exception&) {
        return head;  // ok stays false
      }
    } else if (name == "connection") {
      const std::string lower = ToLower(value);
      if (lower == "close") head.keep_alive = false;
      if (lower == "keep-alive") head.keep_alive = true;
    }
  }
  head.ok = true;
  return head;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  HIRE_CHECK_GE(flags, 0) << "fcntl(F_GETFL) failed: " << std::strerror(errno);
  HIRE_CHECK_GE(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0)
      << "fcntl(F_SETFL) failed: " << std::strerror(errno);
}

/// poll(2)-set backend: portable, O(open fds) per wait. Fine for the test
/// scale and a correctness oracle for the epoll backend.
class PollSetPoller : public Poller {
 public:
  void Add(int fd, bool want_read, bool want_write) override {
    Update(fd, want_read, want_write);
  }
  void Update(int fd, bool want_read, bool want_write) override {
    short events = 0;
    if (want_read) events |= POLLIN;
    if (want_write) events |= POLLOUT;
    wanted_[fd] = events;
  }
  void Remove(int fd) override { wanted_.erase(fd); }
  int Wait(int timeout_ms, std::vector<PollEvent>* events) override {
    events->clear();
    fds_.clear();
    for (const auto& [fd, mask] : wanted_) {
      fds_.push_back({fd, mask, 0});
    }
    const int ready = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (ready <= 0) return ready < 0 && errno != EINTR ? -1 : 0;
    for (const pollfd& pfd : fds_) {
      if (pfd.revents == 0) continue;
      PollEvent event;
      event.fd = pfd.fd;
      event.readable = (pfd.revents & (POLLIN | POLLHUP)) != 0;
      event.writable = (pfd.revents & POLLOUT) != 0;
      event.error = (pfd.revents & (POLLERR | POLLNVAL)) != 0;
      events->push_back(event);
    }
    return static_cast<int>(events->size());
  }
  const char* name() const override { return "poll"; }

 private:
  std::map<int, short> wanted_;
  std::vector<pollfd> fds_;
};

#ifdef __linux__
class EpollPoller : public Poller {
 public:
  EpollPoller() : epoll_fd_(::epoll_create1(0)) {
    HIRE_CHECK_GE(epoll_fd_, 0)
        << "epoll_create1 failed: " << std::strerror(errno);
  }
  ~EpollPoller() override { ::close(epoll_fd_); }

  void Add(int fd, bool want_read, bool want_write) override {
    epoll_event event = Event(fd, want_read, want_write);
    HIRE_CHECK_EQ(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event), 0)
        << "epoll_ctl(ADD) failed: " << std::strerror(errno);
  }
  void Update(int fd, bool want_read, bool want_write) override {
    epoll_event event = Event(fd, want_read, want_write);
    HIRE_CHECK_EQ(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event), 0)
        << "epoll_ctl(MOD) failed: " << std::strerror(errno);
  }
  void Remove(int fd) override {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
  int Wait(int timeout_ms, std::vector<PollEvent>* events) override {
    events->clear();
    epoll_event ready[256];
    const int n = ::epoll_wait(epoll_fd_, ready, 256, timeout_ms);
    if (n <= 0) return n < 0 && errno != EINTR ? -1 : 0;
    for (int i = 0; i < n; ++i) {
      PollEvent event;
      event.fd = ready[i].data.fd;
      event.readable = (ready[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      event.writable = (ready[i].events & EPOLLOUT) != 0;
      event.error = (ready[i].events & EPOLLERR) != 0;
      events->push_back(event);
    }
    return n;
  }
  const char* name() const override { return "epoll"; }

 private:
  static epoll_event Event(int fd, bool want_read, bool want_write) {
    epoll_event event;
    std::memset(&event, 0, sizeof(event));
    if (want_read) event.events |= EPOLLIN;
    if (want_write) event.events |= EPOLLOUT;
    event.data.fd = fd;
    return event;
  }

  int epoll_fd_;
};
#endif  // __linux__

}  // namespace

std::unique_ptr<Poller> Poller::Create() {
  const char* backend = std::getenv("HIRE_SERVE_EVENT_BACKEND");
#ifdef __linux__
  if (backend == nullptr || std::string(backend) != "poll") {
    return std::make_unique<EpollPoller>();
  }
#else
  (void)backend;
#endif
  return std::make_unique<PollSetPoller>();
}

HttpEventLoop::HttpEventLoop(
    int port, HttpServerOptions options, int handler_threads,
    std::map<std::pair<std::string, std::string>, HttpHandler> routes,
    std::map<std::pair<std::string, std::string>, HttpAsyncHandler>
        async_routes)
    : requested_port_(port),
      options_(options),
      handler_threads_(handler_threads),
      routes_(std::move(routes)),
      async_routes_(std::move(async_routes)) {
  HIRE_CHECK_GE(port, 0);
  HIRE_CHECK_GT(handler_threads, 0);
  HIRE_CHECK_GT(options.idle_timeout_ms, 0);
  HIRE_CHECK_GT(options.header_timeout_ms, 0);
  HIRE_CHECK_GE(options.max_connections, 0);
}

HttpEventLoop::~HttpEventLoop() { Stop(); }

void HttpEventLoop::Start() {
  HIRE_CHECK(!running_.load()) << "event loop already started";

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  HIRE_CHECK_GE(listen_fd_, 0) << "socket() failed: " << std::strerror(errno);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(requested_port_));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    HIRE_CHECK(false) << "bind(127.0.0.1:" << requested_port_
                      << ") failed: " << error;
  }
  HIRE_CHECK_EQ(::listen(listen_fd_, 512), 0)
      << "listen() failed: " << std::strerror(errno);
  SetNonBlocking(listen_fd_);

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  HIRE_CHECK_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                              &bound_len),
                0)
      << "getsockname() failed: " << std::strerror(errno);
  port_ = static_cast<int>(ntohs(bound.sin_port));

  int pipe_fds[2];
  HIRE_CHECK_EQ(::pipe(pipe_fds), 0)
      << "pipe() failed: " << std::strerror(errno);
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);

  poller_ = Poller::Create();
  poller_->Add(listen_fd_, /*want_read=*/true, /*want_write=*/false);
  poller_->Add(wake_read_fd_, /*want_read=*/true, /*want_write=*/false);

  sink_ = std::make_shared<CompletionSink>();
  sink_->wake_fd = wake_write_fd_;

  listen_closed_ = false;
  stopping_.store(false);
  running_.store(true);
  pool_ = std::make_unique<ThreadPool>(handler_threads_);
  loop_thread_ = std::thread([this] { Run(); });
  HIRE_LOG(Info) << "http event loop listening on 127.0.0.1:" << port_ << " ("
                 << handler_threads_ << " handler threads, backend="
                 << poller_->name()
                 << (options_.max_connections > 0
                         ? ", max_connections=" +
                               std::to_string(options_.max_connections)
                         : std::string())
                 << ")";
}

void HttpEventLoop::Stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  if (pool_ != nullptr) {
    pool_->Wait();
    pool_.reset();
  }
  if (sink_ != nullptr) {
    // Unreachable from here on: late async `done` callbacks (requests still
    // parked in a backend queue) see wake_fd == -1 under the sink mutex and
    // drop their completion instead of writing a dead — possibly reused —
    // pipe fd. Their connections were closed when the loop exited.
    std::lock_guard<std::mutex> lock(sink_->mutex);
    sink_->wake_fd = -1;
    sink_->completions.clear();
  }
  sink_.reset();
  if (listen_fd_ >= 0 && !listen_closed_) ::close(listen_fd_);
  listen_fd_ = -1;
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  wake_read_fd_ = -1;
  wake_write_fd_ = -1;
  poller_.reset();
  running_.store(false);
}

void HttpEventLoop::Wake() {
  if (wake_write_fd_ < 0) return;
  const char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  (void)!::write(wake_write_fd_, &byte, 1);
}

int HttpEventLoop::WaitTimeoutMs(Clock::time_point now) const {
  // Wake early enough to honor the nearest connection deadline, but never
  // sleep more than 200ms so a Stop() is noticed promptly even if the wake
  // pipe write were ever lost.
  int timeout_ms = 200;
  for (const auto& [fd, conn] : connections_) {
    if (conn.state == ConnState::kHandling) continue;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(conn.deadline -
                                                              now)
            .count();
    timeout_ms = std::clamp<int>(static_cast<int>(remaining), 0, timeout_ms);
  }
  return timeout_ms;
}

void HttpEventLoop::Run() {
  std::vector<PollEvent> events;
  while (true) {
    const Clock::time_point now = Clock::now();

    if (stopping_.load()) {
      // Drain: stop accepting, drop connections that are between or reading
      // requests, and keep looping only until in-flight handlers finish
      // writing their responses.
      if (!listen_closed_) {
        poller_->Remove(listen_fd_);
        ::close(listen_fd_);
        listen_closed_ = true;
      }
      std::vector<int> reading;
      for (const auto& [fd, conn] : connections_) {
        if (conn.state == ConnState::kReading) reading.push_back(fd);
      }
      for (int fd : reading) CloseConnection(fd);
      if (connections_.empty()) break;
    }

    const int wait_ms = stopping_.load() ? 20 : WaitTimeoutMs(now);
    const int ready = poller_->Wait(wait_ms, &events);
    if (ready < 0) {
      HIRE_LOG(Warning) << "poller wait failed: " << std::strerror(errno);
      break;
    }

    for (const PollEvent& event : events) {
      if (event.fd == listen_fd_ && !listen_closed_) {
        AcceptNew();
        continue;
      }
      if (event.fd == wake_read_fd_) {
        char sink[256];
        while (::read(wake_read_fd_, sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      auto it = connections_.find(event.fd);
      if (it == connections_.end()) continue;
      Connection& conn = it->second;
      if (event.error) {
        CloseConnection(conn.fd);
        continue;
      }
      if (event.writable && conn.state == ConnState::kWriting) {
        OnWritable(conn);
        // OnWritable may close/erase; re-find before reading.
        auto again = connections_.find(event.fd);
        if (again == connections_.end()) continue;
        if (event.readable && again->second.state == ConnState::kReading) {
          OnReadable(again->second);
        }
        continue;
      }
      if (event.readable && conn.state == ConnState::kReading) {
        OnReadable(conn);
      }
    }

    DrainCompletions();
    SweepTimeouts(Clock::now());
  }

  // Loop exit: every remaining fd (stuck writers, late completions) closes.
  std::vector<int> remaining;
  remaining.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) remaining.push_back(fd);
  for (int fd : remaining) CloseConnection(fd);
}

void HttpEventLoop::AcceptNew() {
  auto& registry = obs::MetricsRegistry::Global();
  while (true) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error: wait for the next readiness
    }
    registry.GetCounter("serve.http.connections")->Increment();
    if (options_.max_connections > 0 &&
        static_cast<int>(connections_.size()) >= options_.max_connections) {
      // Bounded fd table: answer at accept time instead of queueing the
      // connection behind ones we cannot serve.
      registry.GetCounter("serve.http.over_capacity")->Increment();
      const std::string reply = RenderResponse(
          {503, "application/json",
           "{\"error\":\"server at connection capacity\"}",
           {{"Retry-After", "1"}}},
          /*keep_alive=*/false);
      (void)!::send(client, reply.data(), reply.size(),
#ifdef MSG_NOSIGNAL
                    MSG_NOSIGNAL
#else
                    0
#endif
      );
      ::close(client);
      continue;
    }
    SetNonBlocking(client);
    int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    Connection conn;
    conn.id = next_conn_id_++;
    conn.fd = client;
    conn.state = ConnState::kReading;
    conn.deadline =
        Clock::now() + std::chrono::milliseconds(options_.idle_timeout_ms);
    id_to_fd_[conn.id] = client;
    connections_.emplace(client, std::move(conn));
    open_connections_.store(static_cast<int>(connections_.size()));
    registry.GetGauge("serve.http.open_connections")
        ->Set(static_cast<double>(connections_.size()));
    poller_->Add(client, /*want_read=*/true, /*want_write=*/false);
  }
}

void HttpEventLoop::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  poller_->Remove(fd);
  ::close(fd);
  id_to_fd_.erase(it->second.id);
  connections_.erase(it);
  open_connections_.store(static_cast<int>(connections_.size()));
  obs::MetricsRegistry::Global()
      .GetGauge("serve.http.open_connections")
      ->Set(static_cast<double>(connections_.size()));
}

void HttpEventLoop::OnReadable(Connection& conn) {
  char chunk[4096];
  bool got_data = false;
  // Bound the bytes taken per readiness event so one firehose connection
  // cannot monopolize the loop; level-triggered polling re-notifies.
  for (int rounds = 0; rounds < 16; ++rounds) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.in.append(chunk, static_cast<size_t>(n));
      got_data = true;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn.fd);  // EOF or hard error
    return;
  }
  if (got_data && !conn.request_started) {
    conn.request_started = true;
    conn.deadline =
        Clock::now() + std::chrono::milliseconds(options_.header_timeout_ms);
  }
  TryParseAndDispatch(conn);
}

void HttpEventLoop::TryParseAndDispatch(Connection& conn) {
  const size_t head_end = conn.in.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (conn.in.size() > kMaxHeadBytes) CloseConnection(conn.fd);
    return;  // need more bytes (or just closed)
  }
  const ParsedHead head = ParseHead(conn.in, head_end);
  if (!head.ok || head.content_length > kMaxBodyBytes) {
    QueueResponse(conn,
                  {400, "application/json",
                   "{\"error\":\"malformed request\"}",
                   {}},
                  /*keep_alive=*/false, /*close_after=*/true);
    return;
  }
  const size_t body_begin = head_end + 4;
  if (conn.in.size() < body_begin + head.content_length) return;  // body pending

  HttpRequest request;
  request.method = head.method;
  request.path = head.path;
  request.query = head.query;
  request.headers = head.headers;
  request.body = conn.in.substr(body_begin, head.content_length);
  conn.in.erase(0, body_begin + head.content_length);  // keep pipelined bytes

  conn.keep_alive_next = head.keep_alive;
  conn.state = ConnState::kHandling;
  poller_->Update(conn.fd, /*want_read=*/false, /*want_write=*/false);

  const auto async_it = async_routes_.find({request.method, request.path});
  if (async_it != async_routes_.end()) {
    // Async route: the pool task only runs the handler's synchronous prefix
    // (parse + submit); the response arrives whenever the backend invokes
    // `done`, from any thread. The callback captures the sink, not `this`,
    // because it can outlive both the pool and the loop object.
    const HttpAsyncHandler* handler = &async_it->second;
    pool_->Submit([handler, sink = sink_, conn_id = conn.id,
                   request = std::move(request)] {
      auto completed = std::make_shared<std::atomic<bool>>(false);
      const auto done = [sink, conn_id, completed](HttpResponse response) {
        // Exactly-once guard: a buggy double `done` (or a handler that
        // completed and then threw) must not write two responses into one
        // connection's stream.
        if (completed->exchange(true)) return;
        Completion completion;
        completion.conn_id = conn_id;
        completion.response = std::move(response);
        PushCompletion(sink, std::move(completion));
      };
      try {
        (*handler)(request, done);
      } catch (const std::exception&) {
        obs::MetricsRegistry::Global()
            .GetCounter("serve.http.handler_errors")
            ->Increment();
        done({500, "application/json", "{\"error\":\"internal error\"}"});
      }
    });
    return;
  }

  pool_->Submit([this, conn_id = conn.id, request = std::move(request)] {
    Completion completion;
    completion.conn_id = conn_id;
    completion.response = Dispatch(request);
    PushCompletion(sink_, std::move(completion));
  });
}

void HttpEventLoop::PushCompletion(
    const std::shared_ptr<CompletionSink>& sink, Completion completion) {
  std::lock_guard<std::mutex> lock(sink->mutex);
  if (sink->wake_fd < 0) return;  // loop gone; the connection is closed
  sink->completions.push_back(std::move(completion));
  const char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  (void)!::write(sink->wake_fd, &byte, 1);
}

HttpResponse HttpEventLoop::Dispatch(const HttpRequest& request) const {
  const auto it = routes_.find({request.method, request.path});
  if (it == routes_.end()) {
    // Distinguish wrong-method from unknown-path for friendlier errors
    // (async routes count: GET /predict is a 405, not a 404).
    for (const auto& [key, handler] : routes_) {
      if (key.second == request.path) {
        return {405, "application/json", "{\"error\":\"method not allowed\"}"};
      }
    }
    for (const auto& [key, handler] : async_routes_) {
      if (key.second == request.path) {
        return {405, "application/json", "{\"error\":\"method not allowed\"}"};
      }
    }
    return {404, "application/json", "{\"error\":\"no such endpoint\"}"};
  }
  try {
    return it->second(request);
  } catch (const std::exception& error) {
    obs::MetricsRegistry::Global()
        .GetCounter("serve.http.handler_errors")
        ->Increment();
    return {500, "application/json",
            "{\"error\":" + std::string("\"internal error\"") + "}"};
  }
}

void HttpEventLoop::DrainCompletions() {
  std::vector<Completion> drained;
  {
    std::lock_guard<std::mutex> lock(sink_->mutex);
    drained.swap(sink_->completions);
  }
  for (Completion& completion : drained) {
    const auto it = id_to_fd_.find(completion.conn_id);
    if (it == id_to_fd_.end()) continue;  // connection died mid-handling
    Connection& conn = connections_.at(it->second);
    if (FaultInjector::Global().ConsumeServeConnectionReset()) {
      obs::MetricsRegistry::Global()
          .GetCounter("serve.http.injected_resets")
          ->Increment();
      CloseConnection(conn.fd);  // drop without sending the response
      continue;
    }
    QueueResponse(conn, completion.response, conn.keep_alive_next,
                  /*close_after=*/!conn.keep_alive_next);
  }
}

void HttpEventLoop::QueueResponse(Connection& conn,
                                  const HttpResponse& response,
                                  bool keep_alive, bool close_after) {
  conn.out = RenderResponse(response, keep_alive);
  conn.out_sent = 0;
  conn.on_written = response.on_written;
  conn.close_after_write = close_after;
  conn.state = ConnState::kWriting;
  conn.write_start = Clock::now();
  // A peer that stops reading gets the idle budget to drain the response.
  conn.deadline =
      conn.write_start + std::chrono::milliseconds(options_.idle_timeout_ms);
  poller_->Update(conn.fd, /*want_read=*/false, /*want_write=*/true);
  OnWritable(conn);  // usually completes immediately into the socket buffer
}

void HttpEventLoop::OnWritable(Connection& conn) {
  while (conn.out_sent < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_sent,
                             conn.out.size() - conn.out_sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // wait for POLLOUT
      CloseConnection(conn.fd);
      return;
    }
    conn.out_sent += static_cast<size_t>(n);
  }
  FinishWrite(conn);
}

void HttpEventLoop::FinishWrite(Connection& conn) {
  if (conn.on_written) {
    conn.on_written(std::chrono::duration<double, std::micro>(Clock::now() -
                                                              conn.write_start)
                        .count());
    conn.on_written = nullptr;
  }
  if (conn.close_after_write) {
    CloseConnection(conn.fd);
    return;
  }
  conn.out.clear();
  conn.out_sent = 0;
  conn.state = ConnState::kReading;
  conn.request_started = !conn.in.empty();  // pipelined bytes already here
  conn.deadline = Clock::now() +
                  std::chrono::milliseconds(conn.request_started
                                                ? options_.header_timeout_ms
                                                : options_.idle_timeout_ms);
  poller_->Update(conn.fd, /*want_read=*/true, /*want_write=*/false);
  if (conn.request_started) TryParseAndDispatch(conn);
}

void HttpEventLoop::SweepTimeouts(Clock::time_point now) {
  std::vector<int> idle_expired;
  std::vector<int> read_expired;
  std::vector<int> write_expired;
  for (const auto& [fd, conn] : connections_) {
    if (conn.state == ConnState::kHandling || now < conn.deadline) continue;
    if (conn.state == ConnState::kWriting) {
      write_expired.push_back(fd);
    } else if (conn.request_started) {
      read_expired.push_back(fd);
    } else {
      idle_expired.push_back(fd);
    }
  }
  auto& registry = obs::MetricsRegistry::Global();
  for (int fd : idle_expired) {
    registry.GetCounter("serve.http.idle_closed")->Increment();
    CloseConnection(fd);
  }
  for (int fd : read_expired) {
    // Slow-loris: the client started a request but did not finish it within
    // the read budget.
    registry.GetCounter("serve.http.request_read_timeouts")->Increment();
    Connection& conn = connections_.at(fd);
    QueueResponse(conn,
                  {408, "application/json",
                   "{\"error\":\"request read timed out\"}",
                   {}},
                  /*keep_alive=*/false, /*close_after=*/true);
  }
  for (int fd : write_expired) {
    CloseConnection(fd);  // peer stopped reading its response
  }
}

}  // namespace serve
}  // namespace hire
