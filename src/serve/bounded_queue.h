#ifndef HIRE_SERVE_BOUNDED_QUEUE_H_
#define HIRE_SERVE_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "utils/check.h"

namespace hire {
namespace serve {

/// Bounded MPMC FIFO. Producers are the HTTP connection threads (and the
/// in-process ServeClient); consumers are the micro-batcher workers. The
/// bound is the server's backpressure mechanism: when the queue is full,
/// TryPush fails and the transport replies 503 instead of letting latency
/// grow without limit.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    HIRE_CHECK_GT(capacity, 0u);
  }

  /// Enqueues without blocking. Returns false when full or closed, in which
  /// case `item` is NOT moved from — the caller still owns it and can e.g.
  /// resolve the promise it carries.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(item));
    }
    readable_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed. Returns
  /// nullopt only when closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    readable_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    return PopLocked();
  }

  /// Like Pop but gives up at `deadline`; nullopt on timeout as well. This
  /// is what implements the batching window: the worker keeps popping until
  /// the window closes or the batch is full.
  std::optional<T> PopUntil(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!readable_.wait_until(lock, deadline, [this] {
          return closed_ || !queue_.empty();
        })) {
      return std::nullopt;
    }
    return PopLocked();
  }

  /// Non-blocking pop; nullopt when empty.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    return PopLocked();
  }

  /// Wakes every blocked consumer; subsequent pushes fail. Items already
  /// queued can still be drained.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    readable_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  // Caller holds mutex_.
  std::optional<T> PopLocked() {
    if (queue_.empty()) return std::nullopt;
    std::optional<T> item(std::move(queue_.front()));
    queue_.pop_front();
    return item;
  }

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable readable_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace hire

#endif  // HIRE_SERVE_BOUNDED_QUEUE_H_
