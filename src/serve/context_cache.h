#ifndef HIRE_SERVE_CONTEXT_CACHE_H_
#define HIRE_SERVE_CONTEXT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/evaluation.h"
#include "obs/metrics.h"

namespace hire {
namespace serve {

/// LRU cache of per-user context plans keyed by (user, graph version) — the
/// sampled context rows and base item pool that the micro-batcher would
/// otherwise have to re-walk the rating graph for on every request (the
/// NIRec/GraphHINGE observation: serving latency is won by reusing
/// neighborhood structure). Entries for an old graph version can never be
/// returned; bumping the version is therefore an implicit full
/// invalidation, and InvalidateAll also drops the memory eagerly.
///
/// Hit/miss/eviction/invalidation counts are published to the global
/// obs::MetricsRegistry under "serve.context_cache.*".
class ContextCache {
 public:
  explicit ContextCache(size_t capacity);

  /// Returns the cached plan for (user, graph_version) or nullptr on miss.
  /// Counts a hit or a miss either way.
  std::shared_ptr<const core::UserContextPlan> Get(int64_t user,
                                                   int64_t graph_version);

  /// Inserts (replacing any entry with the same key) and marks the entry
  /// most recently used. Evicts the LRU entry when over capacity.
  void Put(int64_t user, int64_t graph_version,
           std::shared_ptr<const core::UserContextPlan> plan);

  /// Drops every entry for `user` across all graph versions (e.g. the
  /// user's ratings changed).
  void InvalidateUser(int64_t user);

  /// Drops every entry (e.g. the rating graph was rebuilt).
  void InvalidateAll();

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Key {
    int64_t user;
    int64_t graph_version;
    bool operator==(const Key& other) const {
      return user == other.user && graph_version == other.graph_version;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      // splitmix-style mix of the two ids.
      uint64_t x = static_cast<uint64_t>(key.user) * 0x9E3779B97F4A7C15ull ^
                   static_cast<uint64_t>(key.graph_version);
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      return static_cast<size_t>(x ^ (x >> 31));
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const core::UserContextPlan> plan;
  };

  void TouchLocked(std::list<Entry>::iterator it);

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;

  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Counter* invalidations_;
  obs::Gauge* size_gauge_;
};

}  // namespace serve
}  // namespace hire

#endif  // HIRE_SERVE_CONTEXT_CACHE_H_
