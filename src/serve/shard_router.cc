#include "serve/shard_router.h"

#include <algorithm>
#include <filesystem>

#include "obs/metrics.h"
#include "utils/check.h"
#include "utils/fault_injection.h"
#include "utils/logging.h"

namespace hire {
namespace serve {

namespace {

/// SplitMix64 finalizer: the same mix for keys and vnode positions, so the
/// ring layout is deterministic across processes (a user maps to the same
/// shard on every boot with the same shard count).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// A shard's vnode positions depend only on (shard, replica) — never on the
/// ring's shard count — which is what makes growing the ring move keys only
/// onto the new shard.
uint64_t VnodePosition(int shard, int replica) {
  return Mix64((static_cast<uint64_t>(shard) << 20) |
               static_cast<uint64_t>(replica));
}

}  // namespace

ConsistentHashRing::ConsistentHashRing(int num_shards, int vnodes_per_shard)
    : num_shards_(num_shards) {
  HIRE_CHECK_GT(num_shards, 0);
  HIRE_CHECK_GT(vnodes_per_shard, 0);
  ring_.reserve(static_cast<size_t>(num_shards) *
                static_cast<size_t>(vnodes_per_shard));
  for (int shard = 0; shard < num_shards; ++shard) {
    for (int replica = 0; replica < vnodes_per_shard; ++replica) {
      ring_.emplace_back(VnodePosition(shard, replica), shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int ConsistentHashRing::ShardForKey(uint64_t key) const {
  const uint64_t position = Mix64(key);
  // First vnode clockwise of the key's position; wrap to the ring start.
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), position,
      [](uint64_t value, const std::pair<uint64_t, int>& node) {
        return value < node.first;
      });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

ShardRouter::ShardRouter(const data::Dataset* dataset,
                         core::HireConfig model_config,
                         graph::BipartiteGraph graph,
                         const ShardRouterConfig& config)
    : dataset_(dataset),
      model_config_(model_config),
      ring_(config.num_shards) {
  HIRE_CHECK(dataset != nullptr);
  HIRE_CHECK_GT(config.num_shards, 0);
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("serve.shards")
      ->Set(static_cast<double>(config.num_shards));

  // All shards publish the same immutable generation object; per-shard
  // pointers exist so graph updates can roll shard by shard.
  const auto initial = std::make_shared<const VersionedGraph>(
      std::move(graph), /*version=*/1);
  const size_t per_shard_cache = std::max<size_t>(
      1, config.cache_capacity / static_cast<size_t>(config.num_shards));

  shards_.reserve(static_cast<size_t>(config.num_shards));
  for (int i = 0; i < config.num_shards; ++i) {
    auto shard = std::make_unique<EngineShard>();
    shard->index = i;
    shard->graph = initial;
    shard->engine = std::make_unique<InferenceEngine>(dataset_, model_config_);
    shard->cache = std::make_unique<ContextCache>(per_shard_cache);
    const std::string prefix = "serve.shard." + std::to_string(i) + ".";
    BatcherConfig batcher_config = config.batcher;
    batcher_config.shard_index = i;
    batcher_config.metric_prefix = prefix;
    // Hold the expected arrivals-per-window product invariant under
    // sharding: each shard sees ~1/N of the traffic, so an unscaled window
    // would collect ~1/N of the co-batchable requests and fragment batch
    // occupancy — at equal offered load an N-shard fleet would run up to N×
    // the forwards of a single shard. Scaling by N keeps the co-batching
    // (and forward amortization) a single shard enjoys; the latency floor
    // a sparse shard pays rises accordingly, which the open-loop sweep
    // makes visible per step.
    batcher_config.batch_window_us =
        config.batcher.batch_window_us * config.num_shards;
    EngineShard* raw = shard.get();
    shard->batcher = std::make_unique<MicroBatcher>(
        batcher_config, shard->engine.get(), shard->cache.get(), &sampler_,
        [raw] {
          std::lock_guard<std::mutex> lock(raw->graph_mutex);
          return raw->graph;
        });
    // Eagerly register the per-shard series so /metrics shows the whole
    // fleet (zeros included) from boot.
    shard->routed = registry.GetCounter(prefix + "routed");
    shard->model_version = registry.GetGauge(prefix + "model_version");
    shard->model_version->Set(0.0);
    shards_.push_back(std::move(shard));
  }
}

ShardRouter::~ShardRouter() { Stop(); }

void ShardRouter::Start() {
  HIRE_CHECK(!started_) << "shard router already started";
  for (auto& shard : shards_) shard->batcher->Start();
  started_ = true;
}

void ShardRouter::Stop() {
  if (!started_) return;
  for (auto& shard : shards_) shard->batcher->Stop();
  started_ = false;
}

int ShardRouter::ShardForUser(int64_t user) const {
  return ring_.ShardForKey(static_cast<uint64_t>(user));
}

std::future<RatingResponse> ShardRouter::Submit(int64_t user,
                                                std::vector<int64_t> items,
                                                RequestDeadline deadline) {
  auto promise = std::make_shared<std::promise<RatingResponse>>();
  std::future<RatingResponse> future = promise->get_future();
  SubmitAsync(user, std::move(items), deadline,
              [promise](RatingResponse response) {
                promise->set_value(std::move(response));
              });
  return future;
}

void ShardRouter::SubmitAsync(int64_t user, std::vector<int64_t> items,
                              RequestDeadline deadline, PredictCallback done) {
  EngineShard& shard = *shards_[static_cast<size_t>(ShardForUser(user))];
  shard.routed->Increment();

  // Bounds-check against the shard's current entity universe up front: the
  // context assembler indexes attribute tables by id and must never see an
  // out-of-range one.
  int64_t num_users = 0;
  int64_t num_items = 0;
  {
    std::lock_guard<std::mutex> lock(shard.graph_mutex);
    num_users = shard.graph->graph.num_users();
    num_items = shard.graph->graph.num_items();
  }
  std::string error;
  if (user < 0 || user >= num_users) {
    error = "bad request: user " + std::to_string(user) + " outside [0, " +
            std::to_string(num_users) + ")";
  } else {
    for (int64_t item : items) {
      if (item < 0 || item >= num_items) {
        error = "bad request: item " + std::to_string(item) +
                " outside [0, " + std::to_string(num_items) + ")";
        break;
      }
    }
  }
  if (!error.empty()) {
    // Rejected before the shard's batcher ever saw it, so account the
    // outcome here — in both the global partition and the shard's.
    RatingResponse response;
    response.ok = false;
    response.error = std::move(error);
    response.shard = shard.index;
    RecordOutcome(ClassifyOutcome(response));
    obs::MetricsRegistry::Global()
        .GetCounter("serve.shard." + std::to_string(shard.index) +
                    ".outcome.failed")
        ->Increment();
    done(std::move(response));
    return;
  }
  shard.batcher->SubmitAsync(user, std::move(items), deadline,
                             std::move(done));
}

void ShardRouter::LoadShard(EngineShard& shard,
                            const std::string& snapshot_path) {
  if (FaultInjector::Global().ConsumeServeCorruptReloadShard(shard.index)) {
    // Corrupt a private copy so the remaining shards still read the intact
    // snapshot — the fault is scoped to exactly this shard.
    const std::string corrupt_path = snapshot_path + ".shard" +
                                     std::to_string(shard.index) + ".corrupt";
    std::filesystem::copy_file(
        snapshot_path, corrupt_path,
        std::filesystem::copy_options::overwrite_existing);
    FlipFileBit(corrupt_path, FileSize(corrupt_path) / 2, 2);
    try {
      shard.engine->Load(corrupt_path);
    } catch (...) {
      std::error_code ignored;
      std::filesystem::remove(corrupt_path, ignored);
      throw;
    }
    std::error_code ignored;
    std::filesystem::remove(corrupt_path, ignored);
    return;
  }
  shard.engine->Load(snapshot_path);
}

RollingReloadResult ShardRouter::RollingReload(
    const std::string& snapshot_path) {
  HIRE_CHECK(!snapshot_path.empty()) << "no model path to reload";
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("serve.reload.rolls")->Increment();

  RollingReloadResult result;
  result.shard_versions.resize(shards_.size(), 0);
  result.errors.resize(shards_.size());
  // Strictly one shard at a time: shard i+1 is not touched until shard i's
  // swap published. The swap itself is InferenceEngine::Load's atomic
  // pointer publish — in-flight batches that Acquire()d the old snapshot
  // drain on it, so the roll never fails a request. A shard that rejects
  // the snapshot keeps serving its old one (or stays degraded) and the roll
  // continues: one sick shard must not stop the fleet.
  for (size_t i = 0; i < shards_.size(); ++i) {
    EngineShard& shard = *shards_[i];
    try {
      LoadShard(shard, snapshot_path);
    } catch (const std::exception& error) {
      result.errors[i] = error.what();
      ++result.failed_shards;
      registry.GetCounter("serve.reload.shard_failures")->Increment();
      HIRE_LOG(Warning) << "rolling reload: shard " << i
                        << " rejected snapshot '" << snapshot_path
                        << "': " << error.what();
    }
    result.shard_versions[i] = shard.engine->version();
    shard.model_version->Set(static_cast<double>(result.shard_versions[i]));
  }
  result.ok = result.failed_shards == 0;
  result.version = min_model_version();
  HIRE_LOG(Info) << "rolling reload of '" << snapshot_path << "' across "
                 << shards_.size() << " shard(s): "
                 << (shards_.size() - result.failed_shards) << " swapped, "
                 << result.failed_shards << " failed";
  return result;
}

void ShardRouter::UpdateGraph(graph::BipartiteGraph graph) {
  const auto next = std::make_shared<const VersionedGraph>(
      std::move(graph), graph_version() + 1);
  // Rolling publish: each shard's pointer swap + cache drop completes before
  // the next shard is touched. The version is part of every cache key, so a
  // plan built against the old generation can never be served even in the
  // window where shards disagree.
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->graph_mutex);
      shard->graph = next;
    }
    shard->cache->InvalidateAll();
  }
  obs::MetricsRegistry::Global().GetCounter("serve.graph_updates")->Increment();
  HIRE_LOG(Info) << "published graph v" << next->version << " to "
                 << shards_.size() << " shard(s)";
}

int64_t ShardRouter::min_model_version() const {
  int64_t min_version = shards_.front()->engine->version();
  for (const auto& shard : shards_) {
    min_version = std::min(min_version, shard->engine->version());
  }
  return min_version;
}

int64_t ShardRouter::graph_version() const {
  const EngineShard& shard = *shards_.front();
  std::lock_guard<std::mutex> lock(shard.graph_mutex);
  return shard.graph->version;
}

bool ShardRouter::all_loaded() const {
  for (const auto& shard : shards_) {
    if (!shard->engine->loaded()) return false;
  }
  return true;
}

bool ShardRouter::any_circuit_open() const {
  for (const auto& shard : shards_) {
    if (shard->batcher->circuit_open()) return true;
  }
  return false;
}

int64_t ShardRouter::total_inflight() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->batcher->inflight();
  return total;
}

int64_t ShardRouter::total_queue_depth() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += static_cast<int64_t>(shard->batcher->queue_depth());
  }
  return total;
}

std::vector<int64_t> ShardRouter::ShardModelVersions() const {
  std::vector<int64_t> versions;
  versions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    versions.push_back(shard->engine->version());
  }
  return versions;
}

}  // namespace serve
}  // namespace hire
