#include "serve/http_server.h"

#include <utility>

#include "serve/event_loop.h"
#include "utils/check.h"

namespace hire {
namespace serve {

HttpServer::HttpServer(int port, int num_threads, HttpServerOptions options)
    : requested_port_(port), num_threads_(num_threads), options_(options) {
  HIRE_CHECK_GE(port, 0);
  HIRE_CHECK_GT(num_threads, 0);
  HIRE_CHECK_GT(options.idle_timeout_ms, 0);
  HIRE_CHECK_GT(options.header_timeout_ms, 0);
  HIRE_CHECK_GE(options.max_connections, 0);
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::AddRoute(const std::string& method, const std::string& path,
                          HttpHandler handler) {
  HIRE_CHECK(loop_ == nullptr) << "AddRoute must precede Start";
  HIRE_CHECK(handler != nullptr);
  routes_[{method, path}] = std::move(handler);
}

void HttpServer::AddAsyncRoute(const std::string& method,
                               const std::string& path,
                               HttpAsyncHandler handler) {
  HIRE_CHECK(loop_ == nullptr) << "AddAsyncRoute must precede Start";
  HIRE_CHECK(handler != nullptr);
  async_routes_[{method, path}] = std::move(handler);
}

void HttpServer::Start() {
  HIRE_CHECK(loop_ == nullptr) << "server already started";
  loop_ = std::make_unique<HttpEventLoop>(requested_port_, options_,
                                          num_threads_, routes_,
                                          async_routes_);
  loop_->Start();
  port_ = loop_->port();
}

void HttpServer::Stop() {
  if (loop_ == nullptr) return;
  loop_->Stop();
  loop_.reset();
}

int HttpServer::open_connections() const {
  return loop_ == nullptr ? 0 : loop_->open_connections();
}

}  // namespace serve
}  // namespace hire
