#include "serve/http_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "utils/check.h"
#include "utils/fault_injection.h"
#include "utils/logging.h"

namespace hire {
namespace serve {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string ToLower(std::string text) {
  for (char& c : text) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return text;
}

/// Sends the whole buffer, retrying on short writes and EINTR.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string RenderResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

struct ParsedHead {
  bool ok = false;
  std::string method;
  std::string path;
  std::string query;
  size_t content_length = 0;
  bool keep_alive = true;  // HTTP/1.1 default
  std::map<std::string, std::string> headers;  // names lower-cased
};

/// Parses the request line + headers in buffer[0, head_end).
ParsedHead ParseHead(const std::string& buffer, size_t head_end) {
  ParsedHead head;
  const size_t line_end = buffer.find("\r\n");
  if (line_end == std::string::npos || line_end > head_end) return head;

  const std::string request_line = buffer.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return head;
  head.method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = target.find('?');
  if (query != std::string::npos) {
    head.query = target.substr(query + 1);
    target.resize(query);
  }
  head.path = target;
  const std::string version = request_line.substr(sp2 + 1);
  if (version == "HTTP/1.0") head.keep_alive = false;

  size_t pos = line_end + 2;
  while (pos < head_end) {
    const size_t eol = buffer.find("\r\n", pos);
    if (eol == std::string::npos || eol > head_end) break;
    const std::string line = buffer.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string name = ToLower(line.substr(0, colon));
    size_t value_begin = colon + 1;
    while (value_begin < line.size() && line[value_begin] == ' ') ++value_begin;
    const std::string value = line.substr(value_begin);
    head.headers[name] = value;
    if (name == "content-length") {
      try {
        head.content_length = static_cast<size_t>(std::stoull(value));
      } catch (const std::exception&) {
        return head;  // ok stays false
      }
    } else if (name == "connection") {
      const std::string lower = ToLower(value);
      if (lower == "close") head.keep_alive = false;
      if (lower == "keep-alive") head.keep_alive = true;
    }
  }
  head.ok = true;
  return head;
}

constexpr size_t kMaxHeadBytes = 16 * 1024;
constexpr size_t kMaxBodyBytes = 4 * 1024 * 1024;

}  // namespace

HttpServer::HttpServer(int port, int num_threads, HttpServerOptions options)
    : requested_port_(port), num_threads_(num_threads), options_(options) {
  HIRE_CHECK_GE(port, 0);
  HIRE_CHECK_GT(num_threads, 0);
  HIRE_CHECK_GT(options.idle_timeout_ms, 0);
  HIRE_CHECK_GT(options.header_timeout_ms, 0);
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::AddRoute(const std::string& method, const std::string& path,
                          HttpHandler handler) {
  HIRE_CHECK(!running_.load()) << "AddRoute must precede Start";
  HIRE_CHECK(handler != nullptr);
  routes_[{method, path}] = std::move(handler);
}

void HttpServer::Start() {
  HIRE_CHECK(!running_.load()) << "server already started";

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  HIRE_CHECK_GE(listen_fd_, 0) << "socket() failed: " << std::strerror(errno);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(requested_port_));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    HIRE_CHECK(false) << "bind(127.0.0.1:" << requested_port_
                      << ") failed: " << error;
  }
  HIRE_CHECK_EQ(::listen(listen_fd_, 128), 0)
      << "listen() failed: " << std::strerror(errno);

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  HIRE_CHECK_EQ(
      ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len),
      0)
      << "getsockname() failed: " << std::strerror(errno);
  port_ = static_cast<int>(ntohs(bound.sin_port));

  stopping_.store(false);
  running_.store(true);
  pool_ = std::make_unique<ThreadPool>(num_threads_);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  HIRE_LOG(Info) << "http server listening on 127.0.0.1:" << port_ << " ("
                << num_threads_ << " connection threads)";
}

void HttpServer::Stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Connection handlers notice stopping_ at their next request boundary;
  // Wait() then drains whatever is still in flight.
  if (pool_ != nullptr) {
    pool_->Wait();
    pool_.reset();
  }
  running_.store(false);
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      HIRE_LOG(Warning) << "poll() failed: " << std::strerror(errno);
      return;
    }
    if (ready == 0) continue;  // timeout: re-check the stop flag
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      continue;
    }
    obs::MetricsRegistry::Global()
        .GetCounter("serve.http.connections")
        ->Increment();
    pool_->Submit([this, client] { HandleConnection(client); });
  }
}

void HttpServer::HandleConnection(int fd) {
  using Clock = std::chrono::steady_clock;
  // Reads poll in short slices so an idle keep-alive connection notices a
  // server Stop() within ~200ms; the actual budgets are explicit deadlines:
  // idle_timeout_ms between requests, header_timeout_ms from the first byte
  // of a request until its head + body are fully received (slow-loris
  // defense — a dribbling client gets a 408 instead of pinning the thread).
  timeval slice;
  slice.tv_sec = 0;
  slice.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &slice, sizeof(slice));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  enum class RecvStatus { kData, kClosed, kTimedOut };
  // Fills `*got` from the socket, or reports why it couldn't. `idle_phase`
  // connections end quietly on server shutdown.
  const auto recv_some = [&](char* out, size_t cap, bool idle_phase,
                             Clock::time_point deadline, ssize_t* got) {
    while (true) {
      const ssize_t n = ::recv(fd, out, cap, 0);
      if (n > 0) {
        *got = n;
        return RecvStatus::kData;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (idle_phase && stopping_.load()) return RecvStatus::kClosed;
        if (Clock::now() >= deadline) return RecvStatus::kTimedOut;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return RecvStatus::kClosed;  // EOF or hard error
    }
  };

  std::string buffer;
  char chunk[4096];
  bool keep_alive = true;
  while (keep_alive && !stopping_.load()) {
    bool request_started = !buffer.empty();  // pipelined bytes already here
    Clock::time_point idle_deadline =
        Clock::now() + std::chrono::milliseconds(options_.idle_timeout_ms);
    Clock::time_point read_deadline =
        Clock::now() + std::chrono::milliseconds(options_.header_timeout_ms);

    const auto read_more = [&](bool between_requests) {
      ssize_t n = 0;
      const bool idle_phase = between_requests && !request_started;
      const RecvStatus status =
          recv_some(chunk, sizeof(chunk), idle_phase,
                    idle_phase ? idle_deadline : read_deadline, &n);
      if (status == RecvStatus::kData) {
        if (!request_started) {
          request_started = true;
          read_deadline = Clock::now() +
                          std::chrono::milliseconds(options_.header_timeout_ms);
        }
        buffer.append(chunk, static_cast<size_t>(n));
        return RecvStatus::kData;
      }
      return status;
    };

    // Read until the header terminator is buffered.
    size_t head_end = buffer.find("\r\n\r\n");
    bool failed = false;
    while (head_end == std::string::npos) {
      if (buffer.size() > kMaxHeadBytes) { ::close(fd); return; }
      const RecvStatus status = read_more(/*between_requests=*/true);
      if (status == RecvStatus::kTimedOut) {
        if (request_started) {
          obs::MetricsRegistry::Global()
              .GetCounter("serve.http.request_read_timeouts")
              ->Increment();
          SendAll(fd, RenderResponse(
                          {408, "application/json",
                           "{\"error\":\"request read timed out\"}",
                           {}},
                          /*keep_alive=*/false));
        } else {
          obs::MetricsRegistry::Global()
              .GetCounter("serve.http.idle_closed")
              ->Increment();
        }
        failed = true;
        break;
      }
      if (status == RecvStatus::kClosed) { failed = true; break; }
      head_end = buffer.find("\r\n\r\n");
    }
    if (failed) { ::close(fd); return; }

    const ParsedHead head = ParseHead(buffer, head_end);
    if (!head.ok || head.content_length > kMaxBodyBytes) {
      SendAll(fd, RenderResponse(
                      {400, "application/json",
                       "{\"error\":\"malformed request\"}",
                       {}},
                      /*keep_alive=*/false));
      ::close(fd);
      return;
    }

    const size_t body_begin = head_end + 4;
    while (buffer.size() < body_begin + head.content_length) {
      const RecvStatus status = read_more(/*between_requests=*/false);
      if (status == RecvStatus::kTimedOut) {
        obs::MetricsRegistry::Global()
            .GetCounter("serve.http.request_read_timeouts")
            ->Increment();
        SendAll(fd, RenderResponse(
                        {408, "application/json",
                         "{\"error\":\"request read timed out\"}",
                         {}},
                        /*keep_alive=*/false));
        failed = true;
        break;
      }
      if (status == RecvStatus::kClosed) { failed = true; break; }
    }
    if (failed) { ::close(fd); return; }

    HttpRequest request;
    request.method = head.method;
    request.path = head.path;
    request.query = head.query;
    request.headers = head.headers;
    request.body = buffer.substr(body_begin, head.content_length);
    buffer.erase(0, body_begin + head.content_length);  // keep any pipelined next request

    HttpResponse response = Dispatch(request);
    if (FaultInjector::Global().ConsumeServeConnectionReset()) {
      obs::MetricsRegistry::Global()
          .GetCounter("serve.http.injected_resets")
          ->Increment();
      break;  // drop the connection without sending the response
    }
    keep_alive = head.keep_alive;
    const Clock::time_point write_start = Clock::now();
    if (!SendAll(fd, RenderResponse(response, keep_alive))) break;
    if (response.on_written) {
      response.on_written(std::chrono::duration<double, std::micro>(
                              Clock::now() - write_start)
                              .count());
    }
  }
  ::close(fd);
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) const {
  const auto it = routes_.find({request.method, request.path});
  if (it == routes_.end()) {
    // Distinguish wrong-method from unknown-path for friendlier errors.
    for (const auto& [key, handler] : routes_) {
      if (key.second == request.path) {
        return {405, "application/json", "{\"error\":\"method not allowed\"}"};
      }
    }
    return {404, "application/json", "{\"error\":\"no such endpoint\"}"};
  }
  try {
    return it->second(request);
  } catch (const std::exception& error) {
    obs::MetricsRegistry::Global()
        .GetCounter("serve.http.handler_errors")
        ->Increment();
    return {500, "application/json",
            "{\"error\":" + std::string("\"internal error\"") + "}"};
  }
}

}  // namespace serve
}  // namespace hire
