#include "serve/context_cache.h"

#include <utility>

#include "utils/check.h"

namespace hire {
namespace serve {

ContextCache::ContextCache(size_t capacity)
    : capacity_(capacity),
      hits_(obs::MetricsRegistry::Global().GetCounter(
          "serve.context_cache.hits")),
      misses_(obs::MetricsRegistry::Global().GetCounter(
          "serve.context_cache.misses")),
      evictions_(obs::MetricsRegistry::Global().GetCounter(
          "serve.context_cache.evictions")),
      invalidations_(obs::MetricsRegistry::Global().GetCounter(
          "serve.context_cache.invalidations")),
      size_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "serve.context_cache.size")) {
  HIRE_CHECK_GT(capacity_, 0u);
}

std::shared_ptr<const core::UserContextPlan> ContextCache::Get(
    int64_t user, int64_t graph_version) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(Key{user, graph_version});
  if (it == index_.end()) {
    misses_->Increment();
    return nullptr;
  }
  hits_->Increment();
  TouchLocked(it->second);
  return lru_.front().plan;
}

void ContextCache::Put(int64_t user, int64_t graph_version,
                       std::shared_ptr<const core::UserContextPlan> plan) {
  HIRE_CHECK(plan != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{user, graph_version};
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    TouchLocked(it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_->Increment();
  }
  size_gauge_->Set(static_cast<double>(lru_.size()));
}

void ContextCache::InvalidateUser(int64_t user) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.user == user) {
      index_.erase(it->key);
      it = lru_.erase(it);
      invalidations_->Increment();
    } else {
      ++it;
    }
  }
  size_gauge_->Set(static_cast<double>(lru_.size()));
}

void ContextCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  invalidations_->Increment(lru_.size());
  lru_.clear();
  index_.clear();
  size_gauge_->Set(0.0);
}

size_t ContextCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void ContextCache::TouchLocked(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
  index_[lru_.front().key] = lru_.begin();
}

}  // namespace serve
}  // namespace hire
