#include "serve/inference_engine.h"

#include <utility>

#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "utils/check.h"
#include "utils/logging.h"

namespace hire {
namespace serve {

InferenceEngine::InferenceEngine(const data::Dataset* dataset,
                                 core::HireConfig config)
    : dataset_(dataset), config_(config) {
  HIRE_CHECK(dataset_ != nullptr);
}

int64_t InferenceEngine::Load(const std::string& snapshot_path) {
  HIRE_TRACE_SCOPE("model_reload");
  // Build and validate the replacement entirely outside the lock: a slow or
  // failing load must not block Acquire.
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->model =
      std::make_unique<core::HireModel>(dataset_, config_, /*seed=*/0);
  nn::LoadParameters(snapshot->model.get(), snapshot_path);
  snapshot->model->SetTraining(false);
  {
    // Pack the fused inference weights here — the one place a snapshot is
    // built — so no request ever pays for packing.
    Stopwatch pack_timer;
    snapshot->inference =
        std::make_unique<core::InferenceModel>(*snapshot->model);
    obs::HistogramOptions options;
    options.first_bound = 1.0;  // microseconds
    options.growth = 2.0;
    options.num_buckets = 26;
    obs::MetricsRegistry::Global()
        .GetHistogram("serve.snapshot.pack_us", options)
        ->Record(pack_timer.ElapsedMillis() * 1e3);
  }
  snapshot->source_path = snapshot_path;
  snapshot->num_parameters = snapshot->model->NumParameters();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot->version = version_.load(std::memory_order_relaxed) + 1;
    version_.store(snapshot->version, std::memory_order_relaxed);
    published_ = std::move(snapshot);
  }
  obs::MetricsRegistry::Global().GetCounter("serve.model_loads")->Increment();
  const auto published = Acquire();
  HIRE_LOG(Info) << "published model v" << published->version << " from "
                << snapshot_path << " (" << published->num_parameters
                << " parameters)";
  return published->version;
}

std::shared_ptr<const ModelSnapshot> InferenceEngine::Acquire() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return published_;
}

bool InferenceEngine::loaded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return published_ != nullptr;
}

}  // namespace serve
}  // namespace hire
