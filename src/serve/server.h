#ifndef HIRE_SERVE_SERVER_H_
#define HIRE_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/hire_config.h"
#include "data/dataset.h"
#include "graph/bipartite_graph.h"
#include "obs/window.h"
#include "serve/batcher.h"
#include "serve/context_cache.h"
#include "serve/http_server.h"
#include "serve/inference_engine.h"
#include "serve/shard_router.h"

namespace hire {
namespace serve {

struct ServeConfig {
  /// HTTP listen port; 0 picks an ephemeral port (read back via port()).
  int port = 0;
  /// Handler threads for the HTTP event loop (separate from the tensor
  /// pool).
  int http_threads = 4;
  /// Engine shards behind this server. Each shard owns its own
  /// InferenceEngine + ContextCache + MicroBatcher; /predict routes by
  /// user-id consistent hashing (see serve/shard_router.h).
  int num_shards = 1;
  /// Upper bound on concurrently open HTTP connections; accepts past the
  /// bound are answered 503 + Retry-After at accept time. 0 = unbounded.
  int max_connections = 0;
  /// Context-plan LRU capacity (total entries, split across shards).
  size_t cache_capacity = 1024;
  /// Initial HIRESNAP checkpoint to publish; also the default for /reload
  /// requests that name no model. Empty = boot with no model and serve
  /// degraded (bias-table) predictions until a /reload publishes one.
  std::string model_path;
  /// Connection hygiene (slow-loris defense); see HttpServerOptions.
  int idle_timeout_ms = 5000;
  int header_timeout_ms = 2000;
  /// Background stats tick period: every tick recomputes the rolling-window
  /// latency percentile gauges (serve.latency_p50_us/p95_us/p99_us) from the
  /// request-latency histogram delta since the previous tick (0 = disabled).
  int64_t stats_tick_ms = 1000;
  BatcherConfig batcher;
};

/// The assembled serving stack: a ShardRouter (N engine shards, each its own
/// hot-swappable InferenceEngine + ContextCache + MicroBatcher) behind one
/// HttpServer event-loop front-end, plus the in-process request path used by
/// tests and the load generator.
///
/// Endpoints:
///   POST /predict  {"user":u,"items":[i,...]} -> predictions (+"shard")
///   GET  /healthz  liveness + published versions (+"shard_versions")
///   GET  /metrics  full obs::MetricsRegistry snapshot (JSON), including the
///                  per-shard serve.shard.<i>.* series
///   POST /reload   {"model":path}? -> rolling hot-swap, one shard at a time
///   POST /shutdown graceful stop (the CLI main loop watches
///                  WaitForShutdown)
class RatingServer {
 public:
  /// `dataset` must outlive the server. `graph` is the initial rating-graph
  /// generation (version 1).
  RatingServer(const data::Dataset* dataset, core::HireConfig model_config,
               graph::BipartiteGraph graph, const ServeConfig& config);
  ~RatingServer();

  RatingServer(const RatingServer&) = delete;
  RatingServer& operator=(const RatingServer&) = delete;

  /// Loads config.model_path into every shard (when set), then starts the
  /// shard batcher workers and the HTTP listener. Throws hire::CheckError on
  /// load/bind failure.
  void Start();
  void Stop();

  int port() const { return http_.port(); }

  /// In-process client path: identical semantics to POST /predict but with
  /// no HTTP hop. Blocks until the micro-batch completes. `deadline`
  /// overrides the configured default request deadline.
  RatingResponse Predict(int64_t user, std::vector<int64_t> items,
                         RequestDeadline deadline = std::nullopt);
  std::future<RatingResponse> PredictAsync(int64_t user,
                                           std::vector<int64_t> items,
                                           RequestDeadline deadline =
                                               std::nullopt);

  /// Rolling hot-swap to `snapshot_path` (empty = config.model_path), one
  /// shard at a time. Returns the new (min) model version. Throws when any
  /// shard rejected the snapshot (missing file, corrupt HIRESNAP); shards
  /// that already swapped keep the new snapshot, the failed ones keep their
  /// previous one serving.
  int64_t Reload(const std::string& snapshot_path);

  /// Like Reload but never throws: the full per-shard outcome, for the
  /// /reload endpoint's response body.
  RollingReloadResult ReloadDetailed(const std::string& snapshot_path);

  /// Publishes a new rating-graph generation to every shard: bumps the graph
  /// version (so cached context plans can never be served against the old
  /// graph) and eagerly drops each shard's cache.
  void UpdateGraph(graph::BipartiteGraph graph);
  int64_t graph_version() const;

  /// Signals the serving main loop to exit (POST /shutdown does this).
  void RequestShutdown();
  /// Waits up to `timeout_ms` for a shutdown request; true once requested.
  bool WaitForShutdown(int timeout_ms);

  ShardRouter& router() { return router_; }
  int num_shards() const { return router_.num_shards(); }
  /// Single-shard compatibility accessors (shard 0).
  InferenceEngine& engine() { return router_.engine(0); }
  ContextCache& cache() { return router_.cache(0); }
  MicroBatcher& batcher() { return router_.batcher(0); }

  /// Seconds since this server was constructed.
  double UptimeSeconds() const;

 private:
  void RegisterRoutes();
  /// Refreshes the point-in-time gauges every snapshot should carry
  /// (uptime, published versions), then returns a registry snapshot.
  obs::MetricsRegistry::Snapshot TakeMetricsSnapshot();
  /// One stats tick: recomputes the rolling-window percentile gauges from
  /// the request-latency histogram delta since the previous tick.
  void StatsTick();
  void StatsLoop();

  const ServeConfig config_;
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
  ShardRouter router_;
  HttpServer http_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool started_ = false;

  // Rolling-window percentile state (stats thread only).
  obs::HistogramWindow latency_window_;
  std::thread stats_thread_;
  std::mutex stats_mutex_;
  std::condition_variable stats_cv_;
  bool stats_stop_ = false;
};

}  // namespace serve
}  // namespace hire

#endif  // HIRE_SERVE_SERVER_H_
