#ifndef HIRE_SERVE_SERVER_H_
#define HIRE_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/hire_config.h"
#include "data/dataset.h"
#include "graph/bipartite_graph.h"
#include "graph/samplers.h"
#include "serve/batcher.h"
#include "serve/context_cache.h"
#include "obs/window.h"
#include "serve/http_server.h"
#include "serve/inference_engine.h"

namespace hire {
namespace serve {

struct ServeConfig {
  /// HTTP listen port; 0 picks an ephemeral port (read back via port()).
  int port = 0;
  /// Connection-handling threads (separate from the tensor pool).
  int http_threads = 4;
  /// Context-plan LRU capacity (entries).
  size_t cache_capacity = 1024;
  /// Initial HIRESNAP checkpoint to publish; also the default for /reload
  /// requests that name no model. Empty = boot with no model and serve
  /// degraded (bias-table) predictions until a /reload publishes one.
  std::string model_path;
  /// Connection hygiene (slow-loris defense); see HttpServerOptions.
  int idle_timeout_ms = 5000;
  int header_timeout_ms = 2000;
  /// Background stats tick period: every tick recomputes the rolling-window
  /// latency percentile gauges (serve.latency_p50_us/p95_us/p99_us) from the
  /// request-latency histogram delta since the previous tick (0 = disabled).
  int64_t stats_tick_ms = 1000;
  BatcherConfig batcher;
};

/// The assembled serving stack: InferenceEngine (hot-swappable model
/// snapshot) + ContextCache + MicroBatcher + HttpServer, plus the in-process
/// request path used by tests and the load generator.
///
/// Endpoints:
///   POST /predict  {"user":u,"items":[i,...]} -> predictions
///   GET  /healthz  liveness + published versions
///   GET  /metrics  full obs::MetricsRegistry snapshot (JSON)
///   POST /reload   {"model":path}? -> hot-swap to a new checkpoint
///   POST /shutdown graceful stop (the CLI main loop watches
///                  WaitForShutdown)
class RatingServer {
 public:
  /// `dataset` must outlive the server. `graph` is the initial rating-graph
  /// generation (version 1).
  RatingServer(const data::Dataset* dataset, core::HireConfig model_config,
               graph::BipartiteGraph graph, const ServeConfig& config);
  ~RatingServer();

  RatingServer(const RatingServer&) = delete;
  RatingServer& operator=(const RatingServer&) = delete;

  /// Loads config.model_path (when set), then starts the batcher worker and
  /// the HTTP listener. Throws hire::CheckError on load/bind failure.
  void Start();
  void Stop();

  int port() const { return http_.port(); }

  /// In-process client path: identical semantics to POST /predict but with
  /// no HTTP hop. Blocks until the micro-batch completes. `deadline`
  /// overrides the configured default request deadline.
  RatingResponse Predict(int64_t user, std::vector<int64_t> items,
                         RequestDeadline deadline = std::nullopt);
  std::future<RatingResponse> PredictAsync(int64_t user,
                                           std::vector<int64_t> items,
                                           RequestDeadline deadline =
                                               std::nullopt);

  /// Hot-swaps to `snapshot_path` (empty = config.model_path). Returns the
  /// new model version. A failed load (missing file, corrupt HIRESNAP)
  /// throws and leaves the previously published snapshot serving.
  int64_t Reload(const std::string& snapshot_path);

  /// Publishes a new rating-graph generation: bumps the graph version (so
  /// cached context plans can never be served against the old graph) and
  /// eagerly drops the cache.
  void UpdateGraph(graph::BipartiteGraph graph);
  int64_t graph_version() const;

  /// Signals the serving main loop to exit (POST /shutdown does this).
  void RequestShutdown();
  /// Waits up to `timeout_ms` for a shutdown request; true once requested.
  bool WaitForShutdown(int timeout_ms);

  InferenceEngine& engine() { return engine_; }
  ContextCache& cache() { return cache_; }
  MicroBatcher& batcher() { return batcher_; }

  /// Seconds since this server was constructed.
  double UptimeSeconds() const;

 private:
  void RegisterRoutes();
  /// Refreshes the point-in-time gauges every snapshot should carry
  /// (uptime, published versions), then returns a registry snapshot.
  obs::MetricsRegistry::Snapshot TakeMetricsSnapshot();
  /// One stats tick: recomputes the rolling-window percentile gauges from
  /// the request-latency histogram delta since the previous tick.
  void StatsTick();
  void StatsLoop();

  const ServeConfig config_;
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
  InferenceEngine engine_;
  ContextCache cache_;
  graph::NeighborhoodSampler sampler_;

  mutable std::mutex graph_mutex_;
  std::shared_ptr<const VersionedGraph> current_graph_;

  MicroBatcher batcher_;
  HttpServer http_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool started_ = false;

  // Rolling-window percentile state (stats thread only).
  obs::HistogramWindow latency_window_;
  std::thread stats_thread_;
  std::mutex stats_mutex_;
  std::condition_variable stats_cv_;
  bool stats_stop_ = false;
};

}  // namespace serve
}  // namespace hire

#endif  // HIRE_SERVE_SERVER_H_
