#ifndef HIRE_SERVE_HTTP_SERVER_H_
#define HIRE_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "utils/thread_pool.h"

namespace hire {
namespace serve {

struct HttpRequest {
  std::string method;  // upper-case: "GET", "POST", ...
  std::string path;    // target without query string
  std::string query;   // raw query string after '?', "" when absent
  std::string body;
  /// All request headers, names lower-cased (values as sent).
  std::map<std::string, std::string> headers;
};

struct HttpResponse {
  HttpResponse() = default;
  HttpResponse(int s, std::string ct, std::string b,
               std::vector<std::pair<std::string, std::string>> h = {})
      : status(s),
        content_type(std::move(ct)),
        body(std::move(b)),
        headers(std::move(h)) {}

  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers (e.g. {"Retry-After", "1"}).
  std::vector<std::pair<std::string, std::string>> headers;
  /// Invoked after the response bytes reach the socket, with the wall time
  /// the write took in microseconds. Handlers use it to attribute the
  /// socket-write stage of a request; never called when the write fails or
  /// the connection is dropped first.
  std::function<void(double write_micros)> on_written;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Connection-hygiene budgets. Both defend the handler pool from stalled
/// clients (slow-loris): a connection that sends nothing is closed after the
/// idle budget, and one that dribbles a request without finishing it gets a
/// 408 after the read budget.
struct HttpServerOptions {
  /// Max time a keep-alive connection may sit idle between requests before
  /// the server closes it.
  int idle_timeout_ms = 5000;
  /// Max time from the first byte of a request until its head and body are
  /// fully received; breaching it returns 408 and closes the connection.
  int header_timeout_ms = 2000;
};

/// Minimal dependency-free HTTP/1.1 server on POSIX sockets, loopback only.
/// Enough protocol for this repo's serving endpoints and load generator:
/// request line + headers, Content-Length bodies, keep-alive. No TLS, no
/// chunked transfer, no multipart.
///
/// Connections are handled on a dedicated pool (`num_threads`), deliberately
/// separate from the process-wide tensor pool so slow clients cannot starve
/// model forwards. Handlers may run concurrently and must be thread-safe.
class HttpServer {
 public:
  /// `port` 0 picks an ephemeral port; read it back with port() after
  /// Start(). The server binds 127.0.0.1 only.
  HttpServer(int port, int num_threads, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact (method, path) pair. Must be called
  /// before Start().
  void AddRoute(const std::string& method, const std::string& path,
                HttpHandler handler);

  /// Binds, listens, and spawns the accept loop. Throws hire::CheckError on
  /// socket errors (e.g. port already in use).
  void Start();

  /// Stops accepting, drains in-flight connections, joins everything.
  /// Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request) const;

  const int requested_port_;
  const int num_threads_;
  const HttpServerOptions options_;
  int port_ = 0;
  int listen_fd_ = -1;

  std::map<std::pair<std::string, std::string>, HttpHandler> routes_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace serve
}  // namespace hire

#endif  // HIRE_SERVE_HTTP_SERVER_H_
