#ifndef HIRE_SERVE_HTTP_SERVER_H_
#define HIRE_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "utils/thread_pool.h"

namespace hire {
namespace serve {

struct HttpRequest {
  std::string method;  // upper-case: "GET", "POST", ...
  std::string path;    // target without query string
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Minimal dependency-free HTTP/1.1 server on POSIX sockets, loopback only.
/// Enough protocol for this repo's serving endpoints and load generator:
/// request line + headers, Content-Length bodies, keep-alive. No TLS, no
/// chunked transfer, no multipart.
///
/// Connections are handled on a dedicated pool (`num_threads`), deliberately
/// separate from the process-wide tensor pool so slow clients cannot starve
/// model forwards. Handlers may run concurrently and must be thread-safe.
class HttpServer {
 public:
  /// `port` 0 picks an ephemeral port; read it back with port() after
  /// Start(). The server binds 127.0.0.1 only.
  HttpServer(int port, int num_threads);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact (method, path) pair. Must be called
  /// before Start().
  void AddRoute(const std::string& method, const std::string& path,
                HttpHandler handler);

  /// Binds, listens, and spawns the accept loop. Throws hire::CheckError on
  /// socket errors (e.g. port already in use).
  void Start();

  /// Stops accepting, drains in-flight connections, joins everything.
  /// Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request) const;

  const int requested_port_;
  const int num_threads_;
  int port_ = 0;
  int listen_fd_ = -1;

  std::map<std::pair<std::string, std::string>, HttpHandler> routes_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace serve
}  // namespace hire

#endif  // HIRE_SERVE_HTTP_SERVER_H_
