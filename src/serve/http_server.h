#ifndef HIRE_SERVE_HTTP_SERVER_H_
#define HIRE_SERVE_HTTP_SERVER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hire {
namespace serve {

class HttpEventLoop;

struct HttpRequest {
  std::string method;  // upper-case: "GET", "POST", ...
  std::string path;    // target without query string
  std::string query;   // raw query string after '?', "" when absent
  std::string body;
  /// All request headers, names lower-cased (values as sent).
  std::map<std::string, std::string> headers;
};

struct HttpResponse {
  HttpResponse() = default;
  HttpResponse(int s, std::string ct, std::string b,
               std::vector<std::pair<std::string, std::string>> h = {})
      : status(s),
        content_type(std::move(ct)),
        body(std::move(b)),
        headers(std::move(h)) {}

  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers (e.g. {"Retry-After", "1"}).
  std::vector<std::pair<std::string, std::string>> headers;
  /// Invoked after the response bytes reach the socket, with the wall time
  /// the write took in microseconds. Handlers use it to attribute the
  /// socket-write stage of a request; never called when the write fails or
  /// the connection is dropped first.
  std::function<void(double write_micros)> on_written;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Completion callback handed to an async route handler. Safe to invoke
/// from any thread, exactly once, at any time after the handler was entered
/// (including synchronously inside it); invocations after the server
/// stopped are dropped (the connection is already gone).
using HttpDone = std::function<void(HttpResponse)>;

/// Async route handler: instead of returning a response it receives `done`
/// and may complete the request later, from another thread. This is what
/// lets a route that waits on backend work (e.g. /predict waiting on its
/// shard's micro-batch) hold thousands of requests in flight without
/// pinning a handler thread per request.
using HttpAsyncHandler =
    std::function<void(const HttpRequest&, HttpDone done)>;

/// Connection-hygiene budgets. Both defend the handler pool from stalled
/// clients (slow-loris): a connection that sends nothing is closed after the
/// idle budget, and one that dribbles a request without finishing it gets a
/// 408 after the read budget.
struct HttpServerOptions {
  /// Max time a keep-alive connection may sit idle between requests before
  /// the server closes it.
  int idle_timeout_ms = 5000;
  /// Max time from the first byte of a request until its head and body are
  /// fully received; breaching it returns 408 and closes the connection.
  int header_timeout_ms = 2000;
  /// Upper bound on concurrently open connections; an accept past the bound
  /// is answered 503 + Retry-After and closed immediately
  /// ("serve.http.over_capacity"). 0 = unbounded.
  int max_connections = 0;
};

/// Minimal dependency-free HTTP/1.1 server on POSIX sockets, loopback only.
/// Enough protocol for this repo's serving endpoints and load generator:
/// request line + headers, Content-Length bodies, keep-alive. No TLS, no
/// chunked transfer, no multipart.
///
/// Since the sharded serving tier this is a thin facade over HttpEventLoop
/// (serve/event_loop.h): a single non-blocking loop thread owns every
/// connection and `num_threads` sizes the handler pool that runs routes —
/// connections cost a buffer each, not a thread each. Handlers may run
/// concurrently and must be thread-safe.
class HttpServer {
 public:
  /// `port` 0 picks an ephemeral port; read it back with port() after
  /// Start(). The server binds 127.0.0.1 only.
  HttpServer(int port, int num_threads, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact (method, path) pair. Must be called
  /// before Start().
  void AddRoute(const std::string& method, const std::string& path,
                HttpHandler handler);

  /// Registers an async handler (see HttpAsyncHandler): the handler's
  /// handler-pool thread is freed as soon as it returns, and the response
  /// is written whenever `done` fires. Every `done` must eventually be
  /// invoked or its connection idles in the handling state until the client
  /// gives up. Must be called before Start().
  void AddAsyncRoute(const std::string& method, const std::string& path,
                     HttpAsyncHandler handler);

  /// Binds, listens, and spawns the accept loop. Throws hire::CheckError on
  /// socket errors (e.g. port already in use).
  void Start();

  /// Stops accepting, drains in-flight connections, joins everything.
  /// Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  int port() const { return port_; }

  /// Currently open connections (0 when not running).
  int open_connections() const;

 private:
  const int requested_port_;
  const int num_threads_;
  const HttpServerOptions options_;
  int port_ = 0;

  std::map<std::pair<std::string, std::string>, HttpHandler> routes_;
  std::map<std::pair<std::string, std::string>, HttpAsyncHandler>
      async_routes_;
  std::unique_ptr<HttpEventLoop> loop_;
};

}  // namespace serve
}  // namespace hire

#endif  // HIRE_SERVE_HTTP_SERVER_H_
