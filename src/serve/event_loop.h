#ifndef HIRE_SERVE_EVENT_LOOP_H_
#define HIRE_SERVE_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/http_server.h"
#include "utils/thread_pool.h"

namespace hire {
namespace serve {

/// One readiness event from a Poller backend.
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

/// Minimal readiness-notification abstraction: epoll on Linux, a poll(2) set
/// everywhere else (or when HIRE_SERVE_EVENT_BACKEND=poll forces it, which
/// the tests use to exercise both backends on one machine). Level-triggered
/// on both backends, so a handler that drains only part of a socket's data
/// is re-notified on the next wait.
class Poller {
 public:
  virtual ~Poller() = default;
  virtual void Add(int fd, bool want_read, bool want_write) = 0;
  virtual void Update(int fd, bool want_read, bool want_write) = 0;
  virtual void Remove(int fd) = 0;
  /// Blocks up to `timeout_ms`; appends ready fds to `*events` (cleared
  /// first). Returns the number of ready fds, 0 on timeout.
  virtual int Wait(int timeout_ms, std::vector<PollEvent>* events) = 0;
  virtual const char* name() const = 0;

  /// Chooses the backend: epoll on Linux unless HIRE_SERVE_EVENT_BACKEND=poll
  /// asks for the portable poll(2) set.
  static std::unique_ptr<Poller> Create();
};

/// Single-threaded non-blocking accept/read/write front-end for the serving
/// tier. One loop thread owns every connection fd and multiplexes them
/// through a Poller; parsed requests are dispatched to a small handler pool
/// and finished responses come back to the loop over a completion queue +
/// self-pipe wakeup. Synchronous routes occupy a pool thread until they
/// return; async routes (e.g. /predict waiting on its shard's micro-batch)
/// free their pool thread as soon as the handler returns and complete from
/// wherever the backend invokes `done` — so requests in flight are bounded
/// by backend admission control, not by the handler thread count.
/// Connections cost a buffer each rather than a thread each, which is what
/// lets one process hold thousands of them.
///
/// Protocol semantics are identical to the old thread-per-connection server
/// (same parser, same limits): keep-alive + pipelining, 400 on malformed
/// heads, 408 + close when a started request breaches `header_timeout_ms`
/// (slow-loris), silent close + "serve.http.idle_closed" when an idle
/// keep-alive connection outlives `idle_timeout_ms`, injected connection
/// resets dropped after dispatch. New at this layer: when `max_connections`
/// > 0, an accept beyond the bound is answered 503 + Retry-After and closed
/// immediately ("serve.http.over_capacity") instead of growing the fd table
/// without limit.
class HttpEventLoop {
 public:
  /// `routes` / `async_routes` are the finished route tables (the loop
  /// never mutates them). `handler_threads` sizes the pool that runs route
  /// handlers.
  HttpEventLoop(int port, HttpServerOptions options, int handler_threads,
                std::map<std::pair<std::string, std::string>, HttpHandler>
                    routes,
                std::map<std::pair<std::string, std::string>, HttpAsyncHandler>
                    async_routes = {});
  ~HttpEventLoop();

  HttpEventLoop(const HttpEventLoop&) = delete;
  HttpEventLoop& operator=(const HttpEventLoop&) = delete;

  /// Binds 127.0.0.1, listens, spawns the loop thread. Throws on bind/listen
  /// failure.
  void Start();

  /// Stops accepting, drains in-flight handlers and writes, joins the loop
  /// and the pool. Idempotent.
  void Stop();

  int port() const { return port_; }

  /// Currently open connections (tests assert the --max-connections bound).
  int open_connections() const { return open_connections_.load(); }

 private:
  using Clock = std::chrono::steady_clock;

  enum class ConnState { kReading, kHandling, kWriting };

  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    ConnState state = ConnState::kReading;
    std::string in;           // bytes read, may hold pipelined requests
    std::string out;          // rendered response being written
    size_t out_sent = 0;
    bool request_started = false;  // first byte of a request arrived
    bool keep_alive_next = true;   // keep-alive after the in-flight response
    bool close_after_write = false;
    Clock::time_point deadline;    // idle/read/write budget, state-dependent
    Clock::time_point write_start;
    std::function<void(double)> on_written;
  };

  struct Completion {
    uint64_t conn_id = 0;
    HttpResponse response;
  };

  /// Finished responses en route back to the loop thread. Shared (not a
  /// plain member) because async `done` callbacks outlive the pool: a
  /// request parked in a backend queue may resolve after the loop — or the
  /// whole HttpEventLoop — is gone. Callbacks own the sink via shared_ptr
  /// and check `wake_fd` under the mutex; once Stop() set it to -1 a late
  /// completion is dropped, which is correct because every connection was
  /// already closed.
  struct CompletionSink {
    std::mutex mutex;
    std::vector<Completion> completions;
    int wake_fd = -1;  // self-pipe write end; -1 once the loop is unreachable
  };

  /// Hands a completion to the loop thread (and wakes it); drops it when
  /// the loop is gone. Thread-safe.
  static void PushCompletion(const std::shared_ptr<CompletionSink>& sink,
                             Completion completion);

  void Run();
  void AcceptNew();
  void OnReadable(Connection& conn);
  void OnWritable(Connection& conn);
  /// Tries to cut one complete request out of conn.in: dispatches it to the
  /// pool (kHandling), queues a 400 for malformed heads, or leaves the
  /// connection reading. May close the connection (oversized head).
  void TryParseAndDispatch(Connection& conn);
  /// Renders and stages a response; the connection enters kWriting.
  void QueueResponse(Connection& conn, const HttpResponse& response,
                     bool keep_alive, bool close_after);
  void FinishWrite(Connection& conn);
  void SweepTimeouts(Clock::time_point now);
  void DrainCompletions();
  void CloseConnection(int fd);
  void Wake();
  int WaitTimeoutMs(Clock::time_point now) const;
  HttpResponse Dispatch(const HttpRequest& request) const;

  const int requested_port_;
  const HttpServerOptions options_;
  const int handler_threads_;
  const std::map<std::pair<std::string, std::string>, HttpHandler> routes_;
  const std::map<std::pair<std::string, std::string>, HttpAsyncHandler>
      async_routes_;

  int port_ = 0;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  bool listen_closed_ = false;

  std::unique_ptr<Poller> poller_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  uint64_t next_conn_id_ = 1;
  /// Loop-thread-only connection table. Completions address connections by
  /// id, not fd, so a completion for a connection that died (and whose fd
  /// number was reused by a new accept) is dropped instead of misdelivered.
  std::unordered_map<int, Connection> connections_;
  std::unordered_map<uint64_t, int> id_to_fd_;
  std::atomic<int> open_connections_{0};

  std::shared_ptr<CompletionSink> sink_;
};

}  // namespace serve
}  // namespace hire

#endif  // HIRE_SERVE_EVENT_LOOP_H_
