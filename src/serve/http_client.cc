#include "serve/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "utils/fault_injection.h"

namespace hire {
namespace serve {

namespace {

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string ToLower(std::string text) {
  for (char& c : text) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return text;
}

}  // namespace

HttpClient::HttpClient(int port, const std::string& host, int timeout_ms)
    : host_(host), port_(port), timeout_ms_(timeout_ms) {}

HttpClient::~HttpClient() { Disconnect(); }

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool HttpClient::EnsureConnected(std::string* error) {
  if (fd_ >= 0) return true;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket() failed: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host address: " + host_;
    Disconnect();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("connect(") + host_ + ":" + std::to_string(port_) +
             ") failed: " + std::strerror(errno);
    Disconnect();
    return false;
  }
  // Both directions are bounded: a wedged server must surface as a distinct
  // timeout within timeout_ms_, not hang the client (or block forever in
  // send when the peer's window closes).
  timeval timeout;
  timeout.tv_sec = timeout_ms_ / 1000;
  timeout.tv_usec = (timeout_ms_ % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

HttpClient::Result HttpClient::Request(
    const std::string& method, const std::string& path,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  Result result = RequestOnce(method, path, body, extra_headers);
  if (!result.ok && !result.timed_out && method == "GET") {
    // The keep-alive connection may have died mid-exchange. Retrying is only
    // safe for idempotent GETs: a POST's first attempt may have been fully
    // processed before the response was lost, and replaying it would e.g.
    // double-count /predict metrics or hot-swap /reload twice. (Stale
    // recycled connections are already detected before any bytes are sent —
    // see RequestOnce — so POSTs never pay for that common case.)
    Disconnect();
    result = RequestOnce(method, path, body, extra_headers);
  }
  if (!result.ok) Disconnect();
  return result;
}

HttpClient::Result HttpClient::RequestOnce(
    const std::string& method, const std::string& path,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  Result result;
  if (fd_ >= 0) {
    // Reused keep-alive connection: the server may have closed it while it
    // sat idle. Peek without blocking; EOF or an error here means the
    // connection is stale, and since no request bytes have been sent yet it
    // is safe to reconnect for any method.
    char probe = 0;
    const ssize_t n =
        ::recv(fd_, &probe, sizeof(probe), MSG_PEEK | MSG_DONTWAIT);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      Disconnect();
    }
  }
  if (!EnsureConnected(&result.error)) return result;

  std::string request = method + " " + path + " HTTP/1.1\r\n";
  request += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  request += "Connection: keep-alive\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (!body.empty()) request += "Content-Type: application/json\r\n";
  for (const auto& [name, value] : extra_headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "\r\n";
  request += body;

  const int64_t stall_ms = FaultInjector::Global().ServeStallClientMs();
  if (stall_ms > 0) {
    // Injected slow-loris: dribble the first half of the request, stall,
    // then (try to) send the rest. A well-defended server cuts the
    // connection off with its header-read deadline during the stall.
    const size_t half = request.size() / 2;
    if (!SendAll(fd_, request.substr(0, half))) {
      result.error = std::string("send failed: ") + std::strerror(errno);
      return result;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
    if (!SendAll(fd_, request.substr(half))) {
      result.error = std::string("send failed: ") + std::strerror(errno);
      return result;
    }
  } else if (!SendAll(fd_, request)) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.timed_out = true;
      result.error = "timeout: send stalled for " +
                     std::to_string(timeout_ms_) + "ms";
    } else {
      result.error = std::string("send failed: ") + std::strerror(errno);
    }
    return result;
  }

  std::string buffer;
  char chunk[4096];
  size_t head_end = std::string::npos;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        result.timed_out = true;
        result.error = "timeout: no response within " +
                       std::to_string(timeout_ms_) + "ms";
      } else {
        result.error = n == 0 ? "connection closed by server"
                              : std::string("recv failed: ") +
                                    std::strerror(errno);
      }
      return result;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  // Status line: HTTP/1.1 <code> <phrase>
  const size_t space = buffer.find(' ');
  if (space == std::string::npos || space + 4 > buffer.size()) {
    result.error = "malformed status line";
    return result;
  }
  result.status = std::atoi(buffer.c_str() + space + 1);

  // Header lines up to head_end.
  size_t content_length = 0;
  {
    size_t pos = buffer.find("\r\n") + 2;
    while (pos < head_end) {
      size_t eol = buffer.find("\r\n", pos);
      if (eol == std::string::npos || eol > head_end) eol = head_end;
      const std::string line = buffer.substr(pos, eol - pos);
      pos = eol + 2;
      const size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      const std::string name = ToLower(line.substr(0, colon));
      size_t value_begin = colon + 1;
      while (value_begin < line.size() && line[value_begin] == ' ') {
        ++value_begin;
      }
      result.headers[name] = line.substr(value_begin);
    }
    const auto it = result.headers.find("content-length");
    if (it != result.headers.end()) {
      content_length =
          static_cast<size_t>(std::strtoull(it->second.c_str(), nullptr, 10));
    }
  }

  const size_t body_begin = head_end + 4;
  while (buffer.size() < body_begin + content_length) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        result.timed_out = true;
        result.error = "timeout: response body stalled";
      } else {
        result.error = "connection closed mid-body";
      }
      return result;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  result.body = buffer.substr(body_begin, content_length);
  result.ok = true;
  return result;
}

}  // namespace serve
}  // namespace hire
