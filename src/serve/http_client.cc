#include "serve/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace hire {
namespace serve {

namespace {

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HttpClient::HttpClient(int port, const std::string& host)
    : host_(host), port_(port) {}

HttpClient::~HttpClient() { Disconnect(); }

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool HttpClient::EnsureConnected(std::string* error) {
  if (fd_ >= 0) return true;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket() failed: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host address: " + host_;
    Disconnect();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("connect(") + host_ + ":" + std::to_string(port_) +
             ") failed: " + std::strerror(errno);
    Disconnect();
    return false;
  }
  timeval timeout;
  timeout.tv_sec = 30;
  timeout.tv_usec = 0;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

HttpClient::Result HttpClient::Request(const std::string& method,
                                       const std::string& path,
                                       const std::string& body) {
  Result result = RequestOnce(method, path, body);
  if (!result.ok && method == "GET") {
    // The keep-alive connection may have died mid-exchange. Retrying is only
    // safe for idempotent GETs: a POST's first attempt may have been fully
    // processed before the response was lost, and replaying it would e.g.
    // double-count /predict metrics or hot-swap /reload twice. (Stale
    // recycled connections are already detected before any bytes are sent —
    // see RequestOnce — so POSTs never pay for that common case.)
    Disconnect();
    result = RequestOnce(method, path, body);
  }
  if (!result.ok) Disconnect();
  return result;
}

HttpClient::Result HttpClient::RequestOnce(const std::string& method,
                                           const std::string& path,
                                           const std::string& body) {
  Result result;
  if (fd_ >= 0) {
    // Reused keep-alive connection: the server may have closed it while it
    // sat idle. Peek without blocking; EOF or an error here means the
    // connection is stale, and since no request bytes have been sent yet it
    // is safe to reconnect for any method.
    char probe = 0;
    const ssize_t n =
        ::recv(fd_, &probe, sizeof(probe), MSG_PEEK | MSG_DONTWAIT);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      Disconnect();
    }
  }
  if (!EnsureConnected(&result.error)) return result;

  std::string request = method + " " + path + " HTTP/1.1\r\n";
  request += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  request += "Connection: keep-alive\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (!body.empty()) request += "Content-Type: application/json\r\n";
  request += "\r\n";
  request += body;
  if (!SendAll(fd_, request)) {
    result.error = std::string("send failed: ") + std::strerror(errno);
    return result;
  }

  std::string buffer;
  char chunk[4096];
  size_t head_end = std::string::npos;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      result.error = n == 0 ? "connection closed by server"
                            : std::string("recv failed: ") +
                                  std::strerror(errno);
      return result;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  // Status line: HTTP/1.1 <code> <phrase>
  const size_t space = buffer.find(' ');
  if (space == std::string::npos || space + 4 > buffer.size()) {
    result.error = "malformed status line";
    return result;
  }
  result.status = std::atoi(buffer.c_str() + space + 1);

  size_t content_length = 0;
  {
    // Case-insensitive scan for the Content-Length header.
    std::string lower;
    lower.reserve(head_end);
    for (size_t i = 0; i < head_end; ++i) {
      lower.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(buffer[i]))));
    }
    const size_t key = lower.find("content-length:");
    if (key != std::string::npos) {
      content_length = static_cast<size_t>(
          std::strtoull(buffer.c_str() + key + 15, nullptr, 10));
    }
  }

  const size_t body_begin = head_end + 4;
  while (buffer.size() < body_begin + content_length) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      result.error = "connection closed mid-body";
      return result;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  result.body = buffer.substr(body_begin, content_length);
  result.ok = true;
  return result;
}

}  // namespace serve
}  // namespace hire
