#include "metrics/ranking_metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "utils/check.h"

namespace hire {
namespace metrics {

RankingMetrics ComputeRankingMetrics(const std::vector<float>& predicted,
                                     const std::vector<float>& actual, int k,
                                     float relevance_threshold) {
  HIRE_CHECK_EQ(predicted.size(), actual.size());
  HIRE_CHECK(!predicted.empty()) << "empty ranking list";
  HIRE_CHECK_GT(k, 0);

  const int64_t count = static_cast<int64_t>(predicted.size());
  const int64_t cutoff = std::min<int64_t>(k, count);

  // Rank items by predicted rating, breaking ties by index for determinism.
  std::vector<int64_t> order(static_cast<size_t>(count));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return predicted[static_cast<size_t>(a)] > predicted[static_cast<size_t>(b)];
  });

  auto relevant = [&](int64_t item) {
    return actual[static_cast<size_t>(item)] >= relevance_threshold;
  };

  // Precision@k.
  int64_t hits = 0;
  for (int64_t i = 0; i < cutoff; ++i) {
    if (relevant(order[static_cast<size_t>(i)])) ++hits;
  }
  RankingMetrics result;
  result.precision = static_cast<double>(hits) / static_cast<double>(cutoff);

  // NDCG@k with graded gains: DCG over the predicted order, IDCG over the
  // ideal (actual-descending) order.
  std::vector<float> ideal = actual;
  std::sort(ideal.begin(), ideal.end(), std::greater<float>());
  double dcg = 0.0;
  double idcg = 0.0;
  for (int64_t i = 0; i < cutoff; ++i) {
    const double discount = 1.0 / std::log2(static_cast<double>(i) + 2.0);
    dcg += actual[static_cast<size_t>(order[static_cast<size_t>(i)])] * discount;
    idcg += ideal[static_cast<size_t>(i)] * discount;
  }
  result.ndcg = idcg > 0.0 ? dcg / idcg : 0.0;

  // MAP@k (binary relevance).
  const int64_t total_relevant =
      std::count_if(actual.begin(), actual.end(), [&](float rating) {
        return rating >= relevance_threshold;
      });
  if (total_relevant > 0) {
    double ap = 0.0;
    int64_t hits_so_far = 0;
    for (int64_t i = 0; i < cutoff; ++i) {
      if (relevant(order[static_cast<size_t>(i)])) {
        ++hits_so_far;
        ap += static_cast<double>(hits_so_far) / static_cast<double>(i + 1);
      }
    }
    result.map = ap / static_cast<double>(std::min<int64_t>(total_relevant,
                                                            cutoff));
  }
  return result;
}

MeanStd Aggregate(const std::vector<double>& values) {
  HIRE_CHECK(!values.empty());
  MeanStd out;
  for (double value : values) out.mean += value;
  out.mean /= static_cast<double>(values.size());
  double variance = 0.0;
  for (double value : values) {
    const double centered = value - out.mean;
    variance += centered * centered;
  }
  variance /= static_cast<double>(values.size());
  out.stddev = std::sqrt(variance);
  return out;
}

RankingMetrics AverageMetrics(const std::vector<RankingMetrics>& metrics) {
  HIRE_CHECK(!metrics.empty());
  RankingMetrics out;
  for (const RankingMetrics& m : metrics) {
    out.precision += m.precision;
    out.ndcg += m.ndcg;
    out.map += m.map;
  }
  const double inv = 1.0 / static_cast<double>(metrics.size());
  out.precision *= inv;
  out.ndcg *= inv;
  out.map *= inv;
  return out;
}

namespace {

double SumSquaredError(const std::vector<float>& predicted,
                       const std::vector<float>& actual) {
  HIRE_CHECK_EQ(predicted.size(), actual.size());
  HIRE_CHECK(!predicted.empty());
  double total = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    const double diff = predicted[i] - actual[i];
    total += diff * diff;
  }
  return total;
}

}  // namespace

double MeanSquaredError(const std::vector<float>& predicted,
                        const std::vector<float>& actual) {
  return SumSquaredError(predicted, actual) /
         static_cast<double>(predicted.size());
}

double MeanAbsoluteError(const std::vector<float>& predicted,
                         const std::vector<float>& actual) {
  HIRE_CHECK_EQ(predicted.size(), actual.size());
  HIRE_CHECK(!predicted.empty());
  double total = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    total += std::fabs(predicted[i] - actual[i]);
  }
  return total / static_cast<double>(predicted.size());
}

double RootMeanSquaredError(const std::vector<float>& predicted,
                            const std::vector<float>& actual) {
  return std::sqrt(MeanSquaredError(predicted, actual));
}

}  // namespace metrics
}  // namespace hire
