#ifndef HIRE_METRICS_RANKING_METRICS_H_
#define HIRE_METRICS_RANKING_METRICS_H_

#include <vector>

namespace hire {
namespace metrics {

/// Ranking quality of one prediction list, following the paper's protocol:
/// items are sorted by *predicted* rating, the top-k prefix is scored
/// against the *actual* ratings.
struct RankingMetrics {
  double precision = 0.0;
  double ndcg = 0.0;
  double map = 0.0;
};

/// Computes Precision@k, NDCG@k and MAP@k for one ranked list.
///
/// `predicted` and `actual` are parallel arrays over a user's candidate
/// items. An item is *relevant* when its actual rating >=
/// `relevance_threshold`. NDCG uses graded gains (the actual rating) with
/// the Järvelin–Kekäläinen log2 discount; Precision and MAP use binary
/// relevance. When the list is shorter than k, the full list is scored.
RankingMetrics ComputeRankingMetrics(const std::vector<float>& predicted,
                                     const std::vector<float>& actual, int k,
                                     float relevance_threshold);

/// Mean and (population) standard deviation of a sample, for the
/// "mean(std)" cells of the paper's tables.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};

MeanStd Aggregate(const std::vector<double>& values);

/// Averages a set of per-list metrics into one RankingMetrics.
RankingMetrics AverageMetrics(const std::vector<RankingMetrics>& metrics);

// ---------------------------------------------------------------------------
// Regression metrics.
// ---------------------------------------------------------------------------

double MeanSquaredError(const std::vector<float>& predicted,
                        const std::vector<float>& actual);
double MeanAbsoluteError(const std::vector<float>& predicted,
                         const std::vector<float>& actual);
double RootMeanSquaredError(const std::vector<float>& predicted,
                            const std::vector<float>& actual);

}  // namespace metrics
}  // namespace hire

#endif  // HIRE_METRICS_RANKING_METRICS_H_
