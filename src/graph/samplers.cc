#include "graph/samplers.h"

#include <algorithm>
#include <unordered_set>

#include "utils/check.h"

namespace hire {
namespace graph {

namespace {

// Deduplicates seeds, preserving order, and truncates to the budget.
std::vector<int64_t> PrepareSeeds(const std::vector<int64_t>& seeds,
                                  int64_t universe, int64_t budget) {
  std::vector<int64_t> unique;
  std::unordered_set<int64_t> seen;
  for (int64_t seed : seeds) {
    HIRE_CHECK(seed >= 0 && seed < universe) << "seed " << seed;
    if (seen.insert(seed).second) unique.push_back(seed);
    if (static_cast<int64_t>(unique.size()) >= budget) break;
  }
  return unique;
}

// Fills `selected` to `budget` entities with uniform random unused ids.
void FillRandom(std::vector<int64_t>* selected,
                std::unordered_set<int64_t>* used, int64_t universe,
                int64_t budget, Rng* rng) {
  while (static_cast<int64_t>(selected->size()) < budget) {
    const int64_t candidate = rng->UniformInt(universe);
    if (used->insert(candidate).second) selected->push_back(candidate);
  }
}

}  // namespace

ContextSelection NeighborhoodSampler::Sample(
    const BipartiteGraph& graph, const std::vector<int64_t>& seed_users,
    const std::vector<int64_t>& seed_items, int64_t num_users,
    int64_t num_items, Rng* rng) const {
  HIRE_CHECK(rng != nullptr);
  const int64_t user_budget = std::min(num_users, graph.num_users());
  const int64_t item_budget = std::min(num_items, graph.num_items());

  ContextSelection selection;
  selection.users = PrepareSeeds(seed_users, graph.num_users(), user_budget);
  selection.items = PrepareSeeds(seed_items, graph.num_items(), item_budget);
  std::unordered_set<int64_t> used_users(selection.users.begin(),
                                         selection.users.end());
  std::unordered_set<int64_t> used_items(selection.items.begin(),
                                         selection.items.end());

  // Hop-by-hop BFS. The frontier alternates roles implicitly: user nodes
  // contribute item neighbors and vice versa.
  std::vector<int64_t> frontier_users = selection.users;
  std::vector<int64_t> frontier_items = selection.items;

  while ((static_cast<int64_t>(selection.users.size()) < user_budget ||
          static_cast<int64_t>(selection.items.size()) < item_budget) &&
         (!frontier_users.empty() || !frontier_items.empty())) {
    // Collect the next hop's candidate entities.
    std::vector<int64_t> candidate_items;
    for (int64_t user : frontier_users) {
      for (int64_t item : graph.ItemsOfUser(user)) {
        if (used_items.count(item) == 0) candidate_items.push_back(item);
      }
    }
    std::vector<int64_t> candidate_users;
    for (int64_t item : frontier_items) {
      for (int64_t user : graph.UsersOfItem(item)) {
        if (used_users.count(user) == 0) candidate_users.push_back(user);
      }
    }

    // Deduplicate candidates (an entity can neighbor several frontier
    // nodes).
    std::sort(candidate_items.begin(), candidate_items.end());
    candidate_items.erase(
        std::unique(candidate_items.begin(), candidate_items.end()),
        candidate_items.end());
    std::sort(candidate_users.begin(), candidate_users.end());
    candidate_users.erase(
        std::unique(candidate_users.begin(), candidate_users.end()),
        candidate_users.end());

    frontier_users.clear();
    frontier_items.clear();

    // Admit items: all of them if they fit the remaining budget, otherwise
    // a uniform subset (paper §IV-B).
    const int64_t item_room =
        item_budget - static_cast<int64_t>(selection.items.size());
    if (item_room > 0 && !candidate_items.empty()) {
      if (static_cast<int64_t>(candidate_items.size()) > item_room) {
        const auto picks = rng->SampleWithoutReplacement(
            static_cast<int64_t>(candidate_items.size()), item_room);
        std::vector<int64_t> subset;
        subset.reserve(picks.size());
        for (int64_t index : picks) {
          subset.push_back(candidate_items[static_cast<size_t>(index)]);
        }
        candidate_items = std::move(subset);
      }
      for (int64_t item : candidate_items) {
        used_items.insert(item);
        selection.items.push_back(item);
        frontier_items.push_back(item);
      }
    }

    const int64_t user_room =
        user_budget - static_cast<int64_t>(selection.users.size());
    if (user_room > 0 && !candidate_users.empty()) {
      if (static_cast<int64_t>(candidate_users.size()) > user_room) {
        const auto picks = rng->SampleWithoutReplacement(
            static_cast<int64_t>(candidate_users.size()), user_room);
        std::vector<int64_t> subset;
        subset.reserve(picks.size());
        for (int64_t index : picks) {
          subset.push_back(candidate_users[static_cast<size_t>(index)]);
        }
        candidate_users = std::move(subset);
      }
      for (int64_t user : candidate_users) {
        used_users.insert(user);
        selection.users.push_back(user);
        frontier_users.push_back(user);
      }
    }

    if (frontier_users.empty() && frontier_items.empty()) break;
  }

  // Graceful fallback for disconnected or exhausted components.
  FillRandom(&selection.users, &used_users, graph.num_users(), user_budget,
             rng);
  FillRandom(&selection.items, &used_items, graph.num_items(), item_budget,
             rng);
  return selection;
}

ContextSelection RandomSampler::Sample(const BipartiteGraph& graph,
                                       const std::vector<int64_t>& seed_users,
                                       const std::vector<int64_t>& seed_items,
                                       int64_t num_users, int64_t num_items,
                                       Rng* rng) const {
  HIRE_CHECK(rng != nullptr);
  const int64_t user_budget = std::min(num_users, graph.num_users());
  const int64_t item_budget = std::min(num_items, graph.num_items());

  ContextSelection selection;
  selection.users = PrepareSeeds(seed_users, graph.num_users(), user_budget);
  selection.items = PrepareSeeds(seed_items, graph.num_items(), item_budget);
  std::unordered_set<int64_t> used_users(selection.users.begin(),
                                         selection.users.end());
  std::unordered_set<int64_t> used_items(selection.items.begin(),
                                         selection.items.end());
  FillRandom(&selection.users, &used_users, graph.num_users(), user_budget,
             rng);
  FillRandom(&selection.items, &used_items, graph.num_items(), item_budget,
             rng);
  return selection;
}

FeatureSimilaritySampler::FeatureSimilaritySampler(
    const data::Dataset* dataset)
    : dataset_(dataset) {
  HIRE_CHECK(dataset_ != nullptr);
}

namespace {

// Fraction of attribute positions on which the two vectors agree.
double MatchFraction(const std::vector<int64_t>& a,
                     const std::vector<int64_t>& b) {
  HIRE_CHECK_EQ(a.size(), b.size());
  int64_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(a.size());
}

// Selects the budget-many candidates most similar to the seeds, breaking
// ties with random jitter.
template <typename AttrFn>
void FillBySimilarity(const std::vector<int64_t>& seeds,
                      std::vector<int64_t>* selected,
                      std::unordered_set<int64_t>* used, int64_t universe,
                      int64_t budget, AttrFn attributes, Rng* rng) {
  if (static_cast<int64_t>(selected->size()) >= budget) return;
  struct Scored {
    double score;
    int64_t entity;
  };
  std::vector<Scored> scored;
  scored.reserve(static_cast<size_t>(universe));
  for (int64_t candidate = 0; candidate < universe; ++candidate) {
    if (used->count(candidate) > 0) continue;
    double best = 0.0;
    for (int64_t seed : seeds) {
      best = std::max(best, MatchFraction(attributes(seed),
                                          attributes(candidate)));
    }
    scored.push_back(Scored{best + 1e-6 * rng->Uniform(), candidate});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    return a.score > b.score;
  });
  for (const Scored& entry : scored) {
    if (static_cast<int64_t>(selected->size()) >= budget) break;
    used->insert(entry.entity);
    selected->push_back(entry.entity);
  }
}

}  // namespace

ContextSelection FeatureSimilaritySampler::Sample(
    const BipartiteGraph& graph, const std::vector<int64_t>& seed_users,
    const std::vector<int64_t>& seed_items, int64_t num_users,
    int64_t num_items, Rng* rng) const {
  HIRE_CHECK(rng != nullptr);
  const int64_t user_budget = std::min(num_users, graph.num_users());
  const int64_t item_budget = std::min(num_items, graph.num_items());

  ContextSelection selection;
  selection.users = PrepareSeeds(seed_users, graph.num_users(), user_budget);
  selection.items = PrepareSeeds(seed_items, graph.num_items(), item_budget);
  std::unordered_set<int64_t> used_users(selection.users.begin(),
                                         selection.users.end());
  std::unordered_set<int64_t> used_items(selection.items.begin(),
                                         selection.items.end());

  const std::vector<int64_t>& user_seeds_for_sim =
      selection.users.empty() ? seed_users : selection.users;
  const std::vector<int64_t>& item_seeds_for_sim =
      selection.items.empty() ? seed_items : selection.items;

  FillBySimilarity(
      user_seeds_for_sim, &selection.users, &used_users, graph.num_users(),
      user_budget,
      [this](int64_t user) -> const std::vector<int64_t>& {
        return dataset_->user_attributes(user);
      },
      rng);
  FillBySimilarity(
      item_seeds_for_sim, &selection.items, &used_items, graph.num_items(),
      item_budget,
      [this](int64_t item) -> const std::vector<int64_t>& {
        return dataset_->item_attributes(item);
      },
      rng);

  // When there were no seeds at all, fall back to random fill.
  FillRandom(&selection.users, &used_users, graph.num_users(), user_budget,
             rng);
  FillRandom(&selection.items, &used_items, graph.num_items(), item_budget,
             rng);
  return selection;
}

}  // namespace graph
}  // namespace hire
