#ifndef HIRE_GRAPH_BIPARTITE_GRAPH_H_
#define HIRE_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"

namespace hire {
namespace graph {

/// User-item bipartite rating graph with adjacency lists in both directions
/// and O(1) rating lookup. The neighborhood-based context sampler walks this
/// structure; evaluation harnesses build one graph per visibility regime
/// (train-only, train+support) so cold ratings can never leak.
class BipartiteGraph {
 public:
  /// Builds the graph over `ratings`; user/item ids must lie inside the
  /// given universe sizes.
  BipartiteGraph(int64_t num_users, int64_t num_items,
                 const std::vector<data::Rating>& ratings);

  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }
  int64_t num_edges() const { return num_edges_; }

  /// Items rated by `user` (possibly empty).
  const std::vector<int64_t>& ItemsOfUser(int64_t user) const;

  /// Users who rated `item` (possibly empty).
  const std::vector<int64_t>& UsersOfItem(int64_t item) const;

  /// The rating on edge (user, item), or nullopt when absent.
  std::optional<float> GetRating(int64_t user, int64_t item) const;

  /// Degree helpers.
  int64_t UserDegree(int64_t user) const;
  int64_t ItemDegree(int64_t item) const;

 private:
  int64_t num_users_;
  int64_t num_items_;
  int64_t num_edges_ = 0;
  std::vector<std::vector<int64_t>> user_adjacency_;
  std::vector<std::vector<int64_t>> item_adjacency_;
  std::unordered_map<int64_t, float> edge_ratings_;  // key: u*num_items+i
};

}  // namespace graph
}  // namespace hire

#endif  // HIRE_GRAPH_BIPARTITE_GRAPH_H_
