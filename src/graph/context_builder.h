#ifndef HIRE_GRAPH_CONTEXT_BUILDER_H_
#define HIRE_GRAPH_CONTEXT_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/samplers.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace hire {
namespace graph {

/// One prediction context: n users x m items with partially observed
/// ratings. This is the unit both HIRE training (masked cells are the
/// training targets) and evaluation (masked cells are the cold query
/// ratings) operate on.
struct PredictionContext {
  std::vector<int64_t> users;  // n entity ids
  std::vector<int64_t> items;  // m entity ids

  /// [n, m]: rating values visible to the model (0 where not visible).
  Tensor observed_ratings;
  /// [n, m]: 1 where observed_ratings holds a visible rating.
  Tensor observed_mask;
  /// [n, m]: ground-truth values for prediction targets (0 elsewhere).
  Tensor target_ratings;
  /// [n, m]: 1 where target_ratings holds a ground truth to score against.
  Tensor target_mask;

  int64_t num_users() const { return static_cast<int64_t>(users.size()); }
  int64_t num_items() const { return static_cast<int64_t>(items.size()); }
};

/// Assembles a context over `selection`, marking every rating present in
/// `graph` as observed. No cells are targets yet.
PredictionContext AssembleContext(const BipartiteGraph& graph,
                                  ContextSelection selection);

/// Converts a random (1 - visible_fraction) share of the observed cells into
/// prediction targets: they are removed from the observed input and placed in
/// target_ratings/target_mask. Mirrors the paper's masking protocol (90%
/// masked by default). Guarantees at least one target and, when possible, at
/// least one remaining observed cell.
void MaskForTraining(PredictionContext* context, double visible_fraction,
                     Rng* rng);

/// Builds one training context end to end: picks a random observed edge as
/// the seed pair, samples the selection, assembles and masks.
PredictionContext BuildTrainingContext(const BipartiteGraph& graph,
                                       const ContextSampler& sampler,
                                       int64_t num_users, int64_t num_items,
                                       double visible_fraction, Rng* rng);

}  // namespace graph
}  // namespace hire

#endif  // HIRE_GRAPH_CONTEXT_BUILDER_H_
