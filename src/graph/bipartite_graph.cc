#include "graph/bipartite_graph.h"

#include "utils/check.h"

namespace hire {
namespace graph {

BipartiteGraph::BipartiteGraph(int64_t num_users, int64_t num_items,
                               const std::vector<data::Rating>& ratings)
    : num_users_(num_users), num_items_(num_items) {
  HIRE_CHECK_GT(num_users_, 0);
  HIRE_CHECK_GT(num_items_, 0);
  user_adjacency_.assign(static_cast<size_t>(num_users_), {});
  item_adjacency_.assign(static_cast<size_t>(num_items_), {});
  edge_ratings_.reserve(ratings.size());
  for (const data::Rating& rating : ratings) {
    HIRE_CHECK(rating.user >= 0 && rating.user < num_users_)
        << "user " << rating.user;
    HIRE_CHECK(rating.item >= 0 && rating.item < num_items_)
        << "item " << rating.item;
    const int64_t key = rating.user * num_items_ + rating.item;
    auto [it, inserted] = edge_ratings_.emplace(key, rating.value);
    if (!inserted) continue;  // keep the first occurrence of duplicates
    user_adjacency_[static_cast<size_t>(rating.user)].push_back(rating.item);
    item_adjacency_[static_cast<size_t>(rating.item)].push_back(rating.user);
    ++num_edges_;
  }
}

const std::vector<int64_t>& BipartiteGraph::ItemsOfUser(int64_t user) const {
  HIRE_CHECK(user >= 0 && user < num_users_) << "user " << user;
  return user_adjacency_[static_cast<size_t>(user)];
}

const std::vector<int64_t>& BipartiteGraph::UsersOfItem(int64_t item) const {
  HIRE_CHECK(item >= 0 && item < num_items_) << "item " << item;
  return item_adjacency_[static_cast<size_t>(item)];
}

std::optional<float> BipartiteGraph::GetRating(int64_t user,
                                               int64_t item) const {
  HIRE_CHECK(user >= 0 && user < num_users_) << "user " << user;
  HIRE_CHECK(item >= 0 && item < num_items_) << "item " << item;
  const auto it = edge_ratings_.find(user * num_items_ + item);
  if (it == edge_ratings_.end()) return std::nullopt;
  return it->second;
}

int64_t BipartiteGraph::UserDegree(int64_t user) const {
  return static_cast<int64_t>(ItemsOfUser(user).size());
}

int64_t BipartiteGraph::ItemDegree(int64_t item) const {
  return static_cast<int64_t>(UsersOfItem(item).size());
}

}  // namespace graph
}  // namespace hire
