#ifndef HIRE_GRAPH_SAMPLERS_H_
#define HIRE_GRAPH_SAMPLERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/bipartite_graph.h"
#include "tensor/random.h"

namespace hire {
namespace graph {

/// The users and items chosen for one prediction context.
struct ContextSelection {
  std::vector<int64_t> users;
  std::vector<int64_t> items;
};

/// Strategy interface for selecting the n users and m items of a prediction
/// context around a seed set (§IV-B and the Fig. 8 ablation).
///
/// Implementations must include every seed entity in the output, return
/// exactly min(n, num_users) distinct users and min(m, num_items) distinct
/// items, and be deterministic given the Rng state.
class ContextSampler {
 public:
  virtual ~ContextSampler() = default;

  virtual ContextSelection Sample(const BipartiteGraph& graph,
                                  const std::vector<int64_t>& seed_users,
                                  const std::vector<int64_t>& seed_items,
                                  int64_t num_users, int64_t num_items,
                                  Rng* rng) const = 0;

  virtual std::string name() const = 0;
};

/// The paper's default: breadth-first expansion over the rating bipartite
/// graph starting from the seed set, hop by hop, uniformly subsampling any
/// frontier that exceeds the remaining budget. Falls back to uniform random
/// entities when the reachable component is exhausted (e.g. a cold user with
/// no visible edges).
class NeighborhoodSampler : public ContextSampler {
 public:
  ContextSelection Sample(const BipartiteGraph& graph,
                          const std::vector<int64_t>& seed_users,
                          const std::vector<int64_t>& seed_items,
                          int64_t num_users, int64_t num_items,
                          Rng* rng) const override;
  std::string name() const override { return "neighborhood"; }
};

/// Ablation baseline: uniform random users/items (seeds still included).
class RandomSampler : public ContextSampler {
 public:
  ContextSelection Sample(const BipartiteGraph& graph,
                          const std::vector<int64_t>& seed_users,
                          const std::vector<int64_t>& seed_items,
                          int64_t num_users, int64_t num_items,
                          Rng* rng) const override;
  std::string name() const override { return "random"; }
};

/// Ablation baseline: picks the users/items whose categorical attribute
/// vectors are most similar (highest match fraction) to the seeds.
class FeatureSimilaritySampler : public ContextSampler {
 public:
  /// `dataset` supplies the attribute tables; it must outlive the sampler.
  explicit FeatureSimilaritySampler(const data::Dataset* dataset);

  ContextSelection Sample(const BipartiteGraph& graph,
                          const std::vector<int64_t>& seed_users,
                          const std::vector<int64_t>& seed_items,
                          int64_t num_users, int64_t num_items,
                          Rng* rng) const override;
  std::string name() const override { return "feature-similarity"; }

 private:
  const data::Dataset* dataset_;
};

}  // namespace graph
}  // namespace hire

#endif  // HIRE_GRAPH_SAMPLERS_H_
