#include "graph/context_builder.h"

#include <algorithm>

#include "obs/kernel_timers.h"
#include "obs/trace.h"
#include "utils/check.h"

namespace hire {
namespace graph {

PredictionContext AssembleContext(const BipartiteGraph& graph,
                                  ContextSelection selection) {
  HIRE_CHECK(!selection.users.empty());
  HIRE_CHECK(!selection.items.empty());
  const int64_t n = static_cast<int64_t>(selection.users.size());
  const int64_t m = static_cast<int64_t>(selection.items.size());

  PredictionContext context;
  context.users = std::move(selection.users);
  context.items = std::move(selection.items);
  context.observed_ratings = Tensor::Zeros({n, m});
  context.observed_mask = Tensor::Zeros({n, m});
  context.target_ratings = Tensor::Zeros({n, m});
  context.target_mask = Tensor::Zeros({n, m});

  for (int64_t k = 0; k < n; ++k) {
    for (int64_t j = 0; j < m; ++j) {
      const auto rating =
          graph.GetRating(context.users[static_cast<size_t>(k)],
                          context.items[static_cast<size_t>(j)]);
      if (rating.has_value()) {
        context.observed_ratings.at(k, j) = *rating;
        context.observed_mask.at(k, j) = 1.0f;
      }
    }
  }
  return context;
}

void MaskForTraining(PredictionContext* context, double visible_fraction,
                     Rng* rng) {
  HIRE_CHECK(context != nullptr);
  HIRE_CHECK(rng != nullptr);
  HIRE_CHECK(visible_fraction >= 0.0 && visible_fraction < 1.0)
      << "visible_fraction " << visible_fraction;

  // Gather the observed cells.
  std::vector<int64_t> observed_cells;
  for (int64_t flat = 0; flat < context->observed_mask.size(); ++flat) {
    if (context->observed_mask.flat(flat) > 0.0f) {
      observed_cells.push_back(flat);
    }
  }
  HIRE_CHECK(!observed_cells.empty())
      << "context has no observed ratings to mask";

  rng->Shuffle(&observed_cells);
  int64_t visible_count = static_cast<int64_t>(
      visible_fraction * static_cast<double>(observed_cells.size()));
  // Always keep at least one target; keep one visible cell when there are
  // two or more observations.
  visible_count = std::min<int64_t>(
      visible_count, static_cast<int64_t>(observed_cells.size()) - 1);
  visible_count = std::max<int64_t>(
      visible_count, observed_cells.size() >= 2 ? 1 : 0);

  for (size_t idx = static_cast<size_t>(visible_count);
       idx < observed_cells.size(); ++idx) {
    const int64_t flat = observed_cells[idx];
    context->target_ratings.flat(flat) = context->observed_ratings.flat(flat);
    context->target_mask.flat(flat) = 1.0f;
    context->observed_ratings.flat(flat) = 0.0f;
    context->observed_mask.flat(flat) = 0.0f;
  }
}

PredictionContext BuildTrainingContext(const BipartiteGraph& graph,
                                       const ContextSampler& sampler,
                                       int64_t num_users, int64_t num_items,
                                       double visible_fraction, Rng* rng) {
  ScopedKernelTimer timer(KernelCategory::kSampling);
  HIRE_TRACE_SCOPE("context_sampling");
  HIRE_CHECK(rng != nullptr);
  HIRE_CHECK_GT(graph.num_edges(), 0) << "graph has no ratings";

  // Draw a seed edge, weighted by user degree (uniform over edges).
  int64_t seed_user = -1;
  int64_t seed_item = -1;
  for (int attempt = 0; attempt < 1024 && seed_user < 0; ++attempt) {
    const int64_t user = rng->UniformInt(graph.num_users());
    const auto& items = graph.ItemsOfUser(user);
    if (items.empty()) continue;
    seed_user = user;
    seed_item = items[static_cast<size_t>(
        rng->UniformInt(static_cast<int64_t>(items.size())))];
  }
  HIRE_CHECK_GE(seed_user, 0) << "could not find a seed edge";

  ContextSelection selection = sampler.Sample(
      graph, {seed_user}, {seed_item}, num_users, num_items, rng);
  PredictionContext context = AssembleContext(graph, std::move(selection));
  MaskForTraining(&context, visible_fraction, rng);
  return context;
}

}  // namespace graph
}  // namespace hire
