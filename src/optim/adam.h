#ifndef HIRE_OPTIM_ADAM_H_
#define HIRE_OPTIM_ADAM_H_

#include <vector>

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace hire {
namespace optim {

/// Adam/AdamW configuration.
struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  /// Decoupled weight decay (AdamW style); 0 disables.
  float weight_decay = 0.0f;
};

/// Adam optimiser (Kingma & Ba) with optional decoupled weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Variable> parameters, const AdamConfig& config);

  void Step() override;

  /// Captures/restores the moments and the bias-correction step counter
  /// under "adam.*" keys.
  hire::StateDict StateDict() const override;
  void LoadStateDict(const hire::StateDict& state) override;

 private:
  AdamConfig config_;
  int64_t step_count_ = 0;
  std::vector<Tensor> first_moment_;
  std::vector<Tensor> second_moment_;
};

}  // namespace optim
}  // namespace hire

#endif  // HIRE_OPTIM_ADAM_H_
