#ifndef HIRE_OPTIM_LR_SCHEDULER_H_
#define HIRE_OPTIM_LR_SCHEDULER_H_

#include <cstdint>

namespace hire {
namespace optim {

/// The paper's learning-rate schedule: flat at the base rate for the first
/// `flat_fraction` of training, then cosine annealing to zero by the final
/// step.
class FlatThenCosineSchedule {
 public:
  FlatThenCosineSchedule(float base_learning_rate, int64_t total_steps,
                         float flat_fraction = 0.7f);

  /// Learning rate for 0-based `step` (clamped to total_steps - 1).
  float LearningRate(int64_t step) const;

  float base_learning_rate() const { return base_learning_rate_; }
  int64_t total_steps() const { return total_steps_; }

 private:
  float base_learning_rate_;
  int64_t total_steps_;
  float flat_fraction_;
};

}  // namespace optim
}  // namespace hire

#endif  // HIRE_OPTIM_LR_SCHEDULER_H_
