#include "optim/lr_scheduler.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "utils/check.h"

namespace hire {
namespace optim {

FlatThenCosineSchedule::FlatThenCosineSchedule(float base_learning_rate,
                                               int64_t total_steps,
                                               float flat_fraction)
    : base_learning_rate_(base_learning_rate),
      total_steps_(total_steps),
      flat_fraction_(flat_fraction) {
  HIRE_CHECK_GT(base_learning_rate_, 0.0f);
  HIRE_CHECK_GT(total_steps_, 0);
  HIRE_CHECK(flat_fraction_ >= 0.0f && flat_fraction_ <= 1.0f);
}

float FlatThenCosineSchedule::LearningRate(int64_t step) const {
  step = std::clamp<int64_t>(step, 0, total_steps_ - 1);
  const int64_t flat_steps =
      static_cast<int64_t>(flat_fraction_ * static_cast<float>(total_steps_));
  if (step < flat_steps) return base_learning_rate_;
  const int64_t anneal_steps = std::max<int64_t>(total_steps_ - flat_steps, 1);
  const double progress =
      static_cast<double>(step - flat_steps) / static_cast<double>(anneal_steps);
  return base_learning_rate_ *
         static_cast<float>(0.5 * (1.0 + std::cos(std::numbers::pi * progress)));
}

}  // namespace optim
}  // namespace hire
