#ifndef HIRE_OPTIM_LAMB_H_
#define HIRE_OPTIM_LAMB_H_

#include <vector>

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace hire {
namespace optim {

/// LAMB configuration. Defaults follow the paper's training recipe:
/// β = (0.9, 0.999), ε = 1e-6.
struct LambConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-6f;
  float weight_decay = 0.0f;
  /// Trust ratios are clamped to [min_trust, max_trust] for stability.
  float min_trust = 0.0f;
  float max_trust = 10.0f;
};

/// LAMB optimiser (You et al., "Large Batch Optimization for Deep
/// Learning"). Adam-style moments with a per-parameter-tensor trust ratio
/// ||w|| / ||update|| that rescales each layer's step.
class Lamb : public Optimizer {
 public:
  Lamb(std::vector<ag::Variable> parameters, const LambConfig& config);

  void Step() override;

  /// Captures/restores the Adam-style moments and the bias-correction step
  /// counter under "lamb.*" keys.
  hire::StateDict StateDict() const override;
  void LoadStateDict(const hire::StateDict& state) override;

 private:
  LambConfig config_;
  int64_t step_count_ = 0;
  std::vector<Tensor> first_moment_;
  std::vector<Tensor> second_moment_;
};

}  // namespace optim
}  // namespace hire

#endif  // HIRE_OPTIM_LAMB_H_
