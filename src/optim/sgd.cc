#include "optim/sgd.h"

#include "utils/check.h"

namespace hire {
namespace optim {

Sgd::Sgd(std::vector<ag::Variable> parameters, float learning_rate,
         float momentum)
    : Optimizer(std::move(parameters), learning_rate), momentum_(momentum) {
  HIRE_CHECK(momentum_ >= 0.0f && momentum_ < 1.0f);
  if (momentum_ > 0.0f) {
    velocity_.reserve(parameters_.size());
    for (const ag::Variable& parameter : parameters_) {
      velocity_.emplace_back(Tensor::Zeros(parameter.shape()));
    }
  }
}

void Sgd::Step() {
  for (size_t p = 0; p < parameters_.size(); ++p) {
    ag::Variable& parameter = parameters_[p];
    if (!parameter.has_grad()) continue;
    const Tensor& grad = parameter.grad();
    Tensor& value = parameter.mutable_value();
    if (momentum_ > 0.0f) {
      Tensor& velocity = velocity_[p];
      for (int64_t i = 0; i < value.size(); ++i) {
        velocity.flat(i) = momentum_ * velocity.flat(i) + grad.flat(i);
        value.flat(i) -= learning_rate_ * velocity.flat(i);
      }
    } else {
      for (int64_t i = 0; i < value.size(); ++i) {
        value.flat(i) -= learning_rate_ * grad.flat(i);
      }
    }
  }
}

hire::StateDict Sgd::StateDict() const {
  hire::StateDict state;
  ExportTensorList(velocity_, "sgd.velocity", &state);
  return state;
}

void Sgd::LoadStateDict(const hire::StateDict& state) {
  if (momentum_ > 0.0f) {
    ImportTensorList(state, "sgd.velocity", parameters_, &velocity_);
  }
}

}  // namespace optim
}  // namespace hire
