#include "optim/optimizer.h"

#include <cmath>
#include <string>

#include "utils/check.h"

namespace hire {
namespace optim {

Optimizer::Optimizer(std::vector<ag::Variable> parameters,
                     float learning_rate)
    : parameters_(std::move(parameters)), learning_rate_(learning_rate) {
  HIRE_CHECK(!parameters_.empty()) << "optimizer needs parameters";
  HIRE_CHECK_GT(learning_rate_, 0.0f);
  for (const ag::Variable& parameter : parameters_) {
    HIRE_CHECK(parameter.requires_grad())
        << "optimizer parameter does not require gradients";
  }
}

void Optimizer::ZeroGrad() {
  for (ag::Variable& parameter : parameters_) {
    parameter.ZeroGrad();
  }
}

float ClipGradNorm(const std::vector<ag::Variable>& parameters,
                   float max_norm) {
  HIRE_CHECK_GT(max_norm, 0.0f);
  double total = 0.0;
  for (const ag::Variable& parameter : parameters) {
    if (!parameter.has_grad()) continue;
    const Tensor& grad = parameter.grad();
    for (int64_t i = 0; i < grad.size(); ++i) {
      const double g = grad.flat(i);
      total += g * g;
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const ag::Variable& parameter : parameters) {
      if (!parameter.has_grad()) continue;
      // Gradients are scaled through the impl to keep accumulation state.
      Tensor& grad = const_cast<Tensor&>(parameter.grad());
      for (int64_t i = 0; i < grad.size(); ++i) grad.flat(i) *= scale;
    }
  }
  return norm;
}

void ExportTensorList(const std::vector<Tensor>& list,
                      const std::string& prefix, hire::StateDict* out) {
  HIRE_CHECK(out != nullptr);
  for (size_t i = 0; i < list.size(); ++i) {
    out->PutTensor(prefix + "." + std::to_string(i), list[i]);
  }
}

void ImportTensorList(const hire::StateDict& state, const std::string& prefix,
                      const std::vector<ag::Variable>& parameters,
                      std::vector<Tensor>* list) {
  HIRE_CHECK(list != nullptr);
  HIRE_CHECK_EQ(list->size(), parameters.size())
      << "tensor list '" << prefix << "' not sized like the parameter list";
  for (size_t i = 0; i < list->size(); ++i) {
    const std::string key = prefix + "." + std::to_string(i);
    HIRE_CHECK(state.HasTensor(key))
        << "optimizer state is missing '" << key << "'";
    const Tensor& value = state.GetTensor(key);
    HIRE_CHECK(value.SameShape(parameters[i].value()))
        << "shape mismatch for optimizer state '" << key << "': snapshot "
        << value.ShapeString() << " vs parameter "
        << parameters[i].value().ShapeString();
    (*list)[i] = value;
  }
}

}  // namespace optim
}  // namespace hire
