#include "optim/lookahead.h"

#include "utils/check.h"

namespace hire {
namespace optim {

Lookahead::Lookahead(std::unique_ptr<Optimizer> inner, float alpha,
                     int sync_period)
    : Optimizer(inner->parameters(), inner->learning_rate()),
      inner_(std::move(inner)),
      alpha_(alpha),
      sync_period_(sync_period) {
  HIRE_CHECK(alpha_ > 0.0f && alpha_ <= 1.0f);
  HIRE_CHECK_GE(sync_period_, 1);
  slow_weights_.reserve(parameters_.size());
  for (const ag::Variable& parameter : parameters_) {
    slow_weights_.push_back(parameter.value());
  }
}

void Lookahead::Step() {
  inner_->Step();
  if (++steps_since_sync_ < sync_period_) return;
  steps_since_sync_ = 0;
  for (size_t p = 0; p < parameters_.size(); ++p) {
    Tensor& fast = parameters_[p].mutable_value();
    Tensor& slow = slow_weights_[p];
    for (int64_t i = 0; i < fast.size(); ++i) {
      slow.flat(i) += alpha_ * (fast.flat(i) - slow.flat(i));
      fast.flat(i) = slow.flat(i);
    }
  }
}

void Lookahead::set_learning_rate(float learning_rate) {
  Optimizer::set_learning_rate(learning_rate);
  inner_->set_learning_rate(learning_rate);
}

hire::StateDict Lookahead::StateDict() const {
  hire::StateDict state = inner_->StateDict();
  state.PutScalar("lookahead.steps_since_sync",
                  static_cast<uint64_t>(steps_since_sync_));
  ExportTensorList(slow_weights_, "lookahead.slow", &state);
  return state;
}

void Lookahead::LoadStateDict(const hire::StateDict& state) {
  inner_->LoadStateDict(state);
  steps_since_sync_ =
      static_cast<int>(state.GetScalar("lookahead.steps_since_sync"));
  ImportTensorList(state, "lookahead.slow", parameters_, &slow_weights_);
}

}  // namespace optim
}  // namespace hire
