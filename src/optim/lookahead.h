#ifndef HIRE_OPTIM_LOOKAHEAD_H_
#define HIRE_OPTIM_LOOKAHEAD_H_

#include <memory>
#include <vector>

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace hire {
namespace optim {

/// Lookahead wrapper (Zhang et al.): the inner "fast" optimiser takes k
/// steps, after which slow weights are interpolated towards the fast weights
/// with rate alpha and copied back. The paper trains HIRE with
/// Lookahead(LAMB), alpha = 0.5, k = 6.
class Lookahead : public Optimizer {
 public:
  /// Takes ownership of `inner`; the managed parameters are the inner
  /// optimiser's parameters.
  Lookahead(std::unique_ptr<Optimizer> inner, float alpha = 0.5f,
            int sync_period = 6);

  void Step() override;

  /// Forwards learning-rate changes (schedulers) to the inner optimiser.
  void set_learning_rate(float learning_rate) override;

  /// Captures/restores the slow weights and sync counter under
  /// "lookahead.*" keys, merged with the inner optimiser's state (key sets
  /// are disjoint by construction).
  hire::StateDict StateDict() const override;
  void LoadStateDict(const hire::StateDict& state) override;

 private:
  std::unique_ptr<Optimizer> inner_;
  float alpha_;
  int sync_period_;
  int steps_since_sync_ = 0;
  std::vector<Tensor> slow_weights_;
};

}  // namespace optim
}  // namespace hire

#endif  // HIRE_OPTIM_LOOKAHEAD_H_
