#ifndef HIRE_OPTIM_SGD_H_
#define HIRE_OPTIM_SGD_H_

#include <vector>

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace hire {
namespace optim {

/// Stochastic gradient descent with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ag::Variable> parameters, float learning_rate,
      float momentum = 0.0f);

  void Step() override;

  /// Captures/restores the momentum velocity buffers under "sgd.*" keys
  /// (empty when momentum is disabled).
  hire::StateDict StateDict() const override;
  void LoadStateDict(const hire::StateDict& state) override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

}  // namespace optim
}  // namespace hire

#endif  // HIRE_OPTIM_SGD_H_
