#include "optim/adam.h"

#include <cmath>

namespace hire {
namespace optim {

Adam::Adam(std::vector<ag::Variable> parameters, const AdamConfig& config)
    : Optimizer(std::move(parameters), config.learning_rate),
      config_(config) {
  first_moment_.reserve(parameters_.size());
  second_moment_.reserve(parameters_.size());
  for (const ag::Variable& parameter : parameters_) {
    first_moment_.emplace_back(Tensor::Zeros(parameter.shape()));
    second_moment_.emplace_back(Tensor::Zeros(parameter.shape()));
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(step_count_));

  for (size_t p = 0; p < parameters_.size(); ++p) {
    ag::Variable& parameter = parameters_[p];
    if (!parameter.has_grad()) continue;
    const Tensor& grad = parameter.grad();
    Tensor& value = parameter.mutable_value();
    Tensor& m = first_moment_[p];
    Tensor& v = second_moment_[p];
    for (int64_t i = 0; i < value.size(); ++i) {
      const float g = grad.flat(i);
      m.flat(i) = config_.beta1 * m.flat(i) + (1.0f - config_.beta1) * g;
      v.flat(i) = config_.beta2 * v.flat(i) + (1.0f - config_.beta2) * g * g;
      const float m_hat = m.flat(i) / bias1;
      const float v_hat = v.flat(i) / bias2;
      float update = m_hat / (std::sqrt(v_hat) + config_.epsilon);
      if (config_.weight_decay > 0.0f) {
        update += config_.weight_decay * value.flat(i);
      }
      value.flat(i) -= learning_rate_ * update;
    }
  }
}

hire::StateDict Adam::StateDict() const {
  hire::StateDict state;
  state.PutScalar("adam.step_count", static_cast<uint64_t>(step_count_));
  ExportTensorList(first_moment_, "adam.m", &state);
  ExportTensorList(second_moment_, "adam.v", &state);
  return state;
}

void Adam::LoadStateDict(const hire::StateDict& state) {
  step_count_ = static_cast<int64_t>(state.GetScalar("adam.step_count"));
  ImportTensorList(state, "adam.m", parameters_, &first_moment_);
  ImportTensorList(state, "adam.v", parameters_, &second_moment_);
}

}  // namespace optim
}  // namespace hire
