#include "optim/lamb.h"

#include <algorithm>
#include <cmath>

namespace hire {
namespace optim {

Lamb::Lamb(std::vector<ag::Variable> parameters, const LambConfig& config)
    : Optimizer(std::move(parameters), config.learning_rate),
      config_(config) {
  first_moment_.reserve(parameters_.size());
  second_moment_.reserve(parameters_.size());
  for (const ag::Variable& parameter : parameters_) {
    first_moment_.emplace_back(Tensor::Zeros(parameter.shape()));
    second_moment_.emplace_back(Tensor::Zeros(parameter.shape()));
  }
}

void Lamb::Step() {
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(step_count_));

  for (size_t p = 0; p < parameters_.size(); ++p) {
    ag::Variable& parameter = parameters_[p];
    if (!parameter.has_grad()) continue;
    const Tensor& grad = parameter.grad();
    Tensor& value = parameter.mutable_value();
    Tensor& m = first_moment_[p];
    Tensor& v = second_moment_[p];

    // Adam-style normalised update, then layer-wise trust rescaling.
    Tensor update(value.shape());
    double weight_norm_sq = 0.0;
    double update_norm_sq = 0.0;
    for (int64_t i = 0; i < value.size(); ++i) {
      const float g = grad.flat(i);
      m.flat(i) = config_.beta1 * m.flat(i) + (1.0f - config_.beta1) * g;
      v.flat(i) = config_.beta2 * v.flat(i) + (1.0f - config_.beta2) * g * g;
      const float m_hat = m.flat(i) / bias1;
      const float v_hat = v.flat(i) / bias2;
      float u = m_hat / (std::sqrt(v_hat) + config_.epsilon);
      if (config_.weight_decay > 0.0f) {
        u += config_.weight_decay * value.flat(i);
      }
      update.flat(i) = u;
      weight_norm_sq += static_cast<double>(value.flat(i)) * value.flat(i);
      update_norm_sq += static_cast<double>(u) * u;
    }

    const float weight_norm = static_cast<float>(std::sqrt(weight_norm_sq));
    const float update_norm = static_cast<float>(std::sqrt(update_norm_sq));
    float trust = 1.0f;
    if (weight_norm > 0.0f && update_norm > 0.0f) {
      trust = std::clamp(weight_norm / update_norm, config_.min_trust,
                         config_.max_trust);
    }

    const float scale = learning_rate_ * trust;
    for (int64_t i = 0; i < value.size(); ++i) {
      value.flat(i) -= scale * update.flat(i);
    }
  }
}

hire::StateDict Lamb::StateDict() const {
  hire::StateDict state;
  state.PutScalar("lamb.step_count", static_cast<uint64_t>(step_count_));
  ExportTensorList(first_moment_, "lamb.m", &state);
  ExportTensorList(second_moment_, "lamb.v", &state);
  return state;
}

void Lamb::LoadStateDict(const hire::StateDict& state) {
  step_count_ = static_cast<int64_t>(state.GetScalar("lamb.step_count"));
  ImportTensorList(state, "lamb.m", parameters_, &first_moment_);
  ImportTensorList(state, "lamb.v", parameters_, &second_moment_);
}

}  // namespace optim
}  // namespace hire
