#ifndef HIRE_OPTIM_OPTIMIZER_H_
#define HIRE_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace hire {
namespace optim {

/// Base class for gradient-descent optimisers. Holds shared handles to the
/// parameters; Step() consumes the gradients accumulated by the most recent
/// backward pass. Parameters without an accumulated gradient are skipped.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable> parameters, float learning_rate);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the current gradients.
  virtual void Step() = 0;

  /// Clears gradients on all managed parameters.
  void ZeroGrad();

  virtual void set_learning_rate(float learning_rate) {
    learning_rate_ = learning_rate;
  }
  float learning_rate() const { return learning_rate_; }

  const std::vector<ag::Variable>& parameters() const { return parameters_; }

 protected:
  std::vector<ag::Variable> parameters_;
  float learning_rate_;
};

/// Scales gradients in place so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm. Parameters without gradients are ignored.
float ClipGradNorm(const std::vector<ag::Variable>& parameters,
                   float max_norm);

}  // namespace optim
}  // namespace hire

#endif  // HIRE_OPTIM_OPTIMIZER_H_
