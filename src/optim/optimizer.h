#ifndef HIRE_OPTIM_OPTIMIZER_H_
#define HIRE_OPTIM_OPTIMIZER_H_

#include <string>
#include <vector>

#include "autograd/variable.h"
#include "tensor/state_dict.h"

namespace hire {
namespace optim {

/// Base class for gradient-descent optimisers. Holds shared handles to the
/// parameters; Step() consumes the gradients accumulated by the most recent
/// backward pass. Parameters without an accumulated gradient are skipped.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable> parameters, float learning_rate);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the current gradients.
  virtual void Step() = 0;

  /// Serialisable optimiser state: moments, counters, slow weights —
  /// everything beyond the parameters themselves that influences future
  /// updates. Loading the returned dictionary into a freshly constructed
  /// optimiser over the same parameter list (via LoadStateDict) reproduces
  /// the update stream bitwise. The base implementation is empty; stateful
  /// optimisers override both methods.
  virtual hire::StateDict StateDict() const { return {}; }

  /// Restores state captured by StateDict(). Shape or key mismatches throw
  /// hire::CheckError.
  virtual void LoadStateDict(const hire::StateDict& state) { (void)state; }

  /// Clears gradients on all managed parameters.
  void ZeroGrad();

  virtual void set_learning_rate(float learning_rate) {
    learning_rate_ = learning_rate;
  }
  float learning_rate() const { return learning_rate_; }

  const std::vector<ag::Variable>& parameters() const { return parameters_; }

 protected:
  std::vector<ag::Variable> parameters_;
  float learning_rate_;
};

/// Scales gradients in place so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm. Parameters without gradients are ignored.
float ClipGradNorm(const std::vector<ag::Variable>& parameters,
                   float max_norm);

/// Stores a per-parameter tensor list (moments, velocities, slow weights)
/// under keys "<prefix>.<index>". Used by optimiser StateDict()
/// implementations so checkpoints share one naming scheme.
void ExportTensorList(const std::vector<Tensor>& list,
                      const std::string& prefix, hire::StateDict* out);

/// Restores a tensor list written by ExportTensorList into `list`, checking
/// each entry's shape against the matching parameter. `list` must already be
/// sized like `parameters` (as the optimiser constructor leaves it).
void ImportTensorList(const hire::StateDict& state, const std::string& prefix,
                      const std::vector<ag::Variable>& parameters,
                      std::vector<Tensor>* list);

}  // namespace optim
}  // namespace hire

#endif  // HIRE_OPTIM_OPTIMIZER_H_
