#ifndef HIRE_OBS_KERNEL_TIMERS_H_
#define HIRE_OBS_KERNEL_TIMERS_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace hire {

/// Coarse hot-path categories tracked by KernelTimers. kMatMul and kSoftmax
/// are charged inside the tensor ops, kAttention around whole MHSA forwards
/// (so it overlaps the former two), kOptimizer around the optimiser update.
/// kLayerNorm and kEmbedding are charged inside their autograd kernels
/// (forward and backward), kSampling around context sampling/assembly, and
/// kCheckpointIo around snapshot serialisation to and from disk.
///
/// The infer.* categories partition the tape-free inference forward
/// (core/inference_forward.cc) instead of overlapping it: kInferFusedGemm is
/// charged inside ops::GemmBiasAct(Into), kInferFusedAttention around the
/// online-softmax attention loops, and kInferArena around everything else
/// the fused forward does over arena buffers (encode gather, permutes,
/// residual + layer norm, decode), so serve forward time decomposes by
/// kernel in /metrics and the Prometheus exposition.
enum class KernelCategory : int {
  kMatMul = 0,
  kSoftmax,
  kAttention,
  kOptimizer,
  kLayerNorm,
  kEmbedding,
  kSampling,
  kCheckpointIo,
  kInferFusedAttention,
  kInferFusedGemm,
  kInferArena,
};

/// Process-wide accumulator of time spent per KernelCategory, backed by
/// counters in obs::MetricsRegistry (names "kernel.<category>_nanos"), so
/// kernel time shows up in metrics snapshots alongside everything else.
/// Thread-safe; the trainer snapshots it to print a per-epoch breakdown.
class KernelTimers {
 public:
  static constexpr int kNumCategories = 11;

  /// Display/export names, indexed by KernelCategory.
  static const char* Name(KernelCategory category);

  /// Per-category totals at one instant, subtractable for interval deltas.
  struct Snapshot {
    std::array<uint64_t, kNumCategories> nanos{};

    double Seconds(KernelCategory category) const {
      return static_cast<double>(nanos[static_cast<int>(category)]) * 1e-9;
    }

    Snapshot operator-(const Snapshot& other) const {
      Snapshot delta;
      for (int i = 0; i < kNumCategories; ++i) {
        delta.nanos[i] = nanos[i] - other.nanos[i];
      }
      return delta;
    }

    /// e.g. "matmul 1.23s | softmax 0.40s | attention 1.71s | optim 0.25s
    /// | layernorm 0.02s | embedding 0.01s | sampling 0.05s | ckpt-io 0s".
    std::string ToString() const;
  };

  static void Add(KernelCategory category, uint64_t nanos);
  static Snapshot Take();
  static void Reset();
};

/// RAII accumulator: charges the scope's wall time to one KernelCategory.
/// Cheap enough for per-op use on matrix-sized work (one steady_clock read
/// on entry and exit); keep it off per-element paths.
class ScopedKernelTimer {
 public:
  explicit ScopedKernelTimer(KernelCategory category)
      : category_(category), start_(std::chrono::steady_clock::now()) {}

  ~ScopedKernelTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    KernelTimers::Add(
        category_,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  ScopedKernelTimer(const ScopedKernelTimer&) = delete;
  ScopedKernelTimer& operator=(const ScopedKernelTimer&) = delete;

 private:
  KernelCategory category_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hire

#endif  // HIRE_OBS_KERNEL_TIMERS_H_
