#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.h"
#include "utils/check.h"

namespace hire {
namespace obs {

int CurrentThreadId() {
  static std::atomic<int> next_id{1};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace internal {

std::atomic<bool> g_trace_enabled{false};

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

struct TraceEvent {
  char name[kMaxSpanName];
  uint64_t start_ns;
  uint64_t dur_ns;
  int tid;
};

/// Cap per thread buffer so a runaway traced loop cannot exhaust memory;
/// spans beyond the cap are counted in g_dropped.
constexpr size_t kMaxEventsPerThread = 1u << 21;

struct ThreadBuffer {
  std::mutex mutex;  // uncontended except while a collector reads
  std::vector<TraceEvent> events;
  int tid = 0;
};

std::atomic<uint64_t> g_total_spans{0};
std::atomic<uint64_t> g_dropped_spans{0};
std::atomic<uint64_t> g_trace_epoch_ns{0};

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferRegistry& Registry() {
  static BufferRegistry* registry = new BufferRegistry();
  return *registry;
}

ThreadBuffer& LocalBuffer() {
  // The shared_ptr keeps a finished thread's events alive until export.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto created = std::make_shared<ThreadBuffer>();
    created->tid = CurrentThreadId();
    BufferRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

}  // namespace

void RecordSpan(const char* name, uint64_t start_ns, uint64_t end_ns) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    g_dropped_spans.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent event;
  std::strncpy(event.name, name, sizeof(event.name) - 1);
  event.name[sizeof(event.name) - 1] = '\0';
  event.start_ns = start_ns;
  event.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  event.tid = buffer.tid;
  buffer.events.push_back(event);
  g_total_spans.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

void EmitSpan(const char* name, uint64_t start_ns, uint64_t end_ns) {
  if (!Tracer::Enabled()) return;
  internal::RecordSpan(name, start_ns, end_ns);
}

void EmitSpan(const std::string& name, uint64_t start_ns, uint64_t end_ns) {
  EmitSpan(name.c_str(), start_ns, end_ns);
}

void Tracer::Start() {
  Clear();
  internal::g_trace_epoch_ns.store(internal::NowNanos(),
                                   std::memory_order_relaxed);
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() {
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void Tracer::Clear() {
  internal::BufferRegistry& registry = internal::Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mutex);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.clear();
  }
  internal::g_total_spans.store(0, std::memory_order_relaxed);
  internal::g_dropped_spans.store(0, std::memory_order_relaxed);
}

uint64_t Tracer::TotalSpans() {
  return internal::g_total_spans.load(std::memory_order_relaxed);
}

uint64_t Tracer::DroppedSpans() {
  return internal::g_dropped_spans.load(std::memory_order_relaxed);
}

std::string Tracer::ToChromeTraceJson() {
  const uint64_t epoch =
      internal::g_trace_epoch_ns.load(std::memory_order_relaxed);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  internal::BufferRegistry& registry = internal::Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mutex);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    for (const auto& event : buffer->events) {
      if (!first) out += ",";
      first = false;
      const double ts_us =
          static_cast<double>(event.start_ns -
                              std::min(event.start_ns, epoch)) *
          1e-3;
      const double dur_us = static_cast<double>(event.dur_ns) * 1e-3;
      out += "{\"name\":" + JsonString(event.name) +
             ",\"cat\":\"hire\",\"ph\":\"X\",\"ts\":" + JsonNumber(ts_us) +
             ",\"dur\":" + JsonNumber(dur_us) +
             ",\"pid\":1,\"tid\":" + std::to_string(event.tid) + "}";
    }
  }
  out += "]}";
  return out;
}

void Tracer::WriteChromeTrace(const std::string& path) {
  const std::string json = ToChromeTraceJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  HIRE_CHECK(file != nullptr) << "cannot open trace output '" << path << "'";
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int closed = std::fclose(file);
  HIRE_CHECK(written == json.size() && closed == 0)
      << "short write to trace output '" << path << "'";
}

}  // namespace obs
}  // namespace hire
