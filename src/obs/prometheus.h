#ifndef HIRE_OBS_PROMETHEUS_H_
#define HIRE_OBS_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

namespace hire {
namespace obs {

/// Rewrites a registry metric name into a legal Prometheus metric name:
/// every character outside [a-zA-Z0-9_:] becomes '_' (so "serve.outcome.ok"
/// exports as "serve_outcome_ok" and "cache-hits" as "cache_hits"), and a
/// leading digit gains a '_' prefix. The original name is preserved in the
/// exposition's # HELP line so dashboards can map back.
std::string PrometheusMetricName(const std::string& name);

/// Escapes a label value for the text exposition format: backslash, double
/// quote, and newline become \\, \", and \n.
std::string PrometheusEscapeLabelValue(const std::string& value);

/// Escapes free text for a # HELP line (backslash and newline only, per the
/// exposition format spec).
std::string PrometheusEscapeHelp(const std::string& text);

/// Renders a registry snapshot in the Prometheus text exposition format
/// (version 0.0.4): counters and gauges as single samples, histograms as
/// cumulative `_bucket{le="..."}` series (ending in le="+Inf") plus `_sum`
/// and `_count`. Bucket counts are cumulative and monotone by construction;
/// `_bucket{le="+Inf"}` always equals `_count`. Serve it with content type
/// "text/plain; version=0.0.4".
std::string ToPrometheusText(const MetricsRegistry::Snapshot& snapshot);

/// The content type a /metrics endpoint should declare for ToPrometheusText
/// output.
extern const char kPrometheusContentType[];

}  // namespace obs
}  // namespace hire

#endif  // HIRE_OBS_PROMETHEUS_H_
